//! Silent-corruption scrubbing: flip bits in random elements of an encoded
//! stripe and let the scrubber localize and repair each one from the
//! pattern of violated parity chains.
//!
//! ```text
//! cargo run -p hv-examples --bin scrub_corruption
//! ```

use hv_code::HvCode;
use raid_core::scrub::{scrub, ScrubReport};
use raid_core::{ArrayCode, Cell, Stripe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let code = HvCode::new(11)?;
    let layout = code.layout();
    let mut stripe = Stripe::for_layout(layout, 1024);
    stripe.fill_data_seeded(layout, 0x5C);
    code.encode(&mut stripe);
    let pristine = stripe.clone();
    println!(
        "HV Code p = {}, {}x{} stripe, scrubbing after injected bit rot\n",
        code.prime(),
        code.rows(),
        code.disks()
    );

    // A deterministic tour of corruption sites: data cells, horizontal
    // parities, vertical parities.
    let victims = [
        Cell::new(0, 0),
        Cell::new(4, 7),
        Cell::new(2, code.horizontal_parity_col(2)),
        Cell::new(6, code.vertical_parity_col(6)),
    ];

    for victim in victims {
        let mut s = pristine.clone();
        s.element_mut(victim)[513] ^= 0b0010_0000; // one flipped bit
        match scrub(&mut s, layout) {
            ScrubReport::Repaired { cell } => {
                assert_eq!(cell, victim);
                assert_eq!(s, pristine);
                println!(
                    "bit flip in E[{},{}] ({:?}) -> localized and repaired ✔",
                    victim.row + 1,
                    victim.col + 1,
                    layout.kind(victim)
                );
            }
            other => panic!("scrub failed for {victim}: {other:?}"),
        }
    }

    // Damage beyond one element is refused, not guessed at.
    let mut s = pristine.clone();
    s.element_mut(Cell::new(0, 0))[0] ^= 1;
    s.element_mut(Cell::new(1, 1))[0] ^= 1;
    match scrub(&mut s, layout) {
        ScrubReport::Unlocalizable { violated } => println!(
            "\ntwo corrupted elements -> correctly refused ({} chains violated); \
             treat as disk failure and rebuild instead",
            violated.len()
        ),
        other => panic!("expected unlocalizable, got {other:?}"),
    }
    Ok(())
}
