//! Archive repair: store a file-sized payload on a RAID-6 volume, destroy
//! two whole disks, rebuild, and verify the file's fingerprint — the
//! paper's motivating reliability scenario end to end.
//!
//! ```text
//! cargo run -p hv-examples --bin archive_repair
//! ```

use std::sync::Arc;

use hv_code::HvCode;
use hv_examples::{fingerprint, payload};
use raid_array::RaidVolume;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let code = Arc::new(HvCode::new(11)?);
    let element = 4096usize;
    let mut volume = RaidVolume::in_memory(code, 64, element);
    println!(
        "volume: {} disks, {} data elements of {} B ({} MiB usable)",
        volume.disks(),
        volume.data_elements(),
        element,
        volume.data_elements() * element / (1024 * 1024)
    );

    // "Upload" an archive across the whole volume.
    let archive = payload(volume.data_elements() * element, 0xF11E);
    let original_print = fingerprint(&archive);
    volume.write(0, &archive)?;
    println!("archive stored, fingerprint {original_print:#018x}");

    // Two disks die.
    volume.fail_disk(3)?;
    volume.fail_disk(7)?;
    println!("disks #3 and #7 failed; volume degraded");

    // The archive is still fully readable (degraded reads reconstruct).
    let (degraded_copy, receipt) = volume.read(0, volume.data_elements())?;
    assert_eq!(fingerprint(&degraded_copy), original_print);
    println!(
        "degraded full read OK ({} element reads for {} elements)",
        receipt.total_reads(),
        volume.data_elements()
    );

    // Rebuild onto fresh spares.
    volume.reset_ledger();
    let receipt = volume.rebuild()?;
    println!(
        "rebuild complete: {} element reads, {} element writes",
        receipt.total_reads(),
        receipt.total_writes()
    );
    assert!(volume.verify_all(), "all parity chains consistent after rebuild");

    let (copy, _) = volume.read(0, volume.data_elements())?;
    assert_eq!(fingerprint(&copy), original_print);
    println!("archive verified byte-exact after rebuild ✔");
    Ok(())
}
