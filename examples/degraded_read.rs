//! Degraded reads under a single disk failure: serve reads while a disk is
//! down and compare the extra I/O (`L′/L`) across the paper's five codes —
//! a live miniature of Fig. 7(b).
//!
//! ```text
//! cargo run -p hv-examples --bin degraded_read
//! ```

use std::sync::Arc;

use hv_code::HvCode;
use hv_examples::payload;
use raid_array::RaidVolume;
use raid_baselines::{HCode, HdpCode, RdpCode, XCode};
use raid_core::ArrayCode;
use raid_workloads::degraded_read_patterns;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = 13usize;
    let codes: Vec<Arc<dyn ArrayCode>> = vec![
        Arc::new(RdpCode::new(p)?),
        Arc::new(HdpCode::new(p)?),
        Arc::new(XCode::new(p)?),
        Arc::new(HCode::new(p)?),
        Arc::new(HvCode::new(p)?),
    ];

    let element = 512usize;
    let read_len = 10usize;
    println!("degraded reads of L = {read_len} elements, p = {p}, one failed disk\n");
    println!("{:>8}  {:>8}  {:>8}", "code", "L'/L", "worst");

    for code in codes {
        let name = code.name().to_string();
        let per_stripe = code.layout().num_data_cells();
        let stripes = 1200usize.div_ceil(per_stripe);
        let mut total_eff = 0.0;
        let mut worst: f64 = 0.0;
        let mut count = 0u64;

        for failed in 0..code.layout().cols() {
            let mut volume = RaidVolume::in_memory(Arc::clone(&code), stripes, element);
            let data = payload(volume.data_elements() * element, 1);
            volume.write(0, &data)?;
            volume.fail_disk(failed)?;

            let pats =
                degraded_read_patterns(read_len, 40, volume.data_elements() - read_len, 99);
            for pat in &pats {
                let (bytes, receipt) = volume.read(pat.start, pat.len)?;
                // Integrity: degraded reads return the true data.
                assert_eq!(
                    bytes,
                    data[pat.start * element..(pat.start + pat.len) * element],
                    "{name}: corrupted degraded read"
                );
                let eff = receipt.total_reads() as f64 / pat.len as f64;
                total_eff += eff;
                worst = worst.max(eff);
                count += 1;
            }
        }
        println!("{:>8}  {:>8.3}  {:>8.3}", name, total_eff / count as f64, worst);
    }
    println!("\n(lower is better; HV Code should lead, X-Code trail — cf. Fig. 7b)");
    Ok(())
}
