//! Structural comparison of every implemented RAID-6 code — the expanded
//! Table III, computed live from the layouts, plus the Reed–Solomon
//! baselines' shape for contrast.
//!
//! ```text
//! cargo run -p hv-examples --bin code_comparison [p]
//! ```

use std::sync::Arc;

use hv_code::HvCode;
use raid_baselines::{EvenOddCode, HCode, HdpCode, LiberationCode, PCode, RdpCode, XCode};
use raid_core::invariants;
use raid_core::plan::update::update_complexity;
use raid_core::schedule::double_failure_schedule;
use raid_core::ArrayCode;
use raid_rs::{CauchyRs, PqRaid6};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(13);

    let codes: Vec<Arc<dyn ArrayCode>> = vec![
        Arc::new(RdpCode::new(p)?),
        Arc::new(EvenOddCode::new(p)?),
        Arc::new(HdpCode::new(p)?),
        Arc::new(XCode::new(p)?),
        Arc::new(HCode::new(p)?),
        Arc::new(PCode::new(p)?),
        Arc::new(LiberationCode::new(p)?),
        Arc::new(HvCode::new(p)?),
    ];

    println!("XOR array codes at p = {p}:\n");
    println!(
        "{:>9}  {:>5}  {:>7}  {:>9}  {:>7}  {:>7}  {:>10}  {:>13}",
        "code", "disks", "eff %", "upd cmplx", "chains", "max len", "par/disk", "MDS verified"
    );

    for code in &codes {
        let layout = code.layout();
        let n = layout.cols();
        // Verify MDS live (exhaustive for the chosen p).
        let mds = invariants::find_undecodable_pair(layout).is_none();
        let mut min_chains = usize::MAX;
        for f1 in 0..n {
            for f2 in (f1 + 1)..n {
                min_chains =
                    min_chains.min(double_failure_schedule(layout, f1, f2)?.num_chains);
            }
        }
        let max_len = layout
            .chain_length_histogram()
            .into_iter()
            .map(|(len, _)| len)
            .max()
            .unwrap_or(0);
        let parities = invariants::parities_per_column(layout);
        let spread = format!(
            "{}..{}",
            parities.iter().min().unwrap(),
            parities.iter().max().unwrap()
        );
        println!(
            "{:>9}  {:>5}  {:>7.1}  {:>9.2}  {:>7}  {:>7}  {:>10}  {:>13}",
            code.name(),
            n,
            code.storage_efficiency() * 100.0,
            update_complexity(layout),
            min_chains,
            max_len,
            spread,
            if mds { "yes" } else { "NO!" },
        );
    }

    // Reed–Solomon baselines for contrast.
    let pq = PqRaid6::new(p - 3)?;
    let cauchy = CauchyRs::raid6(p - 3)?;
    println!(
        "\nGalois-field baselines: PQ-RS over {} disks, Cauchy-RS over {} disks \
         (every Q-parity byte costs a GF(2^8) multiply — the cost the XOR \
         family eliminates)",
        pq.total_disks(),
        cauchy.data_shards() + cauchy.parity_shards(),
    );
    println!("\n(cf. Table III of the paper; 'chains' = min parallel recovery chains)");
    Ok(())
}
