//! Shared helpers for the runnable examples.

/// Deterministic pseudo-random payload generator (xorshift64*), so every
/// example can verify bytes without external dependencies.
pub fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let word = state.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes();
        out.extend_from_slice(&word[..word.len().min(len - out.len())]);
    }
    out
}

/// FNV-1a checksum for quick integrity reporting in example output.
pub fn fingerprint(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic() {
        assert_eq!(payload(100, 7), payload(100, 7));
        assert_ne!(payload(100, 7), payload(100, 8));
        assert_eq!(payload(13, 1).len(), 13);
    }

    #[test]
    fn fingerprint_distinguishes() {
        assert_ne!(fingerprint(b"hello"), fingerprint(b"hellp"));
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
    }
}
