//! Failure storm: random double-disk failures hammer volumes built on each
//! code; every round rebuilds and verifies. Reports the recovery-chain
//! parallelism and the modeled `Lc · Re` rebuild time — Fig. 9(b) live.
//!
//! ```text
//! cargo run -p hv-examples --bin double_failure_storm [rounds]
//! ```

use std::sync::Arc;

use disk_sim::recovery::lc_re_time_ms;
use disk_sim::DiskProfile;
use hv_code::HvCode;
use hv_examples::{fingerprint, payload};
use raid_array::RaidVolume;
use raid_baselines::{HCode, HdpCode, RdpCode, XCode};
use raid_core::schedule::double_failure_schedule;
use raid_core::ArrayCode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10);
    let p = 11usize;
    let profile = DiskProfile::savvio_10k();
    let codes: Vec<Arc<dyn ArrayCode>> = vec![
        Arc::new(RdpCode::new(p)?),
        Arc::new(HdpCode::new(p)?),
        Arc::new(XCode::new(p)?),
        Arc::new(HCode::new(p)?),
        Arc::new(HvCode::new(p)?),
    ];

    println!("{rounds} random double-failure rounds per code, p = {p}\n");
    println!(
        "{:>8}  {:>7}  {:>7}  {:>12}  {:>9}",
        "code", "chains", "max Lc", "Lc·Re (ms)", "verified"
    );

    // Simple deterministic PRNG for failure selection.
    let mut state = 0x5707_u64;
    let mut next = move |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % bound as u64) as usize
    };

    for code in codes {
        let name = code.name().to_string();
        let disks = code.layout().cols();
        let element = 256usize;
        let mut volume = RaidVolume::in_memory(Arc::clone(&code), 8, element);
        let data = payload(volume.data_elements() * element, 0xBAD);
        let print = fingerprint(&data);
        volume.write(0, &data)?;

        let mut min_chains = usize::MAX;
        let mut max_lc = 0usize;
        let mut verified = 0usize;
        for _ in 0..rounds {
            let f1 = next(disks);
            let mut f2 = next(disks);
            if f2 == f1 {
                f2 = (f2 + 1) % disks;
            }
            let sched = double_failure_schedule(code.layout(), f1.min(f2), f1.max(f2))
                .expect("MDS code repairs any pair");
            min_chains = min_chains.min(sched.num_chains);
            max_lc = max_lc.max(sched.longest_chain);

            volume.fail_disk(f1)?;
            volume.fail_disk(f2)?;
            volume.rebuild()?;
            let (copy, _) = volume.read(0, volume.data_elements())?;
            assert_eq!(fingerprint(&copy), print, "{name}: data corrupted in round");
            verified += 1;
        }
        println!(
            "{:>8}  {:>7}  {:>7}  {:>12.1}  {:>8}/{}",
            name,
            min_chains,
            max_lc,
            lc_re_time_ms(max_lc, &profile),
            verified,
            rounds
        );
    }
    println!("\n(HV Code and X-Code sustain 4 parallel chains; cf. Fig. 9b)");
    Ok(())
}
