//! Quickstart: encode a stripe with HV Code, lose two disks, repair them
//! with Algorithm 1, and verify every byte.
//!
//! ```text
//! cargo run -p hv-examples --bin quickstart
//! ```

use hv_code::HvCode;
use raid_core::{ArrayCode, Stripe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // HV Code over p − 1 = 12 disks (p = 13), 16 KiB elements.
    let code = HvCode::new(13)?;
    println!(
        "HV Code: p = {}, {} disks, {}x{} stripe, storage efficiency {:.1}%",
        code.prime(),
        code.disks(),
        code.rows(),
        code.disks(),
        code.storage_efficiency() * 100.0
    );

    let mut stripe = Stripe::for_layout(code.layout(), 16 * 1024);
    stripe.fill_data_seeded(code.layout(), 0xDA7A);
    code.encode(&mut stripe);
    let pristine = stripe.clone();
    println!("encoded {} data elements + {} parities", code.layout().num_data_cells(), 2 * code.rows());

    // Catastrophe: disks 2 and 9 die at once.
    stripe.erase_col(2);
    stripe.erase_col(9);
    println!("disks #2 and #9 failed");

    // Algorithm 1: four independent recovery chains.
    let plan = code.repair_double_disk(&mut stripe, 2, 9)?;
    println!(
        "repaired via {} parallel recovery chains (longest = {} elements):",
        plan.num_chains(),
        plan.longest_chain()
    );
    for (i, chain) in plan.chains().iter().enumerate() {
        let path: Vec<String> = chain
            .iter()
            .map(|s| format!("E[{},{}]", s.cell.row + 1, s.cell.col + 1))
            .collect();
        println!("  chain {}: {}", i + 1, path.join(" -> "));
    }

    assert_eq!(stripe, pristine, "byte-exact recovery");
    println!("all {} elements verified byte-exact ✔", code.layout().num_cells());
    Ok(())
}
