//! Beyond the array codes: the Reed–Solomon toolbox at unusual shapes —
//! a 302-disk GF(2¹⁶) Cauchy array, a triple-parity code, and the
//! bit-matrix CRS whose data plane is XOR-only (the paper's background
//! Section II).
//!
//! ```text
//! cargo run -p hv-examples --bin wide_array
//! ```

use hv_examples::{fingerprint, payload};
use raid_rs::{BitMatrixCrs, CauchyRs, CauchyRs16, PqRaid6};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A 300+2 disk array: impossible over GF(2^8). ---
    assert!(CauchyRs::raid6(300).is_err());
    let wide = CauchyRs16::new(300, 2)?;
    let shard_len = 64;
    let data: Vec<Vec<u8>> = (0..300).map(|i| payload(shard_len, i as u64)).collect();
    let prints: Vec<u64> = data.iter().map(|d| fingerprint(d)).collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    let mut shards = data.clone();
    shards.extend(wide.encode(&refs)?);
    shards[17].fill(0);
    shards[256].fill(0);
    wide.reconstruct(&mut shards, &[17, 256])?;
    assert_eq!(fingerprint(&shards[17]), prints[17]);
    assert_eq!(fingerprint(&shards[256]), prints[256]);
    println!("GF(2^16) Cauchy RS: 302-disk array, repaired shards #17 and #256 ✔");

    // --- Triple parity: tolerate any three losses. ---
    let triple = CauchyRs::new(8, 3)?;
    let tdata: Vec<Vec<u8>> = (0..8).map(|i| payload(32, 100 + i as u64)).collect();
    let trefs: Vec<&[u8]> = tdata.iter().map(|v| v.as_slice()).collect();
    let mut tshards = tdata.clone();
    tshards.extend(triple.encode(&trefs)?);
    for &i in &[0usize, 4, 9] {
        tshards[i].fill(0);
    }
    triple.reconstruct(&mut tshards, &[0, 4, 9])?;
    assert_eq!(&tshards[..8], &tdata[..]);
    println!("GF(2^8) Cauchy RS with m = 3: survived a triple failure ✔");

    // --- Bit-matrix CRS: the XOR-only realization. ---
    let bm = BitMatrixCrs::new(6, 2)?;
    println!(
        "bit-matrix CRS over 8 disks: encode schedule = {} packet XORs \
         (array codes like HV need ~{} — the density gap the paper's XOR \
         family exploits)",
        bm.encode_xor_ops(),
        6 * 8, // one XOR per packet per parity at density 1
    );
    let bdata: Vec<Vec<u8>> = (0..6).map(|i| payload(64, 200 + i as u64)).collect();
    let brefs: Vec<&[u8]> = bdata.iter().map(|v| v.as_slice()).collect();
    let mut bshards = bdata.clone();
    bshards.extend(bm.encode(&brefs)?);
    bshards[2].fill(0);
    bshards[7].fill(0);
    bm.reconstruct(&mut bshards, &[2, 7])?;
    assert_eq!(&bshards[..6], &bdata[..]);
    println!("bit-matrix CRS: repaired a data + Q double loss, XOR-only ✔");

    // --- And the classic P+Q for scale reference. ---
    let pq = PqRaid6::new(12)?;
    println!(
        "P+Q RS over {} disks ready (small-write path: 1 XOR pass + 1 \
         Galois pass per element)",
        pq.total_disks()
    );
    Ok(())
}
