//! HV Code — the all-around MDS array code for RAID-6 from
//! *"HV Code: An All-around MDS Code to Improve Efficiency and Reliability
//! of RAID-6 Systems"* (Zhirong Shen & Jiwu Shu, DSN 2014).
//!
//! A stripe is a `(p−1) × (p−1)` element matrix over `p − 1` disks
//! (`p` prime). Row `i` (1-based, as in the paper) stores its **horizontal
//! parity** at column `⟨2i⟩_p` and its **vertical parity** at column
//! `⟨4i⟩_p`:
//!
//! * Eq. (1): `E_{i,⟨2i⟩} = ⊕_j E_{i,j}` over the data elements of row `i`;
//! * Eq. (2): `E_{i,⟨4i⟩} = ⊕ E_{k,j}` over the data elements with
//!   `⟨2k + 4i⟩_p = j`, `j ∉ {⟨4i⟩, ⟨8i⟩}`.
//!
//! The construction gives every parity chain length `p − 2` (shortest among
//! the paper's competitors), spreads exactly two parities per disk (perfect
//! write balance), keeps the optimal two-parities-per-data-write update
//! complexity, makes the last data element of row `i` and the first of row
//! `i+1` share a vertical parity (cheap cross-row partial writes), and
//! yields **four** parallel recovery chains under double-disk failure
//! (Algorithm 1).
//!
//! # Quickstart
//!
//! ```
//! use hv_code::HvCode;
//! use raid_core::ArrayCode;
//! use raid_core::Stripe;
//!
//! let code = HvCode::new(7)?; // 6 disks, 6×6 stripe
//! let mut stripe = Stripe::for_layout(code.layout(), 64);
//! stripe.fill_data_seeded(code.layout(), 42);
//! code.encode(&mut stripe);
//! let pristine = stripe.clone();
//!
//! // Two whole disks die:
//! stripe.erase_col(0);
//! stripe.erase_col(3);
//! code.repair_double_disk(&mut stripe, 0, 3)?;
//! assert_eq!(stripe, pristine);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod construction;
mod recovery;

pub use analysis::{lemma1_sequence, StartElement, StartKind};
pub use construction::{HvCode, HvCodeError};
pub use recovery::{DoubleRecovery, DoubleRecoveryError, RecoveryStep};
