//! HV Code construction: data/parity layout and the encoding equations.
//!
//! The paper indexes rows and columns `1..=p−1`; the public API of this
//! crate is 0-based like the rest of the workspace, and the translation
//! happens exactly once, here. Internal helpers that mirror the paper's
//! formulas keep the 1-based convention and are suffixed `_1b`.

use std::fmt;

use raid_core::layout::{Chain, ElementKind, ParityClass};
use raid_core::{ArrayCode, Cell, ChainId, Layout};
use raid_math::modp::{div_mod, half_mod, mul_mod};
use raid_math::prime::{NotPrimeError, Prime};

/// Errors from [`HvCode::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HvCodeError {
    /// The parameter is not prime.
    NotPrime(NotPrimeError),
    /// The prime is too small: `p = 3` yields a 2×2 stripe of parities and
    /// no data at all, so HV Code requires `p ≥ 5`.
    TooSmall {
        /// The rejected prime.
        p: usize,
    },
}

impl fmt::Display for HvCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvCodeError::NotPrime(e) => e.fmt(f),
            HvCodeError::TooSmall { p } => {
                write!(f, "HV Code requires p >= 5, got {p}")
            }
        }
    }
}

impl std::error::Error for HvCodeError {}

impl From<NotPrimeError> for HvCodeError {
    fn from(e: NotPrimeError) -> Self {
        HvCodeError::NotPrime(e)
    }
}

/// The HV Code over `p − 1` disks.
///
/// See the [crate docs](crate) for the construction; `HvCode` implements
/// [`ArrayCode`], so all generic planners (partial-stripe writes, degraded
/// reads, hybrid single-disk recovery) apply directly, and adds the
/// paper-specific fast paths: Eq. (5)/(6) single-element repair and
/// Algorithm 1 double-disk repair.
#[derive(Debug)]
pub struct HvCode {
    p: Prime,
    layout: Layout,
}

impl HvCode {
    /// Builds the code for prime `p ≥ 5`, spanning `p − 1` disks.
    ///
    /// # Errors
    ///
    /// Returns [`HvCodeError`] if `p` is not prime or is `3`.
    pub fn new(p: usize) -> Result<Self, HvCodeError> {
        let prime = Prime::new(p)?;
        if p < 5 {
            return Err(HvCodeError::TooSmall { p });
        }
        let layout = build_layout(prime);
        Ok(HvCode { p: prime, layout })
    }

    /// Number of disks, `p − 1`.
    pub fn num_disks(&self) -> usize {
        self.p.get() - 1
    }

    /// The column (0-based) of row `row`'s horizontal parity: `⟨2i⟩_p − 1`
    /// for the 1-based row `i = row + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn horizontal_parity_col(&self, row: usize) -> usize {
        assert!(row < self.num_disks(), "row {row} out of range");
        mul_mod(2, row as i64 + 1, self.p) - 1
    }

    /// The column (0-based) of row `row`'s vertical parity: `⟨4i⟩_p − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn vertical_parity_col(&self, row: usize) -> usize {
        assert!(row < self.num_disks(), "row {row} out of range");
        mul_mod(4, row as i64 + 1, self.p) - 1
    }

    /// The horizontal chain of `row` (0-based).
    pub(crate) fn horizontal_chain_id(&self, row: usize) -> ChainId {
        ChainId(row)
    }

    /// The vertical chain anchored at row `row` (0-based), i.e. the chain
    /// whose parity is `E[row, vertical_parity_col(row)]`.
    pub(crate) fn vertical_chain_id(&self, row: usize) -> ChainId {
        ChainId(self.num_disks() + row)
    }

    /// The vertical chain that contains the **data** cell `cell` as a
    /// member: the chain anchored at row `s` with `⟨2k + 4s⟩_p = j` for the
    /// 1-based `(k, j)` of `cell`, i.e. `s = ⟨(j − 2k)/4⟩_p`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not a data cell (parities belong to no other
    /// vertical chain).
    pub fn vertical_chain_of(&self, cell: Cell) -> ChainId {
        assert!(self.layout.is_data(cell), "{cell} is not a data cell");
        let (k, j) = (cell.row as i64 + 1, cell.col as i64 + 1);
        let s = div_mod(j - 2 * k, 4, self.p); // 1-based anchor row
        debug_assert!(s >= 1);
        self.vertical_chain_id(s - 1)
    }

    /// Sources for repairing `cell` through its **horizontal** chain —
    /// Eq. (5) of the paper. Returns the cells whose XOR equals `cell`.
    ///
    /// ```
    /// use hv_code::HvCode;
    /// use raid_core::Cell;
    ///
    /// let code = HvCode::new(7)?;
    /// // E_{1,1} (paper 1-based) = E[0,0]: its row chain has p − 3 = 4
    /// // other elements.
    /// assert_eq!(code.repair_sources_horizontal(Cell::new(0, 0)).len(), 4);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `cell` is the vertical parity of its row (vertical
    /// parities are not covered by horizontal chains).
    pub fn repair_sources_horizontal(&self, cell: Cell) -> Vec<Cell> {
        let chain = self.layout.chain(self.horizontal_chain_id(cell.row));
        assert!(
            chain.cells().any(|c| c == cell),
            "{cell} is not in its row's horizontal chain (vertical parity?)"
        );
        chain.cells().filter(|&c| c != cell).collect()
    }

    /// Sources for repairing `cell` through its **vertical** chain —
    /// Eq. (6) of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is a horizontal parity (covered by no vertical
    /// chain).
    pub fn repair_sources_vertical(&self, cell: Cell) -> Vec<Cell> {
        let id = match self.layout.kind(cell) {
            ElementKind::Data => self.vertical_chain_of(cell),
            ElementKind::Parity(ParityClass::Vertical) => self
                .layout
                .chain_of_parity(cell)
                .expect("vertical parity owns its chain"),
            ElementKind::Parity(_) => {
                panic!("{cell} is a horizontal parity; no vertical chain covers it")
            }
        };
        self.layout.chain(id).cells().filter(|&c| c != cell).collect()
    }
}

impl ArrayCode for HvCode {
    fn name(&self) -> &str {
        "HV Code"
    }

    fn prime(&self) -> Prime {
        self.p
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

/// Builds the HV layout for prime `p`.
///
/// Chain ordering contract (relied upon by `recovery`): chains `0..n` are
/// the horizontal chains of rows `0..n`, chains `n..2n` the vertical chains
/// anchored at rows `0..n`, where `n = p − 1`.
fn build_layout(p: Prime) -> Layout {
    let n = p.get() - 1; // rows = cols = p − 1
    let mut kinds = vec![ElementKind::Data; n * n];

    // 1-based helpers straight from the paper.
    let h_col_1b = |i: i64| mul_mod(2, i, p); // ⟨2i⟩
    let v_col_1b = |i: i64| mul_mod(4, i, p); // ⟨4i⟩

    for i in 1..=n as i64 {
        let hc = h_col_1b(i);
        let vc = v_col_1b(i);
        debug_assert_ne!(hc, vc, "⟨2i⟩ and ⟨4i⟩ collide");
        kinds[Cell::new(i as usize - 1, hc - 1).index(n)] =
            ElementKind::Parity(ParityClass::Horizontal);
        kinds[Cell::new(i as usize - 1, vc - 1).index(n)] =
            ElementKind::Parity(ParityClass::Vertical);
    }

    let mut chains = Vec::with_capacity(2 * n);

    // Horizontal chains, Eq. (1): row i, all columns except ⟨2i⟩ (the parity
    // itself) and ⟨4i⟩ (the row's vertical parity).
    for i in 1..=n as i64 {
        let hc = h_col_1b(i);
        let vc = v_col_1b(i);
        let members: Vec<Cell> = (1..=n)
            .filter(|&j| j != hc && j != vc)
            .map(|j| Cell::new(i as usize - 1, j - 1))
            .collect();
        chains.push(Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(i as usize - 1, hc - 1),
            members,
        });
    }

    // Vertical chains, Eq. (2): parity E_{i,⟨4i⟩}; members are the data
    // elements E_{k,j} with ⟨2k + 4i⟩ = j, skipping j = ⟨4i⟩ (the parity's
    // own column) and j = ⟨8i⟩ (row ⟨2i⟩'s vertical parity position).
    for i in 1..=n as i64 {
        let vc = v_col_1b(i);
        let skip = mul_mod(8, i, p); // ⟨8i⟩
        let members: Vec<Cell> = (1..=n)
            .filter(|&j| j != vc && j != skip)
            .map(|j| {
                // k := ⟨(j − 4i)/2⟩, the paper's case-split halving.
                let k = half_mod(j as i64 - 4 * i, p);
                debug_assert!((1..=n).contains(&k), "vertical member row out of range");
                Cell::new(k - 1, j - 1)
            })
            .collect();
        chains.push(Chain {
            class: ParityClass::Vertical,
            parity: Cell::new(i as usize - 1, vc - 1),
            members,
        });
    }

    Layout::new(n, n, kinds, chains).expect("HV construction yields a valid layout")
}

#[cfg(test)]
mod tests {
    use super::*;
    use raid_core::invariants;
    use raid_core::plan::update::update_complexity;
    use raid_core::Stripe;

    fn code(p: usize) -> HvCode {
        HvCode::new(p).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(HvCode::new(9), Err(HvCodeError::NotPrime(_))));
        assert!(matches!(HvCode::new(3), Err(HvCodeError::TooSmall { p: 3 })));
        assert!(HvCode::new(5).is_ok());
        let err = HvCode::new(3).unwrap_err();
        assert!(err.to_string().contains("p >= 5"));
    }

    #[test]
    fn figure_four_layout_p7() {
        // Fig. 4 of the paper (p = 7): row i's horizontal parity at ⟨2i⟩,
        // vertical at ⟨4i⟩ (1-based).
        let c = code(7);
        let expected_h = [2, 4, 6, 1, 3, 5]; // ⟨2i⟩ for i = 1..6
        let expected_v = [4, 1, 5, 2, 6, 3]; // ⟨4i⟩ for i = 1..6
        for row in 0..6 {
            assert_eq!(c.horizontal_parity_col(row) + 1, expected_h[row], "row {row}");
            assert_eq!(c.vertical_parity_col(row) + 1, expected_v[row], "row {row}");
        }
    }

    #[test]
    fn paper_example_horizontal_chain() {
        // E_{1,2} := E_{1,1} ⊕ E_{1,3} ⊕ E_{1,5} ⊕ E_{1,6} (p = 7).
        let c = code(7);
        let chain = c.layout().chain(c.horizontal_chain_id(0));
        assert_eq!(chain.parity, Cell::new(0, 1));
        let members: Vec<(usize, usize)> =
            chain.members.iter().map(|m| (m.row + 1, m.col + 1)).collect();
        assert_eq!(members, vec![(1, 1), (1, 3), (1, 5), (1, 6)]);
    }

    #[test]
    fn paper_example_vertical_chain() {
        // E_{1,4} := E_{6,2} ⊕ E_{3,3} ⊕ E_{4,5} ⊕ E_{1,6} (p = 7).
        let c = code(7);
        let chain = c.layout().chain(c.vertical_chain_id(0));
        assert_eq!(chain.parity, Cell::new(0, 3));
        let mut members: Vec<(usize, usize)> =
            chain.members.iter().map(|m| (m.row + 1, m.col + 1)).collect();
        members.sort_by_key(|&(_, j)| j);
        assert_eq!(members, vec![(6, 2), (3, 3), (4, 5), (1, 6)]);
    }

    #[test]
    fn structural_invariants_across_primes() {
        for p in [5usize, 7, 11, 13, 17, 19, 23] {
            let c = code(p);
            let l = c.layout();
            let n = p - 1;
            assert_eq!(l.rows(), n);
            assert_eq!(l.cols(), n);
            // Exactly one horizontal + one vertical parity per row AND per
            // column; p − 3 data cells in each.
            assert_eq!(invariants::parities_per_column(l), vec![2; n], "p={p}");
            for row in 0..n {
                let kinds: Vec<_> = (0..n).map(|col| l.kind(Cell::new(row, col))).collect();
                let h = kinds
                    .iter()
                    .filter(|k| matches!(k, ElementKind::Parity(ParityClass::Horizontal)))
                    .count();
                let v = kinds
                    .iter()
                    .filter(|k| matches!(k, ElementKind::Parity(ParityClass::Vertical)))
                    .count();
                assert_eq!((h, v), (1, 1), "p={p} row={row}");
            }
            // All chains have length p − 2 (Table III).
            assert_eq!(l.chain_length_histogram(), vec![(p - 2, 2 * n)], "p={p}");
            // Every data element is in exactly one H and one V chain.
            assert_eq!(invariants::data_membership_range(l), (2, 2), "p={p}");
            // Chains never revisit a column.
            assert!(invariants::chains_hit_columns_once(l), "p={p}");
            // Optimal update complexity: exactly 2 parity updates per write.
            assert!((update_complexity(l) - 2.0).abs() < 1e-12, "p={p}");
            // Storage efficiency (n−2)/n.
            assert!(
                (c.storage_efficiency() - (n as f64 - 2.0) / n as f64).abs() < 1e-12,
                "p={p}"
            );
        }
    }

    #[test]
    fn mds_property_exhaustive() {
        for p in [5usize, 7, 11, 13] {
            let c = code(p);
            assert_eq!(
                invariants::find_undecodable_pair(c.layout()),
                None,
                "HV p={p} must tolerate any two disk failures"
            );
            assert!(invariants::all_single_failures_decodable(c.layout()));
        }
    }

    #[test]
    fn encode_decode_round_trip_every_pair() {
        for p in [5usize, 7, 11] {
            let c = code(p);
            let mut s = Stripe::for_layout(c.layout(), 16);
            s.fill_data_seeded(c.layout(), p as u64);
            c.encode(&mut s);
            assert!(c.is_consistent(&s));
            let pristine = s.clone();
            let n = p - 1;
            for f1 in 0..n {
                for f2 in (f1 + 1)..n {
                    let mut broken = pristine.clone();
                    broken.erase_col(f1);
                    broken.erase_col(f2);
                    let mut lost = c.layout().cells_in_col(f1);
                    lost.extend(c.layout().cells_in_col(f2));
                    c.decode(&mut broken, &lost).unwrap();
                    assert_eq!(broken, pristine, "p={p} cols ({f1},{f2})");
                }
            }
        }
    }

    #[test]
    fn cross_row_adjacency_shares_vertical_parity() {
        // Section IV-5: E_{i,p−1} and E_{i+1,1} (1-based), when both are
        // data, belong to the same vertical chain.
        for p in [7usize, 11, 13, 17] {
            let c = code(p);
            let l = c.layout();
            let n = p - 1;
            let mut pairs = 0;
            for i in 1..n {
                // 1-based rows i, i+1
                let last = Cell::new(i - 1, n - 1); // E_{i, p−1}
                let first = Cell::new(i, 0); // E_{i+1, 1}
                if l.is_data(last) && l.is_data(first) {
                    assert_eq!(
                        c.vertical_chain_of(last),
                        c.vertical_chain_of(first),
                        "p={p} rows {i},{}",
                        i + 1
                    );
                    pairs += 1;
                }
            }
            // The paper counts at least p − 6 such pairs.
            assert!(pairs >= p - 6, "p={p}: only {pairs} shared pairs");
        }
    }

    #[test]
    fn two_element_writes_touch_at_most_three_parities() {
        // Section IV-5: a write to two continuous data elements renews one
        // shared horizontal parity + two vertical parities (same row), or
        // two horizontal parities + one shared vertical parity (row
        // boundary, the designed case) — never more than 2·2 − 1 = 3, the
        // lowest-density optimum proved in the H-Code paper. Non-sharing
        // boundary pairs (at most 4 of the p − 2) may hit 4.
        for p in [7usize, 11, 13] {
            let c = code(p);
            let l = c.layout();
            let data = l.num_data_cells();
            let mut sharing_pairs = 0;
            for start in 0..data - 1 {
                let plan = raid_core::plan::write::plan_partial_write(l, start, 2);
                assert!(
                    plan.parity_writes.len() <= 4,
                    "p={p} start={start}: {} parity writes",
                    plan.parity_writes.len()
                );
                if plan.parity_writes.len() == 3 {
                    sharing_pairs += 1;
                }
            }
            // The paper counts at least (p−6) sharing pairs among the row
            // crossings, plus every within-row pair shares its horizontal
            // parity.
            assert!(
                sharing_pairs >= data - 1 - 4,
                "p={p}: only {sharing_pairs} of {} pairs share a parity",
                data - 1
            );
        }
    }

    #[test]
    fn eq5_and_eq6_repair_sources() {
        let c = code(7);
        let l = c.layout();
        let mut s = Stripe::for_layout(l, 8);
        s.fill_data_seeded(l, 99);
        c.encode(&mut s);
        for &cell in l.data_cells() {
            let h = s.xor_of(c.repair_sources_horizontal(cell));
            assert_eq!(h, s.element(cell), "Eq.5 fails at {cell}");
            let v = s.xor_of(c.repair_sources_vertical(cell));
            assert_eq!(v, s.element(cell), "Eq.6 fails at {cell}");
        }
    }

    #[test]
    #[should_panic(expected = "not in its row's horizontal chain")]
    fn horizontal_repair_of_vertical_parity_panics() {
        let c = code(7);
        // Row 0's vertical parity is at col 3 (1-based 4).
        c.repair_sources_horizontal(Cell::new(0, 3));
    }

    #[test]
    #[should_panic(expected = "horizontal parity")]
    fn vertical_repair_of_horizontal_parity_panics() {
        let c = code(7);
        // Row 0's horizontal parity is at col 1 (1-based 2).
        c.repair_sources_vertical(Cell::new(0, 1));
    }

    #[test]
    fn vertical_chain_membership_is_inverse_of_equation() {
        for p in [5usize, 7, 11, 13] {
            let c = code(p);
            let l = c.layout();
            for &cell in l.data_cells() {
                let id = c.vertical_chain_of(cell);
                assert!(
                    l.chain(id).members.contains(&cell),
                    "p={p}: {cell} not in claimed vertical chain"
                );
            }
        }
    }
}
