//! Analytical structures from the paper's proofs and property analysis:
//! the Lemma-1 tuple sequence, the Theorem-1 start elements, and the
//! minimum-I/O single-disk recovery of Section V-C / Fig. 8.

use raid_core::plan::single::{plan_single_disk_recovery, SearchStrategy, SingleRecoveryPlan};
use raid_core::{ArrayCode, Cell};
use raid_math::modp::{div_mod, half_mod, reduce};

use crate::construction::HvCode;
use crate::recovery::DoubleRecoveryError;

/// Which parity family repairs a start element (Theorem 1's labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// "SH" — recovered through a horizontal parity chain.
    Horizontal,
    /// "SV" — recovered through a vertical parity chain.
    Vertical,
}

/// One of the four start elements of a double-disk repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartElement {
    /// The cell (0-based) recovered first.
    pub cell: Cell,
    /// The chain family that recovers it.
    pub kind: StartKind,
}

impl HvCode {
    /// The four start elements of Theorem 1 / Algorithm 1 for failed disks
    /// `a` and `b` (0-based, any order):
    /// `(⟨f1/4⟩, f2)` and `(⟨f2/4⟩, f1)` via horizontal chains,
    /// `(⟨(f1 − f2/2)/2⟩, f1)` and `(⟨(f2 − f1/2)/2⟩, f2)` via vertical
    /// chains (1-based formulas; a zero row maps to the vertical parity
    /// element `E_{⟨fj/4⟩, fj}` per the Theorem-1 footnote).
    ///
    /// # Errors
    ///
    /// Returns [`DoubleRecoveryError`] on invalid disk indices.
    pub fn start_elements(
        &self,
        a: usize,
        b: usize,
    ) -> Result<[StartElement; 4], DoubleRecoveryError> {
        let disks = self.num_disks();
        for d in [a, b] {
            if d >= disks {
                return Err(DoubleRecoveryError::OutOfRange { disk: d, disks });
            }
        }
        if a == b {
            return Err(DoubleRecoveryError::SameDisk { disk: a });
        }
        let (f1, f2) = if a < b { (a, b) } else { (b, a) };
        let p = self.prime();
        let (g1, g2) = (f1 as i64 + 1, f2 as i64 + 1);
        let fixup = |row_1b: usize, col_1b: i64| -> usize {
            if row_1b == 0 {
                div_mod(col_1b, 4, p)
            } else {
                row_1b
            }
        };
        let sh_f1 = StartElement {
            cell: Cell::new(div_mod(g2, 4, p) - 1, f1),
            kind: StartKind::Horizontal,
        };
        let sh_f2 = StartElement {
            cell: Cell::new(div_mod(g1, 4, p) - 1, f2),
            kind: StartKind::Horizontal,
        };
        let sv_f1 = StartElement {
            cell: Cell::new(fixup(half_mod(g1 - div_mod(g2, 2, p) as i64, p), g1) - 1, f1),
            kind: StartKind::Vertical,
        };
        let sv_f2 = StartElement {
            cell: Cell::new(fixup(half_mod(g2 - div_mod(g1, 2, p) as i64, p), g2) - 1, f2),
            kind: StartKind::Vertical,
        };
        Ok([sh_f1, sh_f2, sv_f1, sv_f2])
    }

    /// Minimum-I/O plan for a single failed disk (Section V-C): one chain —
    /// horizontal or vertical — is chosen per lost element so the union of
    /// fetched elements is minimal, exactly Xiang et al.'s hybrid recovery
    /// as prescribed by the paper.
    ///
    /// # Panics
    ///
    /// Panics if `failed` is out of range.
    pub fn single_disk_plan(&self, failed: usize, strategy: SearchStrategy) -> SingleRecoveryPlan {
        plan_single_disk_recovery(self.layout(), failed, strategy)
    }
}

/// XOR-operation counts from the paper's Section IV property analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XorComplexity {
    /// XOR operations per data element during construction; the optimum for
    /// an `m×n` stripe with `x` data elements is `(3x − m·n)/x`, which for
    /// HV Code evaluates to `2(p−4)/(p−3)`.
    pub encode_per_data_element: f64,
    /// XOR operations per lost element during reconstruction; the optimum
    /// is `(3x − m·n)/(m·n − x)`, i.e. `p − 4` for HV Code.
    pub decode_per_lost_element: f64,
}

impl HvCode {
    /// Counts the actual XOR work of the construction and of a double-disk
    /// reconstruction, per element — Section IV-2 claims both meet the
    /// optimum derived by the P-Code paper, and the tests verify the counts
    /// against the closed forms.
    pub fn xor_complexity(&self) -> XorComplexity {
        let layout = self.layout();
        // Encoding: each chain XORs its members pairwise onto the parity:
        // (members − 1) XOR ops per chain.
        let encode_ops: usize =
            layout.chains().iter().map(|ch| ch.members.len() - 1).sum();
        // Reconstruction: each lost element is rebuilt from its chain's
        // other p − 3 elements: p − 4 XOR ops. Measure via Algorithm 1 on a
        // representative pair.
        let plan = self
            .double_recovery_plan(0, self.num_disks() / 2)
            .expect("valid pair");
        let decode_ops: usize = plan
            .steps()
            .map(|s| layout.chain(s.chain).len() - 2)
            .sum();
        XorComplexity {
            encode_per_data_element: encode_ops as f64 / layout.num_data_cells() as f64,
            decode_per_lost_element: decode_ops as f64 / plan.total_elements() as f64,
        }
    }
}

/// The two-integer tuple sequence of Lemma 1 for failed columns `f1 < f2`
/// (1-based), normalized to start at `(0, f2)`.
///
/// The lemma's claim — proved in the paper and asserted by this module's
/// tests — is that the `2p` tuples `(T_k, T'_k)` visit every pair in
/// `{0..p−1} × {f1, f2}` exactly once: even positions walk column `f2` and
/// odd positions column `f1`, each stepping by `⟨(f1 − f2)/2⟩_p` per visit.
/// This is the combinatorial skeleton of the double-failure recovery walk.
///
/// # Panics
///
/// Panics if `f1 == f2` or either column is outside `1..p`.
pub fn lemma1_sequence(p: raid_math::Prime, f1: usize, f2: usize) -> Vec<(usize, usize)> {
    let pv = p.get();
    assert!(f1 != f2 && (1..pv).contains(&f1) && (1..pv).contains(&f2), "bad columns");
    let delta = half_mod(f1 as i64 - f2 as i64, p);
    let mut seq = Vec::with_capacity(2 * pv);
    for k in 0..2 * pv {
        let t = (k / 2) as i64;
        if k % 2 == 0 {
            seq.push((reduce(t * delta as i64, p), f2));
        } else {
            seq.push((reduce(t * delta as i64 + delta as i64, p), f1));
        }
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use raid_math::Prime;

    #[test]
    fn lemma1_enumerates_every_tuple_once() {
        for p in [5usize, 7, 11, 13, 17] {
            let prime = Prime::new(p).unwrap();
            for f1 in 1..p {
                for f2 in (f1 + 1)..p {
                    let seq = lemma1_sequence(prime, f1, f2);
                    assert_eq!(seq.len(), 2 * p);
                    let set: std::collections::HashSet<_> = seq.iter().collect();
                    assert_eq!(set.len(), 2 * p, "p={p} ({f1},{f2}): duplicates");
                    for r in 0..p {
                        assert!(set.contains(&(r, f1)), "missing ({r},{f1})");
                        assert!(set.contains(&(r, f2)), "missing ({r},{f2})");
                    }
                    // Alternation between the two columns.
                    for (k, &(_, col)) in seq.iter().enumerate() {
                        assert_eq!(col, if k % 2 == 0 { f2 } else { f1 });
                    }
                }
            }
        }
    }

    #[test]
    fn start_elements_match_algorithm_one() {
        for p in [5usize, 7, 11, 13] {
            let code = HvCode::new(p).unwrap();
            let n = code.num_disks();
            for f1 in 0..n {
                for f2 in (f1 + 1)..n {
                    let starts = code.start_elements(f1, f2).unwrap();
                    let plan = code.double_recovery_plan(f1, f2).unwrap();
                    let plan_starts: Vec<Cell> =
                        plan.chains().iter().map(|ch| ch[0].cell).collect();
                    for s in starts {
                        assert!(
                            plan_starts.contains(&s.cell),
                            "p={p} ({f1},{f2}): {0} not a chain head",
                            s.cell
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn start_elements_validate_arguments() {
        let code = HvCode::new(7).unwrap();
        assert!(code.start_elements(1, 1).is_err());
        assert!(code.start_elements(0, 6).is_err());
    }

    #[test]
    fn xor_complexity_matches_section_four_optima() {
        for p in [5usize, 7, 11, 13, 17, 19, 23] {
            let code = HvCode::new(p).unwrap();
            let c = code.xor_complexity();
            let pf = p as f64;
            // Optimal construction: 2(p−4)/(p−3) XORs per data element.
            assert!(
                (c.encode_per_data_element - 2.0 * (pf - 4.0) / (pf - 3.0)).abs() < 1e-9,
                "p={p}: encode {c:?}"
            );
            // Optimal reconstruction: p−4 XORs per lost element.
            assert!(
                (c.decode_per_lost_element - (pf - 4.0)).abs() < 1e-9,
                "p={p}: decode {c:?}"
            );
        }
    }

    #[test]
    fn figure_eight_example() {
        // Fig. 8: repairing disk #1 of the p = 7 array retrieves 18
        // elements — 3 per lost element.
        let code = HvCode::new(7).unwrap();
        let plan = code.single_disk_plan(0, SearchStrategy::Exhaustive);
        assert_eq!(plan.total_reads(), 18);
        assert!((plan.reads_per_element() - 3.0).abs() < 1e-12);
        // And mixing chains is essential: an all-one-kind repair reads
        // (p − 3) distinct elements per lost element — 24 in total here,
        // since chains of different rows never overlap.
        assert!(plan.total_reads() < (7 - 3) * (7 - 1));
    }
}
