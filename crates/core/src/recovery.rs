//! Double-disk failure recovery — Algorithm 1 of the paper.
//!
//! For failed disks `f1 < f2`, four *start elements* are recoverable
//! immediately because one of their chains misses the other failed column
//! (Theorem 1). Each start seeds a recovery chain that alternates between
//! the two failed columns — horizontal chain, vertical chain, horizontal …
//! — until it terminates at a parity element. The four chains partition the
//! `2(p−1)` lost elements and are mutually independent, so they execute in
//! parallel; this is the property behind the paper's Fig. 9(b) result.

use std::fmt;

use raid_core::layout::{ElementKind, Layout, ParityClass};
use raid_core::{ArrayCode, Cell, ChainId, Stripe, XorPlan};
use raid_math::modp::{div_mod, half_mod, mul_mod};
use raid_math::xor::xor_many_into;

use crate::construction::HvCode;

/// One reconstruction action: repair `cell` using `chain` (XOR of every
/// other element of that chain's equation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStep {
    /// The lost element being rebuilt.
    pub cell: Cell,
    /// The chain whose equation rebuilds it.
    pub chain: ChainId,
}

/// The full Algorithm-1 plan for a pair of failed disks.
#[derive(Debug, Clone)]
pub struct DoubleRecovery {
    f1: usize,
    f2: usize,
    chains: Vec<Vec<RecoveryStep>>,
}

impl DoubleRecovery {
    /// First failed disk (0-based, the smaller index).
    pub fn f1(&self) -> usize {
        self.f1
    }

    /// Second failed disk (0-based).
    pub fn f2(&self) -> usize {
        self.f2
    }

    /// The recovery chains, each an ordered serial sequence; distinct
    /// chains are independent and may run in parallel.
    pub fn chains(&self) -> &[Vec<RecoveryStep>] {
        &self.chains
    }

    /// Number of independent chains (the paper's headline: 4).
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// Length of the longest chain, `Lc` — recovery time is `Lc · Re`.
    pub fn longest_chain(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total elements recovered.
    pub fn total_elements(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// All steps in a valid serial execution order (chain by chain).
    pub fn steps(&self) -> impl Iterator<Item = &RecoveryStep> {
        self.chains.iter().flatten()
    }

    /// Lowers the whole plan (all chains, serial order) into one compiled
    /// [`XorPlan`]: each step's sources — the other cells of its repair
    /// chain — are resolved to buffer indices once, so executing the repair
    /// against a stripe is pure plan interpretation.
    pub fn compile(&self, layout: &Layout) -> XorPlan {
        let sources: Vec<Vec<Cell>> = self
            .steps()
            .map(|step| {
                layout.chain(step.chain).cells().filter(|&c| c != step.cell).collect()
            })
            .collect();
        XorPlan::from_steps(
            layout.rows(),
            layout.cols(),
            self.steps().zip(&sources).map(|(step, src)| (step.cell, src.as_slice())),
        )
    }

    /// [`DoubleRecovery::compile`] run through the `xopt` middle-end:
    /// prefixes shared between the four Algorithm-1 chains (and any other
    /// repeated partial sums) are computed once into scratch temps. The
    /// optimizer proves the rewrite equivalent over GF(2) and never
    /// increases the read count.
    pub fn compile_optimized(&self, layout: &Layout) -> XorPlan {
        self.compile(layout).optimized()
    }
}

/// Computes one recovery chain's values against a read-only stripe view.
///
/// Sources that fall on a failed column are earlier steps of the *same*
/// chain (Theorem 1; asserted by
/// `steps_only_depend_on_survivors_and_earlier_steps_of_same_chain`), so
/// each chain resolves them from its own local results and never reads
/// another chain's writes — the property that makes chains safe to compute
/// concurrently over a shared `&Stripe`.
fn compute_chain_values(
    stripe: &Stripe,
    layout: &Layout,
    chain: &[RecoveryStep],
) -> Vec<(Cell, Vec<u8>)> {
    let mut done: Vec<(Cell, Vec<u8>)> = Vec::with_capacity(chain.len());
    for step in chain {
        let mut acc = vec![0u8; stripe.element_size()];
        {
            let sources: Vec<&[u8]> = layout
                .chain(step.chain)
                .cells()
                .filter(|&c| c != step.cell)
                .map(|src| {
                    done.iter()
                        .find(|(c, _)| *c == src)
                        .map(|(_, v)| v.as_slice())
                        .unwrap_or_else(|| stripe.element(src))
                })
                .collect();
            xor_many_into(&mut acc, &sources);
        }
        done.push((step.cell, acc));
    }
    done
}

/// Error from [`HvCode::double_recovery_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoubleRecoveryError {
    /// The two disks must be distinct.
    SameDisk {
        /// The repeated disk index.
        disk: usize,
    },
    /// A disk index is out of range.
    OutOfRange {
        /// The offending disk index.
        disk: usize,
        /// Number of disks in the array.
        disks: usize,
    },
}

impl fmt::Display for DoubleRecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DoubleRecoveryError::SameDisk { disk } => {
                write!(f, "both failed disks are #{disk}")
            }
            DoubleRecoveryError::OutOfRange { disk, disks } => {
                write!(f, "disk #{disk} out of range (array has {disks})")
            }
        }
    }
}

impl std::error::Error for DoubleRecoveryError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainKind {
    Horizontal,
    Vertical,
}

impl HvCode {
    /// Computes the Algorithm-1 recovery plan for failed disks `a` and `b`
    /// (any order, 0-based).
    ///
    /// ```
    /// use hv_code::HvCode;
    ///
    /// let code = HvCode::new(7)?;
    /// let plan = code.double_recovery_plan(0, 2)?;
    /// assert_eq!(plan.num_chains(), 4);           // four parallel chains
    /// assert_eq!(plan.total_elements(), 2 * 6);   // both columns covered
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`DoubleRecoveryError`] if the disks are equal or out of
    /// range.
    pub fn double_recovery_plan(
        &self,
        a: usize,
        b: usize,
    ) -> Result<DoubleRecovery, DoubleRecoveryError> {
        let disks = self.num_disks();
        for d in [a, b] {
            if d >= disks {
                return Err(DoubleRecoveryError::OutOfRange { disk: d, disks });
            }
        }
        if a == b {
            return Err(DoubleRecoveryError::SameDisk { disk: a });
        }
        let (f1, f2) = if a < b { (a, b) } else { (b, a) };
        let p = self.prime();

        // 1-based column ids as in the paper.
        let (g1, g2) = (f1 as i64 + 1, f2 as i64 + 1);

        // Step 2 of Algorithm 1 — the four start elements (1-based rows):
        //   horizontal starts: (⟨f1/4⟩, f2) and (⟨f2/4⟩, f1);
        //   vertical starts:   (⟨(f1 − f2/2)/2⟩, f1) and (⟨(f2 − f1/2)/2⟩, f2).
        let sh_in_f2 = (div_mod(g1, 4, p), f2, ChainKind::Horizontal);
        let sh_in_f1 = (div_mod(g2, 4, p), f1, ChainKind::Horizontal);
        let sv_in_f1 = (
            half_mod(g1 - div_mod(g2, 2, p) as i64, p),
            f1,
            ChainKind::Vertical,
        );
        let sv_in_f2 = (
            half_mod(g2 - div_mod(g1, 2, p) as i64, p),
            f2,
            ChainKind::Vertical,
        );

        let mut recovered = vec![false; self.layout().num_cells()];
        let mut chains = Vec::with_capacity(4);
        for (row_1b, col, kind) in [sh_in_f1, sh_in_f2, sv_in_f1, sv_in_f2] {
            // Theorem 1 maps the tuple (0, fj) to the vertical parity
            // element E_{⟨fj/4⟩, fj}: a degenerate start whose chain is the
            // parity element alone, repaired through its own chain.
            let row_1b = if row_1b == 0 {
                div_mod(col as i64 + 1, 4, p)
            } else {
                row_1b
            };
            let start = Cell::new(row_1b - 1, col);
            if recovered[start.index(disks)] {
                continue; // degenerate overlap; Theorem 1 says this cannot
                          // happen, and tests assert we always emit 4 chains
            }
            chains.push(self.walk(start, kind, f1, f2, &mut recovered));
        }
        Ok(DoubleRecovery { f1, f2, chains })
    }

    /// Repairs two failed disks in place by executing the Algorithm-1 plan.
    ///
    /// The caller is expected to have zeroed (or otherwise invalidated) the
    /// two columns; every element of both columns is recomputed.
    ///
    /// # Errors
    ///
    /// Returns [`DoubleRecoveryError`] on invalid disk indices.
    pub fn repair_double_disk(
        &self,
        stripe: &mut Stripe,
        a: usize,
        b: usize,
    ) -> Result<DoubleRecovery, DoubleRecoveryError> {
        let plan = self.double_recovery_plan(a, b)?;
        plan.compile_optimized(self.layout()).execute(stripe);
        Ok(plan)
    }

    /// [`HvCode::repair_double_disk`] with the four Algorithm-1 chains
    /// computed concurrently — the intra-stripe parallelism of the paper's
    /// Fig. 9(b).
    ///
    /// Each chain runs on its own scoped thread against a shared read-only
    /// view of the stripe, resolving lost sources from its thread-local
    /// results (chains never read each other's cells — see
    /// [`compute_chain_values`]); the values are merged into the stripe
    /// after all chains join.
    ///
    /// # Errors
    ///
    /// Returns [`DoubleRecoveryError`] on invalid disk indices.
    pub fn repair_double_disk_parallel(
        &self,
        stripe: &mut Stripe,
        a: usize,
        b: usize,
    ) -> Result<DoubleRecovery, DoubleRecoveryError> {
        let plan = self.double_recovery_plan(a, b)?;
        let layout = self.layout();
        let view: &Stripe = stripe;
        let results: Vec<Vec<(Cell, Vec<u8>)>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = plan
                .chains()
                .iter()
                .map(|chain| s.spawn(move |_| compute_chain_values(view, layout, chain)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("recovery chain thread panicked"))
                .collect()
        })
        .expect("recovery scope");
        for (cell, value) in results.into_iter().flatten() {
            stripe.set_element(cell, &value);
        }
        Ok(plan)
    }

    /// Walks one recovery chain from `start`, alternating chain kinds, until
    /// it terminates at a parity element (Theorem 1's recovery rule).
    fn walk(
        &self,
        start: Cell,
        start_kind: ChainKind,
        f1: usize,
        f2: usize,
        recovered: &mut [bool],
    ) -> Vec<RecoveryStep> {
        let p = self.prime();
        let disks = self.num_disks();
        let layout = self.layout();
        let mut steps = Vec::new();
        let mut cur = start;
        let mut kind = start_kind;

        loop {
            // Resolve the chain that rebuilds `cur`.
            let chain = match (kind, layout.kind(cur)) {
                (ChainKind::Horizontal, ElementKind::Data)
                | (ChainKind::Horizontal, ElementKind::Parity(ParityClass::Horizontal)) => {
                    self.horizontal_chain_id(cur.row)
                }
                (ChainKind::Vertical, ElementKind::Data) => self.vertical_chain_of(cur),
                (ChainKind::Vertical, ElementKind::Parity(ParityClass::Vertical)) => layout
                    .chain_of_parity(cur)
                    .expect("vertical parity owns its chain"),
                (k, other) => unreachable!(
                    "Algorithm 1 tried to repair {cur} ({other:?}) via {k:?} chain"
                ),
            };
            debug_assert!(
                layout.chain(chain).cells().any(|c| c == cur),
                "{cur} not in its recovery chain"
            );
            steps.push(RecoveryStep { cell: cur, chain });
            recovered[cur.index(disks)] = true;

            // A parity element terminates the chain.
            if !layout.is_data(cur) {
                break;
            }

            // Successor: flip the chain kind; the flipped chain containing
            // `cur` has exactly one more lost element — its cell in the
            // other failed column.
            let other_col = if cur.col == f1 { f2 } else { f1 };
            match kind {
                ChainKind::Horizontal => {
                    // Next is repaired via the vertical chain containing cur.
                    let vid = self.vertical_chain_of(cur);
                    let s_1b = vid.0 - disks + 1; // anchor row, 1-based
                    let skip = mul_mod(8, s_1b as i64, p); // column the chain misses
                    let vcol = mul_mod(4, s_1b as i64, p); // the parity's column
                    let oc_1b = other_col + 1;
                    if oc_1b == skip {
                        break; // chain misses the other failed column
                    }
                    let next = if oc_1b == vcol {
                        Cell::new(s_1b - 1, other_col) // the vertical parity itself
                    } else {
                        let k = half_mod(oc_1b as i64 - 4 * s_1b as i64, p);
                        Cell::new(k - 1, other_col)
                    };
                    if recovered[next.index(disks)] {
                        break;
                    }
                    cur = next;
                    kind = ChainKind::Vertical;
                }
                ChainKind::Vertical => {
                    // Next is repaired via cur's row (horizontal) chain.
                    let row = cur.row;
                    if self.vertical_parity_col(row) == other_col {
                        break; // row chain misses the other failed column
                    }
                    let next = Cell::new(row, other_col);
                    if recovered[next.index(disks)] {
                        break;
                    }
                    cur = next;
                    kind = ChainKind::Horizontal;
                }
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raid_core::schedule::double_failure_schedule;
    use raid_core::ArrayCode;

    fn code(p: usize) -> HvCode {
        HvCode::new(p).unwrap()
    }

    #[test]
    fn argument_validation() {
        let c = code(7);
        assert!(matches!(
            c.double_recovery_plan(2, 2),
            Err(DoubleRecoveryError::SameDisk { disk: 2 })
        ));
        assert!(matches!(
            c.double_recovery_plan(0, 6),
            Err(DoubleRecoveryError::OutOfRange { disk: 6, disks: 6 })
        ));
        // Order-insensitive.
        let plan = c.double_recovery_plan(4, 1).unwrap();
        assert_eq!((plan.f1(), plan.f2()), (1, 4));
    }

    #[test]
    fn figure_five_example() {
        // Paper Fig. 5: p = 7, disks #1 and #3 (1-based) fail. Expected
        // recovery chains include {E5,1, E5,3} and
        // {E3,3, E3,1, E4,3, E4,1}; Section II adds
        // {E2,3, E1,1, E1,3, E2,1}.
        let c = code(7);
        let plan = c.double_recovery_plan(0, 2).unwrap();
        assert_eq!(plan.num_chains(), 4);
        let as_1b: Vec<Vec<(usize, usize)>> = plan
            .chains()
            .iter()
            .map(|ch| ch.iter().map(|s| (s.cell.row + 1, s.cell.col + 1)).collect())
            .collect();
        assert!(
            as_1b.contains(&vec![(5, 1), (5, 3)]),
            "missing chain {{E5,1 E5,3}}: {as_1b:?}"
        );
        assert!(
            as_1b.contains(&vec![(3, 3), (3, 1), (4, 3), (4, 1)]),
            "missing chain {{E3,3 E3,1 E4,3 E4,1}}: {as_1b:?}"
        );
        assert!(
            as_1b.contains(&vec![(2, 3), (1, 1), (1, 3), (2, 1)]),
            "missing chain {{E2,3 E1,1 E1,3 E2,1}}: {as_1b:?}"
        );
    }

    #[test]
    fn four_chains_partition_all_lost_elements() {
        for p in [5usize, 7, 11, 13, 17] {
            let c = code(p);
            let n = p - 1;
            for f1 in 0..n {
                for f2 in (f1 + 1)..n {
                    let plan = c.double_recovery_plan(f1, f2).unwrap();
                    assert_eq!(plan.num_chains(), 4, "p={p} ({f1},{f2})");
                    assert_eq!(
                        plan.total_elements(),
                        2 * n,
                        "p={p} ({f1},{f2}): chains must cover both columns"
                    );
                    // Disjoint and confined to the failed columns.
                    let mut seen = std::collections::HashSet::new();
                    for step in plan.steps() {
                        assert!(
                            step.cell.col == f1 || step.cell.col == f2,
                            "p={p}: {0} outside failed columns",
                            step.cell
                        );
                        assert!(seen.insert(step.cell), "p={p}: {0} repeated", step.cell);
                    }
                    // Every chain ends at a parity element, and only there.
                    for ch in plan.chains() {
                        let last = ch.last().unwrap();
                        assert!(
                            !c.layout().is_data(last.cell),
                            "p={p}: chain ends at data {0}",
                            last.cell
                        );
                        for step in &ch[..ch.len() - 1] {
                            assert!(c.layout().is_data(step.cell));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn steps_only_depend_on_survivors_and_earlier_steps_of_same_chain() {
        for p in [5usize, 7, 11, 13] {
            let c = code(p);
            let n = p - 1;
            for f1 in 0..n {
                for f2 in (f1 + 1)..n {
                    let plan = c.double_recovery_plan(f1, f2).unwrap();
                    for ch in plan.chains() {
                        let mut solved: std::collections::HashSet<Cell> =
                            std::collections::HashSet::new();
                        for step in ch {
                            for src in c.layout().chain(step.chain).cells() {
                                if src == step.cell {
                                    continue;
                                }
                                let lost = src.col == f1 || src.col == f2;
                                assert!(
                                    !lost || solved.contains(&src),
                                    "p={p} ({f1},{f2}): step {0} reads unsolved {src}",
                                    step.cell
                                );
                            }
                            solved.insert(step.cell);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn chains_alternate_between_parity_kinds() {
        // The Theorem-1 recovery rule: consecutive steps of a chain use
        // chains of alternating class (horizontal, vertical, horizontal…).
        use raid_core::layout::ParityClass;
        for p in [7usize, 11, 13] {
            let c = code(p);
            for f1 in 0..c.num_disks() {
                for f2 in (f1 + 1)..c.num_disks() {
                    let plan = c.double_recovery_plan(f1, f2).unwrap();
                    for chain in plan.chains() {
                        for w in chain.windows(2) {
                            let a = c.layout().chain(w[0].chain).class;
                            let b = c.layout().chain(w[1].chain).class;
                            assert_ne!(a, b, "p={p} ({f1},{f2}): no alternation");
                            assert!(matches!(
                                a,
                                ParityClass::Horizontal | ParityClass::Vertical
                            ));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn repair_restores_bytes_for_every_pair() {
        for p in [5usize, 7, 11, 13] {
            let c = code(p);
            let mut s = raid_core::Stripe::for_layout(c.layout(), 24);
            s.fill_data_seeded(c.layout(), 0xBEEF + p as u64);
            c.encode(&mut s);
            let pristine = s.clone();
            let n = p - 1;
            for f1 in 0..n {
                for f2 in (f1 + 1)..n {
                    let mut broken = pristine.clone();
                    broken.erase_col(f1);
                    broken.erase_col(f2);
                    c.repair_double_disk(&mut broken, f1, f2).unwrap();
                    assert_eq!(broken, pristine, "p={p} ({f1},{f2})");
                }
            }
        }
    }

    #[test]
    fn parallel_repair_matches_serial_for_every_pair() {
        for p in [5usize, 7, 11, 13] {
            let c = code(p);
            let mut s = raid_core::Stripe::for_layout(c.layout(), 24);
            s.fill_data_seeded(c.layout(), 0xFACE + p as u64);
            c.encode(&mut s);
            let pristine = s.clone();
            let n = p - 1;
            for f1 in 0..n {
                for f2 in (f1 + 1)..n {
                    let mut serial = pristine.clone();
                    serial.erase_col(f1);
                    serial.erase_col(f2);
                    c.repair_double_disk(&mut serial, f1, f2).unwrap();

                    let mut parallel = pristine.clone();
                    parallel.erase_col(f1);
                    parallel.erase_col(f2);
                    c.repair_double_disk_parallel(&mut parallel, f1, f2).unwrap();

                    assert_eq!(parallel, pristine, "p={p} ({f1},{f2})");
                    assert_eq!(parallel, serial, "p={p} ({f1},{f2})");
                }
            }
        }
    }

    #[test]
    fn compiled_plan_covers_every_lost_element_once() {
        let c = code(11);
        let plan = c.double_recovery_plan(1, 6).unwrap();
        let compiled = plan.compile(c.layout());
        assert_eq!(compiled.num_ops(), plan.total_elements());
        let targets: std::collections::HashSet<Cell> = compiled.targets().collect();
        assert_eq!(targets.len(), plan.total_elements());
    }

    #[test]
    fn agrees_with_generic_scheduler() {
        // The generic peeling scheduler must see the same parallel
        // structure: 4 independent chains, same longest length.
        for p in [5usize, 7, 11, 13] {
            let c = code(p);
            let n = p - 1;
            for f1 in 0..n {
                for f2 in (f1 + 1)..n {
                    let plan = c.double_recovery_plan(f1, f2).unwrap();
                    let sched = double_failure_schedule(c.layout(), f1, f2).unwrap();
                    assert_eq!(sched.num_chains, 4, "p={p} ({f1},{f2})");
                    assert_eq!(
                        sched.longest_chain,
                        plan.longest_chain(),
                        "p={p} ({f1},{f2})"
                    );
                }
            }
        }
    }

    #[test]
    fn longest_chain_shorter_than_serial() {
        // With 4 parallel chains over 2(p−1) elements, the critical path is
        // near (p−1)/2 — the source of the paper's ~50% Fig. 9(b) savings.
        for p in [7usize, 13, 23] {
            let c = code(p);
            let n = p - 1;
            let mut worst = 0;
            for f1 in 0..n {
                for f2 in (f1 + 1)..n {
                    worst = worst.max(c.double_recovery_plan(f1, f2).unwrap().longest_chain());
                }
            }
            assert!(
                worst <= n,
                "p={p}: longest chain {worst} exceeds one column's height"
            );
        }
    }
}
