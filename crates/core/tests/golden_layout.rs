//! Golden snapshot of the HV layout — this is Fig. 4 of the paper
//! rendered in ASCII (`.` data, `H` horizontal parity, `V` vertical
//! parity): row `i` (1-based) has `H` at column `⟨2i⟩_7` and `V` at
//! `⟨4i⟩_7`.

use hv_code::HvCode;
use raid_core::ArrayCode;

#[test]
fn figure_four_p7() {
    assert_eq!(
        HvCode::new(7).unwrap().layout().render_ascii(),
        ".H.V..\n\
         V..H..\n\
         ....VH\n\
         HV....\n\
         ..H..V\n\
         ..V.H.\n"
    );
}

#[test]
fn p5_layout() {
    // p = 5: rows 1..4, H at ⟨2i⟩_5, V at ⟨4i⟩_5.
    assert_eq!(
        HvCode::new(5).unwrap().layout().render_ascii(),
        ".H.V\n\
         ..VH\n\
         HV..\n\
         V.H.\n"
    );
}
