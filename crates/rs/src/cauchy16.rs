//! Cauchy Reed–Solomon over `GF(2^16)` — the wide-array variant.
//!
//! `GF(2^8)` runs out of evaluation points at 256 shards; storage systems
//! that stripe across hundreds of devices (or that shorten a huge virtual
//! code) move to `GF(2^16)`, at the price of multiplication without full
//! tables. Elements are interpreted as little-endian `u16` lanes; shard
//! buffers must have even length.

use raid_math::gf2e;

use crate::RsError;

/// A systematic Cauchy Reed–Solomon code over `GF(2^16)` with `k` data and
/// `m` parity shards.
///
/// ```
/// use raid_rs::cauchy16::CauchyRs16;
///
/// let code = CauchyRs16::new(300, 2)?; // wider than GF(256) allows
/// let data: Vec<Vec<u8>> = (0..300).map(|i| vec![(i % 251) as u8; 8]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
/// let mut shards = data.clone();
/// shards.extend(code.encode(&refs)?);
/// shards[0].fill(0);
/// shards[299].fill(0);
/// code.reconstruct(&mut shards, &[0, 299])?;
/// assert_eq!(&shards[..300], &data[..]);
/// # Ok::<(), raid_rs::RsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CauchyRs16 {
    k: usize,
    m: usize,
}

impl CauchyRs16 {
    /// Builds the code; requires `k, m ≥ 1` and `k + m ≤ 65536`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::BadShape`] outside that range.
    pub fn new(k: usize, m: usize) -> Result<Self, RsError> {
        if k == 0 || m == 0 || k + m > 1 << 16 {
            return Err(RsError::BadShape { data: k, parity: m });
        }
        Ok(CauchyRs16 { k, m })
    }

    /// Number of data shards.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Number of parity shards.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Generator coefficient `C[r][j] = 1/(x_r + y_j)` with `x_r = r`,
    /// `y_j = m + j`.
    fn coeff(&self, r: usize, j: usize) -> u16 {
        gf2e::inv((r as u16) ^ ((self.m + j) as u16))
    }

    /// Encodes the parity shards.
    ///
    /// # Errors
    ///
    /// Returns [`RsError`] on inconsistent shard counts, mismatched or odd
    /// lengths.
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, RsError> {
        self.check(data.len(), data.first().map_or(0, |s| s.len()))?;
        if data.iter().any(|s| s.len() != data[0].len()) {
            return Err(RsError::ShardLenMismatch);
        }
        let len = data[0].len();
        let mut parities = vec![vec![0u8; len]; self.m];
        for (r, parity) in parities.iter_mut().enumerate() {
            for (j, shard) in data.iter().enumerate() {
                mul_acc_u16(self.coeff(r, j), shard, parity);
            }
        }
        Ok(parities)
    }

    /// Reconstructs erased shards in place (`shards = [D.., C..]`).
    ///
    /// # Errors
    ///
    /// Returns [`RsError::TooManyErasures`] when `lost.len() > m`, and
    /// shape errors.
    pub fn reconstruct(&self, shards: &mut [Vec<u8>], lost: &[usize]) -> Result<(), RsError> {
        let (k, m) = (self.k, self.m);
        if shards.len() != k + m {
            return Err(RsError::BadShape { data: shards.len(), parity: m });
        }
        let len = shards[0].len();
        self.check(k, len)?;
        if shards.iter().any(|s| s.len() != len) {
            return Err(RsError::ShardLenMismatch);
        }
        if lost.len() > m {
            return Err(RsError::TooManyErasures { lost: lost.len(), capability: m });
        }
        for &i in lost {
            if i >= k + m {
                return Err(RsError::BadIndex { index: i });
            }
        }
        let lost_data: Vec<usize> = lost.iter().copied().filter(|&i| i < k).collect();
        let lost_parity: Vec<usize> = lost.iter().copied().filter(|&i| i >= k).collect();

        if !lost_data.is_empty() {
            let rows: Vec<usize> = (0..m)
                .filter(|&r| !lost_parity.contains(&(k + r)))
                .take(lost_data.len())
                .collect();
            if rows.len() < lost_data.len() {
                return Err(RsError::TooManyErasures { lost: lost.len(), capability: m });
            }
            // Invert the small system over GF(2^16) by Gauss-Jordan.
            let nu = lost_data.len();
            let mut a: Vec<Vec<u16>> = rows
                .iter()
                .map(|&r| lost_data.iter().map(|&x| self.coeff(r, x)).collect())
                .collect();
            let mut inv: Vec<Vec<u16>> = (0..nu)
                .map(|i| (0..nu).map(|j| u16::from(i == j)).collect())
                .collect();
            for col in 0..nu {
                let pivot = (col..nu)
                    .find(|&r| a[r][col] != 0)
                    .expect("Cauchy submatrices are invertible");
                a.swap(col, pivot);
                inv.swap(col, pivot);
                let pinv = gf2e::inv(a[col][col]);
                for c in 0..nu {
                    a[col][c] = gf2e::mul(a[col][c], pinv);
                    inv[col][c] = gf2e::mul(inv[col][c], pinv);
                }
                for r in 0..nu {
                    if r == col || a[r][col] == 0 {
                        continue;
                    }
                    let f = a[r][col];
                    for c in 0..nu {
                        a[r][c] ^= gf2e::mul(f, a[col][c]);
                        inv[r][c] ^= gf2e::mul(f, inv[col][c]);
                    }
                }
            }

            // rhs_r = C_r ^ Σ_{surviving j} coeff(r,j)·D_j
            let mut rhs: Vec<Vec<u8>> = Vec::with_capacity(rows.len());
            for &r in &rows {
                let mut acc = shards[k + r].clone();
                for (j, src) in shards.iter().enumerate().take(k) {
                    if !lost_data.contains(&j) {
                        let c = self.coeff(r, j);
                        let src = src.clone();
                        mul_acc_u16(c, &src, &mut acc);
                    }
                }
                rhs.push(acc);
            }
            for (ri, &x) in lost_data.iter().enumerate() {
                let mut out = vec![0u8; len];
                for (ci, r) in rhs.iter().enumerate() {
                    mul_acc_u16(inv[ri][ci], r, &mut out);
                }
                shards[x] = out;
            }
        }

        if !lost_parity.is_empty() {
            let parities = {
                let data: Vec<&[u8]> = shards[..k].iter().map(|v| v.as_slice()).collect();
                self.encode(&data)?
            };
            for &i in &lost_parity {
                shards[i] = parities[i - k].clone();
            }
        }
        Ok(())
    }

    fn check(&self, shard_count: usize, len: usize) -> Result<(), RsError> {
        if shard_count != self.k {
            return Err(RsError::BadShape { data: shard_count, parity: self.m });
        }
        if !len.is_multiple_of(2) {
            return Err(RsError::ShardLenMismatch);
        }
        Ok(())
    }
}

/// `dst[i] ^= c · src[i]` over little-endian `u16` lanes.
fn mul_acc_u16(c: u16, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    debug_assert_eq!(src.len() % 2, 0);
    if c == 0 {
        return;
    }
    for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
        let sv = u16::from_le_bytes([s[0], s[1]]);
        if sv != 0 {
            let dv = u16::from_le_bytes([d[0], d[1]]) ^ gf2e::mul(c, sv);
            d.copy_from_slice(&dv.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripe(k: usize, m: usize, len: usize) -> (CauchyRs16, Vec<Vec<u8>>) {
        let code = CauchyRs16::new(k, m).unwrap();
        let mut shards: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|b| (i * 89 + b * 17 + 3) as u8).collect())
            .collect();
        let parities = {
            let refs: Vec<&[u8]> = shards.iter().map(|v| v.as_slice()).collect();
            code.encode(&refs).unwrap()
        };
        shards.extend(parities);
        (code, shards)
    }

    #[test]
    fn all_pairs_recover_raid6_shape() {
        let k = 6;
        let (code, pristine) = stripe(k, 2, 32);
        for a in 0..k + 2 {
            for b in (a + 1)..k + 2 {
                let mut s = pristine.clone();
                s[a].fill(0);
                s[b].fill(0);
                code.reconstruct(&mut s, &[a, b]).unwrap();
                assert_eq!(s, pristine, "({a},{b})");
            }
        }
    }

    #[test]
    fn wide_array_beyond_gf256() {
        // 300 + 2 shards: impossible over GF(2^8), fine over GF(2^16).
        assert!(crate::CauchyRs::raid6(300).is_err());
        let (code, pristine) = stripe(300, 2, 8);
        let mut s = pristine.clone();
        s[7].fill(0);
        s[301].fill(0);
        code.reconstruct(&mut s, &[7, 301]).unwrap();
        assert_eq!(s, pristine);
    }

    #[test]
    fn triple_parity_sampled() {
        let (code, pristine) = stripe(10, 3, 16);
        for &(a, b, c) in &[(0usize, 1usize, 2usize), (3, 10, 12), (9, 11, 12), (0, 5, 11)] {
            let mut s = pristine.clone();
            for &i in &[a, b, c] {
                s[i].fill(0);
            }
            code.reconstruct(&mut s, &[a, b, c]).unwrap();
            assert_eq!(s, pristine, "({a},{b},{c})");
        }
    }

    #[test]
    fn odd_length_rejected() {
        let code = CauchyRs16::new(2, 2).unwrap();
        let d0 = vec![1u8; 3];
        let d1 = vec![2u8; 3];
        assert!(matches!(
            code.encode(&[&d0, &d1]),
            Err(RsError::ShardLenMismatch)
        ));
    }

    #[test]
    fn agrees_with_gf256_cauchy_on_shared_shapes() {
        // Same erasures must be recoverable by both field sizes (the codes
        // differ numerically but share the MDS property).
        let (c16, mut s16) = stripe(5, 2, 16);
        let c8 = crate::CauchyRs::new(5, 2).unwrap();
        let data: Vec<Vec<u8>> = s16[..5].to_vec();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut s8: Vec<Vec<u8>> = data.clone();
        s8.extend(c8.encode(&refs).unwrap());

        for shards in [&mut s16[..], &mut s8[..]] {
            shards[1].fill(0);
            shards[4].fill(0);
        }
        c16.reconstruct(&mut s16, &[1, 4]).unwrap();
        c8.reconstruct(&mut s8, &[1, 4]).unwrap();
        assert_eq!(&s16[..5], &s8[..5], "data shards must match after repair");
    }
}
