//! Bit-matrix Cauchy Reed–Solomon — the XOR-only realization the paper's
//! Section II describes: *"Cauchy Reed-Solomon Code introduces the binary
//! bit matrix to convert the complex Galois field arithmetic operations
//! into single XOR operations."*
//!
//! Each shard is split into `w = 8` equally sized **packets**; a `GF(2^8)`
//! coefficient `a` becomes the 8×8 binary matrix whose column `c` is the
//! bit pattern of `a · x^c`, and multiplying by `a` becomes XORing packets
//! selected by the matrix's ones. Encoding and decoding are then pure XOR
//! schedules, exactly like the array codes — at the cost of a denser
//! schedule than a native array code (the ones-count accounting below
//! makes that density measurable, which is how minimum-density codes like
//! Liberation motivate themselves).

use raid_math::gf256;
use raid_math::xor::{xor_into, xor_many_into};

use crate::matrix::{cauchy_matrix, Matrix};
use crate::RsError;

/// Packets per shard (`w`), fixed to the field width of `GF(2^8)`.
pub const W: usize = 8;

/// The 8×8 binary matrix of multiplication by `a` over `GF(2^8)`:
/// `column c = bits of a · x^c`. Returned row-major as 8 bytes, one byte
/// per row (bit `c` of row byte = entry `[r][c]`).
pub fn mul_bitmatrix(a: u8) -> [u8; W] {
    let mut rows = [0u8; W];
    for (c, rows_bit) in (0..W).map(|c| (c, gf256::mul(a, 1 << c))).collect::<Vec<_>>() {
        for (r, row) in rows.iter_mut().enumerate() {
            if rows_bit >> r & 1 == 1 {
                *row |= 1 << c;
            }
        }
    }
    rows
}

/// Number of ones in a coefficient's bit matrix — the XOR cost of applying
/// it (density accounting).
pub fn bitmatrix_ones(a: u8) -> usize {
    mul_bitmatrix(a).iter().map(|r| r.count_ones() as usize).sum()
}

/// Bit-matrix Cauchy RS with `k` data and `m` parity shards.
///
/// ```
/// use raid_rs::bitmatrix::BitMatrixCrs;
///
/// let code = BitMatrixCrs::new(4, 2)?;
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 32]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
/// let mut shards = data.clone();
/// shards.extend(code.encode(&refs)?);
/// shards[0].fill(0);
/// shards[5].fill(0);
/// code.reconstruct(&mut shards, &[0, 5])?;
/// assert_eq!(&shards[..4], &data[..]);
/// # Ok::<(), raid_rs::RsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitMatrixCrs {
    k: usize,
    m: usize,
    gen: Matrix,
    /// Compiled encode schedule: for parity packet `dst = r·W + pr`, the
    /// entry holds the range of `plan_srcs` (each `j·W + c`, a data packet)
    /// XOR-ed into it. Expanding the generator's bit matrices once here
    /// removes all bit-matrix math from [`BitMatrixCrs::encode`].
    plan_ops: Vec<(u32, u32, u32)>,
    plan_srcs: Vec<u32>,
}

impl BitMatrixCrs {
    /// Builds the code (`k, m ≥ 1`, `k + m ≤ 256`) and compiles its XOR
    /// encode schedule.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::BadShape`] outside that range.
    pub fn new(k: usize, m: usize) -> Result<Self, RsError> {
        if k == 0 || m == 0 || k + m > 256 {
            return Err(RsError::BadShape { data: k, parity: m });
        }
        let gen = cauchy_matrix(m, k);
        let mut plan_ops = Vec::with_capacity(m * W);
        let mut plan_srcs = Vec::new();
        for r in 0..m {
            for pr in 0..W {
                let start = plan_srcs.len() as u32;
                for j in 0..k {
                    let row = mul_bitmatrix(gen.get(r, j))[pr];
                    for c in 0..W {
                        if row >> c & 1 == 1 {
                            plan_srcs.push((j * W + c) as u32);
                        }
                    }
                }
                plan_ops.push(((r * W + pr) as u32, start, plan_srcs.len() as u32));
            }
        }
        Ok(BitMatrixCrs { k, m, gen, plan_ops, plan_srcs })
    }

    /// Data shard count.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity shard count.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Total XOR packet-operations of one full encode — the schedule
    /// density the bit-matrix construction is judged by. Each one of a
    /// coefficient's bit matrix is one packet XOR (the first XOR into a
    /// zeroed packet is a copy, counted uniformly), so this is exactly the
    /// compiled schedule's source count.
    pub fn encode_xor_ops(&self) -> usize {
        self.plan_srcs.len()
    }

    /// Applies the bit matrix of `coeff` to `src`, XORing into `dst`
    /// (packet-striped layout: packet `i` is `src[i·plen..(i+1)·plen]`).
    fn apply(coeff: u8, src: &[u8], dst: &mut [u8], plen: usize) {
        let bm = mul_bitmatrix(coeff);
        for (r, row) in bm.iter().enumerate() {
            for c in 0..W {
                if row >> c & 1 == 1 {
                    let (dpart, spart) = (r * plen, c * plen);
                    // Split borrows: dst and src are distinct buffers.
                    let src_packet = &src[spart..spart + plen];
                    let dst_packet = &mut dst[dpart..dpart + plen];
                    xor_into(dst_packet, src_packet);
                }
            }
        }
    }

    /// Encodes the parity shards by interpreting the compiled XOR schedule:
    /// each parity packet is produced by one single-pass multi-source XOR
    /// over its data packets, with no bit-matrix math at encode time.
    ///
    /// # Errors
    ///
    /// Returns [`RsError`] on inconsistent shard counts or lengths not
    /// divisible by `W`.
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, RsError> {
        if data.len() != self.k {
            return Err(RsError::BadShape { data: data.len(), parity: self.m });
        }
        let len = data[0].len();
        if !len.is_multiple_of(W) || data.iter().any(|s| s.len() != len) {
            return Err(RsError::ShardLenMismatch);
        }
        let plen = len / W;
        let mut parities = vec![vec![0u8; len]; self.m];
        let mut gathered: Vec<&[u8]> = Vec::new();
        for &(dst, start, end) in &self.plan_ops {
            gathered.clear();
            gathered.extend(self.plan_srcs[start as usize..end as usize].iter().map(|&s| {
                let (j, c) = ((s as usize) / W, (s as usize) % W);
                &data[j][c * plen..(c + 1) * plen]
            }));
            let (r, pr) = ((dst as usize) / W, (dst as usize) % W);
            let dst_packet = &mut parities[r][pr * plen..(pr + 1) * plen];
            xor_many_into(dst_packet, &gathered);
        }
        Ok(parities)
    }

    /// Reconstructs erased shards in place (`shards = [D.., C..]`) by
    /// solving the surviving system over `GF(2^8)` and applying the
    /// resulting coefficients as bit matrices — still XOR-only at the data
    /// plane.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::TooManyErasures`] if `lost.len() > m`, plus shape
    /// errors.
    pub fn reconstruct(&self, shards: &mut [Vec<u8>], lost: &[usize]) -> Result<(), RsError> {
        let (k, m) = (self.k, self.m);
        if shards.len() != k + m {
            return Err(RsError::BadShape { data: shards.len(), parity: m });
        }
        let len = shards[0].len();
        if !len.is_multiple_of(W) || shards.iter().any(|s| s.len() != len) {
            return Err(RsError::ShardLenMismatch);
        }
        if lost.len() > m {
            return Err(RsError::TooManyErasures { lost: lost.len(), capability: m });
        }
        for &i in lost {
            if i >= k + m {
                return Err(RsError::BadIndex { index: i });
            }
        }
        let plen = len / W;
        let lost_data: Vec<usize> = lost.iter().copied().filter(|&i| i < k).collect();
        let lost_parity: Vec<usize> = lost.iter().copied().filter(|&i| i >= k).collect();

        if !lost_data.is_empty() {
            let rows: Vec<usize> = (0..m)
                .filter(|&r| !lost_parity.contains(&(k + r)))
                .take(lost_data.len())
                .collect();
            if rows.len() < lost_data.len() {
                return Err(RsError::TooManyErasures { lost: lost.len(), capability: m });
            }
            let a = Matrix::from_fn(lost_data.len(), lost_data.len(), |ri, ci| {
                self.gen.get(rows[ri], lost_data[ci])
            });
            let ainv = a.inverse().expect("Cauchy submatrices are invertible");

            // rhs_r = C_r ⊕ Σ coeff·D_surviving — computed with bit-matrix
            // XOR only.
            let mut rhs: Vec<Vec<u8>> = Vec::with_capacity(rows.len());
            for &r in &rows {
                let mut acc = shards[k + r].clone();
                for (j, shard) in shards.iter().enumerate().take(k) {
                    if !lost_data.contains(&j) {
                        let shard = shard.clone();
                        Self::apply(self.gen.get(r, j), &shard, &mut acc, plen);
                    }
                }
                rhs.push(acc);
            }
            for (ri, &x) in lost_data.iter().enumerate() {
                let mut out = vec![0u8; len];
                for (ci, rbuf) in rhs.iter().enumerate() {
                    Self::apply(ainv.get(ri, ci), rbuf, &mut out, plen);
                }
                shards[x] = out;
            }
        }

        if !lost_parity.is_empty() {
            let parities = {
                let data: Vec<&[u8]> = shards[..k].iter().map(|v| v.as_slice()).collect();
                self.encode(&data)?
            };
            for &i in &lost_parity {
                shards[i] = parities[i - k].clone();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmatrix_of_one_is_identity() {
        let bm = mul_bitmatrix(1);
        for (r, row) in bm.iter().enumerate() {
            assert_eq!(*row, 1 << r);
        }
        assert_eq!(bitmatrix_ones(1), 8);
    }

    #[test]
    fn bitmatrix_multiplication_matches_field() {
        // Applying BM(a) to the bit pattern of b must give bits of a·b.
        for a in [2u8, 3, 0x1D, 0x80, 0xFF] {
            let bm = mul_bitmatrix(a);
            for b in 0..=255u8 {
                let mut out = 0u8;
                for (r, row) in bm.iter().enumerate() {
                    let bit = (row & b).count_ones() % 2;
                    out |= (bit as u8) << r;
                }
                assert_eq!(out, gf256::mul(a, b), "a={a} b={b}");
            }
        }
    }

    fn stripe(k: usize, m: usize, len: usize) -> (BitMatrixCrs, Vec<Vec<u8>>) {
        let code = BitMatrixCrs::new(k, m).unwrap();
        let mut shards: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|b| (i * 53 + b * 29 + 11) as u8).collect())
            .collect();
        let parities = {
            let refs: Vec<&[u8]> = shards.iter().map(|v| v.as_slice()).collect();
            code.encode(&refs).unwrap()
        };
        shards.extend(parities);
        (code, shards)
    }

    #[test]
    fn raid6_all_pairs_recover() {
        let k = 5;
        let (code, pristine) = stripe(k, 2, 40);
        for a in 0..k + 2 {
            for b in (a + 1)..k + 2 {
                let mut s = pristine.clone();
                s[a].fill(0);
                s[b].fill(0);
                code.reconstruct(&mut s, &[a, b]).unwrap();
                assert_eq!(s, pristine, "({a},{b})");
            }
        }
    }

    #[test]
    fn length_must_be_multiple_of_w() {
        let code = BitMatrixCrs::new(2, 2).unwrap();
        let d = vec![0u8; 12]; // not divisible by 8
        assert!(matches!(
            code.encode(&[&d, &d]),
            Err(RsError::ShardLenMismatch)
        ));
    }

    #[test]
    fn xor_schedule_density_reported() {
        let code = BitMatrixCrs::new(6, 2).unwrap();
        let ops = code.encode_xor_ops();
        // Lower bound: identity-like matrices would need 8 ones each →
        // 2·6·8 = 96; Cauchy coefficients are denser.
        assert!(ops > 96, "suspiciously sparse: {ops}");
        // Sanity upper bound: no 8×8 matrix has more than 64 ones.
        assert!(ops <= 2 * 6 * 64);
    }

    #[test]
    fn agrees_with_gf_cauchy_reconstruction() {
        // The bit-matrix code and the GF-arithmetic code share the same
        // generator, so the PARITY bytes differ in layout but the repaired
        // DATA must be identical for the same erasures.
        let k = 4;
        let (bm, bm_shards) = stripe(k, 2, 32);
        let gf = crate::CauchyRs::new(k, 2).unwrap();
        let data: Vec<Vec<u8>> = bm_shards[..k].to_vec();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut gf_shards = data.clone();
        gf_shards.extend(gf.encode(&refs).unwrap());

        let mut bm_broken = bm_shards.clone();
        let mut gf_broken = gf_shards.clone();
        for s in [&mut bm_broken, &mut gf_broken] {
            s[1].fill(0);
            s[3].fill(0);
        }
        bm.reconstruct(&mut bm_broken, &[1, 3]).unwrap();
        gf.reconstruct(&mut gf_broken, &[1, 3]).unwrap();
        assert_eq!(&bm_broken[..k], &gf_broken[..k]);
        assert_eq!(&bm_broken[..k], &data[..]);
    }
}
