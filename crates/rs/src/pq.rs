//! The classical P+Q Reed–Solomon RAID-6: `P = ⊕ D_i`,
//! `Q = ⊕ g^i · D_i` over `GF(2^8)` with generator `g = 2`.
//!
//! This is the construction the paper's Section II describes as expensive —
//! every byte of a Q update is a Galois multiplication — and the reference
//! point the XOR array codes are measured against.

use raid_math::gf256;
use raid_math::xor::xor_into;

use crate::RsError;

/// Which shard of a P+Q stripe is which.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shard {
    /// Data shard with its index.
    Data(usize),
    /// The XOR parity shard.
    P,
    /// The Galois-weighted parity shard.
    Q,
}

/// P+Q Reed–Solomon RAID-6 over `k + 2` disks.
///
/// ```
/// use raid_rs::pq::{PqRaid6, Shard};
///
/// let code = PqRaid6::new(4)?;
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 * 7; 16]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
/// let (p, q) = code.encode(&refs)?;
///
/// // Lose two data shards and rebuild them.
/// let mut shards = data.clone();
/// shards.push(p);
/// shards.push(q);
/// shards[1].fill(0);
/// shards[3].fill(0);
/// code.reconstruct(&mut shards, &[Shard::Data(1), Shard::Data(3)])?;
/// assert_eq!(shards[1], data[1]);
/// assert_eq!(shards[3], data[3]);
/// # Ok::<(), raid_rs::RsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PqRaid6 {
    data_disks: usize,
}

impl PqRaid6 {
    /// Builds the code for `k` data disks, `1 ≤ k ≤ 255`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::BadShape`] outside that range (the `g^i`
    /// coefficients must stay distinct and nonzero).
    pub fn new(data_disks: usize) -> Result<Self, RsError> {
        if data_disks == 0 || data_disks > 255 {
            return Err(RsError::BadShape { data: data_disks, parity: 2 });
        }
        Ok(PqRaid6 { data_disks })
    }

    /// Number of data disks `k`.
    pub fn data_disks(&self) -> usize {
        self.data_disks
    }

    /// Total disks `k + 2`.
    pub fn total_disks(&self) -> usize {
        self.data_disks + 2
    }

    /// Computes `(P, Q)` for the given data shards.
    ///
    /// # Errors
    ///
    /// Returns [`RsError`] if the shard count or lengths are inconsistent.
    pub fn encode(&self, data: &[&[u8]]) -> Result<(Vec<u8>, Vec<u8>), RsError> {
        self.check_data(data)?;
        let len = data[0].len();
        let mut p = vec![0u8; len];
        let mut q = vec![0u8; len];
        for (i, shard) in data.iter().enumerate() {
            xor_into(&mut p, shard);
            gf256::mul_acc_slice(gf256::exp(i), shard, &mut q);
        }
        Ok((p, q))
    }

    /// Incrementally updates `(P, Q)` after data shard `i` changes from
    /// `old` to `new` — the RAID-6 small-write path. Cost: one XOR pass for
    /// P plus one Galois multiply-accumulate pass for Q.
    ///
    /// # Errors
    ///
    /// Returns [`RsError`] on a bad index or mismatched lengths.
    pub fn update(
        &self,
        i: usize,
        old: &[u8],
        new: &[u8],
        p: &mut [u8],
        q: &mut [u8],
    ) -> Result<(), RsError> {
        if i >= self.data_disks {
            return Err(RsError::BadIndex { index: i });
        }
        if old.len() != new.len() || old.len() != p.len() || p.len() != q.len() {
            return Err(RsError::ShardLenMismatch);
        }
        // delta = old ^ new folds into P directly and into Q scaled by g^i.
        let mut delta = old.to_vec();
        xor_into(&mut delta, new);
        xor_into(p, &delta);
        gf256::mul_acc_slice(gf256::exp(i), &delta, q);
        Ok(())
    }

    /// Verifies P and Q against the data shards — the scrub primitive for
    /// the Reed–Solomon path. Returns which parities are inconsistent.
    ///
    /// # Errors
    ///
    /// Returns [`RsError`] on shape mismatches.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<(bool, bool), RsError> {
        let k = self.data_disks;
        if shards.len() != k + 2 {
            return Err(RsError::BadShape { data: shards.len(), parity: 2 });
        }
        let refs: Vec<&[u8]> = shards[..k].iter().map(|v| v.as_slice()).collect();
        let (p, q) = self.encode(&refs)?;
        Ok((p == shards[k], q == shards[k + 1]))
    }

    /// Reconstructs up to two erased shards in place.
    ///
    /// `shards` lays out the stripe as `[D_0, …, D_{k−1}, P, Q]`; `lost`
    /// names the erased positions (their buffers are overwritten).
    ///
    /// # Errors
    ///
    /// Returns [`RsError::TooManyErasures`] for three or more losses, and
    /// propagates shape errors.
    pub fn reconstruct(&self, shards: &mut [Vec<u8>], lost: &[Shard]) -> Result<(), RsError> {
        let k = self.data_disks;
        if shards.len() != k + 2 {
            return Err(RsError::BadShape { data: shards.len(), parity: 2 });
        }
        let len = shards[0].len();
        if shards.iter().any(|s| s.len() != len) {
            return Err(RsError::ShardLenMismatch);
        }
        if lost.len() > 2 {
            return Err(RsError::TooManyErasures { lost: lost.len(), capability: 2 });
        }
        for &s in lost {
            if let Shard::Data(i) = s {
                if i >= k {
                    return Err(RsError::BadIndex { index: i });
                }
            }
        }

        match *lost {
            [] => Ok(()),
            [one] => self.reconstruct_one(shards, one, &[]),
            [a, b] if a == b => Err(RsError::BadIndex { index: shard_pos(a, k) }),
            [Shard::Data(x), Shard::Data(y)] => self.reconstruct_two_data(shards, x, y),
            // One data + one parity: rebuild data from the surviving
            // parity, then recompute the lost parity.
            [Shard::Data(x), parity] | [parity, Shard::Data(x)] => {
                self.reconstruct_one(shards, Shard::Data(x), &[parity])?;
                self.reconstruct_one(shards, parity, &[])
            }
            // P and Q both lost: re-encode from intact data.
            [pa, pb] => {
                debug_assert!(!matches!(pa, Shard::Data(_)) && !matches!(pb, Shard::Data(_)));
                let (p, q) = {
                    let data: Vec<&[u8]> = shards[..k].iter().map(|v| v.as_slice()).collect();
                    self.encode(&data)?
                };
                shards[k] = p;
                shards[k + 1] = q;
                Ok(())
            }
            _ => unreachable!("lost.len() <= 2 checked above"),
        }
    }

    /// Rebuilds a single shard, optionally avoiding `unusable` parities.
    fn reconstruct_one(
        &self,
        shards: &mut [Vec<u8>],
        target: Shard,
        unusable: &[Shard],
    ) -> Result<(), RsError> {
        let k = self.data_disks;
        let len = shards[0].len();
        match target {
            Shard::P => {
                let mut p = vec![0u8; len];
                for shard in &shards[..k] {
                    xor_into(&mut p, shard);
                }
                shards[k] = p;
            }
            Shard::Q => {
                let mut q = vec![0u8; len];
                for (i, shard) in shards[..k].iter().enumerate() {
                    gf256::mul_acc_slice(gf256::exp(i), shard, &mut q);
                }
                shards[k + 1] = q;
            }
            Shard::Data(x) => {
                let use_p = !unusable.contains(&Shard::P);
                if use_p {
                    // D_x = P ^ (⊕ other data)
                    let mut acc = shards[k].clone();
                    for (i, shard) in shards[..k].iter().enumerate() {
                        if i != x {
                            xor_into(&mut acc, shard);
                        }
                    }
                    shards[x] = acc;
                } else {
                    // D_x = (Q ^ ⊕ g^i D_i) / g^x
                    let mut acc = shards[k + 1].clone();
                    for (i, shard) in shards[..k].iter().enumerate() {
                        if i != x {
                            gf256::mul_acc_slice(gf256::exp(i), shard, &mut acc);
                        }
                    }
                    let ginv = gf256::inv(gf256::exp(x));
                    gf256::scale_slice(ginv, &mut acc);
                    shards[x] = acc;
                }
            }
        }
        Ok(())
    }

    /// The classic two-data-erasure closed form.
    fn reconstruct_two_data(
        &self,
        shards: &mut [Vec<u8>],
        x: usize,
        y: usize,
    ) -> Result<(), RsError> {
        let k = self.data_disks;
        let len = shards[0].len();
        // Pxy = P ^ (⊕ surviving data): equals D_x ^ D_y.
        let mut pxy = shards[k].clone();
        // Qxy = Q ^ (⊕ g^i D_i surviving): equals g^x D_x ^ g^y D_y.
        let mut qxy = shards[k + 1].clone();
        for (i, shard) in shards[..k].iter().enumerate() {
            if i != x && i != y {
                xor_into(&mut pxy, shard);
                gf256::mul_acc_slice(gf256::exp(i), shard, &mut qxy);
            }
        }
        // D_x = (g^y · Pxy ^ Qxy) / (g^x ^ g^y); D_y = Pxy ^ D_x.
        let gx = gf256::exp(x);
        let gy = gf256::exp(y);
        let denom = gf256::inv(gx ^ gy);
        let mut dx = vec![0u8; len];
        gf256::mul_acc_slice(gf256::mul(gy, denom), &pxy, &mut dx);
        gf256::mul_acc_slice(denom, &qxy, &mut dx);
        let mut dy = pxy;
        xor_into(&mut dy, &dx);
        shards[x] = dx;
        shards[y] = dy;
        Ok(())
    }

    fn check_data(&self, data: &[&[u8]]) -> Result<(), RsError> {
        if data.len() != self.data_disks {
            return Err(RsError::BadShape { data: data.len(), parity: 2 });
        }
        let len = data[0].len();
        if data.iter().any(|s| s.len() != len) {
            return Err(RsError::ShardLenMismatch);
        }
        Ok(())
    }
}

fn shard_pos(s: Shard, k: usize) -> usize {
    match s {
        Shard::Data(i) => i,
        Shard::P => k,
        Shard::Q => k + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripe(k: usize, len: usize, seed: u64) -> (PqRaid6, Vec<Vec<u8>>) {
        let code = PqRaid6::new(k).unwrap();
        let mut shards: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..len)
                    .map(|b| (seed as usize + i * 131 + b * 7) as u8)
                    .collect()
            })
            .collect();
        let (p, q) = {
            let refs: Vec<&[u8]> = shards.iter().map(|v| v.as_slice()).collect();
            code.encode(&refs).unwrap()
        };
        shards.push(p);
        shards.push(q);
        (code, shards)
    }

    fn all_shards(k: usize) -> Vec<Shard> {
        let mut v: Vec<Shard> = (0..k).map(Shard::Data).collect();
        v.push(Shard::P);
        v.push(Shard::Q);
        v
    }

    #[test]
    fn shape_validation() {
        assert!(PqRaid6::new(0).is_err());
        assert!(PqRaid6::new(256).is_err());
        assert!(PqRaid6::new(255).is_ok());
    }

    #[test]
    fn every_double_erasure_recovers() {
        let k = 6;
        let (code, pristine) = stripe(k, 64, 42);
        let shards = all_shards(k);
        for (ai, &a) in shards.iter().enumerate() {
            for &b in &shards[ai + 1..] {
                let mut s = pristine.clone();
                let (pa, pb) = (shard_pos(a, k), shard_pos(b, k));
                s[pa].fill(0);
                s[pb].fill(0);
                code.reconstruct(&mut s, &[a, b]).unwrap();
                assert_eq!(s, pristine, "lost {a:?},{b:?}");
            }
        }
    }

    #[test]
    fn every_single_erasure_recovers() {
        let k = 5;
        let (code, pristine) = stripe(k, 32, 7);
        for &a in &all_shards(k) {
            let mut s = pristine.clone();
            s[shard_pos(a, k)].fill(0);
            code.reconstruct(&mut s, &[a]).unwrap();
            assert_eq!(s, pristine, "lost {a:?}");
        }
    }

    #[test]
    fn incremental_update_matches_reencode() {
        let k = 4;
        let (code, mut shards) = stripe(k, 48, 9);
        let new_d2: Vec<u8> = (0..48).map(|b| (b * 3 + 1) as u8).collect();
        let old = shards[2].clone();
        let (mut p, mut q) = (shards[k].clone(), shards[k + 1].clone());
        code.update(2, &old, &new_d2, &mut p, &mut q).unwrap();
        shards[2] = new_d2;
        let refs: Vec<&[u8]> = shards[..k].iter().map(|v| v.as_slice()).collect();
        let (ep, eq) = code.encode(&refs).unwrap();
        assert_eq!(p, ep);
        assert_eq!(q, eq);
    }

    #[test]
    fn verify_detects_parity_drift() {
        let k = 5;
        let (code, mut shards) = stripe(k, 16, 2);
        assert_eq!(code.verify(&shards).unwrap(), (true, true));
        shards[k][3] ^= 1;
        assert_eq!(code.verify(&shards).unwrap(), (false, true));
        shards[k][3] ^= 1;
        shards[k + 1][0] ^= 0x10;
        assert_eq!(code.verify(&shards).unwrap(), (true, false));
    }

    #[test]
    fn triple_erasure_rejected() {
        let k = 4;
        let (code, mut shards) = stripe(k, 8, 1);
        let err = code
            .reconstruct(&mut shards, &[Shard::Data(0), Shard::Data(1), Shard::P])
            .unwrap_err();
        assert!(matches!(err, RsError::TooManyErasures { lost: 3, capability: 2 }));
    }

    #[test]
    fn bad_inputs_rejected() {
        let code = PqRaid6::new(3).unwrap();
        assert!(matches!(
            code.encode(&[&[1, 2][..], &[3][..], &[4, 5][..]]),
            Err(RsError::ShardLenMismatch)
        ));
        let mut p = vec![0u8; 2];
        let mut q = vec![0u8; 2];
        assert!(matches!(
            code.update(9, &[0, 0], &[1, 1], &mut p, &mut q),
            Err(RsError::BadIndex { index: 9 })
        ));
    }
}
