//! Reed–Solomon RAID-6 over `GF(2^8)` — the classical baselines from the
//! paper's Section II (Reed–Solomon Code and Cauchy Reed–Solomon Code).
//!
//! Two constructions:
//!
//! * [`pq::PqRaid6`] — the standard P+Q scheme: `P = ⊕ D_i`,
//!   `Q = ⊕ g^i · D_i` with generator `g = 2`, decoding all six two-erasure
//!   cases in closed form;
//! * [`cauchy::CauchyRs`] — a general `(k, m)` systematic code built from a
//!   Cauchy matrix, decoded by Gaussian elimination over `GF(2^8)`; for
//!   `m = 2` it is a RAID-6 code over any `k ≤ 254` data disks;
//! * [`cauchy16::CauchyRs16`] — the same construction over `GF(2^16)` for
//!   arrays wider than `GF(2^8)` permits;
//! * [`bitmatrix::BitMatrixCrs`] — Cauchy RS with coefficients expanded to
//!   binary bit matrices so the whole data plane is XOR-only (the
//!   construction the paper's background credits for making RS practical).
//!
//! These codes are *not* XOR array codes — their update complexity and I/O
//! profile is what the XOR family (HV, RDP, …) improves on — so they stand
//! outside the `ArrayCode` layout machinery and expose a per-disk-buffer
//! API instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmatrix;
pub mod cauchy;
pub mod cauchy16;
pub mod matrix;
pub mod pq;

pub use bitmatrix::BitMatrixCrs;
pub use cauchy::CauchyRs;
pub use cauchy16::CauchyRs16;
pub use pq::PqRaid6;

use std::fmt;

/// Errors shared by the Reed–Solomon constructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// Requested shape is impossible over GF(2^8).
    BadShape {
        /// Number of data shards requested.
        data: usize,
        /// Number of parity shards requested.
        parity: usize,
    },
    /// Shard buffers have inconsistent lengths.
    ShardLenMismatch,
    /// More shards were lost than the code can repair.
    TooManyErasures {
        /// Number of erased shards.
        lost: usize,
        /// Number of parity shards (the correction capability).
        capability: usize,
    },
    /// A shard index was out of range.
    BadIndex {
        /// The offending shard index.
        index: usize,
    },
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::BadShape { data, parity } => {
                write!(f, "cannot build RS({data}+{parity}) over GF(256)")
            }
            RsError::ShardLenMismatch => write!(f, "shard lengths differ"),
            RsError::TooManyErasures { lost, capability } => {
                write!(f, "{lost} erasures exceed capability {capability}")
            }
            RsError::BadIndex { index } => write!(f, "shard index {index} out of range"),
        }
    }
}

impl std::error::Error for RsError {}
