//! Dense matrices over `GF(2^8)` with Gaussian inversion — the decoding
//! workhorse for the Cauchy construction.

use raid_math::gf256;

/// A row-major dense matrix over `GF(2^8)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0; rows * cols] }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> u8 {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of range");
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of range");
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matrix multiply");
        Matrix::from_fn(self.rows, rhs.cols, |r, c| {
            let mut acc = 0u8;
            for k in 0..self.cols {
                acc ^= gf256::mul(self.get(r, k), rhs.get(k, c));
            }
            acc
        })
    }

    /// Inverts a square matrix by Gauss–Jordan elimination.
    ///
    /// Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                for c in 0..n {
                    let (x, y) = (a.get(col, c), a.get(pivot, c));
                    a.set(col, c, y);
                    a.set(pivot, c, x);
                    let (x, y) = (inv.get(col, c), inv.get(pivot, c));
                    inv.set(col, c, y);
                    inv.set(pivot, c, x);
                }
            }
            // Normalize the pivot row.
            let p = a.get(col, col);
            let pinv = gf256::inv(p);
            for c in 0..n {
                a.set(col, c, gf256::mul(a.get(col, c), pinv));
                inv.set(col, c, gf256::mul(inv.get(col, c), pinv));
            }
            // Eliminate the column elsewhere.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor == 0 {
                    continue;
                }
                for c in 0..n {
                    let va = gf256::mul(factor, a.get(col, c));
                    a.set(r, c, a.get(r, c) ^ va);
                    let vi = gf256::mul(factor, inv.get(col, c));
                    inv.set(r, c, inv.get(r, c) ^ vi);
                }
            }
        }
        Some(inv)
    }
}

/// Builds the `m × k` Cauchy matrix `C[i][j] = 1 / (x_i + y_j)` with
/// `x_i = i` and `y_j = m + j`, all distinct in `GF(2^8)`.
///
/// # Panics
///
/// Panics if `m + k > 256` (not enough distinct field points).
pub fn cauchy_matrix(m: usize, k: usize) -> Matrix {
    assert!(m + k <= 256, "GF(256) supports at most 256 distinct points");
    Matrix::from_fn(m, k, |i, j| gf256::inv((i as u8) ^ ((m + j) as u8)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let i4 = Matrix::identity(4);
        assert_eq!(i4.mul(&i4), i4);
        assert_eq!(i4.inverse().unwrap(), i4);
    }

    #[test]
    fn inverse_of_random_like_matrix() {
        // A Cauchy matrix extended to square via identity rows is invertible.
        let c = cauchy_matrix(3, 3);
        let inv = c.inverse().expect("Cauchy matrices are invertible");
        assert_eq!(c.mul(&inv), Matrix::identity(3));
        assert_eq!(inv.mul(&c), Matrix::identity(3));
    }

    #[test]
    fn singular_detected() {
        let mut m = Matrix::zero(2, 2);
        m.set(0, 0, 3);
        m.set(0, 1, 5);
        m.set(1, 0, 3);
        m.set(1, 1, 5);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn every_square_cauchy_submatrix_invertible() {
        // The defining property that makes Cauchy RS MDS.
        let m = 2usize;
        let k = 6usize;
        let c = cauchy_matrix(m, k);
        for a in 0..k {
            for b in (a + 1)..k {
                let sub = Matrix::from_fn(2, 2, |r, cc| c.get(r, if cc == 0 { a } else { b }));
                assert!(sub.inverse().is_some(), "singular 2x2 at ({a},{b})");
            }
        }
        // 1x1 minors are nonzero too.
        for a in 0..k {
            assert_ne!(c.get(0, a), 0);
            assert_ne!(c.get(1, a), 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounds_checked() {
        Matrix::zero(2, 2).get(2, 0);
    }
}
