//! Cauchy Reed–Solomon: a systematic `(k, m)` erasure code whose parity
//! matrix is a Cauchy matrix, so **every** square submatrix is invertible
//! and any `m` erasures are repairable. For `m = 2` this is the Cauchy
//! RAID-6 of the paper's Section II.

use raid_math::gf256;

use crate::matrix::{cauchy_matrix, Matrix};
use crate::RsError;

/// A systematic Cauchy Reed–Solomon code with `k` data and `m` parity
/// shards.
///
/// ```
/// use raid_rs::CauchyRs;
///
/// let code = CauchyRs::new(5, 3)?; // tolerates any 3 erasures
/// let data: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; 8]).collect();
/// let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
/// let mut shards = data.clone();
/// shards.extend(code.encode(&refs)?);
/// for i in [0usize, 4, 6] {
///     shards[i].fill(0);
/// }
/// code.reconstruct(&mut shards, &[0, 4, 6])?;
/// assert_eq!(&shards[..5], &data[..]);
/// # Ok::<(), raid_rs::RsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CauchyRs {
    k: usize,
    m: usize,
    /// The `m × k` parity-generator (Cauchy) matrix.
    gen: Matrix,
}

impl CauchyRs {
    /// Builds the code.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::BadShape`] if `k = 0`, `m = 0` or `k + m > 256`.
    pub fn new(k: usize, m: usize) -> Result<Self, RsError> {
        if k == 0 || m == 0 || k + m > 256 {
            return Err(RsError::BadShape { data: k, parity: m });
        }
        Ok(CauchyRs { k, m, gen: cauchy_matrix(m, k) })
    }

    /// RAID-6 shape: `m = 2`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::BadShape`] if `k` is out of range.
    pub fn raid6(k: usize) -> Result<Self, RsError> {
        CauchyRs::new(k, 2)
    }

    /// Number of data shards.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Number of parity shards.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Encodes parity shards from data shards.
    ///
    /// # Errors
    ///
    /// Returns [`RsError`] on inconsistent shard counts or lengths.
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, RsError> {
        if data.len() != self.k {
            return Err(RsError::BadShape { data: data.len(), parity: self.m });
        }
        let len = data[0].len();
        if data.iter().any(|s| s.len() != len) {
            return Err(RsError::ShardLenMismatch);
        }
        let mut parities = vec![vec![0u8; len]; self.m];
        for (row, parity) in parities.iter_mut().enumerate() {
            for (j, shard) in data.iter().enumerate() {
                gf256::mul_acc_slice(self.gen.get(row, j), shard, parity);
            }
        }
        Ok(parities)
    }

    /// Reconstructs every erased shard in place.
    ///
    /// `shards` is `[D_0..D_{k−1}, C_0..C_{m−1}]`; `lost` lists erased
    /// indices into that array.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::TooManyErasures`] if `lost.len() > m`, or shape
    /// errors.
    pub fn reconstruct(&self, shards: &mut [Vec<u8>], lost: &[usize]) -> Result<(), RsError> {
        let (k, m) = (self.k, self.m);
        if shards.len() != k + m {
            return Err(RsError::BadShape { data: shards.len(), parity: m });
        }
        let len = shards[0].len();
        if shards.iter().any(|s| s.len() != len) {
            return Err(RsError::ShardLenMismatch);
        }
        if lost.len() > m {
            return Err(RsError::TooManyErasures { lost: lost.len(), capability: m });
        }
        for &i in lost {
            if i >= k + m {
                return Err(RsError::BadIndex { index: i });
            }
        }
        let lost_data: Vec<usize> = lost.iter().copied().filter(|&i| i < k).collect();
        let lost_parity: Vec<usize> = lost.iter().copied().filter(|&i| i >= k).collect();

        if !lost_data.is_empty() {
            // Pick |lost_data| surviving parity rows and solve for the
            // missing data shards.
            let rows: Vec<usize> = (0..m)
                .filter(|&r| !lost_parity.contains(&(k + r)))
                .take(lost_data.len())
                .collect();
            if rows.len() < lost_data.len() {
                return Err(RsError::TooManyErasures { lost: lost.len(), capability: m });
            }
            // System: for each chosen parity row r:
            //   Σ_{x in lost_data} gen[r][x]·D_x = C_r ^ Σ_{surviving j} gen[r][j]·D_j
            let a = Matrix::from_fn(lost_data.len(), lost_data.len(), |ri, ci| {
                self.gen.get(rows[ri], lost_data[ci])
            });
            let ainv = a.inverse().expect("Cauchy submatrices are invertible");

            // Right-hand sides.
            let mut rhs: Vec<Vec<u8>> = Vec::with_capacity(rows.len());
            for &r in &rows {
                let mut acc = shards[k + r].clone();
                for (j, shard) in shards.iter().enumerate().take(k) {
                    if !lost_data.contains(&j) {
                        gf256::mul_acc_slice(self.gen.get(r, j), shard, &mut acc);
                    }
                }
                rhs.push(acc);
            }
            // D = A⁻¹ · rhs.
            for (ri, &x) in lost_data.iter().enumerate() {
                let mut out = vec![0u8; len];
                for (ci, r) in rhs.iter().enumerate() {
                    gf256::mul_acc_slice(ainv.get(ri, ci), r, &mut out);
                }
                shards[x] = out;
            }
        }

        // Recompute lost parities from (now complete) data.
        if !lost_parity.is_empty() {
            let parities = {
                let data: Vec<&[u8]> = shards[..k].iter().map(|v| v.as_slice()).collect();
                self.encode(&data)?
            };
            for &i in &lost_parity {
                shards[i] = parities[i - k].clone();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripe(k: usize, m: usize, len: usize) -> (CauchyRs, Vec<Vec<u8>>) {
        let code = CauchyRs::new(k, m).unwrap();
        let mut shards: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|b| (i * 37 + b * 11 + 5) as u8).collect())
            .collect();
        let parities = {
            let refs: Vec<&[u8]> = shards.iter().map(|v| v.as_slice()).collect();
            code.encode(&refs).unwrap()
        };
        shards.extend(parities);
        (code, shards)
    }

    #[test]
    fn raid6_all_pairs_recover() {
        let k = 7;
        let (code, pristine) = stripe(k, 2, 40);
        let n = k + 2;
        for a in 0..n {
            for b in (a + 1)..n {
                let mut s = pristine.clone();
                s[a].fill(0);
                s[b].fill(0);
                code.reconstruct(&mut s, &[a, b]).unwrap();
                assert_eq!(s, pristine, "lost ({a},{b})");
            }
        }
    }

    #[test]
    fn higher_parity_counts_work() {
        // m = 3 tolerates any 3 losses — beyond RAID-6, shows generality.
        let (code, pristine) = stripe(5, 3, 16);
        let n = 8;
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let mut s = pristine.clone();
                    for &i in &[a, b, c] {
                        s[i].fill(0);
                    }
                    code.reconstruct(&mut s, &[a, b, c]).unwrap();
                    assert_eq!(s, pristine, "lost ({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn shape_and_capability_errors() {
        assert!(CauchyRs::new(0, 2).is_err());
        assert!(CauchyRs::new(255, 2).is_err());
        assert!(CauchyRs::new(254, 2).is_ok());
        let (code, mut shards) = stripe(4, 2, 8);
        assert!(matches!(
            code.reconstruct(&mut shards, &[0, 1, 2]),
            Err(RsError::TooManyErasures { .. })
        ));
        assert!(matches!(
            code.reconstruct(&mut shards, &[99]),
            Err(RsError::BadIndex { index: 99 })
        ));
    }

    #[test]
    fn agrees_with_pq_on_erasure_capability() {
        // Both are MDS RAID-6 codes: same storage efficiency, same
        // two-erasure tolerance (sanity cross-check between constructions).
        let (code, pristine) = stripe(6, 2, 24);
        let mut s = pristine.clone();
        s[0].fill(0);
        s[7].fill(0); // one data + second parity
        code.reconstruct(&mut s, &[0, 7]).unwrap();
        assert_eq!(s, pristine);
    }
}
