//! Plain-text layout specifications: dump any [`Layout`] to a small
//! human-editable format and parse it back. Useful for golden files,
//! cross-tool debugging, and experimenting with hand-rolled layouts
//! without writing a constructor.
//!
//! Format:
//!
//! ```text
//! layout 3 5
//! kinds
//! ..D.H
//! ..D.H
//! ..D.H
//! chain H 0,4 = 0,0 0,1 0,2
//! chain D 0,2 = 1,0 2,1
//! ```
//!
//! The `kinds` grid uses the [`Layout::render_ascii`] legend; each `chain`
//! line is `<class letter> <parity r,c> = <member r,c>...`.

use std::fmt;

use crate::geometry::Cell;
use crate::layout::{Chain, ElementKind, Layout, LayoutError, ParityClass};

/// Error from [`parse_layout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayoutError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layout spec error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseLayoutError {}

impl From<LayoutError> for ParseLayoutError {
    fn from(e: LayoutError) -> Self {
        ParseLayoutError { line: 0, reason: e.to_string() }
    }
}

fn class_letter(c: ParityClass) -> char {
    match c {
        ParityClass::Horizontal => 'H',
        ParityClass::Vertical => 'V',
        ParityClass::Diagonal => 'D',
        ParityClass::AntiDiagonal => 'A',
        ParityClass::HorizontalDiagonal => 'X',
    }
}

fn class_from_letter(ch: char) -> Option<ParityClass> {
    match ch {
        'H' => Some(ParityClass::Horizontal),
        'V' => Some(ParityClass::Vertical),
        'D' => Some(ParityClass::Diagonal),
        'A' => Some(ParityClass::AntiDiagonal),
        'X' => Some(ParityClass::HorizontalDiagonal),
        _ => None,
    }
}

/// Renders a layout as a spec string that [`parse_layout`] accepts.
pub fn format_layout(layout: &Layout) -> String {
    let mut out = format!("layout {} {}\nkinds\n", layout.rows(), layout.cols());
    out.push_str(&layout.render_ascii());
    for chain in layout.chains() {
        out.push_str(&format!(
            "chain {} {},{} =",
            class_letter(chain.class),
            chain.parity.row,
            chain.parity.col
        ));
        for m in &chain.members {
            out.push_str(&format!(" {},{}", m.row, m.col));
        }
        out.push('\n');
    }
    out
}

fn parse_cell(tok: &str, line: usize) -> Result<Cell, ParseLayoutError> {
    let (r, c) = tok.split_once(',').ok_or_else(|| ParseLayoutError {
        line,
        reason: format!("expected r,c got '{tok}'"),
    })?;
    let parse = |s: &str| -> Result<usize, ParseLayoutError> {
        s.parse().map_err(|_| ParseLayoutError {
            line,
            reason: format!("bad coordinate '{s}'"),
        })
    };
    Ok(Cell::new(parse(r)?, parse(c)?))
}

/// Parses a spec produced by [`format_layout`] (or written by hand).
///
/// # Errors
///
/// Returns [`ParseLayoutError`] on malformed syntax or a structurally
/// invalid layout (validation is [`Layout::new`]'s).
pub fn parse_layout(text: &str) -> Result<Layout, ParseLayoutError> {
    let mut lines = text.lines().enumerate().peekable();

    // Header.
    let (ln, header) = lines.next().ok_or(ParseLayoutError {
        line: 1,
        reason: "empty spec".into(),
    })?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("layout") {
        return Err(ParseLayoutError { line: ln + 1, reason: "expected 'layout R C'".into() });
    }
    let dims: Vec<usize> = parts
        .map(|t| {
            t.parse().map_err(|_| ParseLayoutError {
                line: ln + 1,
                reason: format!("bad dimension '{t}'"),
            })
        })
        .collect::<Result<_, _>>()?;
    let [rows, cols] = dims[..] else {
        return Err(ParseLayoutError { line: ln + 1, reason: "expected two dimensions".into() });
    };

    // Kinds grid.
    match lines.next() {
        Some((_, l)) if l.trim() == "kinds" => {}
        other => {
            let line = other.map_or(2, |(n, _)| n + 1);
            return Err(ParseLayoutError { line, reason: "expected 'kinds'".into() });
        }
    }
    let mut kinds = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        let (ln, row) = lines.next().ok_or(ParseLayoutError {
            line: 0,
            reason: "kinds grid truncated".into(),
        })?;
        let chars: Vec<char> = row.trim().chars().collect();
        if chars.len() != cols {
            return Err(ParseLayoutError {
                line: ln + 1,
                reason: format!("expected {cols} cells, got {}", chars.len()),
            });
        }
        for ch in chars {
            kinds.push(match ch {
                '.' => ElementKind::Data,
                other => ElementKind::Parity(class_from_letter(other).ok_or_else(|| {
                    ParseLayoutError { line: ln + 1, reason: format!("unknown kind '{other}'") }
                })?),
            });
        }
    }

    // Chains.
    let mut chains = Vec::new();
    for (ln, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let rest = line.strip_prefix("chain ").ok_or_else(|| ParseLayoutError {
            line: ln + 1,
            reason: format!("expected 'chain ...', got '{line}'"),
        })?;
        let (head, members_str) = rest.split_once('=').ok_or(ParseLayoutError {
            line: ln + 1,
            reason: "missing '='".into(),
        })?;
        let mut head_toks = head.split_whitespace();
        let class_tok = head_toks.next().ok_or(ParseLayoutError {
            line: ln + 1,
            reason: "missing class".into(),
        })?;
        let class = class_tok
            .chars()
            .next()
            .and_then(class_from_letter)
            .ok_or_else(|| ParseLayoutError {
                line: ln + 1,
                reason: format!("unknown class '{class_tok}'"),
            })?;
        let parity_tok = head_toks.next().ok_or(ParseLayoutError {
            line: ln + 1,
            reason: "missing parity cell".into(),
        })?;
        let parity = parse_cell(parity_tok, ln + 1)?;
        let members = members_str
            .split_whitespace()
            .map(|t| parse_cell(t, ln + 1))
            .collect::<Result<Vec<_>, _>>()?;
        chains.push(Chain { class, parity, members });
    }

    Ok(Layout::new(rows, cols, kinds, chains)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Layout {
        let c = Cell::new;
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Parity(ParityClass::Diagonal),
        ];
        let chains = vec![
            Chain { class: ParityClass::Horizontal, parity: c(0, 2), members: vec![c(0, 0), c(0, 1)] },
            Chain { class: ParityClass::Diagonal, parity: c(0, 3), members: vec![c(0, 0)] },
        ];
        Layout::new(1, 4, kinds, chains).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let l = toy();
        let spec = format_layout(&l);
        let back = parse_layout(&spec).unwrap();
        assert_eq!(back.rows(), l.rows());
        assert_eq!(back.cols(), l.cols());
        assert_eq!(back.chains(), l.chains());
        assert_eq!(back.render_ascii(), l.render_ascii());
    }

    #[test]
    fn hand_written_spec_parses() {
        let spec = "layout 1 3\nkinds\n..H\nchain H 0,2 = 0,0 0,1\n";
        let l = parse_layout(spec).unwrap();
        assert_eq!(l.num_data_cells(), 2);
        assert_eq!(l.chains().len(), 1);
    }

    #[test]
    fn error_positions_are_reported() {
        assert_eq!(parse_layout("").unwrap_err().line, 1);
        let bad_dim = parse_layout("layout 1 x\n").unwrap_err();
        assert!(bad_dim.reason.contains("bad dimension"));
        let bad_kinds = parse_layout("layout 1 3\nkinds\n..Z\n").unwrap_err();
        assert!(bad_kinds.reason.contains("unknown kind"));
        let bad_chain = parse_layout("layout 1 3\nkinds\n..H\nchainz\n").unwrap_err();
        assert_eq!(bad_chain.line, 4);
        let bad_cell =
            parse_layout("layout 1 3\nkinds\n..H\nchain H 0;2 = 0,0\n").unwrap_err();
        assert!(bad_cell.reason.contains("expected r,c"));
    }

    #[test]
    fn structural_validation_still_applies() {
        // Parity cell marked as data in the grid → Layout::new must reject.
        let spec = "layout 1 3\nkinds\n...\nchain H 0,2 = 0,0\n";
        let err = parse_layout(spec).unwrap_err();
        assert!(err.reason.contains("not marked as a parity"));
    }
}
