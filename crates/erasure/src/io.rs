//! Per-disk I/O accounting and the load-balancing rate λ of Eq. (7).
//!
//! Two types cover the whole workspace's accounting needs:
//!
//! * [`RequestSet`] — the per-disk element requests of **one** lowered
//!   operation (one pipeline commit): how many element reads, data-element
//!   writes and parity-element writes each disk must serve. This is the
//!   object handed verbatim to the disk simulator, so timing and
//!   accounting can never disagree about what was issued.
//! * [`IoLedger`] — cumulative counters built by absorbing request sets,
//!   replacing the seed's separate `IoReceipt` (per operation) and
//!   `IoTally` (per experiment): a ledger over one request set *is* the
//!   operation's receipt, and a ledger over a whole replay is the
//!   experiment's tally. The paper's λ (Eq. 7) derives from it.
//! * [`LedgerShard`] — a worker-private ledger tagged with its partition
//!   index. Partitioned executors give each stripe-range worker its own
//!   shard (no shared counter, no lock) and aggregate afterwards with
//!   [`IoLedger::merge_shards`], whose result is independent of the order
//!   the workers finished in.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Per-disk element requests of one lowered operation.
///
/// Element requests are the paper's unit: one request = one element-sized
/// transfer to or from one disk. Writes are split into data and parity so
/// update-complexity accounting survives the lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSet {
    reads: Vec<u64>,
    data_writes: Vec<u64>,
    parity_writes: Vec<u64>,
}

impl RequestSet {
    /// An empty request set over `disks` disks.
    pub fn new(disks: usize) -> Self {
        RequestSet {
            reads: vec![0; disks],
            data_writes: vec![0; disks],
            parity_writes: vec![0; disks],
        }
    }

    /// Number of disks addressed.
    pub fn disks(&self) -> usize {
        self.reads.len()
    }

    /// Records one element read on `disk`.
    pub fn add_read(&mut self, disk: usize) {
        self.reads[disk] += 1;
    }

    /// Records `n` element reads on `disk`.
    pub fn add_reads(&mut self, disk: usize, n: u64) {
        self.reads[disk] += n;
    }

    /// Records one data-element write on `disk`.
    pub fn add_data_write(&mut self, disk: usize) {
        self.data_writes[disk] += 1;
    }

    /// Records one parity-element write on `disk`.
    pub fn add_parity_write(&mut self, disk: usize) {
        self.parity_writes[disk] += 1;
    }

    /// Per-disk read counts.
    pub fn reads(&self) -> &[u64] {
        &self.reads
    }

    /// Per-disk write counts (data + parity).
    pub fn writes_per_disk(&self) -> Vec<u64> {
        self.data_writes
            .iter()
            .zip(&self.parity_writes)
            .map(|(d, p)| d + p)
            .collect()
    }

    /// Per-disk total requests (reads + writes) — what each spindle must
    /// serve for this operation; the disk simulator's input.
    pub fn per_disk_totals(&self) -> Vec<u64> {
        self.reads
            .iter()
            .zip(&self.data_writes)
            .zip(&self.parity_writes)
            .map(|((r, d), p)| r + d + p)
            .collect()
    }

    /// Total element reads.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total data-element writes.
    pub fn data_writes(&self) -> u64 {
        self.data_writes.iter().sum()
    }

    /// Total parity-element writes.
    pub fn parity_writes(&self) -> u64 {
        self.parity_writes.iter().sum()
    }

    /// Total element writes (data + parity).
    pub fn total_writes(&self) -> u64 {
        self.data_writes() + self.parity_writes()
    }

    /// Total requests.
    pub fn total(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }

    /// True if no request was recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Merges another request set into this one (same disk count).
    ///
    /// # Panics
    ///
    /// Panics if disk counts differ.
    pub fn merge(&mut self, other: &RequestSet) {
        assert_eq!(self.disks(), other.disks(), "request set disk count mismatch");
        for (a, b) in self.reads.iter_mut().zip(&other.reads) {
            *a += b;
        }
        for (a, b) in self.data_writes.iter_mut().zip(&other.data_writes) {
            *a += b;
        }
        for (a, b) in self.parity_writes.iter_mut().zip(&other.parity_writes) {
            *a += b;
        }
    }
}

/// Cumulative per-disk read/write counters: the single accounting type of
/// the workspace (one ledger per operation is that operation's receipt; one
/// ledger per experiment is its tally).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IoLedger {
    reads: Vec<u64>,
    data_writes: Vec<u64>,
    parity_writes: Vec<u64>,
    /// Operation retries after transient errors.
    retries: u64,
    /// Latent sector errors repaired by reconstruct-and-rewrite.
    latent_repairs: u64,
    /// Health-state transition log (`"healthy->degraded(1): disk #3 dead"`)
    /// in the order they occurred, so replay/reports can show what each
    /// failure episode cost.
    transitions: Vec<String>,
    /// Element reads served from the write-back stripe cache (no disk I/O).
    cache_hits: u64,
    /// Element reads the stripe cache had to forward to the disks.
    cache_misses: u64,
    /// Coalesced stripe flushes committed by the cache.
    cache_flushes: u64,
    /// Stripe-cache entries evicted under the memory budget.
    cache_evictions: u64,
}

impl IoLedger {
    /// A zeroed ledger for `disks` disks.
    pub fn new(disks: usize) -> Self {
        IoLedger {
            reads: vec![0; disks],
            data_writes: vec![0; disks],
            parity_writes: vec![0; disks],
            retries: 0,
            latent_repairs: 0,
            transitions: Vec::new(),
            cache_hits: 0,
            cache_misses: 0,
            cache_flushes: 0,
            cache_evictions: 0,
        }
    }

    /// Number of disks tracked.
    pub fn disks(&self) -> usize {
        self.reads.len()
    }

    /// Absorbs one operation's request set.
    ///
    /// # Panics
    ///
    /// Panics if disk counts differ.
    pub fn absorb(&mut self, rs: &RequestSet) {
        assert_eq!(self.disks(), rs.disks(), "ledger disk count mismatch");
        for (a, b) in self.reads.iter_mut().zip(rs.reads()) {
            *a += b;
        }
        for (a, b) in self.data_writes.iter_mut().zip(&rs.data_writes) {
            *a += b;
        }
        for (a, b) in self.parity_writes.iter_mut().zip(&rs.parity_writes) {
            *a += b;
        }
    }

    /// Records `n` element reads on `disk` (planner-side accounting that
    /// has no materialized [`RequestSet`]).
    pub fn add_reads(&mut self, disk: usize, n: u64) {
        self.reads[disk] += n;
    }

    /// Records `n` data-element writes on `disk`.
    pub fn add_data_writes(&mut self, disk: usize, n: u64) {
        self.data_writes[disk] += n;
    }

    /// Records `n` parity-element writes on `disk`.
    pub fn add_parity_writes(&mut self, disk: usize, n: u64) {
        self.parity_writes[disk] += n;
    }

    /// Records one operation retry after a transient error.
    pub fn note_retry(&mut self) {
        self.retries += 1;
    }

    /// Records one latent-sector reconstruct-and-rewrite repair.
    pub fn note_latent_repair(&mut self) {
        self.latent_repairs += 1;
    }

    /// Appends a health-state transition to the log.
    pub fn note_transition(&mut self, transition: impl Into<String>) {
        self.transitions.push(transition.into());
    }

    /// Records `n` element reads served straight from the stripe cache.
    pub fn note_cache_hits(&mut self, n: u64) {
        self.cache_hits += n;
    }

    /// Records `n` element reads the stripe cache forwarded to the disks.
    pub fn note_cache_misses(&mut self, n: u64) {
        self.cache_misses += n;
    }

    /// Records one coalesced stripe flush committed by the cache.
    pub fn note_cache_flush(&mut self) {
        self.cache_flushes += 1;
    }

    /// Records one stripe-cache eviction under the memory budget.
    pub fn note_cache_eviction(&mut self) {
        self.cache_evictions += 1;
    }

    /// Element reads served from the stripe cache so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Element reads the stripe cache forwarded to the disks so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Coalesced stripe flushes committed so far.
    pub fn cache_flushes(&self) -> u64 {
        self.cache_flushes
    }

    /// Stripe-cache evictions so far.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions
    }

    /// Operation retries recorded so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Latent-sector repairs recorded so far.
    pub fn latent_repairs(&self) -> u64 {
        self.latent_repairs
    }

    /// The health-state transition log, oldest first.
    pub fn transitions(&self) -> &[String] {
        &self.transitions
    }

    /// Per-disk read counts.
    pub fn reads(&self) -> &[u64] {
        &self.reads
    }

    /// Per-disk write counts (data + parity).
    pub fn writes(&self) -> Vec<u64> {
        self.data_writes
            .iter()
            .zip(&self.parity_writes)
            .map(|(d, p)| d + p)
            .collect()
    }

    /// Per-disk total requests (reads + writes).
    pub fn per_disk_totals(&self) -> Vec<u64> {
        self.reads
            .iter()
            .zip(&self.data_writes)
            .zip(&self.parity_writes)
            .map(|((r, d), p)| r + d + p)
            .collect()
    }

    /// Total reads across all disks.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total data-element writes.
    pub fn data_writes(&self) -> u64 {
        self.data_writes.iter().sum()
    }

    /// Total parity-element writes.
    pub fn parity_writes(&self) -> u64 {
        self.parity_writes.iter().sum()
    }

    /// Total writes across all disks.
    pub fn total_writes(&self) -> u64 {
        self.data_writes() + self.parity_writes()
    }

    /// Total requests (reads + writes).
    pub fn total(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }

    /// Merges another ledger into this one.
    ///
    /// # Panics
    ///
    /// Panics if disk counts differ.
    pub fn merge(&mut self, other: &IoLedger) {
        assert_eq!(self.disks(), other.disks(), "ledger disk count mismatch");
        for (a, b) in self.reads.iter_mut().zip(&other.reads) {
            *a += b;
        }
        for (a, b) in self.data_writes.iter_mut().zip(&other.data_writes) {
            *a += b;
        }
        for (a, b) in self.parity_writes.iter_mut().zip(&other.parity_writes) {
            *a += b;
        }
        self.retries += other.retries;
        self.latent_repairs += other.latent_repairs;
        self.transitions.extend(other.transitions.iter().cloned());
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_flushes += other.cache_flushes;
        self.cache_evictions += other.cache_evictions;
    }

    /// The ledger's growth since `baseline` (an earlier snapshot of the
    /// same ledger) — the replay engine's per-experiment delta.
    ///
    /// # Panics
    ///
    /// Panics if disk counts differ or `baseline` is not an earlier
    /// snapshot (some counter would go negative).
    pub fn delta_since(&self, baseline: &IoLedger) -> IoLedger {
        assert_eq!(self.disks(), baseline.disks(), "ledger disk count mismatch");
        let sub = |a: &[u64], b: &[u64]| -> Vec<u64> {
            a.iter()
                .zip(b)
                .map(|(x, y)| x.checked_sub(*y).expect("baseline is not an earlier snapshot"))
                .collect()
        };
        let scalar = |a: u64, b: u64| -> u64 {
            a.checked_sub(b).expect("baseline is not an earlier snapshot")
        };
        IoLedger {
            reads: sub(&self.reads, &baseline.reads),
            data_writes: sub(&self.data_writes, &baseline.data_writes),
            parity_writes: sub(&self.parity_writes, &baseline.parity_writes),
            retries: scalar(self.retries, baseline.retries),
            latent_repairs: scalar(self.latent_repairs, baseline.latent_repairs),
            transitions: self
                .transitions
                .get(baseline.transitions.len()..)
                .expect("baseline is not an earlier snapshot")
                .to_vec(),
            cache_hits: scalar(self.cache_hits, baseline.cache_hits),
            cache_misses: scalar(self.cache_misses, baseline.cache_misses),
            cache_flushes: scalar(self.cache_flushes, baseline.cache_flushes),
            cache_evictions: scalar(self.cache_evictions, baseline.cache_evictions),
        }
    }

    /// The paper's load balancing rate λ (Eq. 7) over **write** requests:
    /// `λ = max_i R_i / min_i R_i`.
    ///
    /// Returns `f64::INFINITY` when some disk received zero writes while
    /// another received some — the most unbalanced outcome — and 1.0 when
    /// no disk received any write.
    pub fn write_balance_rate(&self) -> f64 {
        balance(&self.writes())
    }

    /// λ computed over total (read + write) requests.
    pub fn total_balance_rate(&self) -> f64 {
        balance(&self.per_disk_totals())
    }

    /// Aggregates worker-private [`LedgerShard`]s into one ledger.
    ///
    /// The result is **order-independent**: shards are first sorted by
    /// their partition index, so any permutation of `shards` (any worker
    /// completion order) produces the same ledger. Every numeric counter
    /// is a commutative sum, and the one ordered field — the transition
    /// log — is concatenated in ascending partition order, making the
    /// output a pure function of the *set* of shards handed in.
    ///
    /// # Panics
    ///
    /// Panics if two shards carry the same partition index (each
    /// partition must have exactly one owner) or disk counts differ.
    pub fn merge_shards(disks: usize, shards: Vec<LedgerShard>) -> IoLedger {
        let mut shards = shards;
        shards.sort_by_key(|s| s.index());
        let mut merged = IoLedger::new(disks);
        let mut last: Option<usize> = None;
        for shard in shards {
            assert!(
                last != Some(shard.index()),
                "duplicate ledger shard for partition {}",
                shard.index()
            );
            last = Some(shard.index());
            merged.merge(&shard.ledger);
        }
        merged
    }
}

/// A worker-private [`IoLedger`] tagged with the partition it accounts
/// for. Derefs to the inner ledger, so every `note_*` / `absorb` call
/// works on a shard unchanged — the only addition is the identity that
/// makes [`IoLedger::merge_shards`] order-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerShard {
    shard: usize,
    ledger: IoLedger,
}

impl LedgerShard {
    /// A zeroed shard owning partition `shard` over `disks` disks.
    pub fn new(shard: usize, disks: usize) -> Self {
        LedgerShard { shard, ledger: IoLedger::new(disks) }
    }

    /// The partition index this shard accounts for.
    pub fn index(&self) -> usize {
        self.shard
    }

    /// The accumulated counters, by reference.
    pub fn ledger(&self) -> &IoLedger {
        &self.ledger
    }

    /// Unwraps the accumulated counters.
    pub fn into_ledger(self) -> IoLedger {
        self.ledger
    }
}

impl Deref for LedgerShard {
    type Target = IoLedger;
    fn deref(&self) -> &IoLedger {
        &self.ledger
    }
}

impl DerefMut for LedgerShard {
    fn deref_mut(&mut self) -> &mut IoLedger {
        &mut self.ledger
    }
}

fn balance(counts: &[u64]) -> f64 {
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    if max == 0 {
        1.0
    } else if min == 0 {
        f64::INFINITY
    } else {
        max as f64 / min as f64
    }
}

impl fmt::Display for IoLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={:?} writes={:?} λw={:.2}",
            self.reads,
            self.writes(),
            self.write_balance_rate()
        )?;
        if self.retries > 0 || self.latent_repairs > 0 {
            write!(f, " retries={} latent_repairs={}", self.retries, self.latent_repairs)?;
        }
        if self.cache_hits > 0 || self.cache_misses > 0 || self.cache_flushes > 0 {
            write!(
                f,
                " cache_hits={} cache_misses={} cache_flushes={} cache_evictions={}",
                self.cache_hits, self.cache_misses, self.cache_flushes, self.cache_evictions
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_set_totals_and_split() {
        let mut rs = RequestSet::new(3);
        rs.add_read(0);
        rs.add_reads(0, 4);
        rs.add_data_write(1);
        rs.add_parity_write(2);
        rs.add_parity_write(2);
        assert_eq!(rs.total_reads(), 5);
        assert_eq!(rs.data_writes(), 1);
        assert_eq!(rs.parity_writes(), 2);
        assert_eq!(rs.total_writes(), 3);
        assert_eq!(rs.total(), 8);
        assert_eq!(rs.per_disk_totals(), vec![5, 1, 2]);
        assert_eq!(rs.writes_per_disk(), vec![0, 1, 2]);
        assert!(!rs.is_empty());
        assert!(RequestSet::new(2).is_empty());
    }

    #[test]
    fn ledger_absorbs_and_merges() {
        let mut a = IoLedger::new(3);
        a.add_reads(0, 5);
        a.add_parity_writes(2, 7);
        let mut rs = RequestSet::new(3);
        rs.add_data_write(0);
        rs.add_data_write(1);
        rs.add_data_write(1);
        rs.add_parity_write(2);
        rs.add_parity_write(2);
        rs.add_parity_write(2);
        a.absorb(&rs);
        assert_eq!(a.total_reads(), 5);
        assert_eq!(a.total_writes(), 13);
        assert_eq!(a.total(), 18);
        assert_eq!(a.writes(), vec![1, 2, 10]);

        let mut b = IoLedger::new(3);
        b.add_reads(1, 2);
        b.merge(&a);
        assert_eq!(b.total(), 20);
    }

    #[test]
    fn lambda_matches_equation_seven() {
        let mut t = IoLedger::new(4);
        for (d, n) in [(0, 10u64), (1, 5), (2, 20), (3, 10)] {
            t.add_data_writes(d, n);
        }
        assert!((t.write_balance_rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_edge_cases() {
        let t = IoLedger::new(2);
        assert_eq!(t.write_balance_rate(), 1.0);
        let mut t2 = IoLedger::new(2);
        t2.add_data_writes(0, 3);
        assert!(t2.write_balance_rate().is_infinite());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn merge_requires_same_shape() {
        let mut a = IoLedger::new(2);
        a.merge(&IoLedger::new(3));
    }

    #[test]
    fn total_balance_combines_reads_and_writes() {
        let mut t = IoLedger::new(2);
        t.add_reads(0, 4);
        t.add_data_writes(1, 2);
        assert!((t.total_balance_rate() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn delta_since_subtracts_a_snapshot() {
        let mut t = IoLedger::new(2);
        t.add_reads(0, 4);
        let snap = t.clone();
        t.add_reads(0, 1);
        t.add_data_writes(1, 3);
        let d = t.delta_since(&snap);
        assert_eq!(d.total_reads(), 1);
        assert_eq!(d.total_writes(), 3);
    }

    #[test]
    fn healing_counters_merge_and_delta() {
        let mut a = IoLedger::new(2);
        a.note_retry();
        a.note_retry();
        a.note_latent_repair();
        a.note_transition("healthy->degraded(1): disk #0 dead");
        let snap = a.clone();
        a.note_retry();
        a.note_transition("degraded(1)->healthy: rebuild complete");
        let d = a.delta_since(&snap);
        assert_eq!(d.retries(), 1);
        assert_eq!(d.latent_repairs(), 0);
        assert_eq!(d.transitions(), ["degraded(1)->healthy: rebuild complete"]);

        let mut b = IoLedger::new(2);
        b.note_latent_repair();
        b.merge(&a);
        assert_eq!(b.retries(), 3);
        assert_eq!(b.latent_repairs(), 2);
        assert_eq!(b.transitions().len(), 2);
        assert!(format!("{b}").contains("retries=3"));
    }

    #[test]
    fn cache_counters_merge_delta_and_display() {
        let mut a = IoLedger::new(2);
        a.note_cache_hits(5);
        a.note_cache_misses(2);
        a.note_cache_flush();
        let snap = a.clone();
        a.note_cache_hits(1);
        a.note_cache_eviction();
        let d = a.delta_since(&snap);
        assert_eq!(d.cache_hits(), 1);
        assert_eq!(d.cache_misses(), 0);
        assert_eq!(d.cache_flushes(), 0);
        assert_eq!(d.cache_evictions(), 1);

        let mut b = IoLedger::new(2);
        b.note_cache_flush();
        b.merge(&a);
        assert_eq!(b.cache_hits(), 6);
        assert_eq!(b.cache_misses(), 2);
        assert_eq!(b.cache_flushes(), 2);
        assert_eq!(b.cache_evictions(), 1);
        let shown = format!("{b}");
        assert!(shown.contains("cache_hits=6"));
        assert!(shown.contains("cache_evictions=1"));
        // A ledger that never saw a cache stays terse.
        assert!(!format!("{}", IoLedger::new(2)).contains("cache"));
    }

    #[test]
    #[should_panic(expected = "earlier snapshot")]
    fn delta_rejects_future_baseline() {
        let mut t = IoLedger::new(1);
        t.add_reads(0, 4);
        IoLedger::new(1).delta_since(&t);
    }

    /// Builds three distinguishable shards: different counters, different
    /// transition lines, so a wrong merge order cannot cancel out.
    fn sample_shards() -> Vec<LedgerShard> {
        (0..3)
            .map(|i| {
                let mut s = LedgerShard::new(i, 2);
                s.add_reads(0, (i as u64 + 1) * 3);
                s.add_data_writes(1, i as u64);
                s.note_retry();
                s.note_cache_hits(i as u64);
                s.note_transition(format!("shard {i} transition"));
                s
            })
            .collect()
    }

    #[test]
    fn merge_shards_is_order_independent() {
        let base = IoLedger::merge_shards(2, sample_shards());
        // Every permutation of three shards.
        for perm in [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let shards = sample_shards();
            let shuffled: Vec<LedgerShard> =
                perm.iter().map(|&i| shards[i].clone()).collect();
            assert_eq!(IoLedger::merge_shards(2, shuffled), base);
        }
        // Transitions come out in ascending partition order.
        assert_eq!(
            base.transitions(),
            ["shard 0 transition", "shard 1 transition", "shard 2 transition"]
        );
    }

    #[test]
    fn merge_shards_equals_sequential_single_ledger() {
        // Feeding the same op stream through one ledger or through shards
        // split by owner must agree on every total.
        let mut ops = Vec::new();
        for i in 0..12u64 {
            let mut rs = RequestSet::new(3);
            rs.add_reads((i % 3) as usize, i + 1);
            rs.add_data_write(((i + 1) % 3) as usize);
            rs.add_parity_write(((i + 2) % 3) as usize);
            ops.push(rs);
        }
        let mut sequential = IoLedger::new(3);
        for rs in &ops {
            sequential.absorb(rs);
        }
        let mut shards: Vec<LedgerShard> =
            (0..4).map(|i| LedgerShard::new(i, 3)).collect();
        for (i, rs) in ops.iter().enumerate() {
            shards[i % 4].absorb(rs);
        }
        let merged = IoLedger::merge_shards(3, shards);
        assert_eq!(merged.reads(), sequential.reads());
        assert_eq!(merged.writes(), sequential.writes());
        assert_eq!(merged.total(), sequential.total());
    }

    #[test]
    fn shard_derefs_to_ledger() {
        let mut s = LedgerShard::new(7, 2);
        s.note_retry();
        s.add_reads(1, 4);
        assert_eq!(s.index(), 7);
        assert_eq!(s.ledger().retries(), 1);
        assert_eq!(s.into_ledger().total_reads(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate ledger shard")]
    fn merge_shards_rejects_duplicate_partitions() {
        let shards = vec![LedgerShard::new(1, 2), LedgerShard::new(1, 2)];
        IoLedger::merge_shards(2, shards);
    }
}
