//! Per-disk I/O accounting and the load-balancing rate λ of Eq. (7).

use std::fmt;

/// Read/write request counts per disk for one experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoTally {
    reads: Vec<u64>,
    writes: Vec<u64>,
}

impl IoTally {
    /// A zeroed tally for `disks` disks.
    pub fn new(disks: usize) -> Self {
        IoTally { reads: vec![0; disks], writes: vec![0; disks] }
    }

    /// Number of disks tracked.
    pub fn disks(&self) -> usize {
        self.reads.len()
    }

    /// Records `n` element reads on `disk`.
    pub fn add_reads(&mut self, disk: usize, n: u64) {
        self.reads[disk] += n;
    }

    /// Records `n` element writes on `disk`.
    pub fn add_writes(&mut self, disk: usize, n: u64) {
        self.writes[disk] += n;
    }

    /// Per-disk read counts.
    pub fn reads(&self) -> &[u64] {
        &self.reads
    }

    /// Per-disk write counts.
    pub fn writes(&self) -> &[u64] {
        &self.writes
    }

    /// Total reads across all disks.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total writes across all disks.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Total requests (reads + writes).
    pub fn total(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }

    /// Merges another tally into this one.
    ///
    /// # Panics
    ///
    /// Panics if disk counts differ.
    pub fn merge(&mut self, other: &IoTally) {
        assert_eq!(self.disks(), other.disks(), "tally disk count mismatch");
        for (a, b) in self.reads.iter_mut().zip(&other.reads) {
            *a += b;
        }
        for (a, b) in self.writes.iter_mut().zip(&other.writes) {
            *a += b;
        }
    }

    /// The paper's load balancing rate λ (Eq. 7) over **write** requests:
    /// `λ = max_i R_i / min_i R_i`.
    ///
    /// Returns `f64::INFINITY` when some disk received zero writes while
    /// another received some — the most unbalanced outcome — and 1.0 when
    /// no disk received any write.
    pub fn write_balance_rate(&self) -> f64 {
        balance(&self.writes)
    }

    /// λ computed over total (read + write) requests.
    pub fn total_balance_rate(&self) -> f64 {
        let totals: Vec<u64> =
            self.reads.iter().zip(&self.writes).map(|(r, w)| r + w).collect();
        balance(&totals)
    }
}

fn balance(counts: &[u64]) -> f64 {
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    if max == 0 {
        1.0
    } else if min == 0 {
        f64::INFINITY
    } else {
        max as f64 / min as f64
    }
}

impl fmt::Display for IoTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reads={:?} writes={:?} λw={:.2}", self.reads, self.writes, self.write_balance_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = IoTally::new(3);
        a.add_reads(0, 5);
        a.add_writes(2, 7);
        let mut b = IoTally::new(3);
        b.add_writes(0, 1);
        b.add_writes(1, 2);
        b.add_writes(2, 3);
        a.merge(&b);
        assert_eq!(a.total_reads(), 5);
        assert_eq!(a.total_writes(), 13);
        assert_eq!(a.total(), 18);
        assert_eq!(a.writes(), &[1, 2, 10]);
    }

    #[test]
    fn lambda_matches_equation_seven() {
        let mut t = IoTally::new(4);
        for (d, n) in [(0, 10u64), (1, 5), (2, 20), (3, 10)] {
            t.add_writes(d, n);
        }
        assert!((t.write_balance_rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_edge_cases() {
        let t = IoTally::new(2);
        assert_eq!(t.write_balance_rate(), 1.0);
        let mut t2 = IoTally::new(2);
        t2.add_writes(0, 3);
        assert!(t2.write_balance_rate().is_infinite());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn merge_requires_same_shape() {
        let mut a = IoTally::new(2);
        a.merge(&IoTally::new(3));
    }

    #[test]
    fn total_balance_combines_reads_and_writes() {
        let mut t = IoTally::new(2);
        t.add_reads(0, 4);
        t.add_writes(1, 2);
        assert!((t.total_balance_rate() - 2.0).abs() < 1e-12);
    }
}
