//! Plan-optimizing middle-end between plan compilation and execution.
//!
//! [`optimize`] rewrites an [`XorPlan`] into a cheaper plan computing the
//! same GF(2) function of the stripe's initial contents, in three passes:
//!
//! 1. **Partial-sum sharing (CSE)** — any source set shared by two or more
//!    ops becomes one value computed once. Two flavours, picked greedily
//!    by saved reads: *output reuse* (the set is exactly some op's whole
//!    source list, so later ops read that op's target instead — this is
//!    how the optimizer rediscovers RDP/HDP's parity cascades from the
//!    expanded specification form) and *temp extraction* (the shared set
//!    becomes a scratch temp in the plan's arena — EVENODD's S-adjuster
//!    diagonal, shared by every diagonal chain, is the canonical win).
//! 2. **Dead-op elimination** — ops whose target is never read and is not
//!    in the plan's output set are dropped (backward liveness).
//! 3. **Locality reordering** — list scheduling over the dependency DAG,
//!    greedily picking the ready op sharing the most sources with the
//!    previously scheduled one, so consecutive kernel calls re-touch
//!    cache-hot buffers.
//!
//! # Soundness
//!
//! Sharing a set `S` across ops is only valid if every participant reads
//! the *same version* of each cell in `S`: for every `c ∈ S` written at
//! position `w(c)`, the pass requires `w(c)` to fall entirely before or
//! entirely after all participating positions. Plans that are not
//! single-assignment, or that carry duplicate sources, are returned
//! unchanged. As a belt-and-braces guard, the optimizer symbolically
//! executes original and candidate over GF(2) and falls back to the
//! original on any mismatch — and `raid-verify`'s `prove_equivalent`
//! re-proves the same property independently for every plan the codes
//! actually cache.
//!
//! The optimizer never returns a plan with more source reads than its
//! input (lint asserts this for every registered code).

use std::collections::BTreeSet;

use crate::bitset::BitSet;
use crate::xplan::XorPlan;

/// A set of buffer indices as packed words — the optimizer's working
/// representation. Intersection, subset and difference are a handful of
/// `u64` ops, which is what keeps the greedy sharing search fast on the
/// large decode plans (EVENODD and Liberation at p = 17 compile to ops
/// with ~2p sources each). `Ord` is lexicographic on the word vector,
/// giving the candidate walk a deterministic order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
struct Mask {
    words: Vec<u64>,
}

impl Mask {
    fn insert(&mut self, i: u32) {
        let w = (i / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (i % 64);
    }

    fn contains(&self, i: u32) -> bool {
        let w = (i / 64) as usize;
        w < self.words.len() && self.words[w] & (1 << (i % 64)) != 0
    }

    fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self ∩ other`, trimmed of trailing zero words (so equal sets
    /// always compare equal regardless of how they were built).
    fn intersect(&self, other: &Mask) -> Mask {
        let mut words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        while words.last() == Some(&0) {
            words.pop();
        }
        Mask { words }
    }

    fn is_subset(&self, other: &Mask) -> bool {
        self.words.iter().enumerate().all(|(w, &bits)| {
            bits & !other.words.get(w).copied().unwrap_or(0) == 0
        })
    }

    /// Removes every bit of `other` from `self`.
    fn subtract(&mut self, other: &Mask) {
        for (w, bits) in self.words.iter_mut().zip(&other.words) {
            *w &= !bits;
        }
    }

    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut rest = bits;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros();
                rest &= rest - 1;
                Some(w as u32 * 64 + b)
            })
        })
    }

    fn overlap(&self, other: &Mask) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
}

impl FromIterator<u32> for Mask {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Mask {
        let mut m = Mask::default();
        for i in iter {
            m.insert(i);
        }
        m
    }
}

/// What [`optimize`] did to one plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Ops in the input plan.
    pub ops_before: usize,
    /// Source reads in the input plan.
    pub reads_before: usize,
    /// Ops in the optimized plan (including temp-producing ops).
    pub ops_after: usize,
    /// Source reads in the optimized plan.
    pub reads_after: usize,
    /// Scratch temps the optimized plan allocates per execution.
    pub temps: usize,
    /// Ops removed as dead (target never read, not an output).
    pub dead_removed: usize,
}

impl OptStats {
    /// Reads saved, as a percentage of the input plan's reads.
    pub fn reads_saved_pct(&self) -> f64 {
        if self.reads_before == 0 {
            0.0
        } else {
            100.0 * (self.reads_before.saturating_sub(self.reads_after)) as f64
                / self.reads_before as f64
        }
    }
}

/// One op during optimization: target index + source index *set* (XOR is
/// commutative/associative and the input had no duplicate sources, so a
/// set loses nothing).
#[derive(Debug, Clone)]
struct Op {
    dst: u32,
    srcs: Mask,
}

/// How the best CSE candidate of a round is applied.
enum Action {
    /// Consumers (positions) replace set `s` with producer op's target.
    Reuse { producer: usize, consumers: Vec<usize>, s: Mask },
    /// A fresh temp `t = XOR(s)` is inserted before position `first`,
    /// and all users replace `s` with the temp.
    Temp { users: Vec<usize>, first: usize, s: Mask },
}

/// Optimizes `plan`; returns the rewritten plan and what changed.
///
/// The result always computes the same GF(2) function of the stripe's
/// initial contents for every cell in the plan's output set, and never
/// has more source reads than `plan`. On plans the passes cannot safely
/// reason about (duplicate sources, multiple writes to one target) the
/// input is returned unchanged.
pub fn optimize(plan: &XorPlan) -> (XorPlan, OptStats) {
    let mut stats = OptStats {
        ops_before: plan.num_ops(),
        reads_before: plan.num_source_reads(),
        ops_after: plan.num_ops(),
        reads_after: plan.num_source_reads(),
        temps: plan.num_temps(),
        ..OptStats::default()
    };
    let ncells = plan.rows() * plan.cols();
    let mut nbufs = ncells + plan.num_temps();

    // Parse into set-based ops; bail (return the input unchanged) on
    // shapes the sharing passes can't reason about.
    let mut ops: Vec<Op> = Vec::with_capacity(plan.num_ops());
    let mut written = Mask::default();
    for view in plan.step_views() {
        let srcs: Mask = view.srcs.iter().copied().collect();
        if srcs.len() != view.srcs.len() {
            return (plan.clone(), stats); // duplicate sources
        }
        if written.contains(view.dst) {
            return (plan.clone(), stats); // not single-assignment
        }
        written.insert(view.dst);
        ops.push(Op { dst: view.dst, srcs });
    }

    let outputs: Vec<u32> = plan.output_indices();
    let output_set: BTreeSet<u32> = outputs.iter().copied().collect();

    // Pass 1: greedy partial-sum sharing. The candidate pool (pairwise
    // source-set intersections) is built once and maintained
    // incrementally: an action only changes the ops it rewired, so only
    // pairs involving those ops can mint new candidates; candidates that
    // drop below two users are pruned inside `best_sharing`.
    let mut cands: BTreeSet<Mask> = BTreeSet::new();
    let mint = |cands: &mut BTreeSet<Mask>, ops: &[Op], changed: &[usize]| {
        for &i in changed {
            for (j, other) in ops.iter().enumerate() {
                if i != j && ops[i].srcs.overlap(&other.srcs) >= 2 {
                    cands.insert(ops[i].srcs.intersect(&other.srcs));
                }
            }
        }
    };
    let all: Vec<usize> = (0..ops.len()).collect();
    mint(&mut cands, &ops, &all);
    while let Some(action) = best_sharing(&mut cands, &ops, nbufs as u32) {
        let changed: Vec<usize> = match action {
            Action::Reuse { producer, consumers, s } => {
                let pd = ops[producer].dst;
                for &u in &consumers {
                    let op = &mut ops[u];
                    op.srcs.subtract(&s);
                    op.srcs.insert(pd);
                }
                consumers
            }
            Action::Temp { users, first, s } => {
                let t = nbufs as u32;
                nbufs += 1;
                for &u in &users {
                    let op = &mut ops[u];
                    op.srcs.subtract(&s);
                    op.srcs.insert(t);
                }
                ops.insert(first, Op { dst: t, srcs: s });
                // The insertion shifted every position at or past `first`.
                users
                    .into_iter()
                    .map(|u| if u >= first { u + 1 } else { u })
                    .chain([first])
                    .collect()
            }
        };
        mint(&mut cands, &ops, &changed);
    }

    // Pass 2: dead-op elimination (backward liveness against the output
    // set; temps are never outputs, so an unused temp dies here too).
    let mut live: Mask = output_set.iter().copied().collect();
    let mut keep = vec![false; ops.len()];
    for i in (0..ops.len()).rev() {
        if live.contains(ops[i].dst) {
            keep[i] = true;
            for s in ops[i].srcs.iter() {
                live.insert(s);
            }
        }
    }
    let before = ops.len();
    let mut kept = Vec::with_capacity(ops.len());
    for (op, k) in ops.into_iter().zip(&keep) {
        if *k {
            kept.push(op);
        }
    }
    let dead_removed = before - kept.len();
    let ops = reorder_for_locality(kept);

    let reads_after: usize = ops.iter().map(|op| op.srcs.len()).sum();
    if reads_after > stats.reads_before {
        return (plan.clone(), stats);
    }

    // Belt-and-braces: symbolic GF(2) self-check against the input.
    if !equivalent(plan, &ops, ncells, nbufs, &output_set) {
        debug_assert!(false, "xopt produced a non-equivalent plan");
        return (plan.clone(), stats);
    }

    let indexed: Vec<(u32, Vec<u32>)> =
        ops.iter().map(|op| (op.dst, op.srcs.iter().collect())).collect();
    let optimized = XorPlan::from_indexed_ops(
        plan.rows(),
        plan.cols(),
        nbufs - ncells,
        &indexed,
        Some(outputs),
    );
    stats.ops_after = optimized.num_ops();
    stats.reads_after = optimized.num_source_reads();
    stats.temps = optimized.num_temps();
    stats.dead_removed = dead_removed;
    (optimized, stats)
}

/// Finds the sharing action with the largest positive read saving this
/// round, or `None` when no profitable sharing remains. Deterministic:
/// candidates are visited in sorted order and only a strictly better
/// saving displaces the current best. Candidates that no longer have two
/// users are removed from the pool (pairs the caller rewires later mint
/// their intersections afresh).
fn best_sharing(cands: &mut BTreeSet<Mask>, ops: &[Op], nbufs: u32) -> Option<Action> {
    // Writer position per buffer index (plans here are single-assignment).
    let mut writer: Vec<Option<usize>> = vec![None; nbufs as usize];
    for (i, op) in ops.iter().enumerate() {
        writer[op.dst as usize] = Some(i);
    }
    // The same version of every shared cell must be visible to all
    // participating positions: its writer lies entirely before or
    // entirely after them.
    let consistent = |s: &Mask, lo: usize, hi: usize| {
        s.iter().all(|c| match writer[c as usize] {
            None => true,
            Some(w) => w < lo || w > hi,
        })
    };

    let mut best: Option<(usize, Action)> = None;
    let consider = |saving: usize, action: Action, best: &mut Option<(usize, Action)>| {
        if saving > 0 && best.as_ref().is_none_or(|(b, _)| saving > *b) {
            *best = Some((saving, action));
        }
    };

    let mut dead: Vec<Mask> = Vec::new();
    for s in cands.iter() {
        let users: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, op)| s.is_subset(&op.srcs))
            .map(|(k, _)| k)
            .collect();
        if users.len() < 2 {
            dead.push(s.clone());
            continue;
        }

        // Output reuse: the earliest op computing exactly XOR(s) feeds
        // every later user directly.
        if let Some(&producer) = users.iter().find(|&&k| ops[k].srcs == *s) {
            let pd = ops[producer].dst;
            let consumers: Vec<usize> = users
                .iter()
                .copied()
                .filter(|&u| u > producer && !ops[u].srcs.contains(pd))
                .collect();
            if !consumers.is_empty() {
                let hi = *consumers.last().expect("non-empty");
                if consistent(s, producer, hi) {
                    let saving = consumers.len() * (s.len() - 1);
                    consider(
                        saving,
                        Action::Reuse { producer, consumers, s: s.clone() },
                        &mut best,
                    );
                }
            }
        }

        // Temp extraction: compute XOR(s) once into a scratch temp.
        let (lo, hi) = (users[0], *users.last().expect("non-empty"));
        if consistent(s, lo, hi) {
            let gross = users.len() * (s.len() - 1);
            if gross > s.len() {
                consider(
                    gross - s.len(),
                    Action::Temp { users: users.clone(), first: lo, s: s.clone() },
                    &mut best,
                );
            }
        }
    }
    for s in dead {
        cands.remove(&s);
    }
    best.map(|(_, a)| a)
}

/// List-schedules ops over their dependency DAG, greedily picking the
/// ready op that shares the most sources with the previously scheduled
/// one (ties: original order). True dependencies (read-after-write) and
/// anti-dependencies (read-before-overwrite) are both preserved.
fn reorder_for_locality(ops: Vec<Op>) -> Vec<Op> {
    let n = ops.len();
    if n <= 2 {
        return ops;
    }
    let writer: std::collections::BTreeMap<u32, usize> =
        ops.iter().enumerate().map(|(i, op)| (op.dst, i)).collect();
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (j, op) in ops.iter().enumerate() {
        for c in op.srcs.iter() {
            if let Some(&w) = writer.get(&c) {
                if w < j {
                    edges.insert((w, j)); // true dep: writer before reader
                } else if w > j {
                    edges.insert((j, w)); // anti dep: reader before overwrite
                }
            }
        }
    }
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut out: Vec<Op> = Vec::with_capacity(n);
    let mut prev_srcs: Option<Mask> = None;
    let mut scheduled = vec![false; n];
    while let Some(pos) = {
        // Pick the ready op with max source overlap with the previous op.
        let mut pick: Option<(usize, usize)> = None; // (overlap, ready idx)
        for (ri, &i) in ready.iter().enumerate() {
            let overlap = prev_srcs
                .as_ref()
                .map_or(0, |p| p.overlap(&ops[i].srcs));
            let better = match pick {
                None => true,
                Some((bo, bri)) => overlap > bo || (overlap == bo && i < ready[bri]),
            };
            if better {
                pick = Some((overlap, ri));
            }
        }
        pick.map(|(_, ri)| ri)
    } {
        let i = ready.swap_remove(pos);
        scheduled[i] = true;
        prev_srcs = Some(ops[i].srcs.clone());
        for &next in &adj[i] {
            indeg[next] -= 1;
            if indeg[next] == 0 {
                ready.push(next);
            }
        }
        out.push(ops[i].clone());
    }
    debug_assert!(scheduled.iter().all(|&s| s), "dependency cycle in plan");
    if out.len() != n {
        // A cycle would mean the input plan was malformed; keep its order.
        return ops;
    }
    out
}

/// Symbolically executes `plan` and the candidate op list over GF(2)
/// (basis = the grid's initial contents, temps start at zero) and checks
/// every output cell — plus every grid cell the candidate writes — ends
/// with the same expression.
fn equivalent(
    plan: &XorPlan,
    cand: &[Op],
    ncells: usize,
    nbufs: usize,
    outputs: &BTreeSet<u32>,
) -> bool {
    let run = |steps: &mut dyn Iterator<Item = (u32, Vec<u32>)>| -> Vec<BitSet> {
        let mut state: Vec<BitSet> = (0..nbufs)
            .map(|i| {
                let mut b = BitSet::new(ncells);
                if i < ncells {
                    b.insert(i);
                }
                b
            })
            .collect();
        for (dst, srcs) in steps {
            let mut acc = BitSet::new(ncells);
            for s in srcs {
                acc.xor_with(&state[s as usize]);
            }
            state[dst as usize] = acc;
        }
        state
    };
    let orig = run(&mut plan
        .step_views()
        .map(|v| (v.dst, v.srcs.to_vec())));
    let new = run(&mut cand
        .iter()
        .map(|op| (op.dst, op.srcs.iter().collect())));
    let mut must_match: BTreeSet<u32> = outputs.clone();
    must_match.extend(cand.iter().map(|op| op.dst).filter(|&d| (d as usize) < ncells));
    must_match
        .iter()
        .all(|&c| orig[c as usize] == new[c as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Cell;
    use crate::stripe::Stripe;

    /// Three ops sharing the pair {0,1}: worth a temp only with ≥3 users.
    #[test]
    fn temp_extraction_requires_profit() {
        // Two users of a 2-set: gross 2·1 = 2 ≤ |S| = 2 → no action.
        let two = XorPlan::from_steps(
            1,
            6,
            [
                (Cell::new(0, 4), &[Cell::new(0, 0), Cell::new(0, 1), Cell::new(0, 2)][..]),
                (Cell::new(0, 5), &[Cell::new(0, 0), Cell::new(0, 1), Cell::new(0, 3)][..]),
            ],
        );
        let (opt, st) = optimize(&two);
        assert_eq!(st.reads_after, st.reads_before);
        assert_eq!(opt.num_temps(), 0);
    }

    #[test]
    fn shared_triple_becomes_one_temp() {
        // Three parities each read {d0,d1,d2} plus one private cell:
        // 12 reads → temp(3) + 2 + 2, then the third op (identical
        // sources to the first) collapses to a 1-read copy of it: 8.
        let cells: Vec<Cell> = (0..8).map(|c| Cell::new(0, c)).collect();
        let shared = [cells[0], cells[1], cells[2]];
        let mk = |extra: Cell, parity: Cell| {
            let mut v = shared.to_vec();
            v.push(extra);
            (parity, v)
        };
        let steps = [mk(cells[3], cells[5]), mk(cells[4], cells[6]), mk(cells[3], cells[7])];
        let plan =
            XorPlan::from_steps(1, 8, steps.iter().map(|(t, s)| (*t, s.as_slice())));
        let (opt, st) = optimize(&plan);
        assert_eq!(st.reads_before, 12);
        assert_eq!(st.reads_after, 8);
        assert_eq!(opt.num_temps(), 1);
        assert_eq!(opt.num_ops(), 4);

        // Byte-identical execution.
        let mut a = Stripe::zeroed(1, 8, 128);
        for c in 0..5 {
            let cell = Cell::new(0, c);
            for (k, b) in a.element_mut(cell).iter_mut().enumerate() {
                *b = (c as u8 + 1).wrapping_mul(k as u8 | 1);
            }
        }
        let mut b = a.clone();
        plan.execute(&mut a);
        opt.execute(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn whole_op_reuse_rewires_consumers() {
        // p = d0^d1^d2; q = d0^d1^d2^d3 → q = p^d3.
        let d: Vec<Cell> = (0..4).map(|c| Cell::new(0, c)).collect();
        let p = Cell::new(0, 4);
        let q = Cell::new(0, 5);
        let plan = XorPlan::from_steps(
            1,
            6,
            [(p, &[d[0], d[1], d[2]][..]), (q, &[d[0], d[1], d[2], d[3]][..])],
        );
        let (opt, st) = optimize(&plan);
        assert_eq!(st.reads_before, 7);
        assert_eq!(st.reads_after, 5); // p: 3 reads, q: {p, d3}
        assert_eq!(opt.num_temps(), 0);
        let steps: Vec<(Cell, Vec<Cell>)> = opt.steps().collect();
        let qstep = steps.iter().find(|(t, _)| *t == q).unwrap();
        assert!(qstep.1.contains(&p));
    }

    #[test]
    fn version_inconsistent_sharing_is_refused() {
        // op0: x = a^b ; op1: a = c^d (overwrites a) ; op2: y = a^b^e.
        // {a,b} is shared by op0 and op2 but they read different versions
        // of a — no sharing may occur, and the plan must stay correct.
        let a = Cell::new(0, 0);
        let b = Cell::new(0, 1);
        let c = Cell::new(0, 2);
        let d = Cell::new(0, 3);
        let e = Cell::new(0, 4);
        let x = Cell::new(0, 5);
        let y = Cell::new(0, 6);
        let plan = XorPlan::from_steps(
            1,
            7,
            [(x, &[a, b][..]), (a, &[c, d][..]), (y, &[a, b, e][..])],
        );
        let (opt, _) = optimize(&plan);
        let mut s0 = Stripe::zeroed(1, 7, 64);
        for col in 0..5 {
            let cell = Cell::new(0, col);
            for (k, byte) in s0.element_mut(cell).iter_mut().enumerate() {
                *byte = (col as u8) ^ (k as u8).wrapping_mul(17);
            }
        }
        let mut s1 = s0.clone();
        plan.execute(&mut s0);
        opt.execute(&mut s1);
        assert_eq!(s0, s1);
    }

    #[test]
    fn dead_ops_are_dropped() {
        // op0 writes a scratch grid cell nobody reads; outputs say only p.
        let d0 = Cell::new(0, 0);
        let d1 = Cell::new(0, 1);
        let junk = Cell::new(0, 2);
        let p = Cell::new(0, 3);
        let plan = XorPlan::from_steps(1, 4, [(junk, &[d0][..]), (p, &[d0, d1][..])]);
        // Restrict outputs to p via a round-trip through from_indexed_ops.
        let indexed: Vec<(u32, Vec<u32>)> =
            plan.step_views().map(|v| (v.dst, v.srcs.to_vec())).collect();
        let restricted = XorPlan::from_indexed_ops(1, 4, 0, &indexed, Some(vec![3]));
        let (opt, st) = optimize(&restricted);
        assert_eq!(st.dead_removed, 1);
        assert_eq!(opt.num_ops(), 1);
        assert_eq!(opt.output_indices(), vec![3]);
    }

    #[test]
    fn reorder_respects_anti_dependencies() {
        // op0 reads a's initial value; op1 overwrites a. Any reordering
        // placing op1 first corrupts op0's read.
        let a = Cell::new(0, 0);
        let b = Cell::new(0, 1);
        let x = Cell::new(0, 2);
        let plan = XorPlan::from_steps(1, 3, [(x, &[a, b][..]), (a, &[b][..])]);
        let (opt, _) = optimize(&plan);
        let mut s0 = Stripe::zeroed(1, 3, 32);
        s0.element_mut(a).fill(0xAA);
        s0.element_mut(b).fill(0x0F);
        let mut s1 = s0.clone();
        plan.execute(&mut s0);
        opt.execute(&mut s1);
        assert_eq!(s0, s1);
    }

    #[test]
    fn optimizer_never_increases_reads() {
        // A plan with no sharing at all must come back unchanged in cost.
        let d: Vec<Cell> = (0..6).map(|c| Cell::new(0, c)).collect();
        let plan = XorPlan::from_steps(
            1,
            8,
            [(Cell::new(0, 6), &[d[0], d[1]][..]), (Cell::new(0, 7), &[d[2], d[3]][..])],
        );
        let (opt, st) = optimize(&plan);
        assert!(st.reads_after <= st.reads_before);
        assert_eq!(opt.num_source_reads(), plan.num_source_reads());
    }
}
