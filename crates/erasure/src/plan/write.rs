//! Partial-stripe-write planning (the paper's Section V-A, Fig. 6).
//!
//! A write of `L` continuous data elements (in the row-major data order of
//! [`Layout::data_cells`]) induces `L` data-element writes plus one write
//! for every *distinct* parity element associated with any written data
//! element — the paper's "total induced writes". The per-disk distribution
//! of those writes feeds the load-balancing rate λ (Fig. 6b).

use crate::geometry::Cell;
use crate::io::IoLedger;
use crate::layout::Layout;
use crate::plan::update::parity_updates;

/// The I/O footprint of one partial stripe write within a single stripe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePlan {
    /// Data cells written, in address order.
    pub data_writes: Vec<Cell>,
    /// Distinct parity cells renewed, in first-touch order.
    pub parity_writes: Vec<Cell>,
}

impl WritePlan {
    /// Total element-write requests (Fig. 6a's unit).
    pub fn total_writes(&self) -> usize {
        self.data_writes.len() + self.parity_writes.len()
    }

    /// Adds this plan's writes to a per-disk ledger, keeping the
    /// data/parity split.
    pub fn record(&self, ledger: &mut IoLedger) {
        for c in &self.data_writes {
            ledger.add_data_writes(c.col, 1);
        }
        for c in &self.parity_writes {
            ledger.add_parity_writes(c.col, 1);
        }
    }
}

/// Plans a write of `len` continuous data elements starting at data ordinal
/// `start` within one stripe.
///
/// # Panics
///
/// Panics if `start + len` exceeds the stripe's data-element count; callers
/// that let writes spill into the next stripe (the RAID controller) must
/// split the request first.
pub fn plan_partial_write(layout: &Layout, start: usize, len: usize) -> WritePlan {
    let data = layout.data_cells();
    assert!(
        start + len <= data.len(),
        "write [{start}, {}) exceeds {} data elements in stripe",
        start + len,
        data.len()
    );
    let data_writes: Vec<Cell> = data[start..start + len].to_vec();
    let mut parity_writes: Vec<Cell> = Vec::new();
    for &cell in &data_writes {
        for p in parity_updates(layout, cell) {
            if !parity_writes.contains(&p) {
                parity_writes.push(p);
            }
        }
    }
    WritePlan { data_writes, parity_writes }
}

/// Plans a write of an arbitrary set of data ordinals within one stripe —
/// the write-back cache's coalesced flush. Unlike [`plan_partial_write`]
/// the dirty set need not be contiguous: a stripe cache batches every
/// dirty element it holds for a stripe into one plan, so co-located dirty
/// elements share their parity writes (the HV shared-parity win).
///
/// Ordinals index [`Layout::data_cells`]; duplicates are collapsed and the
/// plan lists data writes in ascending ordinal order with parities in
/// first-touch order, exactly like the contiguous planner.
///
/// # Panics
///
/// Panics if `ordinals` is empty or any ordinal is out of range.
pub fn plan_batched_write(layout: &Layout, ordinals: &[usize]) -> WritePlan {
    assert!(!ordinals.is_empty(), "batched write needs at least one dirty element");
    let data = layout.data_cells();
    let mut sorted: Vec<usize> = ordinals.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert!(
        *sorted.last().unwrap() < data.len(),
        "ordinal {} exceeds {} data elements in stripe",
        sorted.last().unwrap(),
        data.len()
    );
    let data_writes: Vec<Cell> = sorted.iter().map(|&o| data[o]).collect();
    let mut parity_writes: Vec<Cell> = Vec::new();
    for &cell in &data_writes {
        for p in parity_updates(layout, cell) {
            if !parity_writes.contains(&p) {
                parity_writes.push(p);
            }
        }
    }
    WritePlan { data_writes, parity_writes }
}

/// How a partial stripe write should source its parity updates.
///
/// * **Rmw** (read-modify-write): read old data + old parities, XOR deltas
///   in. Reads `L + |parities|` elements — cheapest for small writes.
/// * **Reconstruct**: read the *untouched* data of every affected chain and
///   recompute the parities from scratch — cheaper once a write covers
///   most of the chains it touches.
/// * **FullStripe**: the write covers every data element of the stripe; no
///   reads at all, parities are computed from the new data alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Read-modify-write.
    Rmw,
    /// Reconstruct-write.
    Reconstruct,
    /// Full-stripe write (no reads).
    FullStripe,
}

/// The read set a [`WritePlan`] needs under each strategy, and the cheaper
/// choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteCost {
    /// Elements read by read-modify-write (old data + old parities).
    pub rmw_reads: Vec<Cell>,
    /// Elements read by reconstruct-write (untouched members of every
    /// affected chain).
    pub reconstruct_reads: Vec<Cell>,
    /// The mode with the fewest reads (`FullStripe` when zero).
    pub cheaper: WriteMode,
}

/// Computes both read strategies for a plan and picks the cheaper.
///
/// Ties go to RMW (it touches fewer chains' worth of buffer cache in a
/// real controller).
pub fn write_cost(layout: &Layout, plan: &WritePlan) -> WriteCost {
    // RMW: old values of everything we overwrite.
    let rmw_reads: Vec<Cell> =
        plan.data_writes.iter().chain(&plan.parity_writes).copied().collect();

    // Reconstruct: for every affected chain, the members we do NOT
    // overwrite (their current contents feed the recomputation). Members
    // that are parities being rewritten are themselves recomputed, so they
    // are not read either.
    let mut reconstruct_reads: Vec<Cell> = Vec::new();
    for &parity in &plan.parity_writes {
        let chain_id = layout.chain_of_parity(parity).expect("parity owns chain");
        for m in &layout.chain(chain_id).members {
            if !plan.data_writes.contains(m)
                && !plan.parity_writes.contains(m)
                && !reconstruct_reads.contains(m)
            {
                reconstruct_reads.push(*m);
            }
        }
    }

    let cheaper = if reconstruct_reads.is_empty() {
        WriteMode::FullStripe
    } else if reconstruct_reads.len() < rmw_reads.len() {
        WriteMode::Reconstruct
    } else {
        WriteMode::Rmw
    };
    WriteCost { rmw_reads, reconstruct_reads, cheaper }
}

/// Convenience for the evaluation: total induced writes for a whole trace
/// of `(start, len)` patterns, each clipped to the stripe as the paper does
/// (patterns wrap around the data space, see `raid-workloads`).
pub fn trace_write_requests(
    layout: &Layout,
    patterns: impl IntoIterator<Item = (usize, usize)>,
) -> (u64, IoLedger) {
    let mut ledger = IoLedger::new(layout.cols());
    let mut total = 0u64;
    for (start, len) in patterns {
        let plan = plan_partial_write(layout, start, len);
        total += plan.total_writes() as u64;
        plan.record(&mut ledger);
    }
    (total, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    /// Two rows of: d d p(h). Plus a vertical parity column pairing the last
    /// data of row 0 with the first data of row 1 (HV-style adjacency).
    fn hv_like() -> Layout {
        let c = Cell::new;
        let d = ElementKind::Data;
        let h = ElementKind::Parity(ParityClass::Horizontal);
        let v = ElementKind::Parity(ParityClass::Vertical);
        let kinds = vec![d, d, h, v, d, d, h, v];
        let chains = vec![
            Chain { class: ParityClass::Horizontal, parity: c(0, 2), members: vec![c(0, 0), c(0, 1)] },
            Chain { class: ParityClass::Horizontal, parity: c(1, 2), members: vec![c(1, 0), c(1, 1)] },
            // vertical chain joining E[0,1] and E[1,0]
            Chain { class: ParityClass::Vertical, parity: c(0, 3), members: vec![c(0, 1), c(1, 0)] },
            Chain { class: ParityClass::Vertical, parity: c(1, 3), members: vec![c(0, 0), c(1, 1)] },
        ];
        Layout::new(2, 4, kinds, chains).unwrap()
    }

    #[test]
    fn single_element_write() {
        let l = hv_like();
        let plan = plan_partial_write(&l, 0, 1);
        assert_eq!(plan.data_writes, vec![Cell::new(0, 0)]);
        // d(0,0) is in horizontal chain row 0 and vertical chain 3.
        assert_eq!(plan.parity_writes.len(), 2);
        assert_eq!(plan.total_writes(), 3);
    }

    #[test]
    fn row_crossing_write_shares_vertical_parity() {
        let l = hv_like();
        // Data order: (0,0) (0,1) (1,0) (1,1). Write ordinals 1..3 — the
        // last element of row 0 and the first of row 1.
        let plan = plan_partial_write(&l, 1, 2);
        assert_eq!(plan.data_writes, vec![Cell::new(0, 1), Cell::new(1, 0)]);
        // Two horizontal parities + ONE shared vertical parity.
        assert_eq!(plan.parity_writes.len(), 3, "vertical parity must be shared");
        assert_eq!(plan.total_writes(), 5);
    }

    #[test]
    fn same_row_write_shares_horizontal_parity() {
        let l = hv_like();
        let plan = plan_partial_write(&l, 0, 2);
        // One shared horizontal parity + two distinct vertical parities.
        assert_eq!(plan.parity_writes.len(), 3);
    }

    #[test]
    fn ledger_and_trace() {
        let l = hv_like();
        let (total, ledger) = trace_write_requests(&l, vec![(0, 2), (2, 2)]);
        assert_eq!(total, 10);
        assert_eq!(ledger.total_writes(), 10);
        assert_eq!(ledger.data_writes(), 4);
        assert_eq!(ledger.parity_writes(), 6);
        // All four disks touched.
        assert!(ledger.writes().iter().all(|&w| w > 0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overflow_rejected() {
        plan_partial_write(&hv_like(), 3, 2);
    }

    #[test]
    fn batched_write_matches_contiguous_planner() {
        let l = hv_like();
        for start in 0..l.num_data_cells() {
            for len in 1..=l.num_data_cells() - start {
                let ordinals: Vec<usize> = (start..start + len).collect();
                assert_eq!(
                    plan_batched_write(&l, &ordinals),
                    plan_partial_write(&l, start, len)
                );
            }
        }
    }

    #[test]
    fn batched_write_shares_parities_across_gaps() {
        let l = hv_like();
        // Ordinals 0 and 3 are (0,0) and (1,1): different rows, different
        // horizontal parities, but the SAME vertical chain — one shared
        // vertical parity write instead of two.
        let plan = plan_batched_write(&l, &[3, 0, 0]);
        assert_eq!(plan.data_writes, vec![Cell::new(0, 0), Cell::new(1, 1)]);
        assert_eq!(plan.parity_writes.len(), 3, "vertical parity must be shared");
        // Coalesced cost strictly beats two separate single-element writes.
        let separate: usize = [0usize, 3]
            .iter()
            .map(|&o| plan_partial_write(&l, o, 1).total_writes())
            .sum();
        assert!(plan.total_writes() < separate);
    }

    #[test]
    fn batched_write_cost_composes_with_write_cost() {
        let l = long_chains();
        let plan = plan_batched_write(&l, &[0, 2, 4]);
        let cost = write_cost(&l, &plan);
        // RMW reads the 3 data + 2 parities; reconstruct reads the 2
        // untouched data cells.
        assert_eq!(cost.rmw_reads.len(), 5);
        assert_eq!(cost.reconstruct_reads.len(), 2);
        assert_eq!(cost.cheaper, WriteMode::Reconstruct);
    }

    #[test]
    #[should_panic(expected = "at least one dirty element")]
    fn batched_write_rejects_empty_set() {
        plan_batched_write(&hv_like(), &[]);
    }

    /// 1×7 layout with long chains: d0..d4, p = XOR(all), q = XOR(all).
    fn long_chains() -> Layout {
        let c = Cell::new;
        let mut kinds = vec![ElementKind::Data; 5];
        kinds.push(ElementKind::Parity(ParityClass::Horizontal));
        kinds.push(ElementKind::Parity(ParityClass::Diagonal));
        let members: Vec<Cell> = (0..5).map(|j| c(0, j)).collect();
        let chains = vec![
            Chain { class: ParityClass::Horizontal, parity: c(0, 5), members: members.clone() },
            Chain { class: ParityClass::Diagonal, parity: c(0, 6), members },
        ];
        Layout::new(1, 7, kinds, chains).unwrap()
    }

    #[test]
    fn small_write_on_long_chains_prefers_rmw() {
        let l = long_chains();
        let plan = plan_partial_write(&l, 0, 1);
        let cost = write_cost(&l, &plan);
        // RMW: the data cell + 2 parities = 3 reads; reconstruct: the 4
        // untouched data cells.
        assert_eq!(cost.rmw_reads.len(), 3);
        assert_eq!(cost.reconstruct_reads.len(), 4);
        assert_eq!(cost.cheaper, WriteMode::Rmw);
    }

    #[test]
    fn tiny_stripes_make_reconstruction_cheap() {
        // In the 2×4 fixture a single-element write touches chains with
        // only one untouched member each, so reconstruction reads less.
        let l = hv_like();
        let plan = plan_partial_write(&l, 0, 1);
        let cost = write_cost(&l, &plan);
        assert_eq!(cost.rmw_reads.len(), 3);
        assert_eq!(cost.reconstruct_reads.len(), 2);
        assert_eq!(cost.cheaper, WriteMode::Reconstruct);
    }

    #[test]
    fn full_stripe_write_needs_no_reads() {
        let l = hv_like();
        let plan = plan_partial_write(&l, 0, l.num_data_cells());
        let cost = write_cost(&l, &plan);
        assert_eq!(cost.cheaper, WriteMode::FullStripe);
        assert!(cost.reconstruct_reads.is_empty());
        assert_eq!(plan.parity_writes.len(), 4, "all parities rewritten");
    }

    #[test]
    fn reconstruct_wins_for_nearly_full_writes() {
        let l = hv_like();
        // 3 of 4 data elements: reconstruct reads just the 4th data cell;
        // RMW reads 3 data + 4 parities.
        let plan = plan_partial_write(&l, 0, 3);
        let cost = write_cost(&l, &plan);
        assert_eq!(cost.cheaper, WriteMode::Reconstruct);
        assert_eq!(cost.reconstruct_reads.len(), 1);
        assert_eq!(cost.rmw_reads.len(), 3 + plan.parity_writes.len());
    }
}
