//! Degraded-read planning (the paper's Section V-B, Fig. 7).
//!
//! A degraded read requests `L` continuous data elements while one disk is
//! failed. Surviving requested elements are read directly; each lost
//! requested element is reconstructed from one of its parity chains. The
//! planner picks, per lost element, the chain that adds the fewest *extra*
//! element reads given everything already being fetched — which is exactly
//! why horizontal-parity codes shine here: the neighbours needed by the
//! horizontal chain are often already part of the request.

use crate::bitset::BitSet;
use crate::geometry::Cell;
use crate::layout::{ChainId, Layout};

/// The I/O footprint of one degraded read.
#[derive(Debug, Clone)]
pub struct DegradedReadPlan {
    /// Requested data cells (surviving and lost alike).
    pub requested: Vec<Cell>,
    /// Chain chosen for each lost requested cell.
    pub repairs: Vec<(Cell, ChainId)>,
    /// Every element actually fetched from the surviving disks.
    pub fetched: Vec<Cell>,
}

impl DegradedReadPlan {
    /// The paper's `L'`: number of elements returned from the disk array to
    /// satisfy the pattern.
    pub fn elements_fetched(&self) -> usize {
        self.fetched.len()
    }

    /// The paper's I/O efficiency metric `L' / L`.
    ///
    /// # Panics
    ///
    /// Panics if the request was empty.
    pub fn efficiency(&self) -> f64 {
        assert!(!self.requested.is_empty(), "efficiency of an empty read");
        self.elements_fetched() as f64 / self.requested.len() as f64
    }
}

/// Plans a degraded read of the given data cells with `failed_col` down.
///
/// Lost requested cells are repaired greedily in request order, each picking
/// the usable chain that minimizes extra reads; a refinement pass then
/// revisits every choice (in the spirit of Xiang et al.'s hybrid recovery)
/// until no single-choice change improves the total.
///
/// ```
/// use raid_core::layout::{Chain, ElementKind, ParityClass, Layout};
/// use raid_core::plan::degraded::plan_degraded_read;
/// use raid_core::Cell;
///
/// // d0 d1 d2 | p with p = d0 ^ d1 ^ d2.
/// let kinds = vec![
///     ElementKind::Data, ElementKind::Data, ElementKind::Data,
///     ElementKind::Parity(ParityClass::Horizontal),
/// ];
/// let chains = vec![Chain {
///     class: ParityClass::Horizontal,
///     parity: Cell::new(0, 3),
///     members: vec![Cell::new(0, 0), Cell::new(0, 1), Cell::new(0, 2)],
/// }];
/// let layout = Layout::new(1, 4, kinds, chains)?;
///
/// // Disk 0 fails; reading d0+d1 must fetch d2 and p as well: L' / L = 2.
/// let plan = plan_degraded_read(&layout, 0, &[Cell::new(0, 0), Cell::new(0, 1)]);
/// assert_eq!(plan.elements_fetched(), 3);
/// assert!((plan.efficiency() - 1.5).abs() < 1e-12);
/// # Ok::<(), raid_core::layout::LayoutError>(())
/// ```
///
/// # Panics
///
/// Panics if some requested cell is not a data cell, or if a lost cell has
/// no usable chain (impossible for a RAID-6 layout with a single failure).
pub fn plan_degraded_read(
    layout: &Layout,
    failed_col: usize,
    requested: &[Cell],
) -> DegradedReadPlan {
    let cols = layout.cols();
    let ncells = layout.num_cells();
    for &c in requested {
        assert!(layout.is_data(c), "degraded read of non-data cell {c}");
    }

    let (alive, lost): (Vec<Cell>, Vec<Cell>) =
        requested.iter().partition(|c| c.col != failed_col);

    // Base set: surviving requested elements.
    let mut base = BitSet::new(ncells);
    for &c in &alive {
        base.insert(c.index(cols));
    }

    // Candidate chains per lost cell: every equation of the cell that has no
    // other element on the failed column.
    let candidates: Vec<(Cell, Vec<ChainId>)> = lost
        .iter()
        .map(|&cell| {
            let cands: Vec<ChainId> = layout
                .equations_of(cell)
                .into_iter()
                .filter(|&id| {
                    layout
                        .chain(id)
                        .cells()
                        .all(|m| m == cell || m.col != failed_col)
                })
                .collect();
            assert!(!cands.is_empty(), "no usable chain to repair {cell}");
            (cell, cands)
        })
        .collect();

    // Chain read-sets (equation minus the lost cell), cached as bitsets.
    let read_set = |cell: Cell, id: ChainId| -> BitSet {
        let mut s = BitSet::new(ncells);
        for m in layout.chain(id).cells() {
            if m != cell {
                s.insert(m.index(cols));
            }
        }
        s
    };

    // Greedy initial assignment.
    let mut choice: Vec<ChainId> = Vec::with_capacity(candidates.len());
    let mut fetched = base.clone();
    for (cell, cands) in &candidates {
        let best = *cands
            .iter()
            .min_by_key(|&&id| fetched.missing_from(&read_set(*cell, id)))
            .expect("non-empty candidates");
        fetched.union_with(&read_set(*cell, best));
        choice.push(best);
    }

    // Refinement: re-evaluate each choice against the union of the others.
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..candidates.len() {
            let (cell, cands) = &candidates[i];
            if cands.len() < 2 {
                continue;
            }
            // Union of base + all other choices.
            let mut others = base.clone();
            for (j, (c2, _)) in candidates.iter().enumerate() {
                if j != i {
                    others.union_with(&read_set(*c2, choice[j]));
                }
            }
            let current_total = others.union_len(&read_set(*cell, choice[i]));
            if let Some((&better, total)) = cands
                .iter()
                .map(|id| (id, others.union_len(&read_set(*cell, *id))))
                .min_by_key(|&(_, t)| t)
            {
                if total < current_total {
                    choice[i] = better;
                    improved = true;
                }
            }
        }
    }

    // Materialize the final fetch set.
    let mut final_set = base;
    for ((cell, _), &id) in candidates.iter().zip(&choice) {
        final_set.union_with(&read_set(*cell, id));
    }
    let fetched: Vec<Cell> = final_set.iter().map(|i| Cell::from_index(i, cols)).collect();
    let repairs = candidates
        .iter()
        .zip(&choice)
        .map(|((cell, _), &id)| (*cell, id))
        .collect();

    DegradedReadPlan { requested: requested.to_vec(), repairs, fetched }
}

/// A degraded read plan when **multiple** disks are down: the fetch set and
/// the reconstruction steps for exactly the requested cells (the backward
/// slice of the full recovery plan — see
/// [`crate::decoder::plan_targeted_decode`]).
#[derive(Debug, Clone)]
pub struct MultiDegradedReadPlan {
    /// Requested data cells.
    pub requested: Vec<Cell>,
    /// Reconstruction steps, in execution order.
    pub steps: Vec<crate::decoder::DecodeStep>,
    /// Every surviving element fetched from disk.
    pub fetched: Vec<Cell>,
}

impl MultiDegradedReadPlan {
    /// The paper's `L′`.
    pub fn elements_fetched(&self) -> usize {
        self.fetched.len()
    }

    /// `L′ / L`.
    ///
    /// # Panics
    ///
    /// Panics if the request was empty.
    pub fn efficiency(&self) -> f64 {
        assert!(!self.requested.is_empty(), "efficiency of an empty read");
        self.elements_fetched() as f64 / self.requested.len() as f64
    }
}

/// Plans a degraded read with any number of failed columns (RAID-6 codes
/// support up to two).
///
/// # Errors
///
/// Returns [`crate::decoder::NotDecodableError`] if the failed columns
/// exceed the code's tolerance.
///
/// # Panics
///
/// Panics if a requested cell is not a data cell.
pub fn plan_degraded_read_multi(
    layout: &Layout,
    failed_cols: &[usize],
    requested: &[Cell],
) -> Result<MultiDegradedReadPlan, crate::decoder::NotDecodableError> {
    for &c in requested {
        assert!(layout.is_data(c), "degraded read of non-data cell {c}");
    }
    let mut lost: Vec<Cell> = Vec::new();
    for &col in failed_cols {
        lost.extend(layout.cells_in_col(col));
    }
    let plan = crate::decoder::plan_targeted_decode(layout, &lost, requested)?;

    let mut fetched: std::collections::BTreeSet<Cell> = requested
        .iter()
        .copied()
        .filter(|c| !failed_cols.contains(&c.col))
        .collect();
    for step in &plan.steps {
        for src in &step.sources {
            if !failed_cols.contains(&src.col) {
                fetched.insert(*src);
            }
        }
    }
    Ok(MultiDegradedReadPlan {
        requested: requested.to_vec(),
        steps: plan.steps,
        fetched: fetched.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    /// 1×6: d0 d1 d2 d3 | p q, p = all data, q = d0^d1.
    fn layout() -> Layout {
        let c = Cell::new;
        let d = ElementKind::Data;
        let kinds = vec![
            d,
            d,
            d,
            d,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Parity(ParityClass::Diagonal),
        ];
        let chains = vec![
            Chain {
                class: ParityClass::Horizontal,
                parity: c(0, 4),
                members: vec![c(0, 0), c(0, 1), c(0, 2), c(0, 3)],
            },
            Chain { class: ParityClass::Diagonal, parity: c(0, 5), members: vec![c(0, 0), c(0, 1)] },
        ];
        Layout::new(1, 6, kinds, chains).unwrap()
    }

    #[test]
    fn healthy_columns_read_directly() {
        let l = layout();
        let req = vec![Cell::new(0, 1), Cell::new(0, 2)];
        let plan = plan_degraded_read(&l, 3, &req);
        assert_eq!(plan.elements_fetched(), 2);
        assert!((plan.efficiency() - 1.0).abs() < 1e-12);
        assert!(plan.repairs.is_empty());
    }

    #[test]
    fn lost_cell_picks_cheapest_chain() {
        let l = layout();
        // Disk 0 fails; request d0 and d1. The short diagonal chain
        // q = d0 ^ d1 repairs d0 by reading q plus d1 (already requested):
        // fetched = {d1, q} -> L' = 2 for L = 2.
        let req = vec![Cell::new(0, 0), Cell::new(0, 1)];
        let plan = plan_degraded_read(&l, 0, &req);
        assert_eq!(plan.elements_fetched(), 2);
        assert_eq!(plan.repairs.len(), 1);
        assert_eq!(plan.repairs[0].1, ChainId(1));
    }

    #[test]
    fn long_chain_used_when_short_unavailable() {
        let l = layout();
        // Disk 1 fails; request d1 alone. Diagonal chain reads {d0, q} = 2
        // extra; horizontal reads {d0, d2, d3, p} = 4. Planner picks diag.
        let plan = plan_degraded_read(&l, 1, &[Cell::new(0, 1)]);
        assert_eq!(plan.elements_fetched(), 2);
        assert!((plan.efficiency() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_requests_amortize() {
        let l = layout();
        // Disk 0 down, request everything: d0 d1 d2 d3.
        // Repair d0 via q: read q + d1(already). L' = 3 alive + q = 4.
        let req: Vec<Cell> = (0..4).map(|c| Cell::new(0, c)).collect();
        let plan = plan_degraded_read(&l, 0, &req);
        assert_eq!(plan.elements_fetched(), 4);
        assert!((plan.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-data cell")]
    fn parity_request_rejected() {
        plan_degraded_read(&layout(), 0, &[Cell::new(0, 4)]);
    }

    /// X-Code p=3 replica layout for the multi-failure planner tests.
    fn xcode3() -> Layout {
        let c = Cell::new;
        let mut kinds = vec![ElementKind::Data; 3];
        kinds.extend(vec![ElementKind::Parity(ParityClass::Diagonal); 3]);
        kinds.extend(vec![ElementKind::Parity(ParityClass::AntiDiagonal); 3]);
        let mut chains = Vec::new();
        for i in 0..3usize {
            chains.push(Chain {
                class: ParityClass::Diagonal,
                parity: c(1, i),
                members: vec![c(0, (i + 2) % 3)],
            });
            chains.push(Chain {
                class: ParityClass::AntiDiagonal,
                parity: c(2, i),
                members: vec![c(0, (i + 1) % 3)],
            });
        }
        Layout::new(3, 3, kinds, chains).unwrap()
    }

    #[test]
    fn multi_failure_plan_slices() {
        let l = xcode3();
        // Disks 0 and 1 down; request the single data cell of disk 0.
        let plan =
            plan_degraded_read_multi(&l, &[0, 1], &[Cell::new(0, 0)]).unwrap();
        // E[0,0] is replicated at E[2,2] (anti-diagonal parity of disk 2):
        // one fetch suffices.
        assert_eq!(plan.elements_fetched(), 1);
        assert!((plan.efficiency() - 1.0).abs() < 1e-12);
        assert!(plan.fetched.iter().all(|c| c.col == 2));
    }

    #[test]
    fn multi_failure_plan_rejects_three_columns() {
        let l = xcode3();
        assert!(plan_degraded_read_multi(&l, &[0, 1, 2], &[Cell::new(0, 0)]).is_err());
    }

    #[test]
    fn multi_matches_single_when_one_disk_down() {
        let l = layout();
        let req = vec![Cell::new(0, 0), Cell::new(0, 1)];
        let single = plan_degraded_read(&l, 0, &req);
        let multi = plan_degraded_read_multi(&l, &[0], &req).unwrap();
        // Both must return the requested bytes; the hybrid single-failure
        // planner may fetch fewer (it optimizes chain choice), never more
        // than the generic slice.
        assert!(single.elements_fetched() <= multi.elements_fetched());
    }
}
