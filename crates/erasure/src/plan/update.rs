//! Parity-update closure: which parity elements must be rewritten when a
//! data element changes.
//!
//! For most codes a data element sits in exactly two chains, so two
//! parities are renewed. Codes that chain parities into parities cascade:
//! in RDP, writing a data element updates its row parity, and the row
//! parity is itself a member of a diagonal chain, so that diagonal parity
//! must be renewed too (the paper's "more than 2 extra updates" for RDP,
//! and HDP's "3 extra updates").

use crate::geometry::Cell;
use crate::layout::Layout;

/// Returns every parity cell that must be rewritten after `cell` changes,
/// in propagation order (direct parities first, then cascades). `cell`
/// itself is not included.
///
/// # Panics
///
/// Panics if `cell` is not a data cell — parity cells are never written
/// directly by users.
pub fn parity_updates(layout: &Layout, cell: Cell) -> Vec<Cell> {
    assert!(layout.is_data(cell), "parity_updates called on parity cell {cell}");
    let mut changed: Vec<Cell> = Vec::new();
    let mut queue: Vec<Cell> = vec![cell];
    let mut qi = 0;
    while qi < queue.len() {
        let cur = queue[qi];
        qi += 1;
        for &chain_id in layout.chains_containing(cur) {
            let parity = layout.chain(chain_id).parity;
            if parity != cell && !changed.contains(&parity) {
                changed.push(parity);
                queue.push(parity);
            }
        }
    }
    changed
}

/// Average number of parity updates per data-element write over the whole
/// stripe — the "Update Complexity" column of Table III.
pub fn update_complexity(layout: &Layout) -> f64 {
    let data = layout.data_cells();
    if data.is_empty() {
        return 0.0;
    }
    let total: usize = data.iter().map(|&c| parity_updates(layout, c).len()).sum();
    total as f64 / data.len() as f64
}

/// Maximum parity updates any single data element can trigger.
pub fn worst_case_updates(layout: &Layout) -> usize {
    layout
        .data_cells()
        .iter()
        .map(|&c| parity_updates(layout, c).len())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    /// d0 d1 | p | q with p = d0^d1 and q = d0 ^ p (RDP-style cascade).
    fn cascade() -> Layout {
        let c = Cell::new;
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Parity(ParityClass::Diagonal),
        ];
        let chains = vec![
            Chain { class: ParityClass::Horizontal, parity: c(0, 2), members: vec![c(0, 0), c(0, 1)] },
            Chain { class: ParityClass::Diagonal, parity: c(0, 3), members: vec![c(0, 0), c(0, 2)] },
        ];
        Layout::new(1, 4, kinds, chains).unwrap()
    }

    #[test]
    fn direct_and_cascaded_updates() {
        let l = cascade();
        // d0 is in both chains directly: p and q.
        let u0 = parity_updates(&l, Cell::new(0, 0));
        assert_eq!(u0, vec![Cell::new(0, 2), Cell::new(0, 3)]);
        // d1 is only in the horizontal chain, but p cascades into q.
        let u1 = parity_updates(&l, Cell::new(0, 1));
        assert_eq!(u1, vec![Cell::new(0, 2), Cell::new(0, 3)]);
    }

    #[test]
    fn complexity_averages() {
        let l = cascade();
        assert!((update_complexity(&l) - 2.0).abs() < 1e-12);
        assert_eq!(worst_case_updates(&l), 2);
    }

    #[test]
    #[should_panic(expected = "parity cell")]
    fn rejects_parity_argument() {
        let l = cascade();
        parity_updates(&l, Cell::new(0, 2));
    }
}
