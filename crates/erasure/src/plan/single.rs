//! Minimum-I/O single-disk recovery (the paper's Section V-C, Fig. 9a).
//!
//! Following Xiang et al. (cited as the standard approach by the paper),
//! each lost element may be repaired through any of its parity chains, and
//! the planner chooses one chain per lost element so that the union of all
//! elements read from the surviving disks is minimal — mixing chain kinds
//! maximizes the overlap between the read sets.
//!
//! The search space is the product of per-element chain choices (2 per data
//! element for RAID-6 codes). Small stripes are solved exactly by
//! branch-and-bound; larger ones fall back to a greedy + simulated-annealing
//! heuristic. An ablation bench compares the strategies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bitset::BitSet;
use crate::geometry::Cell;
use crate::layout::{ChainId, Layout};

/// How to search the space of per-element chain choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Exact branch-and-bound over all combinations.
    Exhaustive,
    /// One greedy pass in lost-element order.
    Greedy,
    /// Greedy start + simulated annealing refinement.
    Anneal {
        /// Number of annealing proposals.
        iters: u32,
        /// RNG seed (plans are deterministic given the seed).
        seed: u64,
    },
    /// Exhaustive when the choice space is at most ~2²⁰, otherwise anneal.
    Auto,
}

/// A single-disk recovery plan.
#[derive(Debug, Clone)]
pub struct SingleRecoveryPlan {
    /// Chain chosen for each lost cell (one entry per row of the failed disk).
    pub choices: Vec<(Cell, ChainId)>,
    /// Every element read from surviving disks.
    pub reads: Vec<Cell>,
}

impl SingleRecoveryPlan {
    /// Total elements fetched from surviving disks.
    pub fn total_reads(&self) -> usize {
        self.reads.len()
    }

    /// Average elements read per repaired element — Fig. 9a's y-axis.
    pub fn reads_per_element(&self) -> f64 {
        self.total_reads() as f64 / self.choices.len() as f64
    }
}

/// Plans the recovery of every element on `failed_col`.
///
/// # Panics
///
/// Panics if `failed_col` is out of range or some lost element has no
/// usable chain (cannot happen for a valid RAID-6 layout).
pub fn plan_single_disk_recovery(
    layout: &Layout,
    failed_col: usize,
    strategy: SearchStrategy,
) -> SingleRecoveryPlan {
    assert!(failed_col < layout.cols(), "failed disk out of range");
    let cols = layout.cols();
    let ncells = layout.num_cells();
    let lost = layout.cells_in_col(failed_col);

    // Candidates per lost cell: equations with no other lost member.
    let candidates: Vec<(Cell, Vec<ChainId>)> = lost
        .iter()
        .map(|&cell| {
            let cands: Vec<ChainId> = layout
                .equations_of(cell)
                .into_iter()
                .filter(|&id| {
                    layout.chain(id).cells().all(|m| m == cell || m.col != failed_col)
                })
                .collect();
            assert!(!cands.is_empty(), "no usable chain to repair {cell}");
            (cell, cands)
        })
        .collect();

    // Pre-compute read sets.
    let read_sets: Vec<Vec<BitSet>> = candidates
        .iter()
        .map(|(cell, cands)| {
            cands
                .iter()
                .map(|&id| {
                    let mut s = BitSet::new(ncells);
                    for m in layout.chain(id).cells() {
                        if m != *cell {
                            s.insert(m.index(cols));
                        }
                    }
                    s
                })
                .collect()
        })
        .collect();

    let space_bits: u32 = candidates
        .iter()
        .map(|(_, c)| (c.len() as f64).log2())
        .sum::<f64>()
        .ceil() as u32;

    let choice = match strategy {
        SearchStrategy::Exhaustive => exhaustive(&read_sets, ncells),
        SearchStrategy::Greedy => greedy(&read_sets, ncells, None),
        SearchStrategy::Anneal { iters, seed } => anneal(&read_sets, ncells, iters, seed),
        SearchStrategy::Auto => {
            if space_bits <= 20 {
                exhaustive(&read_sets, ncells)
            } else {
                anneal(&read_sets, ncells, 200_000, 0x5EED)
            }
        }
    };

    let mut union = BitSet::new(ncells);
    for (i, &c) in choice.iter().enumerate() {
        union.union_with(&read_sets[i][c]);
    }
    let reads: Vec<Cell> = union.iter().map(|i| Cell::from_index(i, cols)).collect();
    let choices = candidates
        .iter()
        .zip(&choice)
        .map(|((cell, cands), &c)| (*cell, cands[c]))
        .collect();
    SingleRecoveryPlan { choices, reads }
}

/// Union size of a full assignment.
fn union_size(read_sets: &[Vec<BitSet>], choice: &[usize], ncells: usize) -> usize {
    let mut u = BitSet::new(ncells);
    for (i, &c) in choice.iter().enumerate() {
        u.union_with(&read_sets[i][c]);
    }
    u.len()
}

fn greedy(read_sets: &[Vec<BitSet>], ncells: usize, order: Option<&[usize]>) -> Vec<usize> {
    let n = read_sets.len();
    let default_order: Vec<usize> = (0..n).collect();
    let order = order.unwrap_or(&default_order);
    let mut choice = vec![0usize; n];
    let mut acc = BitSet::new(ncells);
    for &i in order {
        let best = (0..read_sets[i].len())
            .min_by_key(|&c| acc.missing_from(&read_sets[i][c]))
            .expect("non-empty candidate list");
        choice[i] = best;
        acc.union_with(&read_sets[i][best]);
    }
    choice
}

fn anneal(read_sets: &[Vec<BitSet>], ncells: usize, iters: u32, seed: u64) -> Vec<usize> {
    let n = read_sets.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = greedy(read_sets, ncells, None);
    let mut best_cost = union_size(read_sets, &best, ncells);
    // A couple of random greedy orders as alternative starts.
    for _ in 0..4 {
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let cand = greedy(read_sets, ncells, Some(&order));
        let cost = union_size(read_sets, &cand, ncells);
        if cost < best_cost {
            best = cand;
            best_cost = cost;
        }
    }
    let mut cur = best.clone();
    let mut cur_cost = best_cost;
    let mut temp = 2.0f64;
    let cooling = 0.999995f64;
    for _ in 0..iters {
        let i = rng.gen_range(0..n);
        if read_sets[i].len() < 2 {
            continue;
        }
        let old = cur[i];
        let mut new = rng.gen_range(0..read_sets[i].len());
        if new == old {
            new = (new + 1) % read_sets[i].len();
        }
        cur[i] = new;
        let cost = union_size(read_sets, &cur, ncells);
        let accept = cost <= cur_cost
            || rng.gen::<f64>() < (-((cost - cur_cost) as f64) / temp).exp();
        if accept {
            cur_cost = cost;
            if cost < best_cost {
                best_cost = cost;
                best = cur.clone();
            }
        } else {
            cur[i] = old;
        }
        temp *= cooling;
    }
    best
}

fn exhaustive(read_sets: &[Vec<BitSet>], ncells: usize) -> Vec<usize> {
    let n = read_sets.len();
    // Start from the greedy bound.
    let mut best = greedy(read_sets, ncells, None);
    let mut best_cost = union_size(read_sets, &best, ncells);

    // Depth-first with incremental unions and a lower-bound prune: the union
    // can only grow, so if the partial union already matches best we stop.
    let mut choice = vec![0usize; n];
    let mut stack_sets: Vec<BitSet> = Vec::with_capacity(n + 1);
    stack_sets.push(BitSet::new(ncells));

    fn dfs(
        i: usize,
        read_sets: &[Vec<BitSet>],
        choice: &mut [usize],
        stack_sets: &mut Vec<BitSet>,
        best: &mut Vec<usize>,
        best_cost: &mut usize,
    ) {
        let n = read_sets.len();
        let acc = stack_sets.last().expect("stack never empty").clone();
        if acc.len() >= *best_cost {
            return; // cannot improve
        }
        if i == n {
            *best_cost = acc.len();
            best.copy_from_slice(choice);
            return;
        }
        for c in 0..read_sets[i].len() {
            choice[i] = c;
            let mut next = acc.clone();
            next.union_with(&read_sets[i][c]);
            stack_sets.push(next);
            dfs(i + 1, read_sets, choice, stack_sets, best, best_cost);
            stack_sets.pop();
        }
    }

    dfs(0, read_sets, &mut choice, &mut stack_sets, &mut best, &mut best_cost);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    /// 2×4 layout where mixing chains pays off:
    /// row parities in col 2; "vertical" parities in col 3 pairing
    /// (0,0)+(1,0) and (0,1)+(1,1).
    fn overlapping() -> Layout {
        let c = Cell::new;
        let d = ElementKind::Data;
        let h = ElementKind::Parity(ParityClass::Horizontal);
        let v = ElementKind::Parity(ParityClass::Vertical);
        let kinds = vec![d, d, h, v, d, d, h, v];
        let chains = vec![
            Chain { class: ParityClass::Horizontal, parity: c(0, 2), members: vec![c(0, 0), c(0, 1)] },
            Chain { class: ParityClass::Horizontal, parity: c(1, 2), members: vec![c(1, 0), c(1, 1)] },
            Chain { class: ParityClass::Vertical, parity: c(0, 3), members: vec![c(0, 0), c(1, 0)] },
            Chain { class: ParityClass::Vertical, parity: c(1, 3), members: vec![c(0, 1), c(1, 1)] },
        ];
        Layout::new(2, 4, kinds, chains).unwrap()
    }

    #[test]
    fn exhaustive_finds_optimal_mix() {
        let l = overlapping();
        // Disk 0 fails: lost (0,0) and (1,0).
        // Both-horizontal: reads {(0,1),(0,2)} ∪ {(1,1),(1,2)} = 4.
        // Both-vertical impossible (chains 2 contains both lost cells) —
        // wait: chain 2 has both (0,0) and (1,0): not usable at all!
        // So each lost cell has candidates: its row chain, and chain 3 only
        // for... chain 3 = {(0,1),(1,1)} doesn't contain them. Candidates:
        // (0,0): {chain0}; (1,0): {chain1}. Total = 4 reads.
        let plan = plan_single_disk_recovery(&l, 0, SearchStrategy::Exhaustive);
        assert_eq!(plan.total_reads(), 4);
        assert!((plan.reads_per_element() - 2.0).abs() < 1e-12);

        // Disk 3 fails: lost parities (0,3), (1,3) repaired via own chains.
        let plan3 = plan_single_disk_recovery(&l, 3, SearchStrategy::Exhaustive);
        assert_eq!(plan3.choices.len(), 2);
        assert_eq!(plan3.total_reads(), 4);
    }

    #[test]
    fn strategies_agree_on_small_layouts() {
        let l = overlapping();
        for col in 0..4 {
            let ex = plan_single_disk_recovery(&l, col, SearchStrategy::Exhaustive);
            let gr = plan_single_disk_recovery(&l, col, SearchStrategy::Greedy);
            let an = plan_single_disk_recovery(
                &l,
                col,
                SearchStrategy::Anneal { iters: 2_000, seed: 7 },
            );
            let auto = plan_single_disk_recovery(&l, col, SearchStrategy::Auto);
            assert!(ex.total_reads() <= gr.total_reads(), "col {col}");
            assert_eq!(ex.total_reads(), an.total_reads(), "col {col}");
            assert_eq!(ex.total_reads(), auto.total_reads(), "col {col}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_disk_rejected() {
        plan_single_disk_recovery(&overlapping(), 9, SearchStrategy::Greedy);
    }
}
