//! Compiled XOR plans: geometry resolved once, executed per stripe.
//!
//! Encoding, erasure decoding and recovery-schedule execution all reduce to
//! the same primitive — `dst = XOR(srcs)` over element buffers — but the
//! seed implementation re-derived the geometry (chain walks, cell → buffer
//! lookups) and allocated a scratch `Vec` for **every element of every
//! stripe**. An [`XorPlan`] hoists all of that out of the hot path: cells
//! are resolved to flat buffer indices at compile time, the per-target
//! source lists live in one shared arena, and [`XorPlan::execute`]
//! interprets the plan against a [`Stripe`] with zero per-op allocation and
//! zero geometry math per stripe.
//!
//! # Buffer index space
//!
//! Ops address buffers by flat index. Indices `0..rows*cols` are the
//! stripe's grid cells; indices `rows*cols..rows*cols + num_temps` are
//! **scratch temps** — partial sums the optimizer ([`crate::xopt`])
//! extracts so a source set shared by several ops is computed once. Temps
//! live only for the duration of one [`XorPlan::execute`] call; they are
//! never part of the stripe.
//!
//! # Tiled execution
//!
//! For elements larger than one L1 tile ([`raid_math::xor::L1_TILE_BYTES`])
//! — or whenever a plan carries temps — `execute` walks **all** ops over
//! one tile of every element before advancing to the next tile, so the
//! working set (every element's current tile) stays cache-resident across
//! the whole plan instead of each element being streamed through cache
//! once per op. This is valid because every op is a pure byte-position-wise
//! XOR: byte `k` of the output depends only on byte `k` of the inputs.
//!
//! Plans come from four compilers:
//!
//! * [`XorPlan::compile_encode`] — every parity chain, in dependency
//!   (topological) order; the *cascaded* specification form;
//! * [`XorPlan::compile_encode_expanded`] — each parity as its data-only
//!   GF(2) expansion (cascades substituted and cancelled); the optimizer's
//!   preferred starting point, because it exposes cross-chain sharing that
//!   the cascaded form hard-codes;
//! * [`XorPlan::compile_decode`] — a [`DecodePlan`]'s reconstruction steps;
//! * [`XorPlan::from_steps`] — any ordered `target = XOR(sources)`
//!   sequence, e.g. one of HV Code's Algorithm-1 recovery chains.
//!
//! [`XorPlan::optimized`] runs any plan through the `xopt` middle-end.

use crate::decoder::DecodePlan;
use crate::geometry::Cell;
use crate::layout::Layout;
use crate::stripe::{encode_order, Stripe};
use raid_math::xor::{tiles, xor_gather_into, L1_TILE_BYTES};

/// One compiled step: overwrite `dst` with the XOR of a source range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct XorOp {
    /// Linear buffer index of the target (grid cell or scratch temp).
    dst: u32,
    /// Start of this op's slice of [`XorPlan::srcs`].
    src_start: u32,
    /// End (exclusive) of this op's slice of [`XorPlan::srcs`].
    src_end: u32,
}

/// A buffer a plan op addresses: a stripe grid cell or a scratch temp
/// from the plan's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlanCell {
    /// A cell of the `rows × cols` stripe grid.
    Grid(Cell),
    /// Scratch temp `t<i>`, alive only within one `execute` call.
    Temp(usize),
}

impl std::fmt::Display for PlanCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanCell::Grid(c) => write!(f, "{c}"),
            PlanCell::Temp(t) => write!(f, "t{t}"),
        }
    }
}

/// Zero-copy view of one compiled op: the target's flat buffer index plus
/// the source indices borrowed straight from the plan's arena. Decode the
/// indices with [`XorPlan::plan_cell`]. This is the view `raid-verify`
/// interprets — unlike [`XorPlan::steps`] it allocates nothing and can
/// represent scratch temps.
#[derive(Debug, Clone, Copy)]
pub struct StepView<'a> {
    /// Flat buffer index of the target.
    pub dst: u32,
    /// Flat buffer indices of the sources.
    pub srcs: &'a [u32],
}

/// A flat, ready-to-run sequence of `dst = XOR(srcs)` buffer operations.
///
/// The plan is tied to a grid shape (`rows × cols`), not to a particular
/// stripe: compile once, run against any number of stripes of that shape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XorPlan {
    rows: usize,
    cols: usize,
    ops: Vec<XorOp>,
    /// Source buffer indices for all ops, back to back.
    srcs: Vec<u32>,
    /// Scratch slots beyond the grid (buffer indices
    /// `rows*cols .. rows*cols + temps`), element-sized at execution.
    temps: usize,
    /// Grid cells this plan promises to produce, sorted. `None` means
    /// "every grid cell the ops target" (the pre-optimizer default); an
    /// optimized plan records its original's target set so dead-op
    /// elimination and equivalence proofs know what must be preserved.
    outputs: Option<Vec<u32>>,
}

impl XorPlan {
    /// Compiles an ordered list of `target = XOR(sources)` steps.
    ///
    /// # Panics
    ///
    /// Panics if any cell lies outside `rows × cols` or a step lists its
    /// own target as a source (the XOR would then read the half-written
    /// destination).
    pub fn from_steps<'a, I>(rows: usize, cols: usize, steps: I) -> XorPlan
    where
        I: IntoIterator<Item = (Cell, &'a [Cell])>,
    {
        let in_bounds = |c: Cell| c.row < rows && c.col < cols;
        let mut ops = Vec::new();
        let mut srcs: Vec<u32> = Vec::new();
        for (target, sources) in steps {
            assert!(in_bounds(target), "plan target {target} out of bounds");
            let src_start = srcs.len() as u32;
            for &s in sources {
                assert!(in_bounds(s), "plan source {s} out of bounds");
                assert_ne!(s, target, "plan step reads its own target {target}");
                srcs.push(s.index(cols) as u32);
            }
            ops.push(XorOp {
                dst: target.index(cols) as u32,
                src_start,
                src_end: srcs.len() as u32,
            });
        }
        XorPlan { rows, cols, ops, srcs, temps: 0, outputs: None }
    }

    /// Compiles from flat buffer indices, possibly addressing scratch
    /// temps — the optimizer's construction path.
    ///
    /// # Panics
    ///
    /// Panics if any index is outside `rows*cols + temps`, an op reads its
    /// own target, or an output index is outside the grid.
    pub(crate) fn from_indexed_ops(
        rows: usize,
        cols: usize,
        temps: usize,
        indexed: &[(u32, Vec<u32>)],
        outputs: Option<Vec<u32>>,
    ) -> XorPlan {
        let nbufs = (rows * cols + temps) as u32;
        let mut ops = Vec::with_capacity(indexed.len());
        let mut srcs: Vec<u32> = Vec::new();
        for (dst, sources) in indexed {
            assert!(*dst < nbufs, "plan target index {dst} out of bounds");
            let src_start = srcs.len() as u32;
            for &s in sources {
                assert!(s < nbufs, "plan source index {s} out of bounds");
                assert_ne!(s, *dst, "plan step reads its own target {dst}");
                srcs.push(s);
            }
            ops.push(XorOp { dst: *dst, src_start, src_end: srcs.len() as u32 });
        }
        if let Some(out) = &outputs {
            assert!(
                out.iter().all(|&o| (o as usize) < rows * cols),
                "plan output outside the grid"
            );
        }
        XorPlan { rows, cols, ops, srcs, temps, outputs }
    }

    /// Compiles `layout`'s full parity computation, chains ordered so that
    /// a parity appearing in another chain (RDP, HDP) is produced before it
    /// is consumed.
    ///
    /// Prefer [`Layout::encode_plan`], which compiles (and optimizes) once
    /// and caches.
    pub fn compile_encode(layout: &Layout) -> XorPlan {
        let chains = layout.chains();
        XorPlan::from_steps(
            layout.rows(),
            layout.cols(),
            encode_order(layout)
                .into_iter()
                .map(|id| (chains[id].parity, chains[id].members.as_slice())),
        )
    }

    /// Compiles `layout`'s parity computation in *expanded* form: each
    /// parity's sources are its full data-only GF(2) expansion, with
    /// cascade references substituted and double-counted cells cancelled.
    ///
    /// Semantically identical to [`XorPlan::compile_encode`] (both produce
    /// the layout's parity equations), but where the cascaded form
    /// hard-codes one particular sharing (reusing whole parity cells),
    /// the expanded form is a pure specification — it exposes *all*
    /// cross-chain overlap for [`crate::xopt`] to rediscover as shared
    /// partial sums, which on RDP/HDP recovers the cascade automatically
    /// and on EVENODD finds sharing the chain form never expressed.
    pub fn compile_encode_expanded(layout: &Layout) -> XorPlan {
        use std::collections::BTreeSet;
        let cols = layout.cols();
        let chains = layout.chains();
        let ncells = layout.rows() * cols;
        // expansion[i] = data-only cell set for parity cell i, once computed.
        let mut expansion: Vec<Option<BTreeSet<u32>>> = vec![None; ncells];
        fn toggle(set: &mut BTreeSet<u32>, i: u32) {
            if !set.remove(&i) {
                set.insert(i);
            }
        }
        let mut steps: Vec<(Cell, Vec<Cell>)> = Vec::with_capacity(chains.len());
        for id in encode_order(layout) {
            let ch = &chains[id];
            let mut set = BTreeSet::new();
            for &m in &ch.members {
                let mi = m.index(cols) as u32;
                match &expansion[mi as usize] {
                    // A cascaded parity member: substitute its expansion
                    // (already computed — encode_order is topological).
                    Some(exp) => exp.iter().for_each(|&e| toggle(&mut set, e)),
                    None => toggle(&mut set, mi),
                }
            }
            steps.push((
                ch.parity,
                set.iter().map(|&i| Cell::from_index(i as usize, cols)).collect(),
            ));
            expansion[ch.parity.index(cols)] = Some(set);
        }
        XorPlan::from_steps(
            layout.rows(),
            layout.cols(),
            steps.iter().map(|(t, s)| (*t, s.as_slice())),
        )
    }

    /// Compiles a decoder reconstruction plan for `layout`'s grid.
    pub fn compile_decode(layout: &Layout, plan: &DecodePlan) -> XorPlan {
        XorPlan::from_steps(
            layout.rows(),
            layout.cols(),
            plan.steps.iter().map(|s| (s.target, s.sources.as_slice())),
        )
    }

    /// Runs this plan through the [`crate::xopt`] middle-end: shared
    /// partial sums become scratch temps, ops are reordered for source
    /// locality, dead ops are dropped. Never returns a plan with more
    /// source reads than `self`; falls back to a clone of `self` whenever
    /// optimization finds nothing (or bails on an unusual plan shape).
    pub fn optimized(&self) -> XorPlan {
        crate::xopt::optimize(self).0
    }

    /// Rows of the grid this plan addresses.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the grid this plan addresses.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of compiled `dst = XOR(srcs)` operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of scratch-temp slots this plan allocates per execution.
    pub fn num_temps(&self) -> usize {
        self.temps
    }

    /// Total source-buffer reads across all operations — the plan's XOR
    /// cost in element reads.
    pub fn num_source_reads(&self) -> usize {
        self.srcs.len()
    }

    /// Decodes a flat buffer index into grid cell or scratch temp.
    ///
    /// # Panics
    ///
    /// Panics if the index is outside `rows*cols + num_temps`.
    pub fn plan_cell(&self, idx: u32) -> PlanCell {
        let ncells = self.rows * self.cols;
        let i = idx as usize;
        if i < ncells {
            PlanCell::Grid(Cell::from_index(i, self.cols))
        } else {
            assert!(i < ncells + self.temps, "buffer index {idx} out of bounds");
            PlanCell::Temp(i - ncells)
        }
    }

    /// Zero-copy view of op `i` (plan order). See [`StepView`].
    pub fn step_view(&self, i: usize) -> StepView<'_> {
        let op = &self.ops[i];
        StepView {
            dst: op.dst,
            srcs: &self.srcs[op.src_start as usize..op.src_end as usize],
        }
    }

    /// Zero-copy iteration over all ops in execution order — the hot-path
    /// replacement for [`XorPlan::steps`], and the only view that can
    /// represent scratch temps.
    pub fn step_views(&self) -> impl Iterator<Item = StepView<'_>> {
        (0..self.ops.len()).map(|i| self.step_view(i))
    }

    /// The grid cells this plan promises to produce, sorted ascending by
    /// flat index. For an unoptimized plan this is exactly its grid
    /// targets; an optimized plan carries its original's output set.
    pub fn output_indices(&self) -> Vec<u32> {
        match &self.outputs {
            Some(out) => out.clone(),
            None => {
                let ncells = (self.rows * self.cols) as u32;
                let mut out: Vec<u32> =
                    self.ops.iter().map(|op| op.dst).filter(|&d| d < ncells).collect();
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    /// The grid target cells in execution order (scratch temps skipped).
    pub fn targets(&self) -> impl Iterator<Item = Cell> + '_ {
        let ncells = (self.rows * self.cols) as u32;
        self.ops
            .iter()
            .filter(move |op| op.dst < ncells)
            .map(|op| Cell::from_index(op.dst as usize, self.cols))
    }

    /// The compiled ops as `(target, sources)` cell lists, in execution
    /// order. Cold path: allocates one `Vec` per op — prefer
    /// [`XorPlan::step_views`].
    ///
    /// # Panics
    ///
    /// Panics if the plan carries scratch temps (a temp has no [`Cell`]
    /// representation); temp-bearing plans must be walked via
    /// [`XorPlan::step_views`].
    pub fn steps(&self) -> impl Iterator<Item = (Cell, Vec<Cell>)> + '_ {
        assert!(self.temps == 0, "steps() cannot render scratch temps; use step_views()");
        self.ops.iter().map(|op| {
            let srcs = self.srcs[op.src_start as usize..op.src_end as usize]
                .iter()
                .map(|&s| Cell::from_index(s as usize, self.cols))
                .collect();
            (Cell::from_index(op.dst as usize, self.cols), srcs)
        })
    }

    /// Runs the plan against a stripe: each op overwrites its target
    /// element with the XOR of its source elements, in plan order.
    ///
    /// Elements at or below one L1 tile (and no temps) take the flat
    /// per-op path: one single-pass multi-source XOR kernel call per op,
    /// no allocation. Larger elements — or any plan with scratch temps —
    /// run **tiled**: all ops are applied to one L1-sized chunk of every
    /// element before advancing, so the stripe's working set stays
    /// cache-resident across the whole plan. Temps are allocated per call
    /// and freed on return.
    ///
    /// (A source-major "streaming" execution — read each source once,
    /// scatter into its consumers — was tried and measured slower on
    /// cache-resident stripes: it multiplies target read/write traffic
    /// by the chain length, which costs more than the source re-reads
    /// it saves while the whole stripe sits in L2.)
    ///
    /// # Panics
    ///
    /// Panics if the stripe's shape differs from the plan's.
    pub fn execute(&self, stripe: &mut Stripe) {
        assert_eq!(stripe.rows(), self.rows, "plan/stripe row mismatch");
        assert_eq!(stripe.cols(), self.cols, "plan/stripe col mismatch");
        let es = stripe.element_size();
        if self.temps == 0 && es <= L1_TILE_BYTES {
            for op in &self.ops {
                let srcs = &self.srcs[op.src_start as usize..op.src_end as usize];
                stripe.apply_indexed_xor(op.dst as usize, srcs);
            }
            return;
        }
        self.execute_chunked(stripe, tiles(es));
    }

    /// Whole-element per-op execution, bypassing tiling — the baseline the
    /// benches compare [`XorPlan::execute`]'s tiled path against.
    ///
    /// # Panics
    ///
    /// Panics if the stripe's shape differs from the plan's.
    pub fn execute_untiled(&self, stripe: &mut Stripe) {
        assert_eq!(stripe.rows(), self.rows, "plan/stripe row mismatch");
        assert_eq!(stripe.cols(), self.cols, "plan/stripe col mismatch");
        if self.temps == 0 {
            for op in &self.ops {
                let srcs = &self.srcs[op.src_start as usize..op.src_end as usize];
                stripe.apply_indexed_xor(op.dst as usize, srcs);
            }
            return;
        }
        let es = stripe.element_size();
        self.execute_chunked(stripe, std::iter::once((0, es)).filter(|&(_, n)| n > 0));
    }

    /// The tiled interpreter: for each `(offset, len)` chunk, applies
    /// every op to that chunk of its buffers. Scratch temps are allocated
    /// element-sized (not tile-sized) so grid and temp buffers slice
    /// uniformly; they are still touched tile-by-tile in order, so their
    /// hot tile stays resident like everyone else's.
    fn execute_chunked(&self, stripe: &mut Stripe, chunks: impl Iterator<Item = (usize, usize)>) {
        const GATHER: usize = 64;
        let ncells = self.rows * self.cols;
        let es = stripe.element_size();
        let mut temp_bufs: Vec<Vec<u8>> = vec![vec![0u8; es]; self.temps];
        for (off, len) in chunks {
            for op in &self.ops {
                let dst = op.dst as usize;
                let srcs = &self.srcs[op.src_start as usize..op.src_end as usize];
                // Detach the target so the sources can be borrowed freely
                // (an op never reads its own target).
                let mut out = if dst < ncells {
                    stripe.take_buf(dst)
                } else {
                    std::mem::take(&mut temp_bufs[dst - ncells])
                };
                if srcs.len() <= GATHER {
                    let mut stack: [&[u8]; GATHER] = [&[]; GATHER];
                    for (slot, &s) in stack.iter_mut().zip(srcs) {
                        let i = s as usize;
                        *slot = if i < ncells {
                            &stripe.buf(i)[off..off + len]
                        } else {
                            &temp_bufs[i - ncells][off..off + len]
                        };
                    }
                    xor_gather_into(&mut out[off..off + len], &stack[..srcs.len()]);
                } else {
                    let gathered: Vec<&[u8]> = srcs
                        .iter()
                        .map(|&s| {
                            let i = s as usize;
                            if i < ncells {
                                &stripe.buf(i)[off..off + len]
                            } else {
                                &temp_bufs[i - ncells][off..off + len]
                            }
                        })
                        .collect();
                    xor_gather_into(&mut out[off..off + len], &gathered);
                }
                if dst < ncells {
                    stripe.put_buf(dst, out);
                } else {
                    temp_bufs[dst - ncells] = out;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    fn cascaded_layout() -> Layout {
        // q = d0 ^ p with p = d0 ^ d1, listed q-first to exercise ordering.
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Parity(ParityClass::Diagonal),
        ];
        let chains = vec![
            Chain {
                class: ParityClass::Diagonal,
                parity: Cell::new(0, 3),
                members: vec![Cell::new(0, 0), Cell::new(0, 2)],
            },
            Chain {
                class: ParityClass::Horizontal,
                parity: Cell::new(0, 2),
                members: vec![Cell::new(0, 0), Cell::new(0, 1)],
            },
        ];
        Layout::new(1, 4, kinds, chains).unwrap()
    }

    #[test]
    fn encode_plan_orders_dependencies_and_matches_reference() {
        let layout = cascaded_layout();
        let plan = XorPlan::compile_encode(&layout);
        assert_eq!(plan.num_ops(), 2);
        // The horizontal parity (0,2) must be produced before the diagonal
        // parity (0,3) consumes it.
        let order: Vec<Cell> = plan.targets().collect();
        assert_eq!(order, vec![Cell::new(0, 2), Cell::new(0, 3)]);

        let mut planned = Stripe::for_layout(&layout, 64);
        planned.fill_data_seeded(&layout, 11);
        let mut reference = planned.clone();
        plan.execute(&mut planned);
        reference.encode_reference(&layout);
        assert_eq!(planned, reference);
        assert_eq!(planned.verify(&layout), None);
    }

    #[test]
    fn expanded_encode_cancels_cascades_over_gf2() {
        let layout = cascaded_layout();
        let expanded = XorPlan::compile_encode_expanded(&layout);
        assert_eq!(expanded.num_ops(), 2);
        // q = d0 ^ p = d0 ^ (d0 ^ d1) collapses to just d1.
        let steps: Vec<(Cell, Vec<Cell>)> = expanded.steps().collect();
        let q = steps.iter().find(|(t, _)| *t == Cell::new(0, 3)).unwrap();
        assert_eq!(q.1, vec![Cell::new(0, 1)]);
        // Byte-identical to the cascaded plan.
        let mut a = Stripe::for_layout(&layout, 64);
        a.fill_data_seeded(&layout, 5);
        let mut b = a.clone();
        expanded.execute(&mut a);
        XorPlan::compile_encode(&layout).execute(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn cached_encode_plan_is_used_by_stripe_encode() {
        let layout = cascaded_layout();
        let cached = layout.encode_plan();
        assert_eq!(cached.num_ops(), 2);
        assert!(std::ptr::eq(cached, layout.encode_plan()), "plan must be compiled once");

        let mut s = Stripe::for_layout(&layout, 32);
        s.fill_data_seeded(&layout, 3);
        s.encode(&layout);
        assert_eq!(s.verify(&layout), None);
    }

    #[test]
    fn decode_plan_compiles_and_round_trips() {
        let layout = cascaded_layout();
        let mut pristine = Stripe::for_layout(&layout, 16);
        pristine.fill_data_seeded(&layout, 9);
        pristine.encode(&layout);

        let lost = vec![Cell::new(0, 0), Cell::new(0, 1)];
        let decode_plan = crate::decoder::plan_decode(&layout, &lost).unwrap();
        let compiled = XorPlan::compile_decode(&layout, &decode_plan);
        assert_eq!(compiled.num_ops(), decode_plan.steps.len());

        let mut s = pristine.clone();
        s.erase(lost[0]);
        s.erase(lost[1]);
        compiled.execute(&mut s);
        assert_eq!(s, pristine);
    }

    #[test]
    fn temp_bearing_plan_executes_tiled_and_untiled() {
        // t0 = a ^ b; p = t0 ^ c; q = t0 ^ d — over a 1×6 grid.
        let rows = 1;
        let cols = 6;
        let t0 = (rows * cols) as u32;
        let ops = vec![
            (t0, vec![0u32, 1]),
            (4u32, vec![t0, 2]),
            (5u32, vec![t0, 3]),
        ];
        let plan = XorPlan::from_indexed_ops(rows, cols, 1, &ops, Some(vec![4, 5]));
        assert_eq!(plan.num_temps(), 1);
        assert_eq!(plan.plan_cell(t0), PlanCell::Temp(0));
        assert_eq!(plan.output_indices(), vec![4, 5]);

        // Element size straddling a tile boundary exercises the ragged tail.
        let es = L1_TILE_BYTES + 37;
        let mut s = Stripe::zeroed(rows, cols, es);
        for i in 0..4 {
            let cell = Cell::new(0, i);
            for (k, byte) in s.element_mut(cell).iter_mut().enumerate() {
                *byte = (i as u8).wrapping_mul(31).wrapping_add(k as u8);
            }
        }
        let mut tiled = s.clone();
        let mut untiled = s.clone();
        plan.execute(&mut tiled);
        plan.execute_untiled(&mut untiled);
        assert_eq!(tiled, untiled);
        for k in 0..es {
            let a = s.element(Cell::new(0, 0))[k];
            let b = s.element(Cell::new(0, 1))[k];
            let c = s.element(Cell::new(0, 2))[k];
            let d = s.element(Cell::new(0, 3))[k];
            assert_eq!(tiled.element(Cell::new(0, 4))[k], a ^ b ^ c);
            assert_eq!(tiled.element(Cell::new(0, 5))[k], a ^ b ^ d);
        }
    }

    #[test]
    fn step_views_match_steps_for_temp_free_plans() {
        let layout = cascaded_layout();
        let plan = XorPlan::compile_encode(&layout);
        let cols = layout.cols();
        for (view, (target, sources)) in plan.step_views().zip(plan.steps()) {
            assert_eq!(plan.plan_cell(view.dst), PlanCell::Grid(target));
            let viewed: Vec<Cell> =
                view.srcs.iter().map(|&s| Cell::from_index(s as usize, cols)).collect();
            assert_eq!(viewed, sources);
        }
    }

    #[test]
    #[should_panic(expected = "cannot render scratch temps")]
    fn steps_rejects_temp_bearing_plans() {
        let plan = XorPlan::from_indexed_ops(1, 2, 1, &[(2, vec![0, 1])], Some(vec![]));
        let _ = plan.steps().count();
    }

    #[test]
    #[should_panic(expected = "reads its own target")]
    fn self_referential_step_rejected() {
        let c = Cell::new(0, 0);
        XorPlan::from_steps(1, 2, [(c, &[c][..])]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_step_rejected() {
        XorPlan::from_steps(1, 2, [(Cell::new(0, 5), &[][..])]);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn execute_checks_shape() {
        let plan = XorPlan::from_steps(2, 2, []);
        let mut s = Stripe::zeroed(1, 2, 8);
        plan.execute(&mut s);
    }
}
