//! Compiled XOR plans: geometry resolved once, executed per stripe.
//!
//! Encoding, erasure decoding and recovery-schedule execution all reduce to
//! the same primitive — `dst = XOR(srcs)` over element buffers — but the
//! seed implementation re-derived the geometry (chain walks, cell → buffer
//! lookups) and allocated a scratch `Vec` for **every element of every
//! stripe**. An [`XorPlan`] hoists all of that out of the hot path: cells
//! are resolved to flat buffer indices at compile time, the per-target
//! source lists live in one shared arena, and [`XorPlan::execute`]
//! interprets the plan against a [`Stripe`] with zero allocation and zero
//! geometry math per stripe.
//!
//! Plans come from three compilers:
//!
//! * [`XorPlan::compile_encode`] — every parity chain, in dependency
//!   (topological) order; cached per layout by [`Layout::encode_plan`];
//! * [`XorPlan::compile_decode`] — a [`DecodePlan`]'s reconstruction steps;
//! * [`XorPlan::from_steps`] — any ordered `target = XOR(sources)`
//!   sequence, e.g. one of HV Code's Algorithm-1 recovery chains.

use crate::decoder::DecodePlan;
use crate::geometry::Cell;
use crate::layout::Layout;
use crate::stripe::{encode_order, Stripe};

/// One compiled step: overwrite `dst` with the XOR of a source range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct XorOp {
    /// Linear buffer index of the target cell.
    dst: u32,
    /// Start of this op's slice of [`XorPlan::srcs`].
    src_start: u32,
    /// End (exclusive) of this op's slice of [`XorPlan::srcs`].
    src_end: u32,
}

/// A flat, ready-to-run sequence of `dst = XOR(srcs)` buffer operations.
///
/// The plan is tied to a grid shape (`rows × cols`), not to a particular
/// stripe: compile once, run against any number of stripes of that shape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XorPlan {
    rows: usize,
    cols: usize,
    ops: Vec<XorOp>,
    /// Source buffer indices for all ops, back to back.
    srcs: Vec<u32>,
}

impl XorPlan {
    /// Compiles an ordered list of `target = XOR(sources)` steps.
    ///
    /// # Panics
    ///
    /// Panics if any cell lies outside `rows × cols` or a step lists its
    /// own target as a source (the XOR would then read the half-written
    /// destination).
    pub fn from_steps<'a, I>(rows: usize, cols: usize, steps: I) -> XorPlan
    where
        I: IntoIterator<Item = (Cell, &'a [Cell])>,
    {
        let in_bounds = |c: Cell| c.row < rows && c.col < cols;
        let mut ops = Vec::new();
        let mut srcs: Vec<u32> = Vec::new();
        for (target, sources) in steps {
            assert!(in_bounds(target), "plan target {target} out of bounds");
            let src_start = srcs.len() as u32;
            for &s in sources {
                assert!(in_bounds(s), "plan source {s} out of bounds");
                assert_ne!(s, target, "plan step reads its own target {target}");
                srcs.push(s.index(cols) as u32);
            }
            ops.push(XorOp {
                dst: target.index(cols) as u32,
                src_start,
                src_end: srcs.len() as u32,
            });
        }
        XorPlan { rows, cols, ops, srcs }
    }

    /// Compiles `layout`'s full parity computation, chains ordered so that
    /// a parity appearing in another chain (RDP, HDP) is produced before it
    /// is consumed.
    ///
    /// Prefer [`Layout::encode_plan`], which compiles once and caches.
    pub fn compile_encode(layout: &Layout) -> XorPlan {
        let chains = layout.chains();
        XorPlan::from_steps(
            layout.rows(),
            layout.cols(),
            encode_order(layout)
                .into_iter()
                .map(|id| (chains[id].parity, chains[id].members.as_slice())),
        )
    }

    /// Compiles a decoder reconstruction plan for `layout`'s grid.
    pub fn compile_decode(layout: &Layout, plan: &DecodePlan) -> XorPlan {
        XorPlan::from_steps(
            layout.rows(),
            layout.cols(),
            plan.steps.iter().map(|s| (s.target, s.sources.as_slice())),
        )
    }

    /// Rows of the grid this plan addresses.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the grid this plan addresses.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of compiled `dst = XOR(srcs)` operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Total source-buffer reads across all operations — the plan's XOR
    /// cost in element reads.
    pub fn num_source_reads(&self) -> usize {
        self.srcs.len()
    }

    /// The target cells in execution order.
    pub fn targets(&self) -> impl Iterator<Item = Cell> + '_ {
        self.ops.iter().map(|op| Cell::from_index(op.dst as usize, self.cols))
    }

    /// The compiled ops as `(target, sources)` cell lists, in execution
    /// order — the view the static verifier (`raid-verify`) interprets
    /// symbolically over GF(2). Cold path: allocates one `Vec` per op.
    pub fn steps(&self) -> impl Iterator<Item = (Cell, Vec<Cell>)> + '_ {
        self.ops.iter().map(|op| {
            let srcs = self.srcs[op.src_start as usize..op.src_end as usize]
                .iter()
                .map(|&s| Cell::from_index(s as usize, self.cols))
                .collect();
            (Cell::from_index(op.dst as usize, self.cols), srcs)
        })
    }

    /// Runs the plan against a stripe: each op overwrites its target
    /// element with the XOR of its source elements, in plan order.
    ///
    /// No allocation and no geometry math happen here — each op is one
    /// single-pass multi-source XOR kernel call.
    ///
    /// (A source-major "streaming" execution — read each source once,
    /// scatter into its consumers — was tried and measured slower on
    /// cache-resident stripes: it multiplies target read/write traffic
    /// by the chain length, which costs more than the source re-reads
    /// it saves while the whole stripe sits in L2.)
    ///
    /// # Panics
    ///
    /// Panics if the stripe's shape differs from the plan's.
    pub fn execute(&self, stripe: &mut Stripe) {
        assert_eq!(stripe.rows(), self.rows, "plan/stripe row mismatch");
        assert_eq!(stripe.cols(), self.cols, "plan/stripe col mismatch");
        for op in &self.ops {
            let srcs = &self.srcs[op.src_start as usize..op.src_end as usize];
            stripe.apply_indexed_xor(op.dst as usize, srcs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    fn cascaded_layout() -> Layout {
        // q = d0 ^ p with p = d0 ^ d1, listed q-first to exercise ordering.
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Parity(ParityClass::Diagonal),
        ];
        let chains = vec![
            Chain {
                class: ParityClass::Diagonal,
                parity: Cell::new(0, 3),
                members: vec![Cell::new(0, 0), Cell::new(0, 2)],
            },
            Chain {
                class: ParityClass::Horizontal,
                parity: Cell::new(0, 2),
                members: vec![Cell::new(0, 0), Cell::new(0, 1)],
            },
        ];
        Layout::new(1, 4, kinds, chains).unwrap()
    }

    #[test]
    fn encode_plan_orders_dependencies_and_matches_reference() {
        let layout = cascaded_layout();
        let plan = XorPlan::compile_encode(&layout);
        assert_eq!(plan.num_ops(), 2);
        // The horizontal parity (0,2) must be produced before the diagonal
        // parity (0,3) consumes it.
        let order: Vec<Cell> = plan.targets().collect();
        assert_eq!(order, vec![Cell::new(0, 2), Cell::new(0, 3)]);

        let mut planned = Stripe::for_layout(&layout, 64);
        planned.fill_data_seeded(&layout, 11);
        let mut reference = planned.clone();
        plan.execute(&mut planned);
        reference.encode_reference(&layout);
        assert_eq!(planned, reference);
        assert_eq!(planned.verify(&layout), None);
    }

    #[test]
    fn cached_encode_plan_is_used_by_stripe_encode() {
        let layout = cascaded_layout();
        let cached = layout.encode_plan();
        assert_eq!(cached.num_ops(), 2);
        assert!(std::ptr::eq(cached, layout.encode_plan()), "plan must be compiled once");

        let mut s = Stripe::for_layout(&layout, 32);
        s.fill_data_seeded(&layout, 3);
        s.encode(&layout);
        assert_eq!(s.verify(&layout), None);
    }

    #[test]
    fn decode_plan_compiles_and_round_trips() {
        let layout = cascaded_layout();
        let mut pristine = Stripe::for_layout(&layout, 16);
        pristine.fill_data_seeded(&layout, 9);
        pristine.encode(&layout);

        let lost = vec![Cell::new(0, 0), Cell::new(0, 1)];
        let decode_plan = crate::decoder::plan_decode(&layout, &lost).unwrap();
        let compiled = XorPlan::compile_decode(&layout, &decode_plan);
        assert_eq!(compiled.num_ops(), decode_plan.steps.len());

        let mut s = pristine.clone();
        s.erase(lost[0]);
        s.erase(lost[1]);
        compiled.execute(&mut s);
        assert_eq!(s, pristine);
    }

    #[test]
    #[should_panic(expected = "reads its own target")]
    fn self_referential_step_rejected() {
        let c = Cell::new(0, 0);
        XorPlan::from_steps(1, 2, [(c, &[c][..])]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_step_rejected() {
        XorPlan::from_steps(1, 2, [(Cell::new(0, 5), &[][..])]);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn execute_checks_shape() {
        let plan = XorPlan::from_steps(2, 2, []);
        let mut s = Stripe::zeroed(1, 2, 8);
        plan.execute(&mut s);
    }
}
