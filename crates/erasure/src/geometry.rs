//! Cell coordinates within a stripe.
//!
//! The engine uses **0-based** rows and columns throughout its public API.
//! Codes whose papers are written 1-based (HV Code, HDP) translate at their
//! construction boundary and say so in their docs.

use std::fmt;

/// A cell position within a stripe: `row` is the offset within a disk,
/// `col` is the disk index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cell {
    /// Row index (0-based).
    pub row: usize,
    /// Column / disk index (0-based).
    pub col: usize,
}

impl Cell {
    /// Creates a cell at `(row, col)`.
    pub fn new(row: usize, col: usize) -> Self {
        Cell { row, col }
    }

    /// Flattens to a linear index in a row-major `rows × cols` grid.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the cell lies outside the grid.
    #[inline]
    pub fn index(self, cols: usize) -> usize {
        debug_assert!(self.col < cols, "column {} out of {cols}", self.col);
        self.row * cols + self.col
    }

    /// Inverse of [`Cell::index`].
    #[inline]
    pub fn from_index(idx: usize, cols: usize) -> Self {
        Cell { row: idx / cols, col: idx % cols }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E[{},{}]", self.row, self.col)
    }
}

impl From<(usize, usize)> for Cell {
    fn from((row, col): (usize, usize)) -> Self {
        Cell { row, col }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        let cols = 7;
        for row in 0..5 {
            for col in 0..cols {
                let c = Cell::new(row, col);
                assert_eq!(Cell::from_index(c.index(cols), cols), c);
            }
        }
    }

    #[test]
    fn display_and_from_tuple() {
        let c: Cell = (2, 3).into();
        assert_eq!(c.to_string(), "E[2,3]");
    }

    #[test]
    fn ordering_is_row_major() {
        assert!(Cell::new(0, 6) < Cell::new(1, 0));
        assert!(Cell::new(1, 2) < Cell::new(1, 3));
    }
}
