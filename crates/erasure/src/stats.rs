//! Shared distribution statistics: nearest-rank percentiles, summary
//! stats, EWMA smoothing, and a mergeable log-bucketed latency histogram.
//!
//! One home for the math that used to be duplicated per consumer: the
//! fleet harness (QoS p99 baselines, MTTR summaries) and the service
//! front-end (per-tenant enqueue→completion latency) both report from
//! here, so "p99" means the same thing everywhere in the workspace.
//!
//! Two representations, two tradeoffs:
//!
//! * [`percentile`] / [`DistSummary`] operate on the full sample vector —
//!   exact nearest-rank semantics, right when every sample is kept;
//! * [`Histogram`] is a fixed-size log₂-bucketed sketch — O(1) record,
//!   mergeable across worker shards, bounded memory under sustained
//!   traffic, percentiles interpolated within the matched bucket.

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
///
/// `q` is clamped to `[0, 1]`; the rank is `round((len - 1) * q)`, so
/// `q = 0.5` over `[1, 2, 3, 4]` picks index `round(1.5) = 2` → `3.0`.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Five-number summary of a sample distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistSummary {
    /// Samples observed.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

impl DistSummary {
    /// Summarizes `samples` (sorted in place); `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if a sample is NaN.
    #[must_use]
    pub fn from(samples: &mut [f64]) -> Option<DistSummary> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Some(DistSummary {
            count: samples.len() as u64,
            mean,
            p50: percentile(samples, 0.50),
            p95: percentile(samples, 0.95),
            max: *samples.last().expect("non-empty"),
        })
    }
}

/// Exponentially-weighted moving average with weight `alpha` on the
/// newest observation. The first observation seeds the average directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A fresh average; `alpha` is the weight of each new observation.
    #[must_use]
    pub fn new(alpha: f64) -> Ewma {
        Ewma { alpha: alpha.clamp(0.0, 1.0), value: None }
    }

    /// Folds in `sample` and returns the updated average.
    pub fn observe(&mut self, sample: f64) -> f64 {
        let next = match self.value {
            None => sample,
            Some(prev) => (1.0 - self.alpha) * prev + self.alpha * sample,
        };
        self.value = Some(next);
        next
    }

    /// The current average, `None` before any observation.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Number of log₂ buckets: covers `[0, 2^63)` — any u64 sample.
const BUCKETS: usize = 64;

/// A mergeable log₂-bucketed histogram of non-negative integer samples
/// (typically latencies in nanoseconds).
///
/// Bucket `b` holds samples in `[2^(b-1), 2^b)` (bucket 0 holds `{0}`),
/// so a reported percentile is accurate to within one octave; within the
/// matched bucket the value is linearly interpolated by rank. Exact
/// count, sum, min and max are tracked alongside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    fn bucket_of(sample: u64) -> usize {
        (64 - sample.leading_zeros()) as usize
    }

    /// Lower edge of bucket `b` (inclusive).
    fn bucket_lo(b: usize) -> u64 {
        if b == 0 { 0 } else { 1u64 << (b - 1) }
    }

    /// Upper edge of bucket `b` (exclusive, saturating).
    fn bucket_hi(b: usize) -> u64 {
        if b >= 63 { u64::MAX } else { 1u64 << b }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.buckets[Self::bucket_of(sample).min(BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum += u128::from(sample);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Folds another histogram into this one (shard aggregation).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate nearest-rank percentile.
    ///
    /// Walks the buckets to the one containing rank `round((count-1)*q)`
    /// and interpolates linearly inside it, clamped to the observed
    /// min/max so tails never overshoot real samples.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if rank < seen + n {
                let lo = Self::bucket_lo(b) as f64;
                let hi = Self::bucket_hi(b) as f64;
                let within = (rank - seen) as f64 / n as f64;
                let est = lo + (hi - lo) * within;
                return est.clamp(self.min as f64, self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Pins the workspace-wide percentile semantics: nearest rank with
    // round-half-up on `(len - 1) * q`.
    #[test]
    fn percentile_is_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 4.0);
        assert_eq!(percentile(&s, 0.5), 3.0); // round(1.5) = 2
        assert_eq!(percentile(&s, 0.25), 2.0); // round(0.75) = 1
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(percentile(&s, -1.0), 1.0);
        assert_eq!(percentile(&s, 2.0), 4.0);
    }

    #[test]
    fn dist_summary_matches_percentile() {
        let mut s = vec![4.0, 1.0, 3.0, 2.0, 10.0];
        let d = DistSummary::from(&mut s).unwrap();
        assert_eq!(d.count, 5);
        assert_eq!(d.mean, 4.0);
        assert_eq!(d.p50, 3.0);
        assert_eq!(d.p95, 10.0);
        assert_eq!(d.max, 10.0);
        assert!(DistSummary::from(&mut []).is_none());
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(10.0), 10.0);
        // 0.8 * 10 + 0.2 * 20 = 12
        assert!((e.observe(20.0) - 12.0).abs() < 1e-12);
        assert!((e.value().unwrap() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentiles_bracket_exact_ranks() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (1..=1000).collect();
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Log-bucketed: the estimate must land within one octave of the
        // exact nearest-rank answer and inside [min, max].
        for q in [0.5, 0.9, 0.99] {
            let exact = samples[((samples.len() - 1) as f64 * q).round() as usize] as f64;
            let est = h.percentile(q);
            assert!(est >= exact / 2.0 && est <= exact * 2.0, "q={q}: est {est} vs exact {exact}");
        }
        assert_eq!(h.percentile(1.0), 1000.0);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for s in 0..200u64 {
            if s % 2 == 0 { a.record(s * 7) } else { b.record(s * 7) }
            whole.record(s * 7);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn histogram_handles_zero_and_huge() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(0.0), 0.0);
    }
}
