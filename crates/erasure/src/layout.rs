//! Stripe layouts: cell kinds and parity chains.
//!
//! A [`Layout`] is the complete combinatorial description of an array code's
//! stripe. Each parity cell is defined as the XOR of its chain's *members*;
//! members are usually data cells, but some codes chain parities into
//! parities (RDP's diagonal parity covers the row-parity column; HDP's
//! horizontal-diagonal parity covers the anti-diagonal parity in its row),
//! and the engine handles that uniformly.

use std::collections::HashSet;
use std::fmt;
use std::sync::OnceLock;

use crate::geometry::Cell;
use crate::xplan::XorPlan;

/// The family a parity chain belongs to.
///
/// The engine never interprets the class; it exists so planners and reports
/// can speak the paper's language ("recover via the horizontal chain").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ParityClass {
    /// Row parity (RDP, EVENODD, H-Code) — the paper's "horizontal parity".
    Horizontal,
    /// HV Code / P-Code vertical parity.
    Vertical,
    /// Diagonal parity (RDP, EVENODD, X-Code).
    Diagonal,
    /// Anti-diagonal parity (X-Code, H-Code, HDP).
    AntiDiagonal,
    /// HDP's combined horizontal-diagonal parity.
    HorizontalDiagonal,
}

impl fmt::Display for ParityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParityClass::Horizontal => "horizontal",
            ParityClass::Vertical => "vertical",
            ParityClass::Diagonal => "diagonal",
            ParityClass::AntiDiagonal => "anti-diagonal",
            ParityClass::HorizontalDiagonal => "horizontal-diagonal",
        };
        f.write_str(s)
    }
}

/// What a cell stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// Original user data.
    Data,
    /// Redundancy of the given class.
    Parity(ParityClass),
}

impl ElementKind {
    /// True for data cells.
    pub fn is_data(self) -> bool {
        matches!(self, ElementKind::Data)
    }
}

/// Identifier of a chain within its [`Layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChainId(pub usize);

/// A parity chain: `parity = XOR(members)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Chain family.
    pub class: ParityClass,
    /// The cell storing the XOR of `members`.
    pub parity: Cell,
    /// The cells XOR-ed together to form `parity`.
    pub members: Vec<Cell>,
}

impl Chain {
    /// Number of elements in the chain including the parity cell — the
    /// paper's "length of a parity chain".
    pub fn len(&self) -> usize {
        self.members.len() + 1
    }

    /// A chain always contains at least its parity element.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over every cell of the chain equation (members + parity).
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        self.members.iter().copied().chain(std::iter::once(self.parity))
    }
}

/// Errors produced by [`Layout::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// `kinds` length does not match `rows × cols`.
    KindsShape {
        /// Expected number of cells.
        expected: usize,
        /// Provided number of kinds.
        got: usize,
    },
    /// A chain references a cell outside the grid.
    OutOfBounds(Cell),
    /// A chain's parity cell is not marked `Parity` in `kinds`.
    ParityKindMismatch(Cell),
    /// Two chains claim the same parity cell.
    DuplicateParity(Cell),
    /// A chain lists the same member twice, or its own parity as a member.
    MalformedChain(Cell),
    /// A parity cell owns no chain.
    OrphanParity(Cell),
    /// A data cell is not covered by any chain.
    UncoveredData(Cell),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::KindsShape { expected, got } => {
                write!(f, "kinds vector has {got} entries, expected {expected}")
            }
            LayoutError::OutOfBounds(c) => write!(f, "cell {c} is outside the stripe"),
            LayoutError::ParityKindMismatch(c) => {
                write!(f, "chain parity {c} is not marked as a parity cell")
            }
            LayoutError::DuplicateParity(c) => write!(f, "cell {c} owns more than one chain"),
            LayoutError::MalformedChain(c) => write!(f, "chain of {c} has duplicate members"),
            LayoutError::OrphanParity(c) => write!(f, "parity cell {c} owns no chain"),
            LayoutError::UncoveredData(c) => write!(f, "data cell {c} is in no chain"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// The full combinatorial description of a stripe.
#[derive(Debug, Clone)]
pub struct Layout {
    rows: usize,
    cols: usize,
    kinds: Vec<ElementKind>,
    chains: Vec<Chain>,
    /// For each cell (linear index): chains in which it appears as a member.
    membership: Vec<Vec<ChainId>>,
    /// For each cell: the chain it is the parity of, if any.
    owner: Vec<Option<ChainId>>,
    /// Data cells in row-major order; the paper's "continuous data elements"
    /// order used for partial stripe writes.
    data_order: Vec<Cell>,
    /// Inverse of `data_order` (linear cell index → ordinal).
    data_ordinal: Vec<Option<usize>>,
    /// Lazily compiled full-parity plan (see [`Layout::encode_plan`]).
    encode_plan_cache: OnceLock<XorPlan>,
}

impl Layout {
    /// Validates and builds a layout.
    ///
    /// # Errors
    ///
    /// See [`LayoutError`]; every structural defect a code constructor could
    /// produce is rejected here, so downstream planners can assume a
    /// well-formed layout.
    pub fn new(
        rows: usize,
        cols: usize,
        kinds: Vec<ElementKind>,
        chains: Vec<Chain>,
    ) -> Result<Self, LayoutError> {
        let n = rows * cols;
        if kinds.len() != n {
            return Err(LayoutError::KindsShape { expected: n, got: kinds.len() });
        }
        let in_bounds = |c: Cell| c.row < rows && c.col < cols;

        let mut owner: Vec<Option<ChainId>> = vec![None; n];
        let mut membership: Vec<Vec<ChainId>> = vec![Vec::new(); n];

        for (i, chain) in chains.iter().enumerate() {
            let id = ChainId(i);
            if !in_bounds(chain.parity) {
                return Err(LayoutError::OutOfBounds(chain.parity));
            }
            if !matches!(kinds[chain.parity.index(cols)], ElementKind::Parity(_)) {
                return Err(LayoutError::ParityKindMismatch(chain.parity));
            }
            let slot = &mut owner[chain.parity.index(cols)];
            if slot.is_some() {
                return Err(LayoutError::DuplicateParity(chain.parity));
            }
            *slot = Some(id);

            let mut seen = HashSet::with_capacity(chain.members.len());
            for &m in &chain.members {
                if !in_bounds(m) {
                    return Err(LayoutError::OutOfBounds(m));
                }
                if m == chain.parity || !seen.insert(m) {
                    return Err(LayoutError::MalformedChain(chain.parity));
                }
                membership[m.index(cols)].push(id);
            }
        }

        let mut data_order = Vec::new();
        let mut data_ordinal = vec![None; n];
        for idx in 0..n {
            let cell = Cell::from_index(idx, cols);
            match kinds[idx] {
                ElementKind::Data => {
                    if membership[idx].is_empty() {
                        return Err(LayoutError::UncoveredData(cell));
                    }
                    data_ordinal[idx] = Some(data_order.len());
                    data_order.push(cell);
                }
                ElementKind::Parity(_) => {
                    if owner[idx].is_none() {
                        return Err(LayoutError::OrphanParity(cell));
                    }
                }
            }
        }

        Ok(Layout {
            rows,
            cols,
            kinds,
            chains,
            membership,
            owner,
            data_order,
            data_ordinal,
            encode_plan_cache: OnceLock::new(),
        })
    }

    /// The compiled full-parity [`XorPlan`] for this layout, built on first
    /// use and cached — every stripe encoded through this layout shares one
    /// plan and performs no per-stripe geometry work.
    ///
    /// The cached plan is the cheaper (by source reads, then ops) of the
    /// optimized *expanded* specification — each parity as its data-only
    /// GF(2) expansion, with `xopt` rediscovering cascades and cross-chain
    /// sharing as shared partial sums — and the optimized *cascaded* chain
    /// form, so no layout can end up worse than its chain walk.
    pub fn encode_plan(&self) -> &XorPlan {
        self.encode_plan_cache.get_or_init(|| {
            let cascaded = XorPlan::compile_encode(self).optimized();
            let expanded = XorPlan::compile_encode_expanded(self).optimized();
            let cost = |p: &XorPlan| (p.num_source_reads(), p.num_ops());
            if cost(&expanded) < cost(&cascaded) {
                expanded
            } else {
                cascaded
            }
        })
    }

    /// Number of rows (elements per disk per stripe).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (disks).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.rows * self.cols
    }

    /// The kind stored at `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn kind(&self, cell: Cell) -> ElementKind {
        self.kinds[cell.index(self.cols)]
    }

    /// True if `cell` holds data.
    pub fn is_data(&self, cell: Cell) -> bool {
        self.kind(cell).is_data()
    }

    /// All chains.
    pub fn chains(&self) -> &[Chain] {
        &self.chains
    }

    /// The chain with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale (not from this layout).
    pub fn chain(&self, id: ChainId) -> &Chain {
        &self.chains[id.0]
    }

    /// Chains in which `cell` appears as a member (excludes the chain it may
    /// own as parity).
    pub fn chains_containing(&self, cell: Cell) -> &[ChainId] {
        &self.membership[cell.index(self.cols)]
    }

    /// The chain `cell` is the parity of, if any.
    pub fn chain_of_parity(&self, cell: Cell) -> Option<ChainId> {
        self.owner[cell.index(self.cols)]
    }

    /// Every chain whose equation involves `cell`, whether as member or
    /// parity. This is the set of equations invalidated when `cell` is lost.
    pub fn equations_of(&self, cell: Cell) -> Vec<ChainId> {
        let mut v = self.membership[cell.index(self.cols)].clone();
        if let Some(own) = self.owner[cell.index(self.cols)] {
            v.push(own);
        }
        v
    }

    /// Data cells in row-major order — the "continuous data elements" order
    /// of the paper's partial-stripe-write analysis.
    pub fn data_cells(&self) -> &[Cell] {
        &self.data_order
    }

    /// Number of data cells.
    pub fn num_data_cells(&self) -> usize {
        self.data_order.len()
    }

    /// The ordinal of a data cell in [`Layout::data_cells`] order, or `None`
    /// for parity cells.
    pub fn data_ordinal(&self, cell: Cell) -> Option<usize> {
        self.data_ordinal[cell.index(self.cols)]
    }

    /// All cells of a column, top to bottom.
    pub fn cells_in_col(&self, col: usize) -> Vec<Cell> {
        (0..self.rows).map(|r| Cell::new(r, col)).collect()
    }

    /// Parity cells of a column.
    pub fn parities_in_col(&self, col: usize) -> Vec<Cell> {
        self.cells_in_col(col)
            .into_iter()
            .filter(|&c| !self.is_data(c))
            .collect()
    }

    /// Renders the stripe as an ASCII grid, one row per line: `.` for data,
    /// `H`/`V`/`D`/`A`/`X` for horizontal / vertical / diagonal /
    /// anti-diagonal / horizontal-diagonal parity. Used by the examples and
    /// by each code's golden-layout tests, which pin the constructions
    /// against accidental change.
    ///
    /// ```
    /// # use raid_core::layout::{Layout, Chain, ElementKind, ParityClass};
    /// # use raid_core::Cell;
    /// let kinds = vec![
    ///     ElementKind::Data,
    ///     ElementKind::Parity(ParityClass::Horizontal),
    /// ];
    /// let chains = vec![Chain {
    ///     class: ParityClass::Horizontal,
    ///     parity: Cell::new(0, 1),
    ///     members: vec![Cell::new(0, 0)],
    /// }];
    /// let layout = Layout::new(1, 2, kinds, chains)?;
    /// assert_eq!(layout.render_ascii(), ".H\n");
    /// # Ok::<(), raid_core::layout::LayoutError>(())
    /// ```
    pub fn render_ascii(&self) -> String {
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let ch = match self.kind(Cell::new(r, c)) {
                    ElementKind::Data => '.',
                    ElementKind::Parity(ParityClass::Horizontal) => 'H',
                    ElementKind::Parity(ParityClass::Vertical) => 'V',
                    ElementKind::Parity(ParityClass::Diagonal) => 'D',
                    ElementKind::Parity(ParityClass::AntiDiagonal) => 'A',
                    ElementKind::Parity(ParityClass::HorizontalDiagonal) => 'X',
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }

    /// Histogram of chain lengths, `(length, count)` sorted by length —
    /// the "parity chain length" column of the paper's Table III.
    pub fn chain_length_histogram(&self) -> Vec<(usize, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for ch in &self.chains {
            *map.entry(ch.len()).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy 2×3 layout: one row-parity per row in the last column.
    fn toy() -> Layout {
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
        ];
        let chains = vec![
            Chain {
                class: ParityClass::Horizontal,
                parity: Cell::new(0, 2),
                members: vec![Cell::new(0, 0), Cell::new(0, 1)],
            },
            Chain {
                class: ParityClass::Horizontal,
                parity: Cell::new(1, 2),
                members: vec![Cell::new(1, 0), Cell::new(1, 1)],
            },
        ];
        Layout::new(2, 3, kinds, chains).unwrap()
    }

    #[test]
    fn toy_layout_queries() {
        let l = toy();
        assert_eq!(l.rows(), 2);
        assert_eq!(l.cols(), 3);
        assert_eq!(l.num_data_cells(), 4);
        assert!(l.is_data(Cell::new(0, 0)));
        assert!(!l.is_data(Cell::new(0, 2)));
        assert_eq!(l.chains_containing(Cell::new(0, 0)), &[ChainId(0)]);
        assert_eq!(l.chain_of_parity(Cell::new(1, 2)), Some(ChainId(1)));
        assert_eq!(l.data_ordinal(Cell::new(1, 0)), Some(2));
        assert_eq!(l.data_cells()[3], Cell::new(1, 1));
        assert_eq!(l.chain_length_histogram(), vec![(3, 2)]);
        assert_eq!(l.parities_in_col(2).len(), 2);
        assert_eq!(l.equations_of(Cell::new(0, 2)), vec![ChainId(0)]);
    }

    #[test]
    fn rejects_wrong_kind_count() {
        let err = Layout::new(2, 2, vec![ElementKind::Data; 3], vec![]).unwrap_err();
        assert!(matches!(err, LayoutError::KindsShape { expected: 4, got: 3 }));
    }

    #[test]
    fn rejects_parity_kind_mismatch() {
        let kinds = vec![ElementKind::Data; 4];
        let chains = vec![Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(0, 1),
            members: vec![Cell::new(0, 0)],
        }];
        let err = Layout::new(2, 2, kinds, chains).unwrap_err();
        assert!(matches!(err, LayoutError::ParityKindMismatch(_)));
    }

    #[test]
    fn rejects_uncovered_data() {
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Data,
            ElementKind::Data,
        ];
        let chains = vec![Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(0, 1),
            members: vec![Cell::new(0, 0)],
        }];
        let err = Layout::new(2, 2, kinds, chains).unwrap_err();
        assert!(matches!(err, LayoutError::UncoveredData(_)));
    }

    #[test]
    fn rejects_orphan_parity() {
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
        ];
        let chains = vec![Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(0, 1),
            members: vec![Cell::new(0, 0), Cell::new(1, 0)],
        }];
        let err = Layout::new(2, 2, kinds, chains).unwrap_err();
        assert!(matches!(err, LayoutError::OrphanParity(_)));
    }

    #[test]
    fn rejects_duplicate_member_and_self_member() {
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
        ];
        let dup = vec![Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(0, 1),
            members: vec![Cell::new(0, 0), Cell::new(0, 0)],
        }];
        assert!(matches!(
            Layout::new(1, 2, kinds.clone(), dup).unwrap_err(),
            LayoutError::MalformedChain(_)
        ));
        let selfm = vec![Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(0, 1),
            members: vec![Cell::new(0, 1)],
        }];
        assert!(matches!(
            Layout::new(1, 2, kinds, selfm).unwrap_err(),
            LayoutError::MalformedChain(_)
        ));
    }

    #[test]
    fn rejects_out_of_bounds() {
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
        ];
        let chains = vec![Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(0, 1),
            members: vec![Cell::new(5, 0)],
        }];
        assert!(matches!(
            Layout::new(1, 2, kinds, chains).unwrap_err(),
            LayoutError::OutOfBounds(_)
        ));
    }
}
