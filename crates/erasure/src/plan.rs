//! I/O planners: the algorithmic heart of the paper's evaluation.
//!
//! * [`update`] — which parities a data write must renew (update
//!   complexity, Table III), including cascaded parities (RDP, HDP);
//! * [`mod@write`] — partial-stripe-write plans (Fig. 6);
//! * [`degraded`] — degraded-read plans (Fig. 7);
//! * [`single`] — hybrid-chain single-disk recovery optimization (Fig. 9a),
//!   following Xiang et al.'s minimum-I/O recovery approach cited by the
//!   paper.

pub mod degraded;
pub mod single;
pub mod update;
pub mod write;
