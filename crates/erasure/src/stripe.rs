//! Stripe buffers and chain-driven encoding.

use raid_math::xor::{is_zero, xor_gather_into, xor_into, xor_many_into};

use crate::geometry::Cell;
use crate::layout::Layout;

/// Source-slice batches at or below this size are gathered on the stack;
/// longer ones (EVENODD-style long chains at large `p`) fall back to a heap
/// gather. Covers every chain of every code in this workspace up to p ≈ 29.
const STACK_GATHER: usize = 32;

/// The element buffers of one stripe: a `rows × cols` grid of equally sized
/// byte buffers.
///
/// A `Stripe` knows nothing about which cells are data or parity — that is
/// the [`Layout`]'s business — it is pure storage plus XOR plumbing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stripe {
    rows: usize,
    cols: usize,
    element_size: usize,
    bufs: Vec<Vec<u8>>,
}

impl Stripe {
    /// Creates a zero-filled stripe.
    pub fn zeroed(rows: usize, cols: usize, element_size: usize) -> Self {
        Stripe { rows, cols, element_size, bufs: vec![vec![0; element_size]; rows * cols] }
    }

    /// Creates a stripe shaped for `layout`.
    pub fn for_layout(layout: &Layout, element_size: usize) -> Self {
        Stripe::zeroed(layout.rows(), layout.cols(), element_size)
    }

    /// Rows per disk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of disks.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Size of each element in bytes.
    pub fn element_size(&self) -> usize {
        self.element_size
    }

    /// Read access to an element.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn element(&self, cell: Cell) -> &[u8] {
        assert!(cell.row < self.rows && cell.col < self.cols, "{cell} out of bounds");
        &self.bufs[cell.index(self.cols)]
    }

    /// Write access to an element.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn element_mut(&mut self, cell: Cell) -> &mut [u8] {
        assert!(cell.row < self.rows && cell.col < self.cols, "{cell} out of bounds");
        &mut self.bufs[cell.index(self.cols)]
    }

    /// Overwrites an element.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `element_size` bytes or `cell` is out
    /// of bounds.
    pub fn set_element(&mut self, cell: Cell, data: &[u8]) {
        assert_eq!(data.len(), self.element_size, "element size mismatch at {cell}");
        self.element_mut(cell).copy_from_slice(data);
    }

    /// Zeroes an element — how tests model an erased cell.
    pub fn erase(&mut self, cell: Cell) {
        self.element_mut(cell).fill(0);
    }

    /// Zeroes every element in a column — a failed disk.
    pub fn erase_col(&mut self, col: usize) {
        for row in 0..self.rows {
            self.erase(Cell::new(row, col));
        }
    }

    /// Fills every **data** cell of `layout` from a deterministic
    /// pseudo-random stream (parity cells left untouched).
    pub fn fill_data_seeded(&mut self, layout: &Layout, seed: u64) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for &cell in layout.data_cells() {
            let buf = self.element_mut(cell);
            for chunk in buf.chunks_mut(8) {
                let word = next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    /// Recomputes every parity element from its chain: `parity = XOR(members)`.
    ///
    /// Chains are evaluated in dependency order: a chain whose members
    /// include another chain's parity (RDP, HDP) is computed after it.
    ///
    /// Runs the layout's cached [`crate::xplan::XorPlan`] — geometry is
    /// resolved once per layout, and the per-stripe work is pure plan
    /// interpretation with no allocation.
    ///
    /// # Panics
    ///
    /// Panics if the dependency graph between parities is cyclic (no valid
    /// RAID code produces this) or if the layout does not match the stripe
    /// shape.
    pub fn encode(&mut self, layout: &Layout) {
        assert_eq!(layout.rows(), self.rows, "layout/stripe row mismatch");
        assert_eq!(layout.cols(), self.cols, "layout/stripe col mismatch");
        layout.encode_plan().execute(self);
    }

    /// The seed implementation of [`Stripe::encode`]: walks chains and
    /// allocates a scratch buffer per parity element. Kept as the reference
    /// the compiled path is property-tested and benchmarked against.
    ///
    /// # Panics
    ///
    /// As for [`Stripe::encode`].
    pub fn encode_reference(&mut self, layout: &Layout) {
        assert_eq!(layout.rows(), self.rows, "layout/stripe row mismatch");
        assert_eq!(layout.cols(), self.cols, "layout/stripe col mismatch");
        let order = encode_order(layout);
        for id in order {
            let chain = &layout.chains()[id];
            // Compute into a scratch buffer to keep the borrow checker happy.
            let mut acc = vec![0u8; self.element_size];
            for m in &chain.members {
                xor_into(&mut acc, self.element(*m));
            }
            self.set_element(chain.parity, &acc);
        }
    }

    /// Verifies every chain equation; returns the first violated chain's
    /// parity cell, or `None` if all parities are consistent.
    pub fn verify(&self, layout: &Layout) -> Option<Cell> {
        for chain in layout.chains() {
            let mut acc = self.element(chain.parity).to_vec();
            for m in &chain.members {
                xor_into(&mut acc, self.element(*m));
            }
            if !is_zero(&acc) {
                return Some(chain.parity);
            }
        }
        None
    }

    /// XOR of an arbitrary set of elements, returned as a fresh buffer —
    /// the decoder's workhorse.
    pub fn xor_of(&self, cells: impl IntoIterator<Item = Cell>) -> Vec<u8> {
        let mut acc = vec![0u8; self.element_size];
        for c in cells {
            xor_into(&mut acc, self.element(c));
        }
        acc
    }

    /// Allocation-free [`Stripe::xor_of`]: overwrites `out` with the XOR of
    /// `cells`, letting hot loops reuse one scratch buffer across elements.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `element_size` bytes or a cell is out of
    /// bounds.
    pub fn xor_of_into(&self, cells: impl IntoIterator<Item = Cell>, out: &mut [u8]) {
        assert_eq!(out.len(), self.element_size, "xor_of_into: scratch size mismatch");
        out.fill(0);
        let mut stack: [&[u8]; STACK_GATHER] = [&[]; STACK_GATHER];
        let mut n = 0;
        for c in cells {
            if n == STACK_GATHER {
                // Flush a full batch and keep gathering; order is
                // irrelevant for XOR.
                xor_many_into(out, &stack);
                n = 0;
            }
            stack[n] = self.element(c);
            n += 1;
        }
        xor_many_into(out, &stack[..n]);
    }

    /// Overwrites the buffer at linear index `dst` with the XOR of the
    /// buffers at `srcs` — the [`crate::xplan::XorPlan`] interpreter's one
    /// primitive. Single pass over every buffer including the target
    /// (which is written without being read); no allocation for plans
    /// whose steps stay at or below [`STACK_GATHER`] sources.
    pub(crate) fn apply_indexed_xor(&mut self, dst: usize, srcs: &[u32]) {
        debug_assert!(!srcs.iter().any(|&s| s as usize == dst), "op reads its own target");
        // Detach the target so the sources can be borrowed from `bufs`.
        let mut out = std::mem::take(&mut self.bufs[dst]);
        if srcs.len() <= STACK_GATHER {
            let mut stack: [&[u8]; STACK_GATHER] = [&[]; STACK_GATHER];
            for (slot, &s) in stack.iter_mut().zip(srcs) {
                *slot = &self.bufs[s as usize];
            }
            xor_gather_into(&mut out, &stack[..srcs.len()]);
        } else {
            let gathered: Vec<&[u8]> =
                srcs.iter().map(|&s| self.bufs[s as usize].as_slice()).collect();
            xor_gather_into(&mut out, &gathered);
        }
        self.bufs[dst] = out;
    }

    /// Detaches the buffer at linear index `idx` so tiled plan execution
    /// can borrow other buffers as sources while writing into it; pair
    /// with [`Stripe::put_buf`].
    pub(crate) fn take_buf(&mut self, idx: usize) -> Vec<u8> {
        std::mem::take(&mut self.bufs[idx])
    }

    /// Re-attaches a buffer detached by [`Stripe::take_buf`].
    pub(crate) fn put_buf(&mut self, idx: usize, buf: Vec<u8>) {
        self.bufs[idx] = buf;
    }

    /// Borrows the buffer at linear index `idx` (tiled execution's source
    /// view; `element` requires a [`Cell`]).
    pub(crate) fn buf(&self, idx: usize) -> &[u8] {
        &self.bufs[idx]
    }
}

/// Topologically orders chains so that any chain whose members include
/// another chain's parity cell is evaluated after that chain.
pub(crate) fn encode_order(layout: &Layout) -> Vec<usize> {
    let n = layout.chains().len();
    // dep[i] = chains that must run before chain i.
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, chain) in layout.chains().iter().enumerate() {
        for m in &chain.members {
            if let Some(owner) = layout.chain_of_parity(*m) {
                deps[i].push(owner.0);
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = visiting, 2 = done
    // Iterative DFS for topological order.
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        state[start] = 1;
        while let Some(&mut (node, ref mut di)) = stack.last_mut() {
            if *di < deps[node].len() {
                let dep = deps[node][*di];
                *di += 1;
                match state[dep] {
                    0 => {
                        state[dep] = 1;
                        stack.push((dep, 0));
                    }
                    1 => panic!("cyclic parity dependency involving chain {dep}"),
                    _ => {}
                }
            } else {
                state[node] = 2;
                order.push(node);
                stack.pop();
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    fn row_parity_layout() -> Layout {
        // 2×3, parity in last column.
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
        ];
        let chains = vec![
            Chain {
                class: ParityClass::Horizontal,
                parity: Cell::new(0, 2),
                members: vec![Cell::new(0, 0), Cell::new(0, 1)],
            },
            Chain {
                class: ParityClass::Horizontal,
                parity: Cell::new(1, 2),
                members: vec![Cell::new(1, 0), Cell::new(1, 1)],
            },
        ];
        Layout::new(2, 3, kinds, chains).unwrap()
    }

    /// A layout with a parity-of-parity dependency (like RDP's diagonal):
    /// q = d0 ^ p where p = d0 ^ d1.
    fn cascaded_layout() -> Layout {
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Parity(ParityClass::Diagonal),
        ];
        let chains = vec![
            // Deliberately listed q first to exercise the topo sort.
            Chain {
                class: ParityClass::Diagonal,
                parity: Cell::new(0, 3),
                members: vec![Cell::new(0, 0), Cell::new(0, 2)],
            },
            Chain {
                class: ParityClass::Horizontal,
                parity: Cell::new(0, 2),
                members: vec![Cell::new(0, 0), Cell::new(0, 1)],
            },
        ];
        Layout::new(1, 4, kinds, chains).unwrap()
    }

    #[test]
    fn encode_and_verify_row_parity() {
        let layout = row_parity_layout();
        let mut s = Stripe::for_layout(&layout, 16);
        s.fill_data_seeded(&layout, 42);
        assert!(s.verify(&layout).is_some(), "unencoded stripe must fail verify");
        s.encode(&layout);
        assert_eq!(s.verify(&layout), None);
        // P = D0 ^ D1 element-wise.
        let expect = s.xor_of([Cell::new(0, 0), Cell::new(0, 1)]);
        assert_eq!(s.element(Cell::new(0, 2)), &expect[..]);
    }

    #[test]
    fn encode_respects_parity_dependencies() {
        let layout = cascaded_layout();
        let mut s = Stripe::for_layout(&layout, 8);
        s.fill_data_seeded(&layout, 7);
        s.encode(&layout);
        assert_eq!(s.verify(&layout), None);
        // q must equal d0 ^ (d0 ^ d1) = d1.
        assert_eq!(s.element(Cell::new(0, 3)), s.element(Cell::new(0, 1)));
    }

    #[test]
    fn erase_and_erase_col() {
        let layout = row_parity_layout();
        let mut s = Stripe::for_layout(&layout, 4);
        s.fill_data_seeded(&layout, 1);
        s.encode(&layout);
        s.erase_col(0);
        assert!(raid_math::xor::is_zero(s.element(Cell::new(0, 0))));
        assert!(raid_math::xor::is_zero(s.element(Cell::new(1, 0))));
        assert!(s.verify(&layout).is_some());
    }

    #[test]
    fn fill_is_deterministic_per_seed() {
        let layout = row_parity_layout();
        let mut a = Stripe::for_layout(&layout, 32);
        let mut b = Stripe::for_layout(&layout, 32);
        a.fill_data_seeded(&layout, 5);
        b.fill_data_seeded(&layout, 5);
        assert_eq!(a, b);
        let mut c = Stripe::for_layout(&layout, 32);
        c.fill_data_seeded(&layout, 6);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "element size mismatch")]
    fn set_element_size_checked() {
        let layout = row_parity_layout();
        let mut s = Stripe::for_layout(&layout, 4);
        s.set_element(Cell::new(0, 0), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn element_bounds_checked() {
        let s = Stripe::zeroed(2, 2, 4);
        s.element(Cell::new(2, 0));
    }
}
