//! Structural checkers shared by every code's test suite and by the
//! Table III report generator.

use crate::decoder::is_decodable;
use crate::geometry::Cell;
use crate::layout::Layout;

/// Verifies the MDS property by exhaustively erasing every pair of columns
/// and checking decodability. Returns the first failing pair, if any.
///
/// This is the ground-truth check each code crate runs for several primes;
/// together with byte-exact decode round-trips it proves a construction
/// is a correct RAID-6 code.
pub fn find_undecodable_pair(layout: &Layout) -> Option<(usize, usize)> {
    let n = layout.cols();
    for f1 in 0..n {
        for f2 in (f1 + 1)..n {
            let mut lost = layout.cells_in_col(f1);
            lost.extend(layout.cells_in_col(f2));
            if !is_decodable(layout, &lost) {
                return Some((f1, f2));
            }
        }
    }
    None
}

/// True if every single-column erasure is decodable (RAID-5-level check).
pub fn all_single_failures_decodable(layout: &Layout) -> bool {
    (0..layout.cols()).all(|f| {
        let lost = layout.cells_in_col(f);
        is_decodable(layout, &lost)
    })
}

/// Number of parity cells in each column — `[2, 2, …]` for the paper's
/// "perfect load balancing" codes (HV, X-Code, HDP), and concentrated on
/// dedicated disks for RDP/H-Code.
pub fn parities_per_column(layout: &Layout) -> Vec<usize> {
    (0..layout.cols()).map(|c| layout.parities_in_col(c).len()).collect()
}

/// True if no chain's equation touches the same column twice. This is the
/// property that lets a chain repair exactly one element of a failed disk,
/// which all five evaluated codes satisfy.
pub fn chains_hit_columns_once(layout: &Layout) -> bool {
    layout.chains().iter().all(|ch| {
        let mut seen = vec![false; layout.cols()];
        ch.cells().all(|c| {
            if seen[c.col] {
                false
            } else {
                seen[c.col] = true;
                true
            }
        })
    })
}

/// Counts how many chains each data cell belongs to; `(min, max)`.
/// `(2, 2)` means optimal update complexity is possible.
pub fn data_membership_range(layout: &Layout) -> (usize, usize) {
    let counts: Vec<usize> = layout
        .data_cells()
        .iter()
        .map(|&c| layout.chains_containing(c).len())
        .collect();
    (
        counts.iter().copied().min().unwrap_or(0),
        counts.iter().copied().max().unwrap_or(0),
    )
}

/// The cells of `col` that are data, in row order — used by tests that walk
/// the paper's figures.
pub fn data_cells_in_col(layout: &Layout, col: usize) -> Vec<Cell> {
    layout
        .cells_in_col(col)
        .into_iter()
        .filter(|&c| c.col == col && c.row < layout.rows() && layout.is_data(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    /// X-Code with p = 3: data row 0, diagonal parity row 1, anti-diagonal
    /// parity row 2 — a genuine 2-column-erasure-tolerant layout.
    fn xcode3() -> Layout {
        let c = Cell::new;
        let mut kinds = vec![ElementKind::Data; 3];
        kinds.extend(vec![ElementKind::Parity(ParityClass::Diagonal); 3]);
        kinds.extend(vec![ElementKind::Parity(ParityClass::AntiDiagonal); 3]);
        let mut chains = Vec::new();
        for i in 0..3usize {
            chains.push(Chain {
                class: ParityClass::Diagonal,
                parity: c(1, i),
                members: vec![c(0, (i + 2) % 3)],
            });
            chains.push(Chain {
                class: ParityClass::AntiDiagonal,
                parity: c(2, i),
                members: vec![c(0, (i + 1) % 3)],
            });
        }
        Layout::new(3, 3, kinds, chains).unwrap()
    }

    /// d0 d1 | p q with p = d0^d1, q = d0: a flat layout used for the
    /// structural (non-MDS) report tests.
    fn toy() -> Layout {
        let c = Cell::new;
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Parity(ParityClass::Diagonal),
        ];
        let chains = vec![
            Chain { class: ParityClass::Horizontal, parity: c(0, 2), members: vec![c(0, 0), c(0, 1)] },
            Chain { class: ParityClass::Diagonal, parity: c(0, 3), members: vec![c(0, 0)] },
        ];
        Layout::new(1, 4, kinds, chains).unwrap()
    }

    #[test]
    fn xcode3_is_mds_over_its_columns() {
        assert_eq!(find_undecodable_pair(&xcode3()), None);
        assert!(all_single_failures_decodable(&xcode3()));
        assert_eq!(parities_per_column(&xcode3()), vec![2, 2, 2]);
        assert_eq!(data_membership_range(&xcode3()), (2, 2));
    }

    #[test]
    fn toy_flat_layout_is_not_mds() {
        // d1 is covered only by the horizontal chain, so losing d1 together
        // with the horizontal parity is undecodable.
        assert_eq!(find_undecodable_pair(&toy()), Some((1, 2)));
        assert!(all_single_failures_decodable(&toy()));
    }

    #[test]
    fn structural_reports() {
        let l = toy();
        assert_eq!(parities_per_column(&l), vec![0, 0, 1, 1]);
        assert!(chains_hit_columns_once(&l));
        assert_eq!(data_membership_range(&l), (1, 2));
        assert_eq!(data_cells_in_col(&l, 0).len(), 1);
        assert_eq!(data_cells_in_col(&l, 2).len(), 0);
    }

    #[test]
    fn detects_non_mds() {
        // d0 d1 | p only: losing d0,d1 is undecodable.
        let c = Cell::new;
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
        ];
        let chains = vec![Chain {
            class: ParityClass::Horizontal,
            parity: c(0, 2),
            members: vec![c(0, 0), c(0, 1)],
        }];
        let l = Layout::new(1, 3, kinds, chains).unwrap();
        assert_eq!(find_undecodable_pair(&l), Some((0, 1)));
    }

    #[test]
    fn detects_column_revisits() {
        let c = Cell::new;
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
        ];
        let chains = vec![
            Chain {
                class: ParityClass::Horizontal,
                parity: c(0, 2),
                // revisits column 0
                members: vec![c(0, 0), c(1, 0), c(0, 1)],
            },
            Chain {
                class: ParityClass::Horizontal,
                parity: c(1, 2),
                members: vec![c(1, 1)],
            },
        ];
        let l = Layout::new(2, 3, kinds, chains).unwrap();
        assert!(!chains_hit_columns_once(&l));
    }
}
