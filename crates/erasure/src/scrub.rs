//! Scrubbing: detecting and repairing silently corrupted elements.
//!
//! The paper's Section III-D starts from "the failure of an element" as the
//! basic repair case. Disk-level failures announce themselves; *silent*
//! corruption (bit rot, torn writes) does not — a scrubber periodically
//! re-evaluates every parity chain and localizes the damage from the
//! pattern of violated equations: a single corrupted element invalidates
//! exactly the chains whose equations contain it, and in a RAID-6 layout
//! that signature identifies the element uniquely.

use std::collections::BTreeSet;

use crate::decoder;
use crate::geometry::Cell;
use crate::layout::Layout;
use crate::stripe::Stripe;

/// Outcome of a scrub pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrubReport {
    /// Every chain checks out.
    Clean,
    /// One element was corrupted, identified and repaired in place.
    Repaired {
        /// The element that was rewritten.
        cell: Cell,
    },
    /// The violation pattern does not match any single element; the damage
    /// spans multiple elements and element-level scrubbing cannot localize
    /// it (treat the disk as failed instead).
    Unlocalizable {
        /// Parity cells of the violated chains.
        violated: Vec<Cell>,
    },
}

/// Checks every chain and, if exactly one element's corruption explains the
/// violations, repairs it in place.
///
/// A corrupted *data* element violates every chain containing it (two for
/// an optimal-update code); a corrupted *parity* element violates only its
/// own chain. Both signatures are matched; ambiguity (several candidate
/// cells with the same signature) is reported as unlocalizable rather than
/// guessed at. A candidate repair is additionally *verified*: if rewriting
/// the candidate does not make every chain consistent — e.g. two corrupted
/// parities whose violation signature happens to coincide with a data
/// cell's — the repair is rolled back and the stripe reported
/// unlocalizable, so multi-element damage is never mis-repaired as a
/// single element.
pub fn scrub(stripe: &mut Stripe, layout: &Layout) -> ScrubReport {
    let violated = violated_chains(stripe, layout);
    if violated.is_empty() {
        return ScrubReport::Clean;
    }

    // A single corrupted cell would violate exactly `equations_of(cell)`.
    let mut candidates: Vec<Cell> = Vec::new();
    for idx in 0..layout.num_cells() {
        let cell = Cell::from_index(idx, layout.cols());
        let eqs: BTreeSet<usize> =
            layout.equations_of(cell).into_iter().map(|id| id.0).collect();
        if !eqs.is_empty() && eqs == violated {
            candidates.push(cell);
        }
    }

    let unlocalizable = |violated: BTreeSet<usize>| ScrubReport::Unlocalizable {
        violated: violated.into_iter().map(|i| layout.chains()[i].parity).collect(),
    };

    match candidates.as_slice() {
        [cell] => {
            let cell = *cell;
            let snapshot = stripe.element(cell).to_vec();
            let plan = decoder::plan_decode(layout, &[cell])
                .expect("single erasure always decodable in RAID-6");
            decoder::apply_plan(stripe, &plan);
            // Verify the repair actually restored consistency; damage
            // spanning several elements can forge a single-cell signature.
            if violated_chains(stripe, layout).is_empty() {
                ScrubReport::Repaired { cell }
            } else {
                stripe.set_element(cell, &snapshot);
                unlocalizable(violated)
            }
        }
        _ => unlocalizable(violated),
    }
}

/// Indices of the layout's chains whose parity equation does not hold.
fn violated_chains(stripe: &Stripe, layout: &Layout) -> BTreeSet<usize> {
    let mut violated = BTreeSet::new();
    for (idx, chain) in layout.chains().iter().enumerate() {
        let mut acc = stripe.element(chain.parity).to_vec();
        for m in &chain.members {
            raid_math::xor::xor_into(&mut acc, stripe.element(*m));
        }
        if !raid_math::xor::is_zero(&acc) {
            violated.insert(idx);
        }
    }
    violated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    /// X-Code p=3 — every cell is in some chain, data cells in two.
    fn xcode3() -> Layout {
        let c = Cell::new;
        let mut kinds = vec![ElementKind::Data; 3];
        kinds.extend(vec![ElementKind::Parity(ParityClass::Diagonal); 3]);
        kinds.extend(vec![ElementKind::Parity(ParityClass::AntiDiagonal); 3]);
        let mut chains = Vec::new();
        for i in 0..3usize {
            chains.push(Chain {
                class: ParityClass::Diagonal,
                parity: c(1, i),
                members: vec![c(0, (i + 2) % 3)],
            });
            chains.push(Chain {
                class: ParityClass::AntiDiagonal,
                parity: c(2, i),
                members: vec![c(0, (i + 1) % 3)],
            });
        }
        Layout::new(3, 3, kinds, chains).unwrap()
    }

    fn encoded() -> (Layout, Stripe) {
        let layout = xcode3();
        let mut s = Stripe::for_layout(&layout, 16);
        s.fill_data_seeded(&layout, 5);
        s.encode(&layout);
        (layout, s)
    }

    #[test]
    fn clean_stripe_reports_clean() {
        let (layout, mut s) = encoded();
        assert_eq!(scrub(&mut s, &layout), ScrubReport::Clean);
    }

    #[test]
    fn corrupted_data_element_repaired() {
        let (layout, pristine) = encoded();
        for col in 0..3 {
            let cell = Cell::new(0, col);
            let mut s = pristine.clone();
            s.element_mut(cell)[3] ^= 0x40; // flip one bit
            let report = scrub(&mut s, &layout);
            assert_eq!(report, ScrubReport::Repaired { cell });
            assert_eq!(s, pristine);
        }
    }

    #[test]
    fn corrupted_parity_element_repaired() {
        let (layout, pristine) = encoded();
        for row in 1..3 {
            for col in 0..3 {
                let cell = Cell::new(row, col);
                let mut s = pristine.clone();
                s.element_mut(cell)[0] = !s.element(cell)[0];
                let report = scrub(&mut s, &layout);
                assert_eq!(report, ScrubReport::Repaired { cell }, "{cell}");
                assert_eq!(s, pristine);
            }
        }
    }

    #[test]
    fn multi_element_corruption_not_guessed() {
        let (layout, pristine) = encoded();
        let mut s = pristine;
        // Corrupt two data cells: the union signature matches no single
        // cell, so the scrubber must refuse.
        s.element_mut(Cell::new(0, 0))[0] ^= 1;
        s.element_mut(Cell::new(0, 1))[0] ^= 1;
        match scrub(&mut s, &layout) {
            ScrubReport::Unlocalizable { violated } => {
                assert!(violated.len() >= 3);
            }
            other => panic!("expected unlocalizable, got {other:?}"),
        }
    }

    #[test]
    fn zeroed_element_is_also_caught() {
        // Corruption that happens to zero a buffer looks exactly like an
        // erasure and must be repaired the same way.
        let (layout, pristine) = encoded();
        let mut s = pristine.clone();
        s.erase(Cell::new(0, 2));
        assert_eq!(
            scrub(&mut s, &layout),
            ScrubReport::Repaired { cell: Cell::new(0, 2) }
        );
        assert_eq!(s, pristine);
    }
}
