//! Generic erasure decoding over a [`Layout`]: peeling with a GF(2)
//! Gaussian-elimination fallback.
//!
//! Peeling repeatedly finds a chain equation with exactly one erased cell
//! and solves it — this is how every RAID-6 array code is decoded in
//! practice, and the order in which cells peel *is* the paper's
//! recovery-chain structure. Codes with adjuster terms (EVENODD's `S`)
//! occasionally stall the peel; the Gaussian fallback then solves the
//! residual system exactly, so [`plan_decode`] succeeds iff the erasure
//! pattern is information-theoretically decodable. That property is what
//! the exhaustive MDS tests of every code crate assert.

use std::collections::VecDeque;
use std::fmt;

use crate::bitset::BitSet;
use crate::geometry::Cell;
use crate::layout::{ChainId, Layout};
use crate::stripe::Stripe;

/// One reconstruction step: `target = XOR(sources)`.
///
/// For a peeled step, `via` names the chain used and `sources` are the other
/// cells of that chain (some of which may themselves be targets of earlier
/// steps). For a Gaussian step, `via` is `None` and `sources` are
/// originally-surviving cells only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeStep {
    /// The cell being reconstructed.
    pub target: Cell,
    /// Cells whose XOR reproduces `target`.
    pub sources: Vec<Cell>,
    /// The chain used, when the step came from peeling.
    pub via: Option<ChainId>,
}

/// An ordered reconstruction plan for a set of erased cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodePlan {
    /// Steps in execution order.
    pub steps: Vec<DecodeStep>,
    /// Number of steps solved by the Gaussian fallback (0 for a pure peel).
    pub gauss_steps: usize,
}

impl DecodePlan {
    /// True if peeling alone decoded everything.
    pub fn is_pure_peel(&self) -> bool {
        self.gauss_steps == 0
    }
}

/// Error returned when an erasure pattern is not decodable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotDecodableError {
    /// Cells that could not be reconstructed.
    pub unresolved: Vec<Cell>,
}

impl fmt::Display for NotDecodableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} erased cells are not decodable", self.unresolved.len())
    }
}

impl std::error::Error for NotDecodableError {}

/// Builds a reconstruction plan for `lost` cells.
///
/// # Errors
///
/// Returns [`NotDecodableError`] if the pattern exceeds the code's erasure
/// correction capability.
pub fn plan_decode(layout: &Layout, lost: &[Cell]) -> Result<DecodePlan, NotDecodableError> {
    let cols = layout.cols();
    let ncells = layout.num_cells();
    let mut lost_set = BitSet::new(ncells);
    for &c in lost {
        lost_set.insert(c.index(cols));
    }

    // Per-chain count of erased cells in its equation.
    let mut erased_in_chain: Vec<usize> = layout
        .chains()
        .iter()
        .map(|ch| ch.cells().filter(|c| lost_set.contains(c.index(cols))).count())
        .collect();

    let mut queue: VecDeque<usize> = erased_in_chain
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n == 1)
        .map(|(i, _)| i)
        .collect();

    let mut steps = Vec::with_capacity(lost.len());
    let mut remaining = lost_set.len();

    while let Some(ci) = queue.pop_front() {
        if erased_in_chain[ci] != 1 {
            continue; // stale queue entry
        }
        let chain = layout.chain(ChainId(ci));
        let target = chain
            .cells()
            .find(|c| lost_set.contains(c.index(cols)))
            .expect("chain with one erased cell");
        let sources: Vec<Cell> = chain.cells().filter(|&c| c != target).collect();
        steps.push(DecodeStep { target, sources, via: Some(ChainId(ci)) });
        lost_set.remove(target.index(cols));
        remaining -= 1;
        for eq in layout.equations_of(target) {
            erased_in_chain[eq.0] -= 1;
            if erased_in_chain[eq.0] == 1 {
                queue.push_back(eq.0);
            }
        }
    }

    if remaining == 0 {
        return Ok(DecodePlan { steps, gauss_steps: 0 });
    }

    // Gaussian fallback on the residual unknowns.
    let residual: Vec<Cell> = lost_set.iter().map(|i| Cell::from_index(i, cols)).collect();
    let gauss = gauss_solve(layout, &lost_set, &residual)?;
    let gauss_steps = gauss.len();
    steps.extend(gauss);
    Ok(DecodePlan { steps, gauss_steps })
}

/// Solves the residual system by GF(2) elimination.
///
/// Unknowns are the still-erased cells; each chain equation contributes a
/// row `XOR(unknowns in eq) = XOR(known cells in eq)`. Known right-hand
/// sides are tracked as symbolic XOR lists of surviving cells.
fn gauss_solve(
    layout: &Layout,
    lost_set: &BitSet,
    unknowns: &[Cell],
) -> Result<Vec<DecodeStep>, NotDecodableError> {
    let cols = layout.cols();
    let ncells = layout.num_cells();
    let nu = unknowns.len();
    let unknown_idx = |c: Cell| unknowns.iter().position(|&u| u == c);

    // Build rows: (coefficient bitset over unknowns, rhs cell multiset as bitset).
    struct Row {
        coef: BitSet,
        rhs: BitSet,
    }
    let mut rows: Vec<Row> = Vec::new();
    for chain in layout.chains() {
        let mut coef = BitSet::new(nu);
        let mut rhs = BitSet::new(ncells);
        let mut touches = false;
        for c in chain.cells() {
            if lost_set.contains(c.index(cols)) {
                let ui = unknown_idx(c).expect("lost cell must be an unknown");
                // XOR semantics: toggling twice cancels.
                if !coef.insert(ui) {
                    coef.remove(ui);
                }
                touches = true;
            } else if !rhs.insert(c.index(cols)) {
                rhs.remove(c.index(cols));
            }
        }
        if touches && !coef.is_empty() {
            rows.push(Row { coef, rhs });
        }
    }

    // Forward elimination with back-substitution (Gauss-Jordan).
    let mut pivot_of: Vec<Option<usize>> = vec![None; nu]; // unknown -> row index
    let mut used = vec![false; rows.len()];
    for (u, pivot) in pivot_of.iter_mut().enumerate() {
        let Some(r) = (0..rows.len()).find(|&r| !used[r] && rows[r].coef.contains(u)) else {
            continue;
        };
        used[r] = true;
        *pivot = Some(r);
        // Split borrow: clone the pivot row content (tiny bitsets).
        let pivot_coef = rows[r].coef.clone();
        let pivot_rhs = rows[r].rhs.clone();
        for (ri, row) in rows.iter_mut().enumerate() {
            if ri != r && row.coef.contains(u) {
                xor_bits(&mut row.coef, &pivot_coef);
                xor_bits(&mut row.rhs, &pivot_rhs);
            }
        }
    }

    let unresolved: Vec<Cell> = (0..nu)
        .filter(|&u| pivot_of[u].is_none())
        .map(|u| unknowns[u])
        .collect();
    if !unresolved.is_empty() {
        return Err(NotDecodableError { unresolved });
    }

    let mut steps = Vec::with_capacity(nu);
    for u in 0..nu {
        let r = pivot_of[u].expect("checked above");
        debug_assert_eq!(rows[r].coef.len(), 1, "row not fully reduced");
        let sources: Vec<Cell> = rows[r].rhs.iter().map(|i| Cell::from_index(i, cols)).collect();
        steps.push(DecodeStep { target: unknowns[u], sources, via: None });
    }
    Ok(steps)
}

/// `a ^= b` over equal-capacity bitsets (symmetric difference).
fn xor_bits(a: &mut BitSet, b: &BitSet) {
    for v in b.iter() {
        if !a.insert(v) {
            a.remove(v);
        }
    }
}

/// Builds a plan that reconstructs only the `wanted` cells (plus whatever
/// they transitively depend on) out of a larger erasure — the backward
/// slice of [`plan_decode`]'s step DAG.
///
/// This is what makes *double-degraded reads* affordable: a read of a few
/// elements while two disks are down only fetches the ancestors of those
/// elements' recovery steps instead of decoding both columns outright.
///
/// # Errors
///
/// Returns [`NotDecodableError`] if the full pattern is undecodable (the
/// slice cannot be valid if the system itself is not).
pub fn plan_targeted_decode(
    layout: &Layout,
    lost: &[Cell],
    wanted: &[Cell],
) -> Result<DecodePlan, NotDecodableError> {
    let full = plan_decode(layout, lost)?;
    let lost_set: std::collections::HashSet<Cell> = lost.iter().copied().collect();
    let mut needed: std::collections::HashSet<Cell> =
        wanted.iter().copied().filter(|c| lost_set.contains(c)).collect();
    let mut keep = vec![false; full.steps.len()];
    for (i, step) in full.steps.iter().enumerate().rev() {
        if needed.contains(&step.target) {
            keep[i] = true;
            for src in &step.sources {
                if lost_set.contains(src) {
                    needed.insert(*src);
                }
            }
        }
    }
    let mut gauss_steps = 0;
    let steps: Vec<DecodeStep> = full
        .steps
        .into_iter()
        .zip(keep)
        .filter_map(|(s, k)| {
            if k && s.via.is_none() {
                gauss_steps += 1;
            }
            k.then_some(s)
        })
        .collect();
    Ok(DecodePlan { steps, gauss_steps })
}

/// Executes a plan against a stripe whose lost cells are zeroed or stale.
///
/// The steps are lowered to a compiled [`crate::xplan::XorPlan`] (cells →
/// buffer indices, one arena) and interpreted, so execution allocates once
/// for the compiled plan instead of one scratch buffer per step.
pub fn apply_plan(stripe: &mut Stripe, plan: &DecodePlan) {
    let compiled = crate::xplan::XorPlan::from_steps(
        stripe.rows(),
        stripe.cols(),
        plan.steps.iter().map(|s| (s.target, s.sources.as_slice())),
    )
    .optimized();
    compiled.execute(stripe);
}

/// Convenience: plan and apply in one call.
///
/// # Errors
///
/// Returns [`NotDecodableError`] if the pattern is not decodable; the stripe
/// is left untouched in that case.
pub fn decode(
    stripe: &mut Stripe,
    layout: &Layout,
    lost: &[Cell],
) -> Result<DecodePlan, NotDecodableError> {
    let plan = plan_decode(layout, lost)?;
    apply_plan(stripe, &plan);
    Ok(plan)
}

/// True if the erasure pattern can be reconstructed.
pub fn is_decodable(layout: &Layout, lost: &[Cell]) -> bool {
    plan_decode(layout, lost).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    /// 1×5: d0 d1 d2 | p q with p = d0^d1^d2, q = d0 ^ 2-step structure:
    /// q = d1 ^ d2 (a second independent equation).
    fn two_parity_layout() -> Layout {
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Parity(ParityClass::Diagonal),
        ];
        let chains = vec![
            Chain {
                class: ParityClass::Horizontal,
                parity: Cell::new(0, 3),
                members: vec![Cell::new(0, 0), Cell::new(0, 1), Cell::new(0, 2)],
            },
            Chain {
                class: ParityClass::Diagonal,
                parity: Cell::new(0, 4),
                members: vec![Cell::new(0, 1), Cell::new(0, 2)],
            },
        ];
        Layout::new(1, 5, kinds, chains).unwrap()
    }

    fn encoded_stripe(layout: &Layout, seed: u64) -> Stripe {
        let mut s = Stripe::for_layout(layout, 16);
        s.fill_data_seeded(layout, seed);
        s.encode(layout);
        s
    }

    #[test]
    fn single_erasure_peels() {
        let layout = two_parity_layout();
        let pristine = encoded_stripe(&layout, 3);
        for col in 0..5 {
            let lost = vec![Cell::new(0, col)];
            let mut s = pristine.clone();
            s.erase(lost[0]);
            let plan = decode(&mut s, &layout, &lost).unwrap();
            assert!(plan.is_pure_peel());
            assert_eq!(s, pristine, "column {col}");
        }
    }

    /// X-Code with p = 3: a genuine 2-erasure-tolerant 3×3 array code.
    /// Row 0 holds data, row 1 diagonal parity `E[1,i] = E[0,(i+2)%3]`,
    /// row 2 anti-diagonal parity `E[2,i] = E[0,(i+1)%3]`.
    fn xcode3() -> Layout {
        let c = Cell::new;
        let mut kinds = vec![ElementKind::Data; 3];
        kinds.extend(vec![ElementKind::Parity(ParityClass::Diagonal); 3]);
        kinds.extend(vec![ElementKind::Parity(ParityClass::AntiDiagonal); 3]);
        let mut chains = Vec::new();
        for i in 0..3usize {
            chains.push(Chain {
                class: ParityClass::Diagonal,
                parity: c(1, i),
                members: vec![c(0, (i + 2) % 3)],
            });
            chains.push(Chain {
                class: ParityClass::AntiDiagonal,
                parity: c(2, i),
                members: vec![c(0, (i + 1) % 3)],
            });
        }
        Layout::new(3, 3, kinds, chains).unwrap()
    }

    #[test]
    fn double_column_erasure_decodes_on_mds_layout() {
        let layout = xcode3();
        let pristine = encoded_stripe(&layout, 9);
        for a in 0..3 {
            for b in (a + 1)..3 {
                let mut lost = Vec::new();
                for r in 0..3 {
                    lost.push(Cell::new(r, a));
                    lost.push(Cell::new(r, b));
                }
                let mut s = pristine.clone();
                for &c in &lost {
                    s.erase(c);
                }
                decode(&mut s, &layout, &lost).unwrap_or_else(|e| panic!("({a},{b}): {e}"));
                assert_eq!(s, pristine, "cols ({a},{b})");
            }
        }
    }

    #[test]
    fn double_erasure_decodes() {
        // In the flat two-parity layout only patterns whose unknowns are
        // separable are decodable; enumerate and verify both outcomes.
        let layout = two_parity_layout();
        let pristine = encoded_stripe(&layout, 9);
        for a in 0..5 {
            for b in (a + 1)..5 {
                let lost = vec![Cell::new(0, a), Cell::new(0, b)];
                let mut s = pristine.clone();
                s.erase(lost[0]);
                s.erase(lost[1]);
                match decode(&mut s, &layout, &lost) {
                    Ok(_) => assert_eq!(s, pristine, "cols ({a},{b})"),
                    Err(_) => {
                        // Two patterns are genuinely undecodable here:
                        // {d0, p} (d0 appears only in the p chain) and
                        // {d1, d2} (both equations see them identically).
                        assert!(
                            (a, b) == (0, 3) || (a, b) == (1, 2),
                            "unexpected undecodable pair ({a},{b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn triple_erasure_rejected_and_stripe_untouched() {
        let layout = two_parity_layout();
        let pristine = encoded_stripe(&layout, 1);
        let lost = vec![Cell::new(0, 0), Cell::new(0, 1), Cell::new(0, 2)];
        let mut s = pristine;
        for &c in &lost {
            s.erase(c);
        }
        let snapshot = s.clone();
        let err = decode(&mut s, &layout, &lost).unwrap_err();
        assert!(!err.unresolved.is_empty());
        assert!(err.to_string().contains("not decodable"));
        assert_eq!(s, snapshot);
    }

    #[test]
    fn gauss_fallback_solves_coupled_system() {
        // A system where no chain has a single erasure at the start:
        // p1 = d0 ^ d1, p2 = d0 ^ d1 ^ d2, and d2 also in p1'... construct:
        // chains: A: pA = d0^d1 ; B: pB = d0^d1^d2? losing d0,d1 stalls peel
        // only if every chain containing them has 2 losses. Use:
        //   pA = d0 ^ d1
        //   pB = d0 ^ d1 ^ d2   (d2 known) -> both chains have 2 unknowns.
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Parity(ParityClass::Diagonal),
        ];
        let chains = vec![
            Chain {
                class: ParityClass::Horizontal,
                parity: Cell::new(0, 3),
                members: vec![Cell::new(0, 0), Cell::new(0, 1)],
            },
            Chain {
                class: ParityClass::Diagonal,
                parity: Cell::new(0, 4),
                members: vec![Cell::new(0, 0), Cell::new(0, 1), Cell::new(0, 2)],
            },
        ];
        let layout = Layout::new(1, 5, kinds, chains).unwrap();
        let pristine = encoded_stripe(&layout, 77);
        let lost = vec![Cell::new(0, 0), Cell::new(0, 1)];
        let mut s = pristine.clone();
        s.erase(lost[0]);
        s.erase(lost[1]);
        // Peeling alone cannot start here... actually chain A has 2 unknowns,
        // chain B has 2 unknowns; XOR of the two equations isolates d2's
        // relation: only Gauss finds it. The pattern {d0, d1} is actually NOT
        // decodable (both equations share d0^d1). Expect an error.
        assert!(!is_decodable(&layout, &lost));
        // But {d0} alone, or {d0, d2}, decode fine — d0,d2: chain A has 1
        // unknown (d0), peel it, then chain B peels d2.
        let lost2 = vec![Cell::new(0, 0), Cell::new(0, 2)];
        let mut s2 = pristine.clone();
        s2.erase(lost2[0]);
        s2.erase(lost2[1]);
        let plan = decode(&mut s2, &layout, &lost2).unwrap();
        assert_eq!(s2, pristine);
        assert!(plan.is_pure_peel());
        drop(s);
    }

    #[test]
    fn gauss_path_actually_used_when_peel_stalls() {
        // Build equations that stall peeling but remain solvable:
        //   pA = d0 ^ d1
        //   pB = d1 ^ d2
        //   pC = d0 ^ d2
        // Lose d0, d1, d2: every chain has exactly 2 unknowns -> peel stalls.
        // The system has rank 2 < 3, so it's NOT solvable; add
        //   pD = d0
        // to make it solvable and still stalled? pD has 1 unknown, it peels.
        // Instead lose d0,d1,d2 with chains pA,pB,pC plus pD = d0^d1^d2:
        // every chain 2 or 3 unknowns; rank(A) = 3 -> Gauss required.
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Parity(ParityClass::Diagonal),
            ElementKind::Parity(ParityClass::AntiDiagonal),
            ElementKind::Parity(ParityClass::Vertical),
        ];
        let d = |c| Cell::new(0, c);
        let chains = vec![
            Chain { class: ParityClass::Horizontal, parity: d(3), members: vec![d(0), d(1)] },
            Chain { class: ParityClass::Diagonal, parity: d(4), members: vec![d(1), d(2)] },
            Chain { class: ParityClass::AntiDiagonal, parity: d(5), members: vec![d(0), d(2)] },
            Chain { class: ParityClass::Vertical, parity: d(6), members: vec![d(0), d(1), d(2)] },
        ];
        let layout = Layout::new(1, 7, kinds, chains).unwrap();
        let pristine = encoded_stripe(&layout, 123);
        let lost = vec![d(0), d(1), d(2)];
        let mut s = pristine.clone();
        for &c in &lost {
            s.erase(c);
        }
        let plan = decode(&mut s, &layout, &lost).unwrap();
        assert!(plan.gauss_steps > 0, "expected Gaussian fallback");
        assert_eq!(s, pristine);
    }

    #[test]
    fn losing_nothing_is_trivially_ok() {
        let layout = two_parity_layout();
        let plan = plan_decode(&layout, &[]).unwrap();
        assert!(plan.steps.is_empty());
    }

    #[test]
    fn targeted_plan_is_a_slice_of_the_full_plan() {
        let layout = xcode3();
        let pristine = encoded_stripe(&layout, 5);
        let mut lost = layout.cells_in_col(0);
        lost.extend(layout.cells_in_col(1));

        // Want just the data cell of column 0.
        let wanted = [Cell::new(0, 0)];
        let targeted = plan_targeted_decode(&layout, &lost, &wanted).unwrap();
        let full = plan_decode(&layout, &lost).unwrap();
        assert!(targeted.steps.len() < full.steps.len());
        assert!(targeted.steps.iter().any(|s| s.target == wanted[0]));

        // Applying the slice restores the wanted cell byte-exactly.
        let mut s = pristine.clone();
        s.erase_col(0);
        s.erase_col(1);
        apply_plan(&mut s, &targeted);
        assert_eq!(s.element(wanted[0]), pristine.element(wanted[0]));
    }

    #[test]
    fn targeted_plan_for_survivor_is_empty() {
        let layout = xcode3();
        let lost = layout.cells_in_col(0);
        // Wanted cell is on a healthy column: nothing to reconstruct.
        let plan =
            plan_targeted_decode(&layout, &lost, &[Cell::new(0, 2)]).unwrap();
        assert!(plan.steps.is_empty());
    }

    #[test]
    fn targeted_plan_still_rejects_undecodable() {
        let layout = two_parity_layout();
        let lost = vec![Cell::new(0, 0), Cell::new(0, 3)]; // known-undecodable
        assert!(plan_targeted_decode(&layout, &lost, &[Cell::new(0, 0)]).is_err());
    }
}
