//! Generic engine for XOR-based MDS array codes (RAID-6).
//!
//! Every array code in this workspace — the paper's HV Code and the baseline
//! RDP, EVENODD, X-Code, H-Code, HDP and P-Code — is described to this crate
//! as a [`layout::Layout`]: a grid of cells, a kind (data / parity) for each
//! cell, and a set of **parity chains** (each parity cell is the XOR of its
//! chain members). Everything else is generic machinery operating on that
//! description:
//!
//! * [`stripe`] — element buffers and chain-driven encoding;
//! * [`xplan`] — compiled XOR plans: encode/decode/recovery geometry
//!   lowered once to flat buffer-index operations, interpreted per stripe
//!   with no allocation (tiled for large elements);
//! * [`xopt`] — the plan-optimizing middle-end: shared partial sums become
//!   scratch temps, dead ops are dropped, ops are reordered for locality;
//! * [`decoder`] — peeling + GF(2) Gaussian erasure decoding, used both as a
//!   reference decoder and to prove the MDS property exhaustively in tests;
//! * [`schedule`] — double-failure recovery schedules: the recovery-chain
//!   structure (how many independent chains, longest chain `Lc`) that drives
//!   the paper's Fig. 9(b);
//! * [`plan`] — I/O planners: parity-update closure (update complexity),
//!   partial-stripe-write cost (Fig. 6), degraded reads (Fig. 7), and the
//!   hybrid-chain single-disk recovery optimizer (Fig. 9a);
//! * [`io`] — per-disk request sets, the cumulative [`io::IoLedger`], and
//!   the load-balancing rate λ of Eq. (7);
//! * [`stats`] — shared percentile / EWMA / latency-histogram math used
//!   by every consumer that reports a distribution (fleet QoS, service
//!   front-end, benches);
//! * [`invariants`] — structural checkers shared by every code's test suite.
//!
//! The trait [`code::ArrayCode`] ties a layout to its construction
//! parameters; code crates implement it and inherit all planners.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::needless_range_loop, clippy::redundant_clone)]

pub mod bitset;
pub mod code;
pub mod decoder;
pub mod geometry;
pub mod invariants;
pub mod io;
pub mod layout;
pub mod plan;
pub mod schedule;
pub mod scrub;
pub mod spec;
pub mod stats;
pub mod stripe;
pub mod xopt;
pub mod xplan;

pub use code::ArrayCode;
pub use geometry::Cell;
pub use layout::{Chain, ChainId, ElementKind, Layout};
pub use stripe::Stripe;
pub use xplan::XorPlan;
