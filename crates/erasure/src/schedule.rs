//! Recovery scheduling for disk failures: the *recovery chain* structure of
//! the paper's Section II ("Recovery Chain") and the parallelism analysis
//! behind Fig. 9(b) and Table III.
//!
//! When two disks fail, reconstruction proceeds by peeling: some lost
//! elements are immediately solvable (their chain lost only one element) —
//! the paper's *start elements* — and each solved element may unlock the
//! next one in the other failed column. The resulting dependency structure
//! is a forest; each tree path is a recovery chain that must execute
//! serially, while distinct chains run in parallel. The double-failure
//! recovery time is then `Lc · Re` where `Lc` is the longest chain (Section
//! V-D of the paper).

use std::collections::HashMap;

use crate::decoder::{plan_decode, NotDecodableError};
use crate::geometry::Cell;
use crate::layout::Layout;

/// The dependency structure of a reconstruction.
#[derive(Debug, Clone)]
pub struct RecoverySchedule {
    /// Reconstruction steps in solve order: `(cell, parents)` where parents
    /// are previously-reconstructed cells the step reads.
    pub steps: Vec<(Cell, Vec<Cell>)>,
    /// Cells grouped by parallel round: round `k` cells depend only on
    /// rounds `< k` (round 0 = the paper's start elements).
    pub rounds: Vec<Vec<Cell>>,
    /// Number of independent recovery chains (roots of the forest) — the
    /// paper's "recovery chains executed in parallel".
    pub num_chains: usize,
    /// Length (in elements) of the longest recovery chain, `Lc`.
    pub longest_chain: usize,
}

impl RecoverySchedule {
    /// Reconstructs the explicit chains when the dependency graph is a
    /// union of simple paths (true for all two-column failures of the codes
    /// in this workspace). Returns `None` if any cell has more than one
    /// parent or unlocks more than one successor.
    pub fn chains(&self) -> Option<Vec<Vec<Cell>>> {
        let mut child_count: HashMap<Cell, usize> = HashMap::new();
        let mut parent: HashMap<Cell, Cell> = HashMap::new();
        for (cell, parents) in &self.steps {
            if parents.len() > 1 {
                return None;
            }
            if let Some(&p) = parents.first() {
                parent.insert(*cell, p);
                *child_count.entry(p).or_insert(0) += 1;
            }
        }
        if child_count.values().any(|&c| c > 1) {
            return None;
        }
        // Build forward links and walk from the roots.
        let mut next: HashMap<Cell, Cell> = HashMap::new();
        for (c, p) in &parent {
            next.insert(*p, *c);
        }
        let mut chains = Vec::new();
        for (cell, parents) in &self.steps {
            if parents.is_empty() {
                let mut chain = vec![*cell];
                let mut cur = *cell;
                while let Some(&n) = next.get(&cur) {
                    chain.push(n);
                    cur = n;
                }
                chains.push(chain);
            }
        }
        Some(chains)
    }
}

impl RecoverySchedule {
    /// Renders the dependency structure as Graphviz DOT: one node per lost
    /// element, one edge per reconstruction dependency, chains clustered
    /// left-to-right by round. Paste into `dot -Tsvg` to see the paper's
    /// Fig. 5 for any code and failure pair.
    pub fn to_dot(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str("digraph recovery {\n");
        out.push_str(&format!("  label=\"{title}\";\n  rankdir=LR;\n"));
        for (cell, parents) in &self.steps {
            let id = format!("\"E{}_{}\"", cell.row + 1, cell.col + 1);
            let label = format!("E[{},{}]", cell.row + 1, cell.col + 1);
            let shape = if parents.is_empty() { "doublecircle" } else { "circle" };
            out.push_str(&format!("  {id} [label=\"{label}\", shape={shape}];\n"));
            for p in parents {
                out.push_str(&format!(
                    "  \"E{}_{}\" -> {id};\n",
                    p.row + 1,
                    p.col + 1
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Builds the recovery schedule for an arbitrary set of lost cells.
///
/// # Errors
///
/// Returns [`NotDecodableError`] if the erasure pattern is undecodable.
pub fn schedule_for(layout: &Layout, lost: &[Cell]) -> Result<RecoverySchedule, NotDecodableError> {
    let plan = plan_decode(layout, lost)?;
    let mut solved_at: HashMap<Cell, usize> = HashMap::new();
    let mut steps: Vec<(Cell, Vec<Cell>)> = Vec::with_capacity(plan.steps.len());
    let lost_set: std::collections::HashSet<Cell> = lost.iter().copied().collect();
    for step in &plan.steps {
        let parents: Vec<Cell> = step
            .sources
            .iter()
            .copied()
            .filter(|s| lost_set.contains(s) && solved_at.contains_key(s))
            .collect();
        solved_at.insert(step.target, steps.len());
        steps.push((step.target, parents));
    }

    // Depth per step = 1 + max depth of parents.
    let mut depth: HashMap<Cell, usize> = HashMap::new();
    let mut rounds: Vec<Vec<Cell>> = Vec::new();
    let mut num_chains = 0;
    for (cell, parents) in &steps {
        let d = parents.iter().map(|p| depth[p] + 1).max().unwrap_or(0);
        if parents.is_empty() {
            num_chains += 1;
        }
        depth.insert(*cell, d);
        if rounds.len() <= d {
            rounds.resize_with(d + 1, Vec::new);
        }
        rounds[d].push(*cell);
    }
    let longest_chain = rounds.len();
    Ok(RecoverySchedule { steps, rounds, num_chains, longest_chain })
}

/// Recovery schedule for the simultaneous failure of two whole disks.
///
/// ```
/// use raid_core::layout::{Chain, ElementKind, ParityClass, Layout};
/// use raid_core::{schedule, Cell};
///
/// // A 3-disk mirror-style layout: two parity rows replicate the data row.
/// let mut kinds = vec![ElementKind::Data; 3];
/// kinds.extend(vec![ElementKind::Parity(ParityClass::Diagonal); 3]);
/// kinds.extend(vec![ElementKind::Parity(ParityClass::AntiDiagonal); 3]);
/// let mut chains = Vec::new();
/// for i in 0..3usize {
///     chains.push(Chain {
///         class: ParityClass::Diagonal,
///         parity: Cell::new(1, i),
///         members: vec![Cell::new(0, (i + 2) % 3)],
///     });
///     chains.push(Chain {
///         class: ParityClass::AntiDiagonal,
///         parity: Cell::new(2, i),
///         members: vec![Cell::new(0, (i + 1) % 3)],
///     });
/// }
/// let layout = Layout::new(3, 3, kinds, chains)?;
/// let sched = schedule::double_failure_schedule(&layout, 0, 1)?;
/// assert!(sched.num_chains >= 1);
/// assert_eq!(sched.rounds.iter().map(Vec::len).sum::<usize>(), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns [`NotDecodableError`] if the code cannot repair this pair, i.e.
/// the layout is not MDS for these columns.
///
/// # Panics
///
/// Panics if `f1 == f2` or either column is out of range.
pub fn double_failure_schedule(
    layout: &Layout,
    f1: usize,
    f2: usize,
) -> Result<RecoverySchedule, NotDecodableError> {
    assert!(f1 != f2, "the two failed disks must differ");
    assert!(f1 < layout.cols() && f2 < layout.cols(), "failed disk out of range");
    let mut lost = layout.cells_in_col(f1);
    lost.extend(layout.cells_in_col(f2));
    schedule_for(layout, &lost)
}

/// Expected longest-chain length over all `C(n,2)` double failures — the
/// quantity the paper multiplies by `Re` to estimate Fig. 9(b) times.
pub fn expected_longest_chain(layout: &Layout) -> f64 {
    let n = layout.cols();
    let mut total = 0usize;
    let mut count = 0usize;
    for f1 in 0..n {
        for f2 in (f1 + 1)..n {
            let sched = double_failure_schedule(layout, f1, f2)
                .expect("MDS layout must repair any pair");
            total += sched.longest_chain;
            count += 1;
        }
    }
    total as f64 / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    /// 2×4 toy code: row parity in col 2, "diagonal" parity in col 3
    /// (d(r,0) pairs with row r+1's column-1 cell), designed so losing
    /// cols 0 and 1 forms nontrivial chains.
    fn toy() -> Layout {
        let k = ElementKind::Data;
        let p = |c| ElementKind::Parity(c);
        let kinds = vec![
            k,
            k,
            p(ParityClass::Horizontal),
            p(ParityClass::Diagonal),
            k,
            k,
            p(ParityClass::Horizontal),
            p(ParityClass::Diagonal),
        ];
        let c = Cell::new;
        let chains = vec![
            Chain { class: ParityClass::Horizontal, parity: c(0, 2), members: vec![c(0, 0), c(0, 1)] },
            Chain { class: ParityClass::Horizontal, parity: c(1, 2), members: vec![c(1, 0), c(1, 1)] },
            Chain { class: ParityClass::Diagonal, parity: c(0, 3), members: vec![c(0, 0), c(1, 1)] },
            Chain { class: ParityClass::Diagonal, parity: c(1, 3), members: vec![c(1, 0)] },
        ];
        Layout::new(2, 4, kinds, chains).unwrap()
    }

    #[test]
    fn schedule_for_two_columns() {
        let layout = toy();
        let sched = double_failure_schedule(&layout, 0, 1).unwrap();
        assert_eq!(sched.steps.len(), 4);
        // (1,0) peels instantly from chain 3; (0,0)/(1,1) structure follows.
        assert!(sched.num_chains >= 1);
        assert_eq!(
            sched.rounds.iter().map(|r| r.len()).sum::<usize>(),
            4,
            "every lost cell appears in exactly one round"
        );
        assert_eq!(sched.longest_chain, sched.rounds.len());
        // Dependency sanity: every parent was scheduled in an earlier step.
        let mut seen = std::collections::HashSet::new();
        for (cell, parents) in &sched.steps {
            for p in parents {
                assert!(seen.contains(p), "{p} used before solved");
            }
            seen.insert(*cell);
        }
    }

    #[test]
    fn chains_reconstructs_paths() {
        let layout = toy();
        let sched = double_failure_schedule(&layout, 0, 1).unwrap();
        if let Some(chains) = sched.chains() {
            assert_eq!(chains.len(), sched.num_chains);
            let total: usize = chains.iter().map(|c| c.len()).sum();
            assert_eq!(total, 4);
            let longest = chains.iter().map(|c| c.len()).max().unwrap();
            assert_eq!(longest, sched.longest_chain);
        }
    }

    #[test]
    fn single_column_failure_is_all_roots() {
        let layout = toy();
        let lost = layout.cells_in_col(2);
        let sched = schedule_for(&layout, &lost).unwrap();
        // Parities of col 2 are each recomputable directly: all roots.
        assert_eq!(sched.num_chains, 2);
        assert_eq!(sched.longest_chain, 1);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn equal_disks_rejected() {
        double_failure_schedule(&toy(), 1, 1).ok();
    }

    #[test]
    fn dot_output_is_wellformed() {
        let layout = toy();
        let sched = double_failure_schedule(&layout, 0, 1).unwrap();
        let dot = sched.to_dot("toy (0,1)");
        assert!(dot.starts_with("digraph recovery {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("label=\"toy (0,1)\""));
        // One node per lost element.
        assert_eq!(dot.matches("shape=").count(), 4);
        // Roots are double circles.
        assert_eq!(dot.matches("doublecircle").count(), sched.num_chains);
    }

    #[test]
    fn expected_longest_chain_is_positive() {
        // Not all pairs decodable in the toy code; restrict to a pair-wise
        // check instead of the full expectation.
        let layout = toy();
        let ok = double_failure_schedule(&layout, 0, 1);
        assert!(ok.is_ok());
    }
}
