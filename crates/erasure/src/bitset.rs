//! A small fixed-capacity bitset used by the recovery planners.
//!
//! Planner inner loops union sets of cells tens of millions of times while
//! searching hybrid recovery plans (Fig. 9a), so `HashSet` is far too slow;
//! a flat `u64` word array is exactly right.

/// Fixed-capacity bitset over `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `v`. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `v >= capacity`.
    pub fn insert(&mut self, v: usize) -> bool {
        assert!(v < self.capacity, "bit {v} out of capacity {}", self.capacity);
        let (w, b) = (v / 64, v % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `v`. Returns `true` if it was present.
    pub fn remove(&mut self, v: usize) -> bool {
        assert!(v < self.capacity, "bit {v} out of capacity {}", self.capacity);
        let (w, b) = (v / 64, v % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    pub fn contains(&self, v: usize) -> bool {
        if v >= self.capacity {
            return false;
        }
        self.words[v / 64] & (1 << (v % 64)) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// `self ^= other` — symmetric difference, word-wise. This is GF(2)
    /// addition of characteristic vectors; the symbolic verifier leans on
    /// it being O(capacity/64) rather than per-bit.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn xor_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// Size of `self ∪ other` without materializing it.
    pub fn union_len(&self, other: &BitSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Number of elements in `other` that are **not** already in `self` —
    /// the planner's "extra reads" metric.
    pub fn missing_from(&self, other: &BitSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (b & !a).count_ones() as usize)
            .sum()
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to the maximum value + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let vals: Vec<usize> = iter.into_iter().collect();
        let cap = vals.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for v in vals {
            s.insert(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_operations() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for v in [1, 5, 99] {
            a.insert(v);
        }
        for v in [5, 7] {
            b.insert(v);
        }
        assert_eq!(a.union_len(&b), 4);
        assert_eq!(a.missing_from(&b), 1); // only 7 is new
        a.union_with(&b);
        assert_eq!(a.len(), 4);
        assert!(a.contains(7));
    }

    #[test]
    fn xor_is_symmetric_difference() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for v in [1, 5, 99] {
            a.insert(v);
        }
        for v in [5, 7] {
            b.insert(v);
        }
        a.xor_with(&b);
        let got: Vec<usize> = a.iter().collect();
        assert_eq!(got, vec![1, 7, 99]);
        // XOR-ing the same set again cancels it.
        a.xor_with(&b);
        let got: Vec<usize> = a.iter().collect();
        assert_eq!(got, vec![1, 5, 99]);
    }

    #[test]
    fn iter_ascending() {
        let s: BitSet = [3usize, 64, 65, 127, 2].into_iter().collect();
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![2, 3, 64, 65, 127]);
    }

    #[test]
    fn clear_and_empty() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_beyond_capacity_panics() {
        BitSet::new(8).insert(8);
    }

    #[test]
    fn contains_beyond_capacity_is_false() {
        let s = BitSet::new(8);
        assert!(!s.contains(1000));
    }
}
