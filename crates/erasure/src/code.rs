//! The [`ArrayCode`] trait tying a construction to its layout.

use raid_math::Prime;

use crate::decoder::{self, DecodePlan, NotDecodableError};
use crate::geometry::Cell;
use crate::layout::Layout;
use crate::stripe::Stripe;

/// A RAID-6 array code: a named, prime-parameterized stripe layout.
///
/// Implementations construct their [`Layout`] once (it fully encodes the
/// combinatorics) and inherit encoding, decoding and all planners from the
/// generic engine. A code may override [`ArrayCode::decode`] with a faster
/// specialized path — HV Code does, for its Algorithm-1 double-disk repair —
/// but the override must produce byte-identical stripes (tests enforce it).
pub trait ArrayCode: Send + Sync + std::fmt::Debug {
    /// Human-readable name as used in the paper's figures ("HV Code",
    /// "RDP", …).
    fn name(&self) -> &str;

    /// The prime parameter `p`.
    fn prime(&self) -> Prime;

    /// The stripe layout.
    fn layout(&self) -> &Layout;

    /// Rows per disk per stripe.
    fn rows(&self) -> usize {
        self.layout().rows()
    }

    /// Number of disks.
    fn disks(&self) -> usize {
        self.layout().cols()
    }

    /// Recomputes every parity in the stripe.
    fn encode(&self, stripe: &mut Stripe) {
        stripe.encode(self.layout());
    }

    /// True if every parity chain is consistent.
    fn is_consistent(&self, stripe: &Stripe) -> bool {
        stripe.verify(self.layout()).is_none()
    }

    /// Reconstructs the given erased cells in place.
    ///
    /// # Errors
    ///
    /// Returns [`NotDecodableError`] if the pattern exceeds two columns'
    /// worth of correlated loss (or is otherwise undecodable).
    fn decode(&self, stripe: &mut Stripe, lost: &[Cell]) -> Result<DecodePlan, NotDecodableError> {
        decoder::decode(stripe, self.layout(), lost)
    }

    /// Storage efficiency `data cells / total cells`; `(n−2)/n` for an MDS
    /// RAID-6 code over `n` disks.
    fn storage_efficiency(&self) -> f64 {
        let l = self.layout();
        l.num_data_cells() as f64 / l.num_cells() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Chain, ElementKind, ParityClass};

    #[derive(Debug)]
    struct Mirror {
        layout: Layout,
        p: Prime,
    }

    impl Mirror {
        fn new() -> Self {
            let c = Cell::new;
            let kinds = vec![
                ElementKind::Data,
                ElementKind::Parity(ParityClass::Horizontal),
                ElementKind::Parity(ParityClass::Vertical),
            ];
            let chains = vec![
                Chain { class: ParityClass::Horizontal, parity: c(0, 1), members: vec![c(0, 0)] },
                Chain { class: ParityClass::Vertical, parity: c(0, 2), members: vec![c(0, 0)] },
            ];
            Mirror { layout: Layout::new(1, 3, kinds, chains).unwrap(), p: Prime::new(3).unwrap() }
        }
    }

    impl ArrayCode for Mirror {
        fn name(&self) -> &str {
            "3-way mirror"
        }
        fn prime(&self) -> Prime {
            self.p
        }
        fn layout(&self) -> &Layout {
            &self.layout
        }
    }

    #[test]
    fn defaults_flow_from_layout() {
        let m = Mirror::new();
        assert_eq!(m.rows(), 1);
        assert_eq!(m.disks(), 3);
        assert!((m.storage_efficiency() - 1.0 / 3.0).abs() < 1e-12);

        let mut s = Stripe::for_layout(m.layout(), 8);
        s.fill_data_seeded(m.layout(), 11);
        m.encode(&mut s);
        assert!(m.is_consistent(&s));
        let pristine = s.clone();

        // Any two losses recoverable in a 3-way mirror.
        for a in 0..3 {
            for b in (a + 1)..3 {
                let lost = vec![Cell::new(0, a), Cell::new(0, b)];
                let mut t = pristine.clone();
                t.erase(lost[0]);
                t.erase(lost[1]);
                m.decode(&mut t, &lost).unwrap();
                assert_eq!(t, pristine);
            }
        }
    }
}
