//! Property-based tests for the generic engine, driven through a family of
//! parameterized MDS layouts (X-Code over random primes) so the properties
//! are exercised on real RAID-6 structure rather than toy graphs.

use proptest::prelude::*;

use raid_core::bitset::BitSet;
use raid_core::decoder;
use raid_core::layout::{Chain, ElementKind, ParityClass};
use raid_core::plan::update::parity_updates;
use raid_core::scrub::{scrub, ScrubReport};
use raid_core::{Cell, Layout, Stripe};

/// X-Code layout over prime `p` — a compact MDS generator for the engine
/// tests (mirrors `raid-baselines`' construction, rebuilt here so this
/// crate's tests stay dependency-free).
fn xcode_layout(p: usize) -> Layout {
    let rows = p;
    let cols = p;
    let mut kinds = vec![ElementKind::Data; rows * cols];
    for c in 0..cols {
        kinds[Cell::new(p - 2, c).index(cols)] = ElementKind::Parity(ParityClass::Diagonal);
        kinds[Cell::new(p - 1, c).index(cols)] = ElementKind::Parity(ParityClass::AntiDiagonal);
    }
    let mut chains = Vec::new();
    for i in 0..cols {
        chains.push(Chain {
            class: ParityClass::Diagonal,
            parity: Cell::new(p - 2, i),
            members: (0..p - 2).map(|k| Cell::new(k, (i + k + 2) % p)).collect(),
        });
        chains.push(Chain {
            class: ParityClass::AntiDiagonal,
            parity: Cell::new(p - 1, i),
            members: (0..p - 2)
                .map(|k| Cell::new(k, (i + p - ((k + 2) % p)) % p))
                .collect(),
        });
    }
    Layout::new(rows, cols, kinds, chains).unwrap()
}

fn small_primes() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![5usize, 7, 11, 13])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_then_verify_then_decode_round_trip(
        p in small_primes(),
        seed in any::<u64>(),
        cols in (0usize..32, 0usize..32),
    ) {
        let layout = xcode_layout(p);
        let mut s = Stripe::for_layout(&layout, 16);
        s.fill_data_seeded(&layout, seed);
        s.encode(&layout);
        prop_assert_eq!(s.verify(&layout), None);

        let f1 = cols.0 % p;
        let mut f2 = cols.1 % p;
        if f1 == f2 { f2 = (f2 + 1) % p; }
        let pristine = s.clone();
        s.erase_col(f1);
        s.erase_col(f2);
        let mut lost = layout.cells_in_col(f1);
        lost.extend(layout.cells_in_col(f2));
        decoder::decode(&mut s, &layout, &lost).unwrap();
        prop_assert_eq!(s, pristine);
    }

    #[test]
    fn update_closure_is_sound_and_minimal(
        p in small_primes(),
        pick in any::<usize>(),
    ) {
        let layout = xcode_layout(p);
        let data = layout.data_cells();
        let cell = data[pick % data.len()];
        let updates = parity_updates(&layout, cell);
        // Soundness: every chain containing the cell has its parity listed.
        for id in layout.chains_containing(cell) {
            prop_assert!(updates.contains(&layout.chain(*id).parity));
        }
        // Minimality for a cascade-free code: exactly the direct parities.
        prop_assert_eq!(updates.len(), layout.chains_containing(cell).len());
    }

    #[test]
    fn scrub_repairs_any_single_corruption(
        p in small_primes(),
        seed in any::<u64>(),
        idx in any::<usize>(),
        bit in 0usize..128,
    ) {
        let layout = xcode_layout(p);
        let mut s = Stripe::for_layout(&layout, 16);
        s.fill_data_seeded(&layout, seed);
        s.encode(&layout);
        let pristine = s.clone();
        let cell = Cell::from_index(idx % layout.num_cells(), layout.cols());
        s.element_mut(cell)[bit / 8] ^= 1 << (bit % 8);
        match scrub(&mut s, &layout) {
            ScrubReport::Repaired { cell: found } => {
                prop_assert_eq!(found, cell);
                prop_assert_eq!(s, pristine);
            }
            other => prop_assert!(false, "scrub returned {other:?}"),
        }
    }

    #[test]
    fn scrub_never_misrepairs_multi_element_corruption(
        p in small_primes(),
        seed in any::<u64>(),
        picks in (any::<usize>(), any::<usize>()),
        masks in (1u8..=255, 1u8..=255),
    ) {
        // Corrupt two elements whose parity-chain sets are disjoint: no
        // single cell can explain the combined violation signature, so the
        // scrubber must refuse rather than overwrite an innocent element.
        let layout = xcode_layout(p);
        let mut s = Stripe::for_layout(&layout, 16);
        s.fill_data_seeded(&layout, seed);
        s.encode(&layout);
        let pristine = s.clone();

        let n = layout.num_cells();
        let a = Cell::from_index(picks.0 % n, layout.cols());
        let eqs_a: std::collections::BTreeSet<usize> =
            layout.equations_of(a).into_iter().map(|id| id.0).collect();
        let mut b = a;
        for off in 0..n {
            let cand = Cell::from_index((picks.1 + off) % n, layout.cols());
            let eqs: std::collections::BTreeSet<usize> =
                layout.equations_of(cand).into_iter().map(|id| id.0).collect();
            if cand != a && !eqs.is_empty() && eqs.is_disjoint(&eqs_a) {
                b = cand;
                break;
            }
        }
        prop_assert_ne!(a, b, "no chain-disjoint partner found for {}", a);

        // Distinct byte offsets: equal deltas at the same offset on two
        // parities can forge a self-consistent single-data-cell explanation
        // (undetectable by construction); offset-disjoint deltas cannot.
        s.element_mut(a)[0] ^= masks.0;
        s.element_mut(b)[1] ^= masks.1;
        let corrupted = s.clone();
        match scrub(&mut s, &layout) {
            ScrubReport::Unlocalizable { violated } => {
                prop_assert!(!violated.is_empty());
                // Refusal must leave the stripe exactly as found — a
                // rolled-back candidate repair may not linger.
                prop_assert_eq!(&s, &corrupted);
            }
            other => prop_assert!(false, "expected unlocalizable, got {other:?}"),
        }
        prop_assert_ne!(&s, &pristine);
    }

    #[test]
    fn parity_only_corruption_never_touches_data(
        p in small_primes(),
        seed in any::<u64>(),
        pick in any::<usize>(),
        mask in 1u8..=255,
        double in any::<bool>(),
    ) {
        // Corrupting only parity elements must never cause the scrubber to
        // rewrite a data element: one bad parity is recomputed in place,
        // and two bad parities (whose union signature can forge a data
        // cell's) must be refused by the verify-after-repair check.
        let layout = xcode_layout(p);
        let mut s = Stripe::for_layout(&layout, 16);
        s.fill_data_seeded(&layout, seed);
        s.encode(&layout);
        let pristine = s.clone();

        let parities: Vec<Cell> = layout.chains().iter().map(|c| c.parity).collect();
        let first = parities[pick % parities.len()];
        s.element_mut(first)[1] ^= mask;
        if double {
            // Different byte offset: equal deltas on two parities sharing a
            // data cell are indistinguishable from that data cell being
            // corrupted (the forged repair would be self-consistent), which
            // is beyond any scrubber — not the property under test.
            let second = parities[(pick + 1) % parities.len()];
            s.element_mut(second)[2] ^= mask;
        }

        let report = scrub(&mut s, &layout);
        for cell in layout.data_cells() {
            prop_assert_eq!(s.element(*cell), pristine.element(*cell),
                "data element {} modified by parity-only scrub", cell);
        }
        if double {
            prop_assert!(
                matches!(report, ScrubReport::Unlocalizable { .. }),
                "two corrupt parities must be unlocalizable, got {report:?}");
        } else {
            prop_assert_eq!(report, ScrubReport::Repaired { cell: first });
            prop_assert_eq!(&s, &pristine);
        }
    }

    #[test]
    fn decodability_matches_independent_rank_check(
        p in prop::sample::select(vec![5usize, 7]),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..12),
    ) {
        // Erase an arbitrary random cell set (not confined to two columns)
        // and compare the engine's verdict against a from-scratch GF(2)
        // rank computation over u128 row masks.
        let layout = xcode_layout(p);
        let mut lost: Vec<Cell> = Vec::new();
        for (r, c) in picks {
            let cell = Cell::new(r % layout.rows(), c % layout.cols());
            if !lost.contains(&cell) {
                lost.push(cell);
            }
        }
        let engine_says = decoder::is_decodable(&layout, &lost);

        // Reference: rank of the chain-equation matrix restricted to the
        // lost cells must equal |lost|.
        let idx_of = |cell: &Cell| lost.iter().position(|l| l == cell);
        let mut rows_mask: Vec<u128> = Vec::new();
        for chain in layout.chains() {
            let mut mask: u128 = 0;
            for cell in chain.cells() {
                if let Some(i) = idx_of(&cell) {
                    mask ^= 1 << i;
                }
            }
            if mask != 0 {
                rows_mask.push(mask);
            }
        }
        // Standard XOR linear basis indexed by leading bit.
        let mut basis = [0u128; 128];
        let mut rank = 0usize;
        for mut row in rows_mask {
            while row != 0 {
                let lead = 127 - row.leading_zeros() as usize;
                if basis[lead] == 0 {
                    basis[lead] = row;
                    rank += 1;
                    break;
                }
                row ^= basis[lead];
            }
        }
        prop_assert_eq!(engine_says, rank == lost.len(),
            "engine and rank reference disagree on {:?}", lost);
    }

    #[test]
    fn bitset_behaves_like_hashset(
        ops in prop::collection::vec((any::<bool>(), 0usize..256), 0..128),
    ) {
        let mut bs = BitSet::new(256);
        let mut hs = std::collections::HashSet::new();
        for (insert, v) in ops {
            if insert {
                prop_assert_eq!(bs.insert(v), hs.insert(v));
            } else {
                prop_assert_eq!(bs.remove(v), hs.remove(&v));
            }
        }
        prop_assert_eq!(bs.len(), hs.len());
        let mut from_bs: Vec<usize> = bs.iter().collect();
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_bs.sort_unstable();
        from_hs.sort_unstable();
        prop_assert_eq!(from_bs, from_hs);
    }

    #[test]
    fn union_len_matches_materialized_union(
        a in prop::collection::vec(0usize..200, 0..64),
        b in prop::collection::vec(0usize..200, 0..64),
    ) {
        let mut sa = BitSet::new(200);
        let mut sb = BitSet::new(200);
        for v in &a { sa.insert(*v); }
        for v in &b { sb.insert(*v); }
        let expected = sa.union_len(&sb);
        prop_assert_eq!(sa.missing_from(&sb), expected - sa.len());
        let mut u = sa.clone();
        u.union_with(&sb);
        prop_assert_eq!(u.len(), expected);
    }
}
