//! Descriptive statistics of a write trace — printed alongside the Fig. 6
//! results so the workload a number was measured under is part of the
//! record.

use std::collections::BTreeMap;

use crate::WriteTrace;

/// Summary of a write trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Write operations including repetitions.
    pub operations: u64,
    /// Data elements written including repetitions.
    pub elements_written: u64,
    /// Distinct data elements touched at least once.
    pub footprint: usize,
    /// Smallest pattern length.
    pub min_len: usize,
    /// Largest pattern length.
    pub max_len: usize,
    /// Mean pattern length (weighted by frequency).
    pub mean_len: f64,
    /// Ratio of elements written to footprint — how hot the hot spots are
    /// (1.0 = every element written exactly once).
    pub reuse_factor: f64,
}

/// Computes [`TraceStats`].
///
/// # Panics
///
/// Panics if the trace has no patterns.
pub fn trace_stats(trace: &WriteTrace) -> TraceStats {
    assert!(!trace.patterns.is_empty(), "empty trace");
    let mut touched: BTreeMap<usize, u64> = BTreeMap::new();
    let mut operations = 0u64;
    let mut elements = 0u64;
    let mut min_len = usize::MAX;
    let mut max_len = 0usize;
    for p in &trace.patterns {
        operations += p.freq as u64;
        elements += (p.len as u64) * p.freq as u64;
        min_len = min_len.min(p.len);
        max_len = max_len.max(p.len);
        for e in p.start..p.start + p.len {
            *touched.entry(e).or_insert(0) += p.freq as u64;
        }
    }
    let footprint = touched.len();
    TraceStats {
        operations,
        elements_written: elements,
        footprint,
        min_len,
        max_len,
        mean_len: elements as f64 / operations as f64,
        reuse_factor: elements as f64 / footprint as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{table2_trace, uniform_write_trace, WritePattern};

    #[test]
    fn table2_stats_match_hand_count() {
        let s = trace_stats(&table2_trace());
        assert_eq!(s.operations, 1115); // Σ F
        assert_eq!(s.min_len, 1);
        assert_eq!(s.max_len, 45);
        // Starts < 50 and lengths ≤ 45 → footprint within [45, 94].
        assert!(s.footprint >= 45 && s.footprint <= 94, "{}", s.footprint);
        assert!(s.reuse_factor > 100.0, "Table II is write-hot");
    }

    #[test]
    fn uniform_trace_has_uniform_shape() {
        let t = uniform_write_trace(10, 500, 1000, 3);
        let s = trace_stats(&t);
        assert_eq!(s.operations, 500);
        assert_eq!((s.min_len, s.max_len), (10, 10));
        assert!((s.mean_len - 10.0).abs() < 1e-12);
        assert!(s.reuse_factor < 10.0, "uniform trace is cold-ish");
    }

    #[test]
    fn frequency_weighting() {
        let t = WriteTrace {
            name: "t".into(),
            patterns: vec![
                WritePattern { start: 0, len: 2, freq: 3 },
                WritePattern { start: 1, len: 4, freq: 1 },
            ],
        };
        let s = trace_stats(&t);
        assert_eq!(s.operations, 4);
        assert_eq!(s.elements_written, 10);
        assert_eq!(s.footprint, 5); // elements 0..5
        assert!((s.mean_len - 2.5).abs() < 1e-12);
        assert!((s.reuse_factor - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_rejected() {
        trace_stats(&WriteTrace { name: "e".into(), patterns: vec![] });
    }
}
