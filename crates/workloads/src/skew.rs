//! Skewed and sequential write traces — the access distributions the paper
//! argues "stripe rotation" cannot balance (Section II-C, Load Balancing).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{WritePattern, WriteTrace};

/// A Zipf-like trace: pattern starts are drawn from a Zipf(θ) distribution
/// over `0..data_elements`, so a small region absorbs most writes (hotter
/// with larger `theta`).
///
/// Sampling uses the classical inverse-power method over ranked element
/// indices; `theta = 0` degenerates to uniform.
///
/// # Panics
///
/// Panics if `data_elements == 0`, `len == 0`, or `theta < 0`.
pub fn zipf_write_trace(
    len: usize,
    count: usize,
    data_elements: usize,
    theta: f64,
    seed: u64,
) -> WriteTrace {
    assert!(data_elements > 0, "need a non-empty data space");
    assert!(len > 0, "zero-length writes are meaningless");
    assert!(theta >= 0.0, "theta must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);

    // Precompute the normalized CDF of rank^(−theta).
    let n = data_elements;
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for rank in 1..=n {
        acc += (rank as f64).powf(-theta);
        cdf.push(acc);
    }
    let total = acc;

    let patterns = (0..count)
        .map(|_| {
            let u = rng.gen::<f64>() * total;
            let idx = cdf.partition_point(|&c| c < u).min(n - 1);
            WritePattern { start: idx, len, freq: 1 }
        })
        .collect();
    WriteTrace { name: format!("zipf_{theta:.1}_w_{len}"), patterns }
}

/// A hot-spot trace: every write lands inside `[0, spot_elements)` — the
/// adversarial case for stripe rotation.
///
/// # Panics
///
/// Panics if `spot_elements == 0` or `len == 0`.
pub fn hot_spot_trace(len: usize, count: usize, spot_elements: usize, seed: u64) -> WriteTrace {
    assert!(spot_elements > 0, "empty hot spot");
    assert!(len > 0, "zero-length writes are meaningless");
    let mut rng = StdRng::seed_from_u64(seed);
    WriteTrace {
        name: format!("hot_spot_{spot_elements}"),
        patterns: (0..count)
            .map(|_| WritePattern { start: rng.gen_range(0..spot_elements), len, freq: 1 })
            .collect(),
    }
}

/// A purely sequential trace: back-to-back writes of `len` elements
/// sweeping the address space from `0` — the backup / VM-migration pattern
/// the paper's partial-stripe-write analysis is motivated by.
pub fn sequential_trace(len: usize, count: usize, data_elements: usize) -> WriteTrace {
    assert!(data_elements > len, "data space too small");
    WriteTrace {
        name: format!("sequential_w_{len}"),
        patterns: (0..count)
            .map(|i| WritePattern {
                start: (i * len) % (data_elements - len),
                len,
                freq: 1,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_concentrates_mass_as_theta_grows() {
        let space = 1000;
        let flat = zipf_write_trace(4, 2000, space, 0.0, 1);
        let hot = zipf_write_trace(4, 2000, space, 1.2, 1);
        let head_share = |t: &WriteTrace| {
            t.patterns.iter().filter(|p| p.start < space / 10).count() as f64
                / t.patterns.len() as f64
        };
        assert!(head_share(&hot) > head_share(&flat) + 0.3);
        // Uniform-ish: roughly 10% in the first decile.
        assert!((head_share(&flat) - 0.1).abs() < 0.05);
    }

    #[test]
    fn zipf_is_deterministic() {
        assert_eq!(
            zipf_write_trace(4, 100, 50, 0.9, 7),
            zipf_write_trace(4, 100, 50, 0.9, 7)
        );
    }

    #[test]
    fn hot_spot_confined() {
        let t = hot_spot_trace(8, 500, 16, 3);
        assert!(t.patterns.iter().all(|p| p.start < 16 && p.len == 8));
    }

    #[test]
    fn sequential_sweeps() {
        let t = sequential_trace(10, 5, 100);
        let starts: Vec<usize> = t.patterns.iter().map(|p| p.start).collect();
        assert_eq!(starts, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_rejected() {
        zipf_write_trace(1, 1, 10, -1.0, 0);
    }
}
