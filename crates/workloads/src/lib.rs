//! Workload traces for the RAID-6 evaluation — the exact traces of the HV
//! paper's Section V plus seeded generators for new ones.
//!
//! * [`table2_trace`] — the random write trace of Table II, reproduced
//!   triple-for-triple;
//! * [`uniform_write_trace`] — the paper's `uniform_w_L` traces (fixed
//!   length, uniformly random start, 1000 patterns);
//! * [`random_write_trace`] — a seeded generator in the same `(S, L, F)`
//!   format as Table II (the paper drew its values from random.org);
//! * [`degraded_read_patterns`] — the 100 uniformly-started read patterns
//!   of the degraded-read experiment.

//!
//! Beyond the paper: [`skew`] generates Zipf-skewed, hot-spot and
//! sequential traces for the rotation/balance ablations, and [`textio`]
//! round-trips traces through a plain-text format so experiments can be
//! archived and replayed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod skew;
pub mod stats;
pub mod textio;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One partial-stripe-write pattern `(S, L, F)`: write `L` continuous data
/// elements starting at data element `S`, repeated `F` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritePattern {
    /// Start data-element index `S`.
    pub start: usize,
    /// Number of continuous data elements `L`.
    pub len: usize,
    /// Repetition count `F`.
    pub freq: u32,
}

/// A named sequence of write patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteTrace {
    /// Trace name as used in the paper's figures (e.g. `uniform_w_10`).
    pub name: String,
    /// The patterns, replayed in order.
    pub patterns: Vec<WritePattern>,
}

impl WriteTrace {
    /// Total write operations including repetitions.
    pub fn total_operations(&self) -> u64 {
        self.patterns.iter().map(|p| p.freq as u64).sum()
    }

    /// Iterates `(start, len)` once per repetition.
    pub fn expanded(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.patterns
            .iter()
            .flat_map(|p| std::iter::repeat_n((p.start, p.len), p.freq as usize))
    }

    /// Concatenates another trace after this one.
    pub fn concat(mut self, other: WriteTrace) -> WriteTrace {
        self.name = format!("{}+{}", self.name, other.name);
        self.patterns.extend(other.patterns);
        self
    }

    /// Multiplies every pattern's frequency by `times` — replaying the
    /// trace `times` times over.
    ///
    /// # Panics
    ///
    /// Panics if `times` is zero.
    pub fn repeat(mut self, times: u32) -> WriteTrace {
        assert!(times > 0, "repeating zero times erases the trace");
        for p in &mut self.patterns {
            p.freq *= times;
        }
        self.name = format!("{}x{times}", self.name);
        self
    }

    /// Shifts every pattern's start by `delta` elements — relocating the
    /// workload to another region of the address space.
    pub fn offset(mut self, delta: usize) -> WriteTrace {
        for p in &mut self.patterns {
            p.start += delta;
        }
        self
    }

    /// Clamps every pattern to fit a volume of `data_elements` capacity:
    /// lengths are truncated to the capacity and starts pulled back so
    /// `start + len ≤ data_elements`. Generators target the element space
    /// they were asked for, but a replayer driving a *smaller* volume
    /// (the fleet harness replays one shared trace against many
    /// odd-shaped volumes) needs every operation in range rather than an
    /// `OutOfRange` rejection mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `data_elements` is zero.
    pub fn clamped(mut self, data_elements: usize) -> WriteTrace {
        assert!(data_elements > 0, "cannot clamp into an empty volume");
        for p in &mut self.patterns {
            p.len = p.len.min(data_elements);
            p.start = p.start.min(data_elements - p.len);
        }
        self
    }
}

/// One degraded-read pattern: read `len` continuous data elements starting
/// at `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadPattern {
    /// Start data-element index.
    pub start: usize,
    /// Number of continuous data elements (the paper's `L`).
    pub len: usize,
}

/// The random write trace of Table II, exactly as printed in the paper.
///
/// ```
/// let t = raid_workloads::table2_trace();
/// assert_eq!(t.patterns.len(), 25);
/// // "(28,34,66) means the write operation will start from the 28th data
/// // element and the 34 continuous data elements will be written for 66
/// // times."
/// assert_eq!((t.patterns[0].start, t.patterns[0].len, t.patterns[0].freq), (28, 34, 66));
/// ```
pub fn table2_trace() -> WriteTrace {
    const TABLE2: [(usize, usize, u32); 25] = [
        (28, 34, 66),
        (34, 22, 69),
        (4, 45, 3),
        (30, 18, 64),
        (24, 32, 70),
        (29, 26, 48),
        (6, 3, 51),
        (34, 42, 50),
        (37, 9, 1),
        (34, 38, 93),
        (6, 44, 75),
        (10, 44, 2),
        (34, 15, 43),
        (2, 6, 49),
        (28, 17, 57),
        (20, 33, 39),
        (48, 28, 27),
        (48, 13, 30),
        (40, 2, 32),
        (16, 24, 7),
        (19, 4, 77),
        (22, 14, 31),
        (49, 31, 82),
        (35, 26, 1),
        (31, 1, 48),
    ];
    WriteTrace {
        name: "random_write_trace (Table II)".to_string(),
        patterns: TABLE2
            .iter()
            .map(|&(start, len, freq)| WritePattern { start, len, freq })
            .collect(),
    }
}

/// The paper's `uniform_w_L` trace: `count` patterns of fixed length `len`
/// whose starts are uniform over `0..data_elements`.
///
/// ```
/// let t = raid_workloads::uniform_write_trace(10, 1000, 2390, 42);
/// assert_eq!(t.name, "uniform_w_10");
/// assert_eq!(t.total_operations(), 1000);
/// ```
///
/// # Panics
///
/// Panics if `data_elements == 0` or `len == 0`.
pub fn uniform_write_trace(
    len: usize,
    count: usize,
    data_elements: usize,
    seed: u64,
) -> WriteTrace {
    assert!(data_elements > 0, "need a non-empty data space");
    assert!(len > 0, "zero-length writes are meaningless");
    let mut rng = StdRng::seed_from_u64(seed);
    WriteTrace {
        name: format!("uniform_w_{len}"),
        patterns: (0..count)
            .map(|_| WritePattern { start: rng.gen_range(0..data_elements), len, freq: 1 })
            .collect(),
    }
}

/// A seeded random `(S, L, F)` trace in the same format and value ranges as
/// Table II (`S ∈ 0..50`, `L ∈ 1..=45`, `F ∈ 1..=99`).
pub fn random_write_trace(patterns: usize, seed: u64) -> WriteTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    WriteTrace {
        name: format!("random_write_trace(seed={seed})"),
        patterns: (0..patterns)
            .map(|_| WritePattern {
                start: rng.gen_range(0..50),
                len: rng.gen_range(1..=45),
                freq: rng.gen_range(1..=99),
            })
            .collect(),
    }
}

/// The degraded-read experiment's patterns: `count` reads of length `len`
/// with uniformly random starts over `0..data_elements`.
///
/// # Panics
///
/// Panics if `data_elements == 0` or `len == 0`.
pub fn degraded_read_patterns(
    len: usize,
    count: usize,
    data_elements: usize,
    seed: u64,
) -> Vec<ReadPattern> {
    assert!(data_elements > 0, "need a non-empty data space");
    assert!(len > 0, "zero-length reads are meaningless");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| ReadPattern { start: rng.gen_range(0..data_elements), len })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper() {
        let t = table2_trace();
        assert_eq!(t.patterns.len(), 25);
        assert_eq!(t.patterns[0], WritePattern { start: 28, len: 34, freq: 66 });
        assert_eq!(t.patterns[9], WritePattern { start: 34, len: 38, freq: 93 });
        assert_eq!(t.patterns[24], WritePattern { start: 31, len: 1, freq: 48 });
        // Paper example: "(28,34,66) means the write ... will start from the
        // 28th data element and the 34 continuous data elements will be
        // written for 66 times".
        let total: u64 = t.total_operations();
        assert_eq!(total, t.patterns.iter().map(|p| p.freq as u64).sum::<u64>());
    }

    #[test]
    fn clamped_fits_every_pattern_into_capacity() {
        let t = WriteTrace {
            name: "t".into(),
            patterns: vec![
                WritePattern { start: 90, len: 20, freq: 1 }, // runs past the end
                WritePattern { start: 5, len: 200, freq: 2 }, // longer than the volume
                WritePattern { start: 3, len: 4, freq: 1 },   // already in range
            ],
        }
        .clamped(100);
        for p in &t.patterns {
            assert!(p.start + p.len <= 100, "{p:?} escapes the volume");
            assert!(p.len > 0);
        }
        assert_eq!(t.patterns[0], WritePattern { start: 80, len: 20, freq: 1 });
        assert_eq!(t.patterns[1], WritePattern { start: 0, len: 100, freq: 2 });
        assert_eq!(t.patterns[2], WritePattern { start: 3, len: 4, freq: 1 });
    }

    #[test]
    fn expansion_repeats_patterns() {
        let t = WriteTrace {
            name: "t".into(),
            patterns: vec![WritePattern { start: 3, len: 2, freq: 3 }],
        };
        let v: Vec<_> = t.expanded().collect();
        assert_eq!(v, vec![(3, 2); 3]);
    }

    #[test]
    fn combinators_compose() {
        let a = WriteTrace {
            name: "a".into(),
            patterns: vec![WritePattern { start: 0, len: 2, freq: 1 }],
        };
        let b = WriteTrace {
            name: "b".into(),
            patterns: vec![WritePattern { start: 5, len: 3, freq: 2 }],
        };
        let combined = a.concat(b).repeat(2).offset(10);
        assert_eq!(combined.name, "a+bx2");
        assert_eq!(combined.total_operations(), 6);
        assert_eq!(combined.patterns[0], WritePattern { start: 10, len: 2, freq: 2 });
        assert_eq!(combined.patterns[1], WritePattern { start: 15, len: 3, freq: 4 });
    }

    #[test]
    #[should_panic(expected = "zero times")]
    fn repeat_zero_rejected() {
        table2_trace().repeat(0);
    }

    #[test]
    fn uniform_trace_is_deterministic_and_in_range() {
        let a = uniform_write_trace(10, 1000, 120, 7);
        let b = uniform_write_trace(10, 1000, 120, 7);
        assert_eq!(a, b);
        assert_eq!(a.patterns.len(), 1000);
        assert!(a.patterns.iter().all(|p| p.len == 10 && p.start < 120 && p.freq == 1));
        let c = uniform_write_trace(10, 1000, 120, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_trace_ranges_match_table2_format() {
        let t = random_write_trace(200, 42);
        assert!(t
            .patterns
            .iter()
            .all(|p| p.start < 50 && (1..=45).contains(&p.len) && (1..=99).contains(&p.freq)));
    }

    #[test]
    fn degraded_patterns() {
        let ps = degraded_read_patterns(15, 100, 60, 1);
        assert_eq!(ps.len(), 100);
        assert!(ps.iter().all(|p| p.len == 15 && p.start < 60));
    }

    #[test]
    #[should_panic(expected = "non-empty data space")]
    fn empty_data_space_rejected() {
        uniform_write_trace(10, 1, 0, 0);
    }
}
