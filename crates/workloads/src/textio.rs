//! Plain-text trace archiving: the `(S,L,F)` format of the paper's
//! Table II, one triple per line, with `#` comments.

use std::fmt;

use crate::{WritePattern, WriteTrace};

/// Error from [`parse_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// Renders a trace as text: a `# name:` header and one `S L F` triple per
/// line.
pub fn format_trace(trace: &WriteTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("# name: {}\n", trace.name));
    for p in &trace.patterns {
        out.push_str(&format!("{} {} {}\n", p.start, p.len, p.freq));
    }
    out
}

/// Parses the format produced by [`format_trace`]. Blank lines and `#`
/// comments are skipped; a `# name:` comment sets the trace name.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed lines, zero lengths or zero
/// frequencies.
pub fn parse_trace(text: &str) -> Result<WriteTrace, ParseTraceError> {
    let mut name = "unnamed".to_string();
    let mut patterns = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("name:") {
                name = n.trim().to_string();
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(ParseTraceError {
                line: idx + 1,
                reason: format!("expected 3 fields, got {}", fields.len()),
            });
        }
        let parse = |s: &str, what: &str| -> Result<u64, ParseTraceError> {
            s.parse().map_err(|_| ParseTraceError {
                line: idx + 1,
                reason: format!("bad {what}: {s}"),
            })
        };
        let start = parse(fields[0], "start")? as usize;
        let len = parse(fields[1], "length")? as usize;
        let freq = parse(fields[2], "frequency")? as u32;
        if len == 0 || freq == 0 {
            return Err(ParseTraceError {
                line: idx + 1,
                reason: "length and frequency must be positive".into(),
            });
        }
        patterns.push(WritePattern { start, len, freq });
    }
    Ok(WriteTrace { name, patterns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2_trace;

    #[test]
    fn round_trip_table2() {
        let t = table2_trace();
        let text = format_trace(&t);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let t = parse_trace("# name: demo\n\n# a comment\n1 2 3\n").unwrap();
        assert_eq!(t.name, "demo");
        assert_eq!(t.patterns, vec![WritePattern { start: 1, len: 2, freq: 3 }]);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = parse_trace("1 2\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("expected 3 fields"));
        let err = parse_trace("1 2 3\nx 2 3\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_trace("1 0 3\n").unwrap_err();
        assert!(err.reason.contains("positive"));
    }
}
