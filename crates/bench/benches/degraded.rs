//! Degraded-read throughput through the unified I/O pipeline: every read
//! lowers to the same `LoweredOp` stream a production volume would issue,
//! so this measures plan compilation + backend element I/O + XOR repair,
//! not just the decode kernel.

use std::sync::Arc;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use raid_bench::codes::evaluated;
use raid_bench::report::{write_bench_json, BenchRecord};
use raid_core::ArrayCode;
use raid_array::RaidVolume;

const ELEMENT: usize = 4096;
const STRIPES: usize = 4;

fn degraded_volume(code: &Arc<dyn ArrayCode>, failures: &[usize]) -> RaidVolume {
    let mut v = RaidVolume::in_memory(Arc::clone(code), STRIPES, ELEMENT);
    let data: Vec<u8> = (0..v.data_elements() * ELEMENT)
        .map(|i| (i as u64).wrapping_mul(0x9E37_79B9).to_le_bytes()[0])
        .collect();
    v.write(0, &data).expect("initial fill");
    for &d in failures {
        v.fail_disk(d % v.disks()).expect("within tolerance");
    }
    v
}

fn bench_degraded_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("degraded_read");
    for p in [7usize, 13] {
        for code in evaluated(p) {
            let mut v = degraded_volume(&code, &[1]);
            let elements = v.data_elements();
            group.throughput(Throughput::Bytes((elements * ELEMENT) as u64));
            group.bench_with_input(
                BenchmarkId::new(code.name().replace(' ', "_"), p),
                &p,
                |b, _| {
                    b.iter(|| {
                        let (bytes, _) = v.read(0, elements).unwrap();
                        std::hint::black_box(bytes);
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_double_degraded_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("double_degraded_read");
    for code in evaluated(7) {
        let disks = code.layout().cols();
        let mut v = degraded_volume(&code, &[1, disks - 1]);
        let elements = v.data_elements();
        group.throughput(Throughput::Bytes((elements * ELEMENT) as u64));
        group.bench_with_input(
            BenchmarkId::new(code.name().replace(' ', "_"), 7usize),
            &7usize,
            |b, _| {
                b.iter(|| {
                    let (bytes, _) = v.read(0, elements).unwrap();
                    std::hint::black_box(bytes);
                })
            },
        );
    }
    group.finish();
}

fn bench_healthy_read_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("healthy_read");
    for code in evaluated(7) {
        let mut v = degraded_volume(&code, &[]);
        let elements = v.data_elements();
        group.throughput(Throughput::Bytes((elements * ELEMENT) as u64));
        group.bench_with_input(
            BenchmarkId::new(code.name().replace(' ', "_"), 7usize),
            &7usize,
            |b, _| {
                b.iter(|| {
                    let (bytes, _) = v.read(0, elements).unwrap();
                    std::hint::black_box(bytes);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_degraded_read,
    bench_double_degraded_read,
    bench_healthy_read_baseline
);

fn main() {
    benches();
    let records: Vec<BenchRecord> = criterion::take_collected()
        .into_iter()
        .map(|r| BenchRecord {
            group: r.group,
            id: r.id,
            ns_per_iter: r.ns_per_iter,
            bytes_per_iter: r.bytes_per_iter,
        })
        .collect();
    let mb_s = |group: &str, id: &str| {
        records
            .iter()
            .find(|r| r.group == group && r.id == id)
            .and_then(|r| match (r.ns_per_iter, r.bytes_per_iter) {
                (ns, Some(bytes)) if ns > 0.0 => Some(bytes as f64 / ns * 1e9 / 1e6),
                _ => None,
            })
            .map_or_else(|| "n/a".to_string(), |v| format!("{v:.1}"))
    };
    let hv_single = mb_s("degraded_read", "HV_Code/13");
    let hv_double = mb_s("double_degraded_read", "HV_Code/7");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_degraded.json");
    let notes = [
        ("element_bytes", ELEMENT.to_string()),
        ("stripes", STRIPES.to_string()),
        ("hv_degraded_read_MBps_p13", hv_single.clone()),
        ("hv_double_degraded_read_MBps_p7", hv_double),
        (
            "host_logical_cores",
            std::thread::available_parallelism().map_or(0, usize::from).to_string(),
        ),
        ("xor_backend", raid_math::xor::active_backend().name().to_string()),
    ];
    write_bench_json(std::path::Path::new(path), &records, &notes)
        .expect("write BENCH_degraded.json");
    eprintln!("wrote {path} (HV degraded read at p=13: {hv_single} MB/s)");
}
