//! Recovery planning cost: the hybrid single-disk recovery search
//! strategies (exhaustive vs greedy vs anneal) and the double-failure
//! scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raid_bench::codes::evaluated;
use raid_core::plan::single::{plan_single_disk_recovery, SearchStrategy};
use raid_core::schedule::double_failure_schedule;

fn bench_single_disk_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_disk_plan");
    let p = 13;
    for code in evaluated(p) {
        let layout = code.layout();
        let name = code.name().replace(' ', "_");
        for (label, strategy) in [
            ("exhaustive", SearchStrategy::Exhaustive),
            ("greedy", SearchStrategy::Greedy),
            ("anneal", SearchStrategy::Anneal { iters: 20_000, seed: 1 }),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/{label}"), p),
                &p,
                |b, _| {
                    b.iter(|| {
                        std::hint::black_box(plan_single_disk_recovery(layout, 0, strategy))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_double_failure_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("double_failure_schedule");
    for p in [7usize, 13, 23] {
        for code in evaluated(p) {
            let layout = code.layout();
            let name = code.name().replace(' ', "_");
            group.bench_with_input(BenchmarkId::new(name, p), &p, |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        double_failure_schedule(layout, 0, layout.cols() / 2).unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_single_disk_plan, bench_double_failure_schedule);
criterion_main!(benches);
