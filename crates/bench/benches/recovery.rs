//! Recovery planning cost: the hybrid single-disk recovery search
//! strategies (exhaustive vs greedy vs anneal) and the double-failure
//! scheduler — plus the data-path recovery experiments: the parallel
//! stripe-batch rebuild executor and HV's intra-stripe parallel chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hv_code::HvCode;
use raid_bench::codes::evaluated;
use raid_core::plan::single::{plan_single_disk_recovery, SearchStrategy};
use raid_core::schedule::double_failure_schedule;
use raid_core::{ArrayCode, Stripe};

const ELEMENT: usize = 4096;

fn bench_single_disk_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_disk_plan");
    let p = 13;
    for code in evaluated(p) {
        let layout = code.layout();
        let name = code.name().replace(' ', "_");
        for (label, strategy) in [
            ("exhaustive", SearchStrategy::Exhaustive),
            ("greedy", SearchStrategy::Greedy),
            ("anneal", SearchStrategy::Anneal { iters: 20_000, seed: 1 }),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/{label}"), p),
                &p,
                |b, _| {
                    b.iter(|| {
                        std::hint::black_box(plan_single_disk_recovery(layout, 0, strategy))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_double_failure_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("double_failure_schedule");
    for p in [7usize, 13, 23] {
        for code in evaluated(p) {
            let layout = code.layout();
            let name = code.name().replace(' ', "_");
            group.bench_with_input(BenchmarkId::new(name, p), &p, |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        double_failure_schedule(layout, 0, layout.cols() / 2).unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

/// Double-disk rebuild of a whole stripe batch, serial vs the scoped
/// thread-pool executor. On a single-core host the threaded variants
/// only measure spawn overhead — the comparison is still recorded so
/// multi-core hosts get real numbers from the same harness.
fn bench_batch_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_rebuild");
    let p = 13;
    let stripes = 16;
    let code = HvCode::new(p).unwrap();
    let layout = code.layout();
    let pristine: Vec<Stripe> = (0..stripes)
        .map(|i| {
            let mut s = Stripe::for_layout(layout, ELEMENT);
            s.fill_data_seeded(layout, i as u64 + 1);
            code.encode(&mut s);
            s
        })
        .collect();
    let lost = [0usize, layout.cols() / 2];
    group.throughput(Throughput::Bytes(
        (stripes * 2 * layout.rows() * ELEMENT) as u64,
    ));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("hv_double_rebuild_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut batch = pristine.clone();
                    raid_array::rebuild_batch(&code, &mut batch, &lost, threads).unwrap();
                    std::hint::black_box(&batch);
                })
            },
        );
    }
    group.finish();
}

/// HV Algorithm-1 double repair within one stripe: the compiled serial
/// plan vs running the four independent chains on scoped threads.
fn bench_hv_parallel_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("hv_chain_parallelism");
    for p in [13usize, 17] {
        let code = HvCode::new(p).unwrap();
        let layout = code.layout();
        let mut pristine = Stripe::for_layout(layout, ELEMENT);
        pristine.fill_data_seeded(layout, 7);
        code.encode(&mut pristine);
        let (f1, f2) = (0, layout.cols() / 2);
        group.throughput(Throughput::Bytes((2 * layout.rows() * ELEMENT) as u64));
        group.bench_with_input(BenchmarkId::new("serial_plan", p), &p, |b, _| {
            b.iter(|| {
                let mut broken = pristine.clone();
                broken.erase_col(f1);
                broken.erase_col(f2);
                code.repair_double_disk(&mut broken, f1, f2).unwrap();
                std::hint::black_box(&broken);
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel_chains", p), &p, |b, _| {
            b.iter(|| {
                let mut broken = pristine.clone();
                broken.erase_col(f1);
                broken.erase_col(f2);
                code.repair_double_disk_parallel(&mut broken, f1, f2).unwrap();
                std::hint::black_box(&broken);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_disk_plan,
    bench_double_failure_schedule,
    bench_batch_rebuild,
    bench_hv_parallel_chains
);
criterion_main!(benches);
