//! Full-stripe encoding throughput for every code (plus the Reed–Solomon
//! baselines), the "encode complexity" axis of the paper's Section IV.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raid_bench::codes::extended;
use raid_core::Stripe;
use raid_rs::{CauchyRs, PqRaid6};

const ELEMENT: usize = 4096;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_stripe");
    for p in [7usize, 13] {
        for code in extended(p) {
            let layout = code.layout();
            let mut stripe = Stripe::for_layout(layout, ELEMENT);
            stripe.fill_data_seeded(layout, 1);
            let bytes = (layout.num_data_cells() * ELEMENT) as u64;
            group.throughput(Throughput::Bytes(bytes));
            group.bench_with_input(
                BenchmarkId::new(code.name().replace(' ', "_"), p),
                &p,
                |b, _| {
                    b.iter(|| {
                        code.encode(&mut stripe);
                        std::hint::black_box(&stripe);
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_rs_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_rs");
    let k = 12;
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..ELEMENT).map(|b| (b * 31 + i) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    group.throughput(Throughput::Bytes((k * ELEMENT) as u64));

    let pq = PqRaid6::new(k).unwrap();
    group.bench_function("pq_raid6", |b| {
        b.iter(|| std::hint::black_box(pq.encode(&refs).unwrap()))
    });
    let cauchy = CauchyRs::raid6(k).unwrap();
    group.bench_function("cauchy_raid6", |b| {
        b.iter(|| std::hint::black_box(cauchy.encode(&refs).unwrap()))
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    use raid_math::{gf256, xor};
    let mut group = c.benchmark_group("kernels");
    let src = vec![0xA5u8; 64 * 1024];
    let mut dst = vec![0x5Au8; 64 * 1024];
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("xor_64k", |b| {
        b.iter(|| {
            xor::xor_into(&mut dst, &src);
            std::hint::black_box(&dst);
        })
    });
    group.bench_function("gf256_mul_acc_64k", |b| {
        b.iter(|| {
            gf256::mul_acc_slice(0x1D, &src, &mut dst);
            std::hint::black_box(&dst);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_rs_encode, bench_kernels);
criterion_main!(benches);
