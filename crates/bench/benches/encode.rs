//! Full-stripe encoding throughput for every code (plus the Reed–Solomon
//! baselines), the "encode complexity" axis of the paper's Section IV.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use hv_code::HvCode;
use raid_bench::codes::extended;
use raid_bench::report::{write_bench_json, BenchRecord};
use raid_core::{ArrayCode, Stripe};
use raid_rs::{CauchyRs, PqRaid6};

const ELEMENT: usize = 4096;
/// Element sizes of the encode sweep: one below the L1 tile, one at the
/// boundary where tiling starts to matter, one well past it.
const ELEMENT_SIZES: [usize; 3] = [4 * 1024, 64 * 1024, 256 * 1024];

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_stripe");
    for p in [7usize, 13] {
        for code in extended(p) {
            let layout = code.layout();
            let mut stripe = Stripe::for_layout(layout, ELEMENT);
            stripe.fill_data_seeded(layout, 1);
            let bytes = (layout.num_data_cells() * ELEMENT) as u64;
            group.throughput(Throughput::Bytes(bytes));
            group.bench_with_input(
                BenchmarkId::new(code.name().replace(' ', "_"), p),
                &p,
                |b, _| {
                    b.iter(|| {
                        code.encode(&mut stripe);
                        std::hint::black_box(&stripe);
                    })
                },
            );
        }
    }
    group.finish();
}

/// Encode throughput across the element-size sweep at p = 13, and the
/// cache-tiling comparison: the cached (optimized) plan run through the
/// tiled executor against the same plan walked one whole op at a time.
/// Past the L1 tile, the untiled walk streams every element through the
/// cache once per op; the tiled walk keeps a chunk of every element
/// resident while the entire plan visits it.
fn bench_encode_tiling(c: &mut Criterion) {
    let p = 13usize;
    let mut group = c.benchmark_group("encode_element_sweep");
    for code in extended(p) {
        let layout = code.layout();
        for es in ELEMENT_SIZES {
            let mut stripe = Stripe::for_layout(layout, es);
            stripe.fill_data_seeded(layout, 2);
            let bytes = (layout.num_data_cells() * es) as u64;
            group.throughput(Throughput::Bytes(bytes));
            group.bench_with_input(
                BenchmarkId::new(code.name().replace(' ', "_"), es),
                &es,
                |b, _| {
                    b.iter(|| {
                        code.encode(&mut stripe);
                        std::hint::black_box(&stripe);
                    })
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("encode_tiling");
    for code in extended(p) {
        let layout = code.layout();
        let plan = layout.encode_plan();
        let name = code.name().replace(' ', "_");
        for es in ELEMENT_SIZES {
            let mut stripe = Stripe::for_layout(layout, es);
            stripe.fill_data_seeded(layout, 3);
            let bytes = (layout.num_data_cells() * es) as u64;
            group.throughput(Throughput::Bytes(bytes));
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_tiled"), es),
                &es,
                |b, _| {
                    b.iter(|| {
                        plan.execute(&mut stripe);
                        std::hint::black_box(&stripe);
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_untiled"), es),
                &es,
                |b, _| {
                    b.iter(|| {
                        plan.execute_untiled(&mut stripe);
                        std::hint::black_box(&stripe);
                    })
                },
            );
        }
    }
    group.finish();
}

/// Threads×codes scaling of the partitioned batch executor: a batch of
/// independent stripes encoded through `encode_batch` (partition map +
/// per-worker ledger shards) at 1, 2 and 4 workers, for every code at
/// p = 13. On a 1-core host the curve is flat by construction — the
/// partitioned path collapses to the inline serial path — so the table
/// doubles as a regression gate on partitioning overhead.
fn bench_encode_batch_threads(c: &mut Criterion) {
    const BATCH: usize = 8;
    const BATCH_ELEMENT: usize = 16 * 1024;
    let p = 13usize;
    let mut group = c.benchmark_group("encode_batch_threads");
    for code in extended(p) {
        let layout = code.layout();
        let mut stripes: Vec<Stripe> = (0..BATCH)
            .map(|i| {
                let mut s = Stripe::for_layout(layout, BATCH_ELEMENT);
                s.fill_data_seeded(layout, 11 + i as u64);
                s
            })
            .collect();
        let bytes = (BATCH * layout.num_data_cells() * BATCH_ELEMENT) as u64;
        let name = code.name().replace(' ', "_");
        for threads in [1usize, 2, 4] {
            group.throughput(Throughput::Bytes(bytes));
            group.bench_with_input(
                BenchmarkId::new(&name, format!("t{threads}")),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        raid_array::encode_batch(code.as_ref(), &mut stripes, threads);
                        std::hint::black_box(&stripes);
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_rs_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_rs");
    let k = 12;
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..ELEMENT).map(|b| (b * 31 + i) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    group.throughput(Throughput::Bytes((k * ELEMENT) as u64));

    let pq = PqRaid6::new(k).unwrap();
    group.bench_function("pq_raid6", |b| {
        b.iter(|| std::hint::black_box(pq.encode(&refs).unwrap()))
    });
    let cauchy = CauchyRs::raid6(k).unwrap();
    group.bench_function("cauchy_raid6", |b| {
        b.iter(|| std::hint::black_box(cauchy.encode(&refs).unwrap()))
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    use raid_math::{gf256, xor};
    let mut group = c.benchmark_group("kernels");
    let src = vec![0xA5u8; 64 * 1024];
    let mut dst = vec![0x5Au8; 64 * 1024];
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("xor_64k", |b| {
        b.iter(|| {
            xor::xor_into(&mut dst, &src);
            std::hint::black_box(&dst);
        })
    });
    group.bench_function("gf256_mul_acc_64k", |b| {
        b.iter(|| {
            gf256::mul_acc_slice(0x1D, &src, &mut dst);
            std::hint::black_box(&dst);
        })
    });
    group.finish();
}

/// The seed's encode loop exactly as it shipped: walk every chain,
/// allocate a scratch element, fold members with the scalar XOR kernel.
/// Valid for HV because no HV parity chain contains another parity
/// (asserted below), so chain order is irrelevant.
fn encode_seed_scalar(stripe: &mut Stripe, layout: &raid_core::Layout) {
    use raid_math::xor::xor_into_scalar;
    for chain in layout.chains() {
        let mut acc = vec![0u8; stripe.element_size()];
        for m in &chain.members {
            xor_into_scalar(&mut acc, stripe.element(*m));
        }
        stripe.set_element(chain.parity, &acc);
    }
}

/// The tentpole comparison: the compiled-plan encode path (what
/// `Stripe::encode` now runs) against the seed's per-chain `xor_of`
/// interpreter — both as it shipped (`hv_seed_scalar`: scalar kernel,
/// per-chain allocation) and upgraded with the SIMD kernels
/// (`hv_reference`, kept as `Stripe::encode_reference`).
fn bench_plan_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_plan_vs_reference");
    for p in [7usize, 13, 17] {
        let code = HvCode::new(p).unwrap();
        let layout = code.layout();
        assert!(
            layout
                .chains()
                .iter()
                .all(|ch| ch.members.iter().all(|m| layout.is_data(*m))),
            "HV chains must be parity-free for order-independent encoding"
        );
        let mut stripe = Stripe::for_layout(layout, ELEMENT);
        stripe.fill_data_seeded(layout, 5);
        let bytes = (layout.num_data_cells() * ELEMENT) as u64;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::new("hv_plan", p), &p, |b, _| {
            b.iter(|| {
                stripe.encode(layout);
                std::hint::black_box(&stripe);
            })
        });
        group.bench_with_input(BenchmarkId::new("hv_reference", p), &p, |b, _| {
            b.iter(|| {
                stripe.encode_reference(layout);
                std::hint::black_box(&stripe);
            })
        });
        group.bench_with_input(BenchmarkId::new("hv_seed_scalar", p), &p, |b, _| {
            b.iter(|| {
                encode_seed_scalar(&mut stripe, layout);
                std::hint::black_box(&stripe);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_encode_tiling,
    bench_encode_batch_threads,
    bench_rs_encode,
    bench_kernels,
    bench_plan_vs_reference
);

/// The plan-vs-baseline speedups for the notes, measured here with
/// explicit warmup and fixed iterations rather than read back from the
/// timing records: under `RAID_BENCH_SMOKE=1` the criterion shim
/// collapses to one cold iteration, which bills the one-time plan
/// compilation to `hv_plan` and once left a nonsense 0.23x "speedup" in
/// BENCH_encode.json (see EXPERIMENTS.md). Warming first makes the note
/// correct in both modes.
fn measured_plan_speedups() -> (String, String) {
    let code = HvCode::new(17).unwrap();
    let layout = code.layout();
    let mut stripe = Stripe::for_layout(layout, ELEMENT);
    stripe.fill_data_seeded(layout, 5);
    let mut time = |f: &mut dyn FnMut(&mut Stripe)| {
        for _ in 0..3 {
            f(&mut stripe);
        }
        let iters = 40u32;
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            f(&mut stripe);
            std::hint::black_box(&stripe);
        }
        t0.elapsed().as_secs_f64() / f64::from(iters)
    };
    let plan = time(&mut |s| s.encode(layout));
    let reference = time(&mut |s| s.encode_reference(layout));
    let seed = time(&mut |s| encode_seed_scalar(s, layout));
    (format!("{:.2}", seed / plan), format!("{:.2}", reference / plan))
}

fn main() {
    benches();
    let records: Vec<BenchRecord> = criterion::take_collected()
        .into_iter()
        .map(|r| BenchRecord {
            group: r.group,
            id: r.id,
            ns_per_iter: r.ns_per_iter,
            bytes_per_iter: r.bytes_per_iter,
        })
        .collect();
    let (vs_seed, vs_reference) = measured_plan_speedups();
    // Tiling speedup at 64 KiB elements: tiled vs whole-op execution of
    // the very same optimized plan, per code.
    let tiling = |code: &str| {
        let pick = |id: String| {
            records
                .iter()
                .find(|r| r.group == "encode_tiling" && r.id == id)
                .map(|r| r.ns_per_iter)
        };
        match (pick(format!("{code}_untiled/65536")), pick(format!("{code}_tiled/65536"))) {
            (Some(untiled), Some(tiled)) if tiled > 0.0 => format!("{:.2}", untiled / tiled),
            _ => "n/a".to_string(),
        }
    };
    // Optimized-vs-specification XOR reads per code at p = 13: what the
    // cached plan actually reads against the data-only expansion a
    // chain-oblivious executor would pay.
    let xor_reads: Vec<(String, String)> = extended(13)
        .iter()
        .map(|code| {
            let layout = code.layout();
            let spec = raid_core::XorPlan::compile_encode_expanded(layout).num_source_reads();
            let opt = layout.encode_plan().num_source_reads();
            let pct = if spec > 0 {
                100.0 * (spec.saturating_sub(opt)) as f64 / spec as f64
            } else {
                0.0
            };
            (
                format!("xor_reads_p13_{}", code.name().replace(' ', "_")),
                format!("spec {spec} -> optimized {opt} (-{pct:.1}%)"),
            )
        })
        .collect();
    // Batch-executor thread scaling at p = 13: t1/tN per code, from the
    // threads×codes sweep. Flat (≈1.00) on a 1-core host by design.
    let batch_scale = |code: &str, t: usize| {
        records
            .iter()
            .find(|r| r.group == "encode_batch_threads" && r.id == format!("{code}/t{t}"))
            .map(|r| r.ns_per_iter)
    };
    let thread_speedup = |code: &str, t: usize| match (batch_scale(code, 1), batch_scale(code, t))
    {
        (Some(t1), Some(tn)) if tn > 0.0 => format!("{:.2}", t1 / tn),
        _ => "n/a".to_string(),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_encode.json");
    let mut notes: Vec<(&str, String)> = vec![
        ("element_bytes", ELEMENT.to_string()),
        (
            "element_sweep_bytes",
            ELEMENT_SIZES.map(|es| es.to_string()).join(" "),
        ),
        ("l1_tile_bytes", raid_math::xor::L1_TILE_BYTES.to_string()),
        ("hv_plan_speedup_vs_seed_scalar_p17", vs_seed.clone()),
        ("hv_plan_speedup_vs_simd_reference_p17", vs_reference),
        ("tiling_speedup_64k_hv", tiling("HV_Code")),
        ("tiling_speedup_64k_rdp", tiling("RDP")),
        ("tiling_speedup_64k_evenodd", tiling("EVENODD")),
        ("batch_threads_sweep", "1 2 4".to_string()),
        ("batch_threads_speedup_t2_hv_p13", thread_speedup("HV_Code", 2)),
        ("batch_threads_speedup_t4_hv_p13", thread_speedup("HV_Code", 4)),
        ("batch_threads_speedup_t4_rdp_p13", thread_speedup("RDP", 4)),
        // The machine-readable core count lives here (not in DESIGN.md
        // prose) so every report carries the hardware it was measured on.
        (
            "host_logical_cores",
            std::thread::available_parallelism().map_or(0, usize::from).to_string(),
        ),
        (
            "hardware",
            format!(
                "{} logical core(s) available; xor backend {}",
                std::thread::available_parallelism().map_or(0, usize::from),
                raid_math::xor::active_backend().name(),
            ),
        ),
    ];
    notes.extend(xor_reads.iter().map(|(k, v)| (k.as_str(), v.clone())));
    write_bench_json(std::path::Path::new(path), &records, &notes).expect("write BENCH_encode.json");
    eprintln!("wrote {path} (hv plan speedup vs seed scalar path at p=17: {vs_seed}x)");
}
