//! Full-stripe encoding throughput for every code (plus the Reed–Solomon
//! baselines), the "encode complexity" axis of the paper's Section IV.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use hv_code::HvCode;
use raid_bench::codes::extended;
use raid_bench::report::{write_bench_json, BenchRecord};
use raid_core::{ArrayCode, Stripe};
use raid_rs::{CauchyRs, PqRaid6};

const ELEMENT: usize = 4096;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_stripe");
    for p in [7usize, 13] {
        for code in extended(p) {
            let layout = code.layout();
            let mut stripe = Stripe::for_layout(layout, ELEMENT);
            stripe.fill_data_seeded(layout, 1);
            let bytes = (layout.num_data_cells() * ELEMENT) as u64;
            group.throughput(Throughput::Bytes(bytes));
            group.bench_with_input(
                BenchmarkId::new(code.name().replace(' ', "_"), p),
                &p,
                |b, _| {
                    b.iter(|| {
                        code.encode(&mut stripe);
                        std::hint::black_box(&stripe);
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_rs_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_rs");
    let k = 12;
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..ELEMENT).map(|b| (b * 31 + i) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    group.throughput(Throughput::Bytes((k * ELEMENT) as u64));

    let pq = PqRaid6::new(k).unwrap();
    group.bench_function("pq_raid6", |b| {
        b.iter(|| std::hint::black_box(pq.encode(&refs).unwrap()))
    });
    let cauchy = CauchyRs::raid6(k).unwrap();
    group.bench_function("cauchy_raid6", |b| {
        b.iter(|| std::hint::black_box(cauchy.encode(&refs).unwrap()))
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    use raid_math::{gf256, xor};
    let mut group = c.benchmark_group("kernels");
    let src = vec![0xA5u8; 64 * 1024];
    let mut dst = vec![0x5Au8; 64 * 1024];
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("xor_64k", |b| {
        b.iter(|| {
            xor::xor_into(&mut dst, &src);
            std::hint::black_box(&dst);
        })
    });
    group.bench_function("gf256_mul_acc_64k", |b| {
        b.iter(|| {
            gf256::mul_acc_slice(0x1D, &src, &mut dst);
            std::hint::black_box(&dst);
        })
    });
    group.finish();
}

/// The seed's encode loop exactly as it shipped: walk every chain,
/// allocate a scratch element, fold members with the scalar XOR kernel.
/// Valid for HV because no HV parity chain contains another parity
/// (asserted below), so chain order is irrelevant.
fn encode_seed_scalar(stripe: &mut Stripe, layout: &raid_core::Layout) {
    use raid_math::xor::xor_into_scalar;
    for chain in layout.chains() {
        let mut acc = vec![0u8; stripe.element_size()];
        for m in &chain.members {
            xor_into_scalar(&mut acc, stripe.element(*m));
        }
        stripe.set_element(chain.parity, &acc);
    }
}

/// The tentpole comparison: the compiled-plan encode path (what
/// `Stripe::encode` now runs) against the seed's per-chain `xor_of`
/// interpreter — both as it shipped (`hv_seed_scalar`: scalar kernel,
/// per-chain allocation) and upgraded with the SIMD kernels
/// (`hv_reference`, kept as `Stripe::encode_reference`).
fn bench_plan_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_plan_vs_reference");
    for p in [7usize, 13, 17] {
        let code = HvCode::new(p).unwrap();
        let layout = code.layout();
        assert!(
            layout
                .chains()
                .iter()
                .all(|ch| ch.members.iter().all(|m| layout.is_data(*m))),
            "HV chains must be parity-free for order-independent encoding"
        );
        let mut stripe = Stripe::for_layout(layout, ELEMENT);
        stripe.fill_data_seeded(layout, 5);
        let bytes = (layout.num_data_cells() * ELEMENT) as u64;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::new("hv_plan", p), &p, |b, _| {
            b.iter(|| {
                stripe.encode(layout);
                std::hint::black_box(&stripe);
            })
        });
        group.bench_with_input(BenchmarkId::new("hv_reference", p), &p, |b, _| {
            b.iter(|| {
                stripe.encode_reference(layout);
                std::hint::black_box(&stripe);
            })
        });
        group.bench_with_input(BenchmarkId::new("hv_seed_scalar", p), &p, |b, _| {
            b.iter(|| {
                encode_seed_scalar(&mut stripe, layout);
                std::hint::black_box(&stripe);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_rs_encode,
    bench_kernels,
    bench_plan_vs_reference
);

fn main() {
    benches();
    let records: Vec<BenchRecord> = criterion::take_collected()
        .into_iter()
        .map(|r| BenchRecord {
            group: r.group,
            id: r.id,
            ns_per_iter: r.ns_per_iter,
            bytes_per_iter: r.bytes_per_iter,
        })
        .collect();
    let ns = |id: &str| {
        records
            .iter()
            .find(|r| r.group == "encode_plan_vs_reference" && r.id == id)
            .map(|r| r.ns_per_iter)
    };
    let speedup = |baseline: Option<f64>| match (baseline, ns("hv_plan/17")) {
        (Some(base), Some(plan)) if plan > 0.0 => format!("{:.2}", base / plan),
        _ => "n/a".to_string(),
    };
    let vs_seed = speedup(ns("hv_seed_scalar/17"));
    let vs_reference = speedup(ns("hv_reference/17"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_encode.json");
    let notes = [
        ("element_bytes", ELEMENT.to_string()),
        ("hv_plan_speedup_vs_seed_scalar_p17", vs_seed.clone()),
        ("hv_plan_speedup_vs_simd_reference_p17", vs_reference),
        (
            "hardware",
            format!(
                "{} logical core(s) available; xor backend {}",
                std::thread::available_parallelism().map_or(0, usize::from),
                raid_math::xor::active_backend().name(),
            ),
        ),
    ];
    write_bench_json(std::path::Path::new(path), &records, &notes).expect("write BENCH_encode.json");
    eprintln!("wrote {path} (hv plan speedup vs seed scalar path at p=17: {vs_seed}x)");
}
