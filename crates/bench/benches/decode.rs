//! Double-disk-failure decoding throughput: the generic peeling decoder for
//! every code, plus HV Code's specialized Algorithm-1 path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hv_code::HvCode;
use raid_bench::codes::evaluated;
use raid_core::{decoder, ArrayCode, Stripe};

const ELEMENT: usize = 4096;

fn bench_generic_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("double_failure_decode");
    let p = 13;
    for code in evaluated(p) {
        let layout = code.layout();
        let mut pristine = Stripe::for_layout(layout, ELEMENT);
        pristine.fill_data_seeded(layout, 2);
        code.encode(&mut pristine);
        let (f1, f2) = (0, layout.cols() / 2);
        let mut lost = layout.cells_in_col(f1);
        lost.extend(layout.cells_in_col(f2));

        // Throughput = bytes reconstructed per repair.
        group.throughput(Throughput::Bytes((lost.len() * ELEMENT) as u64));
        group.bench_with_input(
            BenchmarkId::new(code.name().replace(' ', "_"), p),
            &p,
            |b, _| {
                b.iter(|| {
                    let mut broken = pristine.clone();
                    broken.erase_col(f1);
                    broken.erase_col(f2);
                    decoder::decode(&mut broken, layout, &lost).unwrap();
                    std::hint::black_box(&broken);
                })
            },
        );
    }
    group.finish();
}

fn bench_hv_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("hv_algorithm1_vs_generic");
    for p in [7usize, 13, 23] {
        let code = HvCode::new(p).unwrap();
        let layout = code.layout();
        let mut pristine = Stripe::for_layout(layout, ELEMENT);
        pristine.fill_data_seeded(layout, 3);
        code.encode(&mut pristine);
        let (f1, f2) = (0, layout.cols() / 2);

        group.throughput(Throughput::Bytes((2 * layout.rows() * ELEMENT) as u64));
        group.bench_with_input(BenchmarkId::new("algorithm1", p), &p, |b, _| {
            b.iter(|| {
                let mut broken = pristine.clone();
                broken.erase_col(f1);
                broken.erase_col(f2);
                code.repair_double_disk(&mut broken, f1, f2).unwrap();
                std::hint::black_box(&broken);
            })
        });

        let mut lost = layout.cells_in_col(f1);
        lost.extend(layout.cells_in_col(f2));
        group.bench_with_input(BenchmarkId::new("generic_peel", p), &p, |b, _| {
            b.iter(|| {
                let mut broken = pristine.clone();
                broken.erase_col(f1);
                broken.erase_col(f2);
                decoder::decode(&mut broken, layout, &lost).unwrap();
                std::hint::black_box(&broken);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generic_decode, bench_hv_algorithm1);
criterion_main!(benches);
