//! The concurrent service front-end under mixed Zipf tenants: 1/2/4
//! client threads × coalescing on/off, driven through the in-process
//! [`raid_service::ServiceHandle`] (no socket on the bench path).
//!
//! Timing records measure wall time per whole workload pass; the A/B
//! that gates the PR is ledger-counted and interleaving-robust — backend
//! element I/Os per completed op with the stripe-aware coalescing
//! scheduler vs pass-through dispatch, plus per-tenant p50/p99
//! enqueue→completion latency. All of it lands in `BENCH_service.json`.

use std::sync::Arc;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use raid_array::RaidVolume;
use raid_bench::report::{write_bench_json, BenchRecord};
use raid_core::ArrayCode;
use raid_service::{Service, ServiceConfig, ServiceHandle, ServiceStats, TenantClass};
use raid_workloads::skew::{hot_spot_trace, zipf_write_trace};

const P: usize = 13;
const ELEMENT: usize = 512;
const STRIPES: usize = 16;
const WRITE_LEN: usize = 2;
const OPS_PER_TENANT: usize = 200;
const ZIPF_THETA: f64 = 0.9;

fn service(coalesce: bool) -> Arc<Service> {
    let code: Arc<dyn ArrayCode> = Arc::new(hv_code::HvCode::new(P).expect("13 is prime"));
    let mut v = RaidVolume::in_memory(code, STRIPES, ELEMENT);
    // Prefill so reader tenants touch real data, then discard the fill
    // from the measured ledger.
    let fill: Vec<u8> =
        (0..v.data_elements() * ELEMENT).map(|k| (k as u8).wrapping_mul(31)).collect();
    v.write(0, &fill).expect("prefill");
    v.reset_ledger();
    Service::new(v, ServiceConfig { coalesce, ..ServiceConfig::default() })
}

/// One tenant's seeded Zipf op list: writers write, readers read, both
/// over the same skewed offset distribution.
fn tenant_ops(data_elements: usize, seed: u64) -> Vec<(usize, usize)> {
    zipf_write_trace(WRITE_LEN, OPS_PER_TENANT, data_elements, ZIPF_THETA, seed)
        .patterns
        .into_iter()
        .map(|p| (p.start.min(data_elements - p.len), p.len))
        .collect()
}

/// A client: its handle, tenant class, and scripted `(start, len)` ops.
type TenantScript = (ServiceHandle, TenantClass, Vec<(usize, usize)>);

fn run_tenant(handle: &ServiceHandle, class: TenantClass, ops: &[(usize, usize)], buf: &[u8]) {
    for &(start, len) in ops {
        match class {
            TenantClass::Writer | TenantClass::Mixed => {
                handle.write(start, &buf[..len * ELEMENT]).expect("service write");
            }
            TenantClass::Reader => {
                handle.read(start, len).expect("service read");
            }
        }
    }
}

/// Drives `threads` client threads (alternating writer/reader tenants)
/// through one full workload pass and returns the final stats.
fn run_workload(svc: &Arc<Service>, threads: usize) -> ServiceStats {
    let classes = [TenantClass::Writer, TenantClass::Reader];
    let sessions: Vec<TenantScript> = (0..threads)
        .map(|t| {
            let class = classes[t % classes.len()];
            let handle = svc.session(&format!("t{t}"), class);
            (handle, class, tenant_ops(svc.data_elements(), 7 + t as u64))
        })
        .collect();
    drive(svc, sessions)
}

/// All-writer hot-spot burst: no read barriers between writes, so
/// batches collected while the combiner runs actually merge in the
/// write stage (the mixed workload alternates reads in, which drain
/// the stage every round).
fn run_writer_burst(svc: &Arc<Service>, threads: usize) -> ServiceStats {
    let sessions: Vec<TenantScript> = (0..threads)
        .map(|t| {
            let handle = svc.session(&format!("burst{t}"), TenantClass::Writer);
            let ops = hot_spot_trace(WRITE_LEN, OPS_PER_TENANT, 16, 100 + t as u64)
                .patterns
                .into_iter()
                .map(|p| (p.start, p.len))
                .collect();
            (handle, TenantClass::Writer, ops)
        })
        .collect();
    drive(svc, sessions)
}

fn drive(svc: &Arc<Service>, sessions: Vec<TenantScript>) -> ServiceStats {
    let buf = vec![0xB6u8; WRITE_LEN * ELEMENT];
    std::thread::scope(|scope| {
        for (handle, class, ops) in &sessions {
            let buf = &buf;
            scope.spawn(move || run_tenant(handle, *class, ops, buf));
        }
    });
    sessions[0].0.flush().expect("final flush");
    svc.stats()
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_mixed_tenants");
    for coalesce in [false, true] {
        for threads in [1usize, 2, 4] {
            let bytes = (threads * OPS_PER_TENANT * WRITE_LEN * ELEMENT) as u64;
            group.throughput(Throughput::Bytes(bytes));
            let id = if coalesce { "coalesced" } else { "passthrough" };
            group.bench_with_input(BenchmarkId::new(id, threads), &threads, |b, &t| {
                b.iter(|| {
                    let svc = service(coalesce);
                    run_workload(&svc, t)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_service);

fn main() {
    benches();
    let records: Vec<BenchRecord> = criterion::take_collected()
        .into_iter()
        .map(|r| BenchRecord {
            group: r.group,
            id: r.id,
            ns_per_iter: r.ns_per_iter,
            bytes_per_iter: r.bytes_per_iter,
        })
        .collect();

    let mut notes: Vec<(&str, String)> = vec![
        ("p", P.to_string()),
        ("element_bytes", ELEMENT.to_string()),
        ("stripes", STRIPES.to_string()),
        ("write_len_elements", WRITE_LEN.to_string()),
        ("ops_per_tenant", OPS_PER_TENANT.to_string()),
        ("zipf_theta", ZIPF_THETA.to_string()),
        (
            "host_logical_cores",
            std::thread::available_parallelism().map_or(0, usize::from).to_string(),
        ),
    ];

    // The gating A/B: ledger-counted backend element I/O per op, 4
    // client threads, coalescing scheduler vs pass-through dispatch.
    let pass = run_workload(&service(false), 4);
    let coal = run_workload(&service(true), 4);
    let saving = 100.0 * (pass.io_per_op() - coal.io_per_op()) / pass.io_per_op();
    notes.push(("service_io_per_op_passthrough", format!("{:.2}", pass.io_per_op())));
    notes.push(("service_io_per_op_coalesced", format!("{:.2}", coal.io_per_op())));
    notes.push(("service_io_per_op_saving_pct", format!("{saving:.1}")));
    // Batch write-merging needs read-free batches (reads are stage
    // barriers), so demonstrate it on an all-writer hot-spot burst.
    let burst = run_writer_burst(&service(true), 4);
    notes.push((
        "service_burst_merged_writes",
        format!(
            "{} of {} staged writes merged into {} runs",
            burst.merged_writes,
            burst.merged_writes + burst.write_runs,
            burst.write_runs
        ),
    ));
    notes.push((
        "service_cache_hit_rate",
        {
            let h = coal.ledger.cache_hits();
            let m = coal.ledger.cache_misses();
            format!("{:.2}", h as f64 / (h + m).max(1) as f64)
        },
    ));
    let lat: Vec<(String, String)> = coal
        .tenants
        .iter()
        .filter(|t| t.ops > 0)
        .map(|t| {
            (
                format!("latency_us_{}_{}", t.tenant, t.class),
                format!("p50 {:.1} p99 {:.1} mean {:.1}", t.p50_us, t.p99_us, t.mean_us),
            )
        })
        .collect();
    notes.extend(lat.iter().map(|(k, v)| (k.as_str(), v.clone())));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    write_bench_json(std::path::Path::new(path), &records, &notes)
        .expect("write BENCH_service.json");
    eprintln!(
        "wrote {path} (io/op passthrough {:.2} -> coalesced {:.2}, -{saving:.1}%)",
        pass.io_per_op(),
        coal.io_per_op()
    );
    assert!(
        saving >= 30.0,
        "coalescing must save >=30% backend element I/O per op, measured {saving:.1}%"
    );
}
