//! Write throughput under skewed workloads, with and without the
//! write-back stripe cache. Skew is where coalescing pays: a Zipf or
//! hot-spot trace keeps rewriting the same few stripes, so the cache
//! absorbs most element writes and the flush path shares one parity
//! update across everything that landed in a stripe. The sequential
//! trace is the control — full-stripe runs already amortize parity, so
//! the cache's win there is bounded. Writes `BENCH_skew.json` with the
//! measured throughputs plus the ledger-counted element I/O per trace,
//! cached vs uncached.

use std::sync::Arc;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use raid_array::{CacheConfig, RaidVolume};
use raid_bench::report::{write_bench_json, BenchRecord};
use raid_core::ArrayCode;
use raid_workloads::skew::{hot_spot_trace, sequential_trace, zipf_write_trace};
use raid_workloads::WriteTrace;

const ELEMENT: usize = 1024;
const STRIPES: usize = 16;
const WRITE_LEN: usize = 4;
const PATTERNS: usize = 200;
const ZIPF_THETA: f64 = 0.9;

fn volume(cached: bool) -> RaidVolume {
    let code: Arc<dyn ArrayCode> = Arc::new(hv_code::HvCode::new(13).expect("13 is prime"));
    let mut v = RaidVolume::in_memory(code, STRIPES, ELEMENT);
    if cached {
        v.enable_cache(CacheConfig::default());
    }
    v
}

fn traces(data_elements: usize) -> Vec<WriteTrace> {
    vec![
        zipf_write_trace(WRITE_LEN, PATTERNS, data_elements, ZIPF_THETA, 7),
        hot_spot_trace(WRITE_LEN, PATTERNS, (data_elements / 8).max(WRITE_LEN + 1), 11),
        sequential_trace(WRITE_LEN, PATTERNS, data_elements),
    ]
}

/// Runs the whole trace once; cached volumes end with an explicit flush
/// so every iteration leaves no dirty state behind (and the timing
/// includes the coalesced flush cost it caused).
fn run_trace(v: &mut RaidVolume, trace: &WriteTrace, buf: &[u8]) {
    for (start, len) in trace.expanded() {
        let start = start.min(v.data_elements() - 1);
        let len = len.min(v.data_elements() - start);
        v.write(start, &buf[..len * ELEMENT]).expect("healthy write");
    }
    v.flush().expect("healthy flush");
}

fn bench_skewed_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("skewed_write_throughput");
    let buf = vec![0xC3u8; WRITE_LEN * ELEMENT];
    for cached in [false, true] {
        let mut v = volume(cached);
        for trace in traces(v.data_elements()) {
            group.throughput(Throughput::Bytes((PATTERNS * WRITE_LEN * ELEMENT) as u64));
            let id = format!("{}/{}", trace.name, if cached { "cached" } else { "uncached" });
            group.bench_with_input(BenchmarkId::new(id, 13usize), &13usize, |b, _| {
                b.iter(|| run_trace(&mut v, &trace, &buf))
            });
        }
    }
    group.finish();
}

/// Ledger-counted element I/O for one full trace pass on a fresh volume.
fn trace_total_io(trace: &WriteTrace, cached: bool) -> u64 {
    let mut v = volume(cached);
    let buf = vec![0x3Au8; WRITE_LEN * ELEMENT];
    let baseline = v.ledger().clone();
    run_trace(&mut v, trace, &buf);
    v.ledger().delta_since(&baseline).total()
}

criterion_group!(benches, bench_skewed_writes);

fn main() {
    benches();
    let records: Vec<BenchRecord> = criterion::take_collected()
        .into_iter()
        .map(|r| BenchRecord {
            group: r.group,
            id: r.id,
            ns_per_iter: r.ns_per_iter,
            bytes_per_iter: r.bytes_per_iter,
        })
        .collect();

    let mut notes: Vec<(&str, String)> = vec![
        ("element_bytes", ELEMENT.to_string()),
        ("stripes", STRIPES.to_string()),
        ("p", "13".to_string()),
        ("write_len_elements", WRITE_LEN.to_string()),
        ("patterns_per_trace", PATTERNS.to_string()),
        ("zipf_theta", ZIPF_THETA.to_string()),
        (
            "host_logical_cores",
            std::thread::available_parallelism().map_or(0, usize::from).to_string(),
        ),
    ];
    let io: Vec<(String, String)> = traces(volume(false).data_elements())
        .iter()
        .map(|trace| {
            let uncached = trace_total_io(trace, false);
            let cached = trace_total_io(trace, true);
            let pct = 100.0 * (uncached.saturating_sub(cached)) as f64 / uncached as f64;
            (
                format!("total_io_{}", trace.name),
                format!("uncached {uncached} -> cached {cached} (-{pct:.1}%)"),
            )
        })
        .collect();
    notes.extend(io.iter().map(|(k, v)| (k.as_str(), v.clone())));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_skew.json");
    write_bench_json(std::path::Path::new(path), &records, &notes)
        .expect("write BENCH_skew.json");
    eprintln!("wrote {path} ({})", io.iter().map(|(k, v)| format!("{k}: {v}")).collect::<Vec<_>>().join("; "));
}
