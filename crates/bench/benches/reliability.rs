//! Fleet reliability under load: HV vs the RDP and EVENODD baselines
//! through the same seeded campaign (`raid-fleet`), plus the QoS A/B
//! (throttled vs flat-out rebuild). The timed quantity is one whole
//! fleet campaign; the numbers that matter — measured wall MTTR,
//! analytic-vs-measured MTTDL, foreground latency inflation — go into
//! the notes of `BENCH_reliability.json`, pinned to one seed so reruns
//! are comparable.

use criterion::{criterion_group, BenchmarkId, Criterion};
use raid_bench::report::{write_bench_json, BenchRecord};
use raid_fleet::{rebuild_under_load, run as run_fleet, FleetConfig};
use raid_verify::build;

const SEED: u64 = 42;
const CODES: [&str; 3] = ["hv", "rdp", "evenodd"];
const P: usize = 5;

/// A small accelerated-life campaign: hot enough that every code sees
/// failures, rebuilds and spare-pool traffic inside the horizon.
fn campaign() -> FleetConfig {
    FleetConfig {
        volumes: 6,
        hours: 96.0,
        seed: SEED,
        stripes: 8,
        element_size: 16,
        fail_scale_h: 150.0,
        latent_mean_h: 40.0,
        spare_capacity: 3,
        spare_replenish_h: 12.0,
        scrub_interval_h: 48.0,
        ..FleetConfig::default()
    }
}

fn bench_fleet_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_campaign");
    for name in CODES {
        let code = build(name, P).expect("registry code");
        group.bench_with_input(BenchmarkId::new(name, P), &P, |b, _| {
            b.iter(|| run_fleet(&code, &campaign()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_campaigns);

fn main() {
    benches();
    let records: Vec<BenchRecord> = criterion::take_collected()
        .into_iter()
        .map(|r| BenchRecord {
            group: r.group,
            id: r.id,
            ns_per_iter: r.ns_per_iter,
            bytes_per_iter: r.bytes_per_iter,
        })
        .collect();

    let cfg = campaign();
    let mut notes: Vec<(&str, String)> = vec![
        ("seed", SEED.to_string()),
        ("volumes", cfg.volumes.to_string()),
        ("hours", format!("{:.0}", cfg.hours)),
        ("p", P.to_string()),
        ("weibull_shape", format!("{:.1}", cfg.fail_shape)),
        ("weibull_scale_h", format!("{:.0}", cfg.fail_scale_h)),
    ];

    // MTTR-under-load and the measured-vs-analytic MTTDL story per code.
    let summaries: Vec<(String, String)> = CODES
        .iter()
        .map(|name| {
            let code = build(name, P).expect("registry code");
            let r = run_fleet(&code, &cfg);
            let mttr = r.models.measured_mttr_h.map_or("n/a".to_string(), |h| format!("{h:.1}"));
            let ratio = r
                .models
                .mttdl_measured_over_analytic
                .map_or("n/a".to_string(), |x| format!("{x:.3e}"));
            (
                format!("fleet_{name}"),
                format!(
                    "failures {} rebuilds {} loss {} mttr_h {} inflation {:.2} \
                     mttdl_measured/analytic {}",
                    r.disk_failures,
                    r.rebuilds_completed,
                    r.data_loss_events,
                    mttr,
                    r.foreground.inflation,
                    ratio
                ),
            )
        })
        .collect();
    notes.extend(summaries.iter().map(|(k, v)| (k.as_str(), v.clone())));

    // The QoS A/B on HV: what throttling buys and what it costs.
    let code = build("hv", P).expect("hv");
    let throttled = rebuild_under_load(&code, 64, 16, SEED, true);
    let flat = rebuild_under_load(&code, 64, 16, SEED, false);
    let qos_note = format!(
        "inflation {:.1}x over {} ticks (throttled) vs {:.1}x over {} ticks (flat-out)",
        throttled.inflation, throttled.rebuild_ticks, flat.inflation, flat.rebuild_ticks
    );
    notes.push(("qos_rebuild_hv", qos_note.clone()));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reliability.json");
    write_bench_json(std::path::Path::new(path), &records, &notes)
        .expect("write BENCH_reliability.json");
    eprintln!("wrote {path} (qos_rebuild_hv: {qos_note})");
}
