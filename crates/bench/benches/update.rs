//! Single-data-element update cost: the controller's read-modify-write
//! with incremental parity updates (the paper's "update complexity" axis),
//! and the Reed–Solomon P+Q small-write for contrast. Writes
//! `BENCH_update.json` with the measured throughputs plus the exact parity
//! I/O each code pays per small write (from the volume's request ledger),
//! so the paper's update-complexity ordering is checkable from the report.

use std::sync::Arc;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use disk_sim::{DiskArray, DiskProfile};
use raid_array::{replay_write_trace, CacheConfig, RaidVolume};
use raid_bench::codes::evaluated;
use raid_bench::report::{write_bench_json, BenchRecord};
use raid_rs::PqRaid6;

const ELEMENT: usize = 4096;

fn bench_volume_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_element_update");
    // Throughput = user data written per operation.
    group.throughput(Throughput::Bytes(ELEMENT as u64));
    let p = 13;
    for code in evaluated(p) {
        let name = code.name().replace(' ', "_");
        let mut volume = RaidVolume::in_memory(Arc::clone(&code), 2, ELEMENT);
        let buf = vec![0xA5u8; ELEMENT];
        let mut addr = 0usize;
        group.bench_with_input(BenchmarkId::new(name, p), &p, |b, _| {
            b.iter(|| {
                addr = (addr + 7) % volume.data_elements();
                std::hint::black_box(volume.write(addr, &buf).unwrap());
            })
        });
    }
    group.finish();
}

fn bench_rs_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_element_update_rs");
    group.throughput(Throughput::Bytes(ELEMENT as u64));
    let k = 12;
    let code = PqRaid6::new(k).unwrap();
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..ELEMENT).map(|b| (b + i) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    let (mut pbuf, mut qbuf) = code.encode(&refs).unwrap();
    let newv = vec![0x5Au8; ELEMENT];
    group.bench_function("pq_small_write", |b| {
        b.iter(|| {
            code.update(3, &data[3], &newv, &mut pbuf, &mut qbuf).unwrap();
            std::hint::black_box((&pbuf, &qbuf));
        })
    });
    group.finish();
}

/// Worst-case parity I/O one single-element RMW pays for `code`, measured
/// from the write receipt's request ledger (not predicted from the layout):
/// `(parity writes, total element I/Os)` maximized over every data cell of
/// one stripe. Parity writes per small write are the paper's
/// update-complexity axis made concrete.
fn measured_small_write_io(code: &Arc<dyn raid_core::ArrayCode>) -> (u64, u64) {
    let mut volume = RaidVolume::in_memory(Arc::clone(code), 1, 64);
    let buf = vec![0x3Cu8; 64];
    let mut worst = (0u64, 0u64);
    for addr in 0..volume.data_elements() {
        let receipt = volume.write(addr, &buf).expect("healthy small write");
        let sample = (receipt.parity_writes(), receipt.total());
        if sample > worst {
            worst = sample;
        }
    }
    worst
}

/// Total element I/O the Table-II trace costs an HV volume, from the
/// replay's ledger delta — uncached, or through the write-back stripe
/// cache (replay flushes before taking the delta, so coalesced flush I/O
/// is fully accounted).
fn table2_total_io(cached: bool) -> u64 {
    let code: Arc<dyn raid_core::ArrayCode> =
        Arc::new(hv_code::HvCode::new(13).expect("13 is prime"));
    let mut volume = RaidVolume::in_memory(code, 8, 64);
    if cached {
        volume.enable_cache(CacheConfig::default());
    }
    let sim = DiskArray::new(volume.disks(), DiskProfile::savvio_10k());
    let out = replay_write_trace(&mut volume, sim, &raid_workloads::table2_trace())
        .expect("healthy replay");
    out.ledger.total()
}

criterion_group!(benches, bench_volume_update, bench_rs_update);

fn main() {
    benches();
    let records: Vec<BenchRecord> = criterion::take_collected()
        .into_iter()
        .map(|r| BenchRecord {
            group: r.group,
            id: r.id,
            ns_per_iter: r.ns_per_iter,
            bytes_per_iter: r.bytes_per_iter,
        })
        .collect();

    // Parity-I/O table: the paper's §V.B ordering (HV ties or beats every
    // evaluated competitor on parity updates per small write) should be
    // reproducible straight from this report's notes.
    let io: Vec<(String, (u64, u64))> = evaluated(13)
        .iter()
        .map(|code| {
            (code.name().replace(' ', "_"), measured_small_write_io(code))
        })
        .collect();
    let hv_parity = io
        .iter()
        .find(|(n, _)| n == "HV_Code")
        .map(|&(_, (pw, _))| pw)
        .expect("HV is in the evaluated roster");
    let hv_minimal = io.iter().all(|&(_, (pw, _))| hv_parity <= pw);

    // Table-II trace rerun, uncached vs write-back cached. The reduction
    // is the coalescing win the cache exists for; gating it here makes
    // `make bench-smoke` a regression fence.
    let uncached = table2_total_io(false);
    let cached = table2_total_io(true);
    let reduction_pct = 100.0 * (uncached.saturating_sub(cached)) as f64 / uncached as f64;
    assert!(
        reduction_pct >= 30.0,
        "write coalescing regressed: Table-II total element I/O only dropped \
         {reduction_pct:.1}% ({uncached} -> {cached}), expected >= 30%"
    );

    let mut notes: Vec<(&str, String)> = vec![
        ("element_bytes", ELEMENT.to_string()),
        ("p", "13".to_string()),
        (
            "host_logical_cores",
            std::thread::available_parallelism().map_or(0, usize::from).to_string(),
        ),
        ("table2_total_io_uncached", uncached.to_string()),
        ("table2_total_io_cached", cached.to_string()),
        ("table2_cache_reduction_pct", format!("{reduction_pct:.1}")),
        (
            "parity_io_semantics",
            "worst-case per single-element write, measured from the volume \
             request ledger: parity element writes / total element I/Os"
            .to_string(),
        ),
        ("hv_parity_io_minimal_among_evaluated", hv_minimal.to_string()),
    ];
    let rendered: Vec<(String, String)> = io
        .iter()
        .map(|(name, (pw, total))| {
            (format!("parity_io_{name}"), format!("{pw} parity writes, {total} total I/Os"))
        })
        .collect();
    notes.extend(rendered.iter().map(|(k, v)| (k.as_str(), v.clone())));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_update.json");
    write_bench_json(std::path::Path::new(path), &records, &notes)
        .expect("write BENCH_update.json");
    eprintln!(
        "wrote {path} (HV parity writes per small write: {hv_parity}; \
         minimal among evaluated codes: {hv_minimal}; Table-II total I/O \
         {uncached} uncached -> {cached} cached, -{reduction_pct:.1}%)"
    );
}
