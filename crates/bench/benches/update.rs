//! Single-data-element update cost: the controller's read-modify-write
//! with incremental parity updates (the paper's "update complexity" axis),
//! and the Reed–Solomon P+Q small-write for contrast.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raid_array::RaidVolume;
use raid_bench::codes::evaluated;
use raid_rs::PqRaid6;

const ELEMENT: usize = 4096;

fn bench_volume_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_element_update");
    // Throughput = user data written per operation.
    group.throughput(Throughput::Bytes(ELEMENT as u64));
    let p = 13;
    for code in evaluated(p) {
        let name = code.name().replace(' ', "_");
        let mut volume = RaidVolume::in_memory(Arc::clone(&code), 2, ELEMENT);
        let buf = vec![0xA5u8; ELEMENT];
        let mut addr = 0usize;
        group.bench_with_input(BenchmarkId::new(name, p), &p, |b, _| {
            b.iter(|| {
                addr = (addr + 7) % volume.data_elements();
                std::hint::black_box(volume.write(addr, &buf).unwrap());
            })
        });
    }
    group.finish();
}

fn bench_rs_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_element_update_rs");
    group.throughput(Throughput::Bytes(ELEMENT as u64));
    let k = 12;
    let code = PqRaid6::new(k).unwrap();
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..ELEMENT).map(|b| (b + i) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    let (mut pbuf, mut qbuf) = code.encode(&refs).unwrap();
    let newv = vec![0x5Au8; ELEMENT];
    group.bench_function("pq_small_write", |b| {
        b.iter(|| {
            code.update(3, &data[3], &newv, &mut pbuf, &mut qbuf).unwrap();
            std::hint::black_box((&pbuf, &qbuf));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_volume_update, bench_rs_update);
criterion_main!(benches);
