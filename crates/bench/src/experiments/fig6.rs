//! Fig. 6 — partial-stripe-write efficiency (`p = 13` in the paper).
//!
//! Three traces (`uniform_w_10`, `uniform_w_30`, the Table II random trace)
//! are replayed against a volume per code; we record
//!
//! * **6a** the total induced element-write requests,
//! * **6b** the load-balancing rate λ (Eq. 7) over per-disk writes,
//! * **6c** the average simulated time to complete one write pattern
//!   (RMW reads + writes served by the disk-array simulator).

use std::sync::Arc;

use disk_sim::{DiskArray, DiskProfile};
use raid_core::ArrayCode;
use raid_workloads::{table2_trace, uniform_write_trace, WriteTrace};

use crate::codes::evaluated;
use crate::experiments::{volume_for, DATA_SPACE};
use crate::report::{f2, Table};

/// One (code, trace) measurement.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Code name.
    pub code: String,
    /// Trace name.
    pub trace: String,
    /// Total element-write requests induced by the trace (Fig. 6a).
    pub total_writes: u64,
    /// Load balancing rate λ over writes (Fig. 6b).
    pub lambda: f64,
    /// Average simulated milliseconds per write pattern (Fig. 6c).
    pub avg_pattern_ms: f64,
}

/// The traces of Section V-A, deterministic across codes.
pub fn traces(seed: u64) -> Vec<WriteTrace> {
    vec![
        uniform_write_trace(10, 1000, DATA_SPACE - 10, seed),
        uniform_write_trace(30, 1000, DATA_SPACE - 30, seed + 1),
        table2_trace(),
    ]
}

/// Runs the full Fig. 6 experiment.
pub fn run(p: usize, seed: u64) -> Vec<Fig6Row> {
    let profile = DiskProfile::savvio_10k();
    let mut rows = Vec::new();
    for code in evaluated(p) {
        for trace in traces(seed) {
            rows.push(run_one(&code, &trace, profile));
        }
    }
    rows
}

/// Replays one trace against one code through the library replay engine.
pub fn run_one(code: &Arc<dyn ArrayCode>, trace: &WriteTrace, profile: DiskProfile) -> Fig6Row {
    let mut volume = volume_for(code);
    let sim = DiskArray::new(volume.disks(), profile);
    let out = raid_array::replay_write_trace(&mut volume, sim, trace)
        .expect("healthy replay");
    Fig6Row {
        code: code.name().to_string(),
        trace: trace.name.clone(),
        total_writes: out.total_write_requests(),
        lambda: out.lambda(),
        avg_pattern_ms: out.mean_latency_ms(),
    }
}

/// Renders a descriptive table of the traces themselves (printed before
/// Fig. 6 so the workload behind each number is part of the record).
pub fn trace_profile_table(seed: u64) -> Table {
    let mut t = Table::new(
        "Workload profile — the traces behind Fig. 6",
        &["trace", "ops", "elements", "footprint", "mean L", "reuse"],
    );
    for trace in traces(seed) {
        let s = raid_workloads::stats::trace_stats(&trace);
        t.push(vec![
            trace.name.clone(),
            s.operations.to_string(),
            s.elements_written.to_string(),
            s.footprint.to_string(),
            f2(s.mean_len),
            f2(s.reuse_factor),
        ]);
    }
    t
}

/// Renders the three Fig. 6 panels.
pub fn tables(rows: &[Fig6Row]) -> Vec<Table> {
    let mut a = Table::new(
        "Fig. 6(a) — total induced write requests per trace (p as given)",
        &["code", "trace", "total writes"],
    );
    let mut b = Table::new(
        "Fig. 6(b) — load balancing rate λ (Eq. 7, lower is better)",
        &["code", "trace", "lambda"],
    );
    let mut c = Table::new(
        "Fig. 6(c) — avg simulated time per write pattern (ms)",
        &["code", "trace", "avg ms"],
    );
    for r in rows {
        a.push(vec![r.code.clone(), r.trace.clone(), r.total_writes.to_string()]);
        let lam = if r.lambda.is_finite() { f2(r.lambda) } else { "inf".to_string() };
        b.push(vec![r.code.clone(), r.trace.clone(), lam]);
        c.push(vec![r.code.clone(), r.trace.clone(), f2(r.avg_pattern_ms)]);
    }
    vec![a, b, c]
}

#[cfg(test)]
mod tests {
    use super::*;
    use raid_workloads::WritePattern;

    fn tiny_trace() -> WriteTrace {
        WriteTrace {
            name: "tiny".into(),
            patterns: vec![
                WritePattern { start: 0, len: 10, freq: 2 },
                WritePattern { start: 50, len: 3, freq: 1 },
            ],
        }
    }

    #[test]
    fn hv_beats_xcode_and_hdp_on_writes() {
        // The core Fig. 6a claim at small scale.
        let profile = DiskProfile::savvio_10k();
        let codes = evaluated(7);
        let trace = tiny_trace();
        let by_name = |n: &str| {
            let code = codes.iter().find(|c| c.name() == n).unwrap();
            run_one(code, &trace, profile).total_writes
        };
        let hv = by_name("HV Code");
        assert!(hv < by_name("X-Code"), "HV must induce fewer writes than X-Code");
        assert!(hv < by_name("HDP"), "HV must induce fewer writes than HDP");
    }

    #[test]
    fn hv_beats_rdp_at_paper_scale() {
        // The RDP gap emerges at the paper's operating point (p = 13,
        // length-10 uniform writes); at tiny p the longer RDP rows can
        // locally compensate.
        let profile = DiskProfile::savvio_10k();
        let trace = uniform_write_trace(10, 100, DATA_SPACE - 10, 9);
        let codes = evaluated(13);
        let by_name = |n: &str| {
            let code = codes.iter().find(|c| c.name() == n).unwrap();
            run_one(code, &trace, profile).total_writes
        };
        let hv = by_name("HV Code");
        assert!(hv < by_name("RDP"), "HV must induce fewer writes than RDP at p=13");
        // H-Code is the one competitor allowed to (marginally) tie or win.
        let h = by_name("H-Code");
        assert!((hv as f64) < h as f64 * 1.1, "HV must stay within 10% of H-Code");
    }

    #[test]
    fn balanced_codes_have_low_lambda() {
        let profile = DiskProfile::savvio_10k();
        let trace = uniform_write_trace(10, 200, 200, 3);
        let codes = evaluated(7);
        let lam = |n: &str| {
            let code = codes.iter().find(|c| c.name() == n).unwrap();
            run_one(code, &trace, profile).lambda
        };
        let rdp = lam("RDP");
        let hv = lam("HV Code");
        let x = lam("X-Code");
        assert!(hv < rdp, "HV λ ({hv}) must beat RDP λ ({rdp})");
        assert!(hv < 2.0, "HV should be near-perfectly balanced, got {hv}");
        assert!(x < 2.0, "X-Code should be near-perfectly balanced, got {x}");
    }

    #[test]
    fn rows_and_tables_align() {
        let profile = DiskProfile::savvio_10k();
        let code = &evaluated(5)[4];
        let row = run_one(code, &tiny_trace(), profile);
        let ts = tables(std::slice::from_ref(&row));
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].len(), 1);
        assert!(row.avg_pattern_ms > 0.0);
    }
}
