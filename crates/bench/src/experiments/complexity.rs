//! Section IV-2 — construction / reconstruction / update computational
//! complexity, counted from the layouts.
//!
//! The paper derives the optima (via the P-Code paper): encoding costs
//! `(3x − mn)/x` XORs per data element and double-failure reconstruction
//! `(3x − mn)/(mn − x)` XORs per lost element, for an `m × n` stripe with
//! `x` data elements; HV Code meets both. This target counts the actual
//! XOR operations each code performs and prints them next to its own
//! optimum, so the "optimal complexity" claim is checkable at a glance.

use raid_core::plan::update::update_complexity;
use raid_core::schedule::double_failure_schedule;

use crate::codes::extended;
use crate::report::{f3, Table};

/// One code's complexity row.
#[derive(Debug, Clone)]
pub struct ComplexityRow {
    /// Code name.
    pub code: String,
    /// Measured encode XORs per data element.
    pub encode_per_data: f64,
    /// The `(3x − mn)/x` optimum for this code's stripe shape.
    pub encode_optimum: f64,
    /// Measured reconstruction XORs per lost element (expectation over all
    /// double failures).
    pub decode_per_lost: f64,
    /// The `(3x − mn)/(mn − x)` optimum.
    pub decode_optimum: f64,
    /// Average parity writes per data write.
    pub update: f64,
}

/// Computes the complexity table at prime `p`.
pub fn run(p: usize) -> Vec<ComplexityRow> {
    extended(p)
        .into_iter()
        .map(|code| {
            let layout = code.layout();
            let mn = layout.num_cells() as f64;
            let x = layout.num_data_cells() as f64;

            // Encoding: (members − 1) XORs per chain.
            let encode_ops: usize =
                layout.chains().iter().map(|ch| ch.members.len() - 1).sum();

            // Reconstruction: expectation over all pairs of the XOR count
            // of the generic schedule (each step XORs |sources| − 1 times).
            let n = layout.cols();
            let mut decode_ops = 0usize;
            let mut lost_elements = 0usize;
            for f1 in 0..n {
                for f2 in (f1 + 1)..n {
                    let sched = double_failure_schedule(layout, f1, f2)
                        .expect("MDS pair");
                    for (cell, _) in &sched.steps {
                        // The step's equation XORs (chain length − 2) times.
                        let eqs = layout.equations_of(*cell);
                        let len = eqs
                            .iter()
                            .map(|id| layout.chain(*id).len())
                            .min()
                            .unwrap_or(2);
                        decode_ops += len.saturating_sub(2);
                        lost_elements += 1;
                    }
                }
            }

            ComplexityRow {
                code: code.name().to_string(),
                encode_per_data: encode_ops as f64 / x,
                encode_optimum: (3.0 * x - mn) / x,
                decode_per_lost: decode_ops as f64 / lost_elements as f64,
                decode_optimum: (3.0 * x - mn) / (mn - x),
                update: update_complexity(layout),
            }
        })
        .collect()
}

/// Renders the complexity table.
pub fn table(p: usize, rows: &[ComplexityRow]) -> Table {
    let mut t = Table::new(
        format!("Section IV — computational complexity at p = {p} (XORs per element)"),
        &["code", "encode", "enc. optimum", "decode", "dec. optimum", "update"],
    );
    for r in rows {
        t.push(vec![
            r.code.clone(),
            f3(r.encode_per_data),
            f3(r.encode_optimum),
            f3(r.decode_per_lost),
            f3(r.decode_optimum),
            f3(r.update),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hv_meets_both_optima() {
        for p in [7usize, 13] {
            let rows = run(p);
            let hv = rows.iter().find(|r| r.code == "HV Code").unwrap();
            assert!(
                (hv.encode_per_data - hv.encode_optimum).abs() < 1e-9,
                "p={p}: encode {hv:?}"
            );
            assert!(
                (hv.decode_per_lost - hv.decode_optimum).abs() < 1e-9,
                "p={p}: decode {hv:?}"
            );
        }
    }

    #[test]
    fn evenodd_pays_for_its_adjuster() {
        // EVENODD's S-diagonal makes its diagonal chains nearly twice as
        // long, so its encode cost per element sits well above its optimum.
        let rows = run(7);
        let eo = rows.iter().find(|r| r.code == "EVENODD").unwrap();
        assert!(eo.encode_per_data > eo.encode_optimum * 1.2, "{eo:?}");
    }

    #[test]
    fn renders() {
        let rows = run(5);
        assert_eq!(table(5, &rows).len(), 8);
    }

    #[test]
    fn liberation_encode_is_cheapest_bit_matrix() {
        // Minimum density: Liberation's encode cost per data element beats
        // EVENODD's adjusted diagonals despite both being horizontal+Q
        // shaped.
        let rows = run(7);
        let lib = rows.iter().find(|r| r.code == "Liberation").unwrap();
        let eo = rows.iter().find(|r| r.code == "EVENODD").unwrap();
        assert!(lib.encode_per_data < eo.encode_per_data, "{lib:?} vs {eo:?}");
    }
}
