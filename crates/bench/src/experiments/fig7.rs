//! Fig. 7 — degraded-read efficiency (`p = 13`, `L ∈ {1,5,10,15}`,
//! 100 patterns, expectation over the failed disk).
//!
//! * **7a** average simulated time per degraded read pattern;
//! * **7b** I/O efficiency `L′/L` — elements actually fetched per element
//!   requested.

use std::sync::Arc;

use disk_sim::{DiskArray, DiskProfile};
use raid_core::ArrayCode;
use raid_workloads::degraded_read_patterns;

use crate::codes::evaluated;
use crate::experiments::{volume_for, DATA_SPACE};
use crate::report::{f2, f3, Table};

/// One (code, L) measurement, averaged over patterns and failed disks.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Code name.
    pub code: String,
    /// Requested read length `L`.
    pub len: usize,
    /// Average simulated milliseconds per degraded read pattern (Fig. 7a).
    pub avg_pattern_ms: f64,
    /// Average `L′/L` (Fig. 7b, 1.0 is ideal).
    pub efficiency: f64,
}

/// Runs the full Fig. 7 experiment.
pub fn run(p: usize, seed: u64) -> Vec<Fig7Row> {
    let profile = DiskProfile::savvio_10k();
    let mut rows = Vec::new();
    for code in evaluated(p) {
        for &len in &[1usize, 5, 10, 15] {
            rows.push(run_one(&code, len, 100, seed, profile));
        }
    }
    rows
}

/// Measures one (code, L) cell of the figure.
pub fn run_one(
    code: &Arc<dyn ArrayCode>,
    len: usize,
    patterns: usize,
    seed: u64,
    profile: DiskProfile,
) -> Fig7Row {
    let pats = degraded_read_patterns(len, patterns, DATA_SPACE - len, seed);
    let disks = code.layout().cols();
    let mut total_ms = 0.0;
    let mut total_eff = 0.0;
    let mut count = 0u64;

    for failed in 0..disks {
        let mut volume = volume_for(code);
        volume.fail_disk(failed).expect("valid disk");
        // attach_sim syncs the failure into the simulator.
        let sim = DiskArray::new(disks, profile);
        let out = raid_array::replay_read_patterns(&mut volume, sim, &pats)
            .expect("degraded replay");
        total_ms += out.latencies_ms.iter().sum::<f64>();
        total_eff += out.efficiencies.iter().sum::<f64>();
        count += out.efficiencies.len() as u64;
    }

    Fig7Row {
        code: code.name().to_string(),
        len,
        avg_pattern_ms: total_ms / count as f64,
        efficiency: total_eff / count as f64,
    }
}

/// Renders the two Fig. 7 panels.
pub fn tables(rows: &[Fig7Row]) -> Vec<Table> {
    let mut a = Table::new(
        "Fig. 7(a) — avg simulated time per degraded read pattern (ms)",
        &["code", "L", "avg ms"],
    );
    let mut b = Table::new(
        "Fig. 7(b) — degraded read I/O efficiency L'/L (1.0 = ideal)",
        &["code", "L", "L'/L"],
    );
    for r in rows {
        a.push(vec![r.code.clone(), r.len.to_string(), f2(r.avg_pattern_ms)]);
        b.push(vec![r.code.clone(), r.len.to_string(), f3(r.efficiency)]);
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hv_more_efficient_than_xcode() {
        // Fig. 7b's headline: X-Code pays the most extra reads, HV the
        // least (short chains + horizontal parity).
        let profile = DiskProfile::savvio_10k();
        let codes = evaluated(7);
        let eff = |n: &str| {
            let code = codes.iter().find(|c| c.name() == n).unwrap();
            run_one(code, 10, 20, 5, profile).efficiency
        };
        let hv = eff("HV Code");
        let x = eff("X-Code");
        assert!(hv < x, "HV L'/L ({hv:.3}) must beat X-Code ({x:.3})");
        assert!(hv >= 1.0, "efficiency can never drop below 1");
    }

    #[test]
    fn healthy_length_scaling() {
        let profile = DiskProfile::savvio_10k();
        let code = &evaluated(5)[4];
        let short = run_one(code, 1, 10, 2, profile);
        let long = run_one(code, 15, 10, 2, profile);
        assert!(long.avg_pattern_ms > short.avg_pattern_ms);
        // Longer reads amortize reconstruction better.
        assert!(long.efficiency <= short.efficiency + 1.5);
        let ts = tables(&[short, long]);
        assert_eq!(ts.len(), 2);
    }
}
