//! Fig. 8 — the worked single-disk recovery example: which chain repairs
//! each lost element of a failed HV disk and what gets read.
//!
//! The paper's figure (p = 7, disk #1) retrieves 18 elements — 3 per lost
//! element — by mixing horizontal and vertical chains to maximize overlap.

use hv_code::HvCode;
use raid_core::layout::ParityClass;
use raid_core::plan::single::SearchStrategy;
use raid_core::ArrayCode;

use crate::report::Table;

/// One repaired element's row in the Fig. 8 table.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// The lost element (1-based, paper notation).
    pub element: String,
    /// Chain family used.
    pub via: String,
    /// Elements read for this repair (1-based).
    pub sources: String,
}

/// Computes the Fig. 8 plan for `failed_disk` of the HV code at prime `p`.
///
/// # Panics
///
/// Panics if `p` is not a valid HV prime or the disk is out of range.
pub fn run(p: usize, failed_disk: usize) -> (Vec<Fig8Row>, usize) {
    let code = HvCode::new(p).expect("prime p >= 5");
    let plan = code.single_disk_plan(failed_disk, SearchStrategy::Exhaustive);
    let layout = code.layout();
    let rows = plan
        .choices
        .iter()
        .map(|(cell, chain_id)| {
            let chain = layout.chain(*chain_id);
            let via = match chain.class {
                ParityClass::Horizontal => "horizontal",
                ParityClass::Vertical => "vertical",
                other => unreachable!("HV has no {other} chains"),
            };
            let sources: Vec<String> = chain
                .cells()
                .filter(|c| c != cell)
                .map(|c| format!("E[{},{}]", c.row + 1, c.col + 1))
                .collect();
            Fig8Row {
                element: format!("E[{},{}]", cell.row + 1, cell.col + 1),
                via: via.to_string(),
                sources: sources.join(" "),
            }
        })
        .collect();
    (rows, plan.total_reads())
}

/// Renders the Fig. 8 table.
pub fn table(p: usize, failed_disk: usize, rows: &[Fig8Row], total: usize) -> Table {
    let mut t = Table::new(
        format!(
            "Fig. 8 — single-disk recovery plan, HV Code p={p}, disk #{} ({} distinct reads)",
            failed_disk + 1,
            total
        ),
        &["lost element", "via", "reads"],
    );
    for r in rows {
        t.push(vec![r.element.clone(), r.via.clone(), r.sources.clone()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_reads_eighteen() {
        let (rows, total) = run(7, 0);
        assert_eq!(rows.len(), 6);
        assert_eq!(total, 18, "Fig. 8: 18 elements, 3 per lost element");
        // The optimum requires mixing both chain families.
        assert!(rows.iter().any(|r| r.via == "horizontal"));
        assert!(rows.iter().any(|r| r.via == "vertical"));
    }

    #[test]
    fn renders() {
        let (rows, total) = run(7, 0);
        let t = table(7, 0, &rows, total);
        assert_eq!(t.len(), 6);
        assert!(t.title().contains("18"));
    }
}
