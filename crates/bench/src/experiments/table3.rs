//! Table III — the structural comparison between HV Code and the other
//! MDS array codes, computed from the layouts rather than transcribed.

use disk_sim::DiskProfile;
use raid_core::plan::update::update_complexity;
use raid_core::schedule::double_failure_schedule;
use raid_workloads::uniform_write_trace;

use crate::codes::evaluated;
use crate::experiments::DATA_SPACE;
use crate::report::{f2, Table};

/// One code's computed Table III row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Code name.
    pub code: String,
    /// Disks used at this `p`.
    pub disks: usize,
    /// λ under `uniform_w_10` (the paper's "balanced" / "unbalanced").
    pub lambda: f64,
    /// Average parity updates per data write ("update complexity").
    pub update_complexity: f64,
    /// Average induced writes for a 2-continuous-element partial write
    /// ("partial stripe writes" cost).
    pub two_element_write_cost: f64,
    /// Minimum parallel recovery chains over all double failures.
    pub recovery_chains: usize,
    /// Parity chain lengths as `len×count` pairs.
    pub chain_lengths: String,
}

/// Computes Table III at the given prime.
pub fn run(p: usize, seed: u64) -> Vec<Table3Row> {
    let profile = DiskProfile::savvio_10k();
    let trace = uniform_write_trace(10, 500, DATA_SPACE - 10, seed);
    evaluated(p)
        .into_iter()
        .map(|code| {
            let layout = code.layout();
            let lambda = crate::experiments::fig6::run_one(&code, &trace, profile).lambda;

            // Average cost of every 2-element aligned partial write.
            let data = layout.num_data_cells();
            let mut write_cost = 0.0;
            for start in 0..data - 1 {
                let plan = raid_core::plan::write::plan_partial_write(layout, start, 2);
                write_cost += plan.total_writes() as f64;
            }
            write_cost /= (data - 1) as f64;

            let n = layout.cols();
            let mut min_chains = usize::MAX;
            for f1 in 0..n {
                for f2 in (f1 + 1)..n {
                    let sched =
                        double_failure_schedule(layout, f1, f2).expect("MDS pair");
                    min_chains = min_chains.min(sched.num_chains);
                }
            }

            let lengths = layout
                .chain_length_histogram()
                .into_iter()
                .map(|(len, count)| format!("{len}x{count}"))
                .collect::<Vec<_>>()
                .join(" ");

            Table3Row {
                code: code.name().to_string(),
                disks: n,
                lambda,
                update_complexity: update_complexity(layout),
                two_element_write_cost: write_cost,
                recovery_chains: min_chains,
                chain_lengths: lengths,
            }
        })
        .collect()
}

/// Renders the computed Table III.
pub fn table(rows: &[Table3Row]) -> Table {
    let mut t = Table::new(
        "Table III — computed structural comparison",
        &[
            "code",
            "disks",
            "λ(uniform_w_10)",
            "update complexity",
            "2-elem write cost",
            "recovery chains",
            "chain lengths",
        ],
    );
    for r in rows {
        let lam = if r.lambda.is_finite() { f2(r.lambda) } else { "inf".into() };
        t.push(vec![
            r.code.clone(),
            r.disks.to_string(),
            lam,
            f2(r.update_complexity),
            f2(r.two_element_write_cost),
            r.recovery_chains.to_string(),
            r.chain_lengths.clone(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table_three() {
        let rows = run(7, 11);
        let get = |n: &str| rows.iter().find(|r| r.code == n).unwrap();

        // Update complexity column.
        assert!(get("RDP").update_complexity > 2.0);
        assert!((get("HDP").update_complexity - 3.0).abs() < 0.4);
        assert!((get("X-Code").update_complexity - 2.0).abs() < 1e-9);
        assert!((get("H-Code").update_complexity - 2.0).abs() < 1e-9);
        assert!((get("HV Code").update_complexity - 2.0).abs() < 1e-9);

        // Recovery chain column: 4 for X-Code and HV, 2 for the rest.
        assert_eq!(get("X-Code").recovery_chains, 4);
        assert_eq!(get("HV Code").recovery_chains, 4);
        assert!(get("RDP").recovery_chains <= 2);
        assert!(get("H-Code").recovery_chains <= 2);

        // Chain lengths: p for RDP/H-Code, p−1 for X-Code, p−2 for HV.
        assert!(get("RDP").chain_lengths.starts_with("7x"));
        assert!(get("H-Code").chain_lengths.starts_with("7x"));
        assert!(get("X-Code").chain_lengths.starts_with("6x"));
        assert!(get("HV Code").chain_lengths.starts_with("5x"));

        // Balance: HV/HDP/X-Code balanced, RDP unbalanced.
        assert!(get("HV Code").lambda < 2.0);
        assert!(get("RDP").lambda > get("HV Code").lambda);

        // Partial stripe writes: HV and H-Code cheapest.
        assert!(get("HV Code").two_element_write_cost <= get("X-Code").two_element_write_cost);
        assert!(get("HV Code").two_element_write_cost <= get("HDP").two_element_write_cost);
    }

    #[test]
    fn renders() {
        let rows = run(5, 1);
        assert_eq!(table(&rows).len(), 5);
    }
}
