//! Fig. 9 — disk-failure recovery.
//!
//! * **9a** minimum average elements read per repaired element under a
//!   single disk failure (hybrid-chain recovery, expectation over the
//!   failed disk), swept over `p`;
//! * **9b** expected double-failure reconstruction time, modeled as the
//!   paper does (`Lc · Re`, Section V-D) with `Lc` the longest recovery
//!   chain of the generic peeling scheduler, expectation over all failed
//!   pairs.

use std::sync::Arc;

use disk_sim::recovery::lc_re_time_ms;
use disk_sim::DiskProfile;
use raid_core::plan::single::{plan_single_disk_recovery, SearchStrategy};
use raid_core::schedule::double_failure_schedule;
use raid_core::ArrayCode;

use crate::codes::evaluated;
use crate::report::{f2, f3, Table};

/// One (code, p) cell of Fig. 9a.
#[derive(Debug, Clone)]
pub struct Fig9aRow {
    /// Code name.
    pub code: String,
    /// The prime swept on the x-axis.
    pub p: usize,
    /// Average elements read per repaired element.
    pub reads_per_element: f64,
}

/// One (code, p) cell of Fig. 9b.
#[derive(Debug, Clone)]
pub struct Fig9bRow {
    /// Code name.
    pub code: String,
    /// The prime swept on the x-axis.
    pub p: usize,
    /// Expected longest recovery chain `Lc` over all failure pairs.
    pub expected_lc: f64,
    /// Average number of parallel recovery chains.
    pub avg_chains: f64,
    /// Modeled reconstruction time `E[Lc] · Re` in ms.
    pub time_ms: f64,
}

/// The strategy used per search-space size: exact below the bound, anneal
/// above (documented in DESIGN.md; the ablation bench quantifies the gap).
fn strategy_for(code: &Arc<dyn ArrayCode>) -> SearchStrategy {
    if code.rows() <= 18 {
        SearchStrategy::Exhaustive
    } else {
        SearchStrategy::Anneal { iters: 120_000, seed: 0x9A }
    }
}

/// Runs Fig. 9a for the given primes.
pub fn run_9a(primes: &[usize]) -> Vec<Fig9aRow> {
    let mut rows = Vec::new();
    for &p in primes {
        for code in evaluated(p) {
            let layout = code.layout();
            let strategy = strategy_for(&code);
            let mut total = 0.0;
            for failed in 0..layout.cols() {
                let plan = plan_single_disk_recovery(layout, failed, strategy);
                total += plan.reads_per_element();
            }
            rows.push(Fig9aRow {
                code: code.name().to_string(),
                p,
                reads_per_element: total / layout.cols() as f64,
            });
        }
    }
    rows
}

/// Runs Fig. 9b for the given primes.
pub fn run_9b(primes: &[usize]) -> Vec<Fig9bRow> {
    let profile = DiskProfile::savvio_10k();
    let mut rows = Vec::new();
    for &p in primes {
        for code in evaluated(p) {
            let layout = code.layout();
            let n = layout.cols();
            let mut lc_sum = 0usize;
            let mut chain_sum = 0usize;
            let mut pairs = 0usize;
            for f1 in 0..n {
                for f2 in (f1 + 1)..n {
                    let sched = double_failure_schedule(layout, f1, f2)
                        .expect("MDS code repairs any pair");
                    lc_sum += sched.longest_chain;
                    chain_sum += sched.num_chains;
                    pairs += 1;
                }
            }
            let expected_lc = lc_sum as f64 / pairs as f64;
            rows.push(Fig9bRow {
                code: code.name().to_string(),
                p,
                expected_lc,
                avg_chains: chain_sum as f64 / pairs as f64,
                time_ms: lc_re_time_ms(1, &profile) * expected_lc,
            });
        }
    }
    rows
}

/// Renders Fig. 9a.
pub fn table_9a(rows: &[Fig9aRow]) -> Table {
    let mut t = Table::new(
        "Fig. 9(a) — recovery I/O per lost element, single disk failure",
        &["code", "p", "reads/element"],
    );
    for r in rows {
        t.push(vec![r.code.clone(), r.p.to_string(), f3(r.reads_per_element)]);
    }
    t
}

/// Renders Fig. 9b.
pub fn table_9b(rows: &[Fig9bRow]) -> Table {
    let mut t = Table::new(
        "Fig. 9(b) — double failure recovery (E[Lc], parallel chains, Lc·Re time)",
        &["code", "p", "E[Lc]", "chains", "time ms"],
    );
    for r in rows {
        t.push(vec![
            r.code.clone(),
            r.p.to_string(),
            f2(r.expected_lc),
            f2(r.avg_chains),
            f2(r.time_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value<'a>(rows: &'a [Fig9aRow], name: &str) -> &'a Fig9aRow {
        rows.iter().find(|r| r.code == name).unwrap()
    }

    #[test]
    fn hv_needs_fewest_reads_per_element() {
        // The Fig. 9a headline, at p = 7 where the paper quotes its largest
        // savings (5.4%–39.8%).
        let rows = run_9a(&[7]);
        let hv = value(&rows, "HV Code").reads_per_element;
        for other in ["RDP", "HDP", "X-Code", "H-Code"] {
            assert!(
                hv <= value(&rows, other).reads_per_element + 1e-9,
                "HV ({hv}) must not exceed {other}"
            );
        }
        assert!(hv < value(&rows, "H-Code").reads_per_element, "strict win vs H-Code");
    }

    #[test]
    fn hv_and_xcode_have_four_chains_and_beat_rdp() {
        let rows = run_9b(&[7]);
        let get = |n: &str| rows.iter().find(|r| r.code == n).unwrap();
        assert!((get("HV Code").avg_chains - 4.0).abs() < 1e-9);
        assert!((get("X-Code").avg_chains - 4.0).abs() < 1e-9);
        assert!(get("HV Code").expected_lc < get("RDP").expected_lc);
        assert!(get("X-Code").expected_lc < get("H-Code").expected_lc);
    }

    #[test]
    fn tables_render() {
        let a = run_9a(&[5]);
        let b = run_9b(&[5]);
        assert_eq!(table_9a(&a).len(), 5);
        assert_eq!(table_9b(&b).len(), 5);
    }
}
