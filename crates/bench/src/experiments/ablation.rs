//! Ablation studies beyond the paper's figures.
//!
//! * **recovery-search** — how close the greedy and annealing planners get
//!   to exhaustive minimum-I/O single-disk recovery (justifies using the
//!   heuristic at large `p` in Fig. 9a);
//! * **rotation** — stripe rotation vs parity spreading: rotation fixes a
//!   *uniform* workload's imbalance for dedicated-parity codes, but a
//!   skewed (hot-spot) workload defeats it, exactly the paper's Section II
//!   argument for spreading parities inside the stripe.

use std::sync::Arc;
use std::time::Instant;

use raid_array::RaidVolume;
use raid_core::plan::single::{plan_single_disk_recovery, SearchStrategy};
use raid_workloads::{uniform_write_trace, WritePattern, WriteTrace};

use crate::codes::evaluated;
use crate::experiments::{DATA_SPACE, ELEMENT_BYTES};
use crate::report::{f2, f3, Table};

/// One (code, strategy) ablation cell.
#[derive(Debug, Clone)]
pub struct RecoverySearchRow {
    /// Code name.
    pub code: String,
    /// Strategy label.
    pub strategy: String,
    /// Average reads per repaired element over all failed disks.
    pub reads_per_element: f64,
    /// Wall-clock planning time (ms, whole sweep).
    pub plan_ms: f64,
}

/// Compares recovery-search strategies at one prime.
pub fn recovery_search(p: usize) -> Vec<RecoverySearchRow> {
    let strategies: [(&str, SearchStrategy); 3] = [
        ("exhaustive", SearchStrategy::Exhaustive),
        ("greedy", SearchStrategy::Greedy),
        ("anneal", SearchStrategy::Anneal { iters: 60_000, seed: 7 }),
    ];
    let mut rows = Vec::new();
    for code in evaluated(p) {
        let layout = code.layout();
        for (label, strategy) in strategies {
            let start = Instant::now();
            let mut total = 0.0;
            for failed in 0..layout.cols() {
                total +=
                    plan_single_disk_recovery(layout, failed, strategy).reads_per_element();
            }
            rows.push(RecoverySearchRow {
                code: code.name().to_string(),
                strategy: label.to_string(),
                reads_per_element: total / layout.cols() as f64,
                plan_ms: start.elapsed().as_secs_f64() * 1000.0,
            });
        }
    }
    rows
}

/// Renders the recovery-search ablation.
pub fn recovery_search_table(rows: &[RecoverySearchRow]) -> Table {
    let mut t = Table::new(
        "Ablation — single-disk recovery search strategies",
        &["code", "strategy", "reads/element", "plan ms"],
    );
    for r in rows {
        t.push(vec![
            r.code.clone(),
            r.strategy.clone(),
            f3(r.reads_per_element),
            f2(r.plan_ms),
        ]);
    }
    t
}

/// One (code, rotation, trace) λ measurement.
#[derive(Debug, Clone)]
pub struct RotationRow {
    /// Code name.
    pub code: String,
    /// Whether stripe rotation was enabled.
    pub rotated: bool,
    /// Trace label ("uniform" / "hot-spot").
    pub trace: String,
    /// Load balancing rate λ.
    pub lambda: f64,
}

/// A hot-spot trace: every write lands in the first stripe's elements —
/// the skewed access the paper argues rotation cannot fix.
fn hot_spot_trace(len: usize, count: usize) -> WriteTrace {
    WriteTrace {
        name: "hot_spot".into(),
        patterns: (0..count)
            .map(|i| WritePattern { start: (i * 3) % 20, len, freq: 1 })
            .collect(),
    }
}

/// Runs the rotation ablation at one prime.
pub fn rotation(p: usize, seed: u64) -> Vec<RotationRow> {
    let uniform = uniform_write_trace(10, 400, DATA_SPACE - 10, seed);
    let hot = hot_spot_trace(10, 400);
    let mut rows = Vec::new();
    for code in evaluated(p) {
        for rotated in [false, true] {
            for trace in [&uniform, &hot] {
                let per_stripe = code.layout().num_data_cells();
                let stripes = DATA_SPACE.div_ceil(per_stripe);
                let mut volume = RaidVolume::with_rotation(
                    Arc::clone(&code),
                    stripes,
                    ELEMENT_BYTES,
                    rotated,
                );
                let mut buf = vec![0u8; 64 * ELEMENT_BYTES];
                for (start, len) in trace.expanded() {
                    let len = len.min(volume.data_elements() - start);
                    if buf.len() < len * ELEMENT_BYTES {
                        buf.resize(len * ELEMENT_BYTES, 0);
                    }
                    volume.write(start, &buf[..len * ELEMENT_BYTES]).expect("in range");
                }
                rows.push(RotationRow {
                    code: code.name().to_string(),
                    rotated,
                    trace: trace.name.clone(),
                    lambda: volume.ledger().write_balance_rate(),
                });
            }
        }
    }
    rows
}

/// Renders the rotation ablation.
pub fn rotation_table(rows: &[RotationRow]) -> Table {
    let mut t = Table::new(
        "Ablation — stripe rotation vs parity spreading (λ, lower is better)",
        &["code", "rotation", "trace", "lambda"],
    );
    for r in rows {
        let lam = if r.lambda.is_finite() { f2(r.lambda) } else { "inf".into() };
        t.push(vec![
            r.code.clone(),
            if r.rotated { "on" } else { "off" }.into(),
            r.trace.clone(),
            lam,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristics_close_to_exhaustive() {
        let rows = recovery_search(7);
        for code in ["RDP", "HDP", "X-Code", "H-Code", "HV Code"] {
            let by = |s: &str| {
                rows.iter()
                    .find(|r| r.code == code && r.strategy == s)
                    .unwrap()
                    .reads_per_element
            };
            let ex = by("exhaustive");
            assert!(by("anneal") <= ex * 1.05 + 1e-9, "{code}: anneal too far off");
            assert!(by("greedy") <= ex * 1.25 + 1e-9, "{code}: greedy too far off");
            assert!(ex <= by("greedy") + 1e-9, "{code}: exhaustive must be minimal");
        }
    }

    #[test]
    fn rotation_helps_uniform_but_not_hot_spot_for_rdp() {
        let rows = rotation(5, 3);
        let lam = |rot: bool, trace: &str| {
            rows.iter()
                .find(|r| r.code == "RDP" && r.rotated == rot && r.trace.contains(trace))
                .unwrap()
                .lambda
        };
        // Uniform: rotation flattens RDP's parity-disk hot spot.
        assert!(lam(true, "uniform") < lam(false, "uniform"));
        // Hot-spot: rotation cannot rescue RDP; HV stays balanced without it.
        let hv_hot = rows
            .iter()
            .find(|r| r.code == "HV Code" && !r.rotated && r.trace == "hot_spot")
            .unwrap()
            .lambda;
        assert!(
            lam(true, "hot_spot") > hv_hot,
            "rotated RDP must stay worse than unrotated HV on a hot spot"
        );
    }
}
