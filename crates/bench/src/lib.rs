//! The benchmark harness regenerating every table and figure of the HV
//! Code paper's evaluation (Section V).
//!
//! Each experiment lives in [`experiments`] and is runnable through the
//! `repro` binary:
//!
//! ```text
//! cargo run --release -p raid-bench --bin repro -- all
//! cargo run --release -p raid-bench --bin repro -- fig6a fig6b fig6c
//! cargo run --release -p raid-bench --bin repro -- fig7a fig7b fig9a fig9b table3
//! ```
//!
//! Absolute numbers depend on the simulated disk profile (DESIGN.md §2);
//! what must match the paper is the *shape*: which code wins, by roughly
//! what factor, and where the crossovers are. EXPERIMENTS.md records the
//! paper-vs-measured comparison produced by this harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codes;
pub mod experiments;
pub mod report;
