//! Prints each implemented code's stripe layout as an ASCII grid
//! (`.` data, `H`/`V`/`D`/`A`/`X` parity classes) — handy for eyeballing a
//! construction against the papers' figures.
//!
//! ```text
//! cargo run -p raid-bench --bin print_layouts [p]
//! ```

use raid_core::ArrayCode;

fn main() {
    let p: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let codes: Vec<Box<dyn ArrayCode>> = vec![
        Box::new(hv_code::HvCode::new(p).expect("prime p >= 5")),
        Box::new(raid_baselines::RdpCode::new(p).expect("prime")),
        Box::new(raid_baselines::EvenOddCode::new(p).expect("prime")),
        Box::new(raid_baselines::XCode::new(p).expect("prime")),
        Box::new(raid_baselines::HCode::new(p).expect("prime p >= 5")),
        Box::new(raid_baselines::HdpCode::new(p).expect("prime p >= 5")),
        Box::new(raid_baselines::PCode::new(p).expect("prime")),
        Box::new(raid_baselines::LiberationCode::new(p).expect("prime")),
    ];
    for c in codes {
        println!("--- {} (p = {p}, {} disks) ---", c.name(), c.disks());
        print!("{}", c.layout().render_ascii());
        println!();
    }
}
