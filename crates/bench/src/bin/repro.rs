//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p raid-bench --bin repro -- all
//! cargo run --release -p raid-bench --bin repro -- fig6a fig7b table3
//! cargo run --release -p raid-bench --bin repro -- --p 13 --seed 42 --csv results fig6a
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use raid_bench::experiments::{ablation, complexity, fig6, fig7, fig8, fig9, table3};
use raid_bench::report::Table;

struct Options {
    p: usize,
    seed: u64,
    csv_dir: Option<PathBuf>,
    targets: Vec<String>,
}

const USAGE: &str = "usage: repro [--p <prime>] [--seed <n>] [--csv <dir>] <target>...
targets: traces fig6a fig6b fig6c fig7a fig7b fig8 fig9a fig9b table3 complexity ablation-recovery ablation-rotation all";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { p: 13, seed: 20140623, csv_dir: None, targets: Vec::new() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--p" => {
                let v = args.next().ok_or("--p needs a value")?;
                opts.p = v.parse().map_err(|_| format!("bad --p value: {v}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--csv" => {
                let v = args.next().ok_or("--csv needs a directory")?;
                opts.csv_dir = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            t if !t.starts_with('-') => opts.targets.push(t.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if opts.targets.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(opts)
}

fn emit(tables: &[Table], opts: &Options) {
    for t in tables {
        println!("{}", t.render());
        if let Some(dir) = &opts.csv_dir {
            let file = t
                .title()
                .chars()
                .take_while(|&c| c != '—')
                .collect::<String>()
                .trim()
                .to_lowercase()
                .replace(['.', '(', ')', ' '], "_");
            let path = dir.join(format!("{file}.csv"));
            if let Err(e) = t.write_csv(&path) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("  [csv] {}", path.display());
            }
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut targets: Vec<String> = opts.targets.clone();
    if targets.iter().any(|t| t == "all") {
        targets = [
            "traces",
            "fig6a",
            "fig6b",
            "fig6c",
            "fig7a",
            "fig7b",
            "fig8",
            "fig9a",
            "fig9b",
            "table3",
            "complexity",
            "ablation-recovery",
            "ablation-rotation",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    // Cache shared runs so `repro all` computes each experiment once.
    let mut fig6_rows: Option<Vec<fig6::Fig6Row>> = None;
    let mut fig7_rows: Option<Vec<fig7::Fig7Row>> = None;

    let fig9_primes: Vec<usize> = [5usize, 7, 11, 13, 17, 19, 23]
        .into_iter()
        .filter(|&q| q <= opts.p.max(23))
        .collect();

    for target in &targets {
        match target.as_str() {
            "traces" => {
                emit(&[fig6::trace_profile_table(opts.seed)], &opts);
            }
            "fig6a" | "fig6b" | "fig6c" => {
                let rows = fig6_rows
                    .get_or_insert_with(|| {
                        eprintln!("[run] Fig. 6 traces at p = {} ...", opts.p);
                        fig6::run(opts.p, opts.seed)
                    })
                    .clone();
                let all = fig6::tables(&rows);
                let idx = match target.as_str() {
                    "fig6a" => 0,
                    "fig6b" => 1,
                    _ => 2,
                };
                emit(&all[idx..=idx], &opts);
            }
            "fig7a" | "fig7b" => {
                let rows = fig7_rows
                    .get_or_insert_with(|| {
                        eprintln!("[run] Fig. 7 degraded reads at p = {} ...", opts.p);
                        fig7::run(opts.p, opts.seed)
                    })
                    .clone();
                let all = fig7::tables(&rows);
                let idx = if target == "fig7a" { 0 } else { 1 };
                emit(&all[idx..=idx], &opts);
            }
            "fig8" => {
                eprintln!("[run] Fig. 8 recovery plan (p = 7, disk #1) ...");
                let (rows, total) = fig8::run(7, 0);
                emit(&[fig8::table(7, 0, &rows, total)], &opts);
            }
            "fig9a" => {
                eprintln!("[run] Fig. 9a sweep over p = {fig9_primes:?} ...");
                let rows = fig9::run_9a(&fig9_primes);
                emit(&[fig9::table_9a(&rows)], &opts);
            }
            "fig9b" => {
                eprintln!("[run] Fig. 9b sweep over p = {fig9_primes:?} ...");
                let rows = fig9::run_9b(&fig9_primes);
                emit(&[fig9::table_9b(&rows)], &opts);
            }
            "table3" => {
                eprintln!("[run] Table III at p = {} ...", opts.p);
                let rows = table3::run(opts.p, opts.seed);
                emit(&[table3::table(&rows)], &opts);
            }
            "complexity" => {
                eprintln!("[run] Section IV complexity at p = {} ...", opts.p);
                let rows = complexity::run(opts.p);
                emit(&[complexity::table(opts.p, &rows)], &opts);
            }
            "ablation-recovery" => {
                eprintln!("[run] recovery-search ablation at p = {} ...", opts.p.min(13));
                let rows = ablation::recovery_search(opts.p.min(13));
                emit(&[ablation::recovery_search_table(&rows)], &opts);
            }
            "ablation-rotation" => {
                eprintln!("[run] rotation ablation at p = {} ...", opts.p);
                let rows = ablation::rotation(opts.p, opts.seed);
                emit(&[ablation::rotation_table(&rows)], &opts);
            }
            other => {
                eprintln!("unknown target {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
