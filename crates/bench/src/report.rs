//! Plain-text table rendering and CSV emission for the repro harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple named table: one header row plus data rows of equal width.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut s = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(s, "{}", self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        fs::write(path, s)
    }
}

/// One measured benchmark, as recorded by the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark group ("encode_stripe", "kernels", …).
    pub group: String,
    /// Benchmark id within the group ("HV_Code/17", …).
    pub id: String,
    /// Measured nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Bytes processed per iteration, when the bench declared throughput.
    pub bytes_per_iter: Option<u64>,
}

impl BenchRecord {
    /// Throughput in MiB/s, when byte throughput was declared.
    pub fn mib_per_sec(&self) -> Option<f64> {
        let bytes = self.bytes_per_iter? as f64;
        (self.ns_per_iter > 0.0).then(|| bytes / (self.ns_per_iter * 1e-9) / (1 << 20) as f64)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes benchmark records as a machine-readable JSON report.
///
/// The format is stable and dependency-free: a top-level object with a
/// `notes` map (free-form context such as hardware limits) and a
/// `results` array of `{group, id, ns_per_iter, bytes_per_iter,
/// mib_per_sec}` objects.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(
    path: &Path,
    records: &[BenchRecord],
    notes: &[(&str, String)],
) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut s = String::from("{\n  \"notes\": {");
    for (i, (k, v)) in notes.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(s, "{sep}\n    \"{}\": \"{}\"", json_escape(k), json_escape(v));
    }
    s.push_str("\n  },\n  \"results\": [");
    for (i, r) in records.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let bytes = r
            .bytes_per_iter
            .map_or_else(|| "null".to_string(), |b| b.to_string());
        let mib = r
            .mib_per_sec()
            .map_or_else(|| "null".to_string(), |m| format!("{m:.1}"));
        let _ = write!(
            s,
            "{sep}\n    {{\"group\": \"{}\", \"id\": \"{}\", \"ns_per_iter\": {:.1}, \
             \"bytes_per_iter\": {bytes}, \"mib_per_sec\": {mib}}}",
            json_escape(&r.group),
            json_escape(&r.id),
            r.ns_per_iter,
        );
    }
    s.push_str("\n  ]\n}\n");
    fs::write(path, s)
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["code", "value"]);
        t.push(vec!["HV".into(), "1.00".into()]);
        t.push(vec!["RDP".into(), "13.20".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("13.20"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only".into()]);
    }

    #[test]
    fn bench_json_round_trips_by_eye() {
        let dir = std::env::temp_dir().join("raid_bench_test_json");
        let path = dir.join("b.json");
        let recs = vec![
            BenchRecord {
                group: "encode_stripe".into(),
                id: "HV_Code/17".into(),
                ns_per_iter: 125_000.0,
                bytes_per_iter: Some(1 << 20),
            },
            BenchRecord {
                group: "plan".into(),
                id: "no\"bytes".into(),
                ns_per_iter: 10.0,
                bytes_per_iter: None,
            },
        ];
        write_bench_json(&path, &recs, &[("cores", "1".into())]).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"HV_Code/17\""));
        assert!(s.contains("\"cores\": \"1\""));
        assert!(s.contains("\"bytes_per_iter\": null"));
        assert!(s.contains("no\\\"bytes"));
        // MiB/s: 2^20 bytes in 125 µs = 8.388608e9 B/s = 8000 MiB/s.
        assert!(s.contains("\"mib_per_sec\": 8000.0"), "{s}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_escapes() {
        let dir = std::env::temp_dir().join("raid_bench_test_csv");
        let path = dir.join("t.csv");
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["with,comma".into(), "quo\"te".into()]);
        t.write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"with,comma\""));
        assert!(s.contains("\"quo\"\"te\""));
        let _ = std::fs::remove_dir_all(dir);
    }
}
