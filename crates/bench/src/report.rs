//! Plain-text table rendering and CSV emission for the repro harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple named table: one header row plus data rows of equal width.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut s = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(s, "{}", self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        fs::write(path, s)
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["code", "value"]);
        t.push(vec!["HV".into(), "1.00".into()]);
        t.push(vec!["RDP".into(), "13.20".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("13.20"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only".into()]);
    }

    #[test]
    fn csv_escapes() {
        let dir = std::env::temp_dir().join("raid_bench_test_csv");
        let path = dir.join("t.csv");
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["with,comma".into(), "quo\"te".into()]);
        t.write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"with,comma\""));
        assert!(s.contains("\"quo\"\"te\""));
        let _ = std::fs::remove_dir_all(dir);
    }
}
