//! The code roster of the paper's evaluation.

use std::sync::Arc;

use hv_code::HvCode;
use raid_baselines::{EvenOddCode, HCode, HdpCode, LiberationCode, PCode, RdpCode, XCode};
use raid_core::ArrayCode;

/// The five codes of the paper's headline figures, in the paper's plotting
/// order: RDP (p+1 disks), HDP (p−1), X-Code (p), H-Code (p+1), HV (p−1).
///
/// # Panics
///
/// Panics if `p` is not a prime ≥ 5 (the evaluation sweeps only such `p`).
pub fn evaluated(p: usize) -> Vec<Arc<dyn ArrayCode>> {
    vec![
        Arc::new(RdpCode::new(p).expect("prime p")) as Arc<dyn ArrayCode>,
        Arc::new(HdpCode::new(p).expect("prime p >= 5")),
        Arc::new(XCode::new(p).expect("prime p")),
        Arc::new(HCode::new(p).expect("prime p >= 5")),
        Arc::new(HvCode::new(p).expect("prime p >= 5")),
    ]
}

/// The extended roster (background-section codes included) used by the
/// extra benches.
///
/// # Panics
///
/// Panics if `p` is not a prime ≥ 5.
pub fn extended(p: usize) -> Vec<Arc<dyn ArrayCode>> {
    let mut v = evaluated(p);
    v.push(Arc::new(EvenOddCode::new(p).expect("prime p")));
    v.push(Arc::new(PCode::new(p).expect("prime p")));
    v.push(Arc::new(LiberationCode::new(p).expect("prime p")));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper_disks() {
        let codes = evaluated(13);
        let disks: Vec<usize> = codes.iter().map(|c| c.disks()).collect();
        assert_eq!(disks, vec![14, 12, 13, 14, 12]);
        let names: Vec<&str> = codes.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["RDP", "HDP", "X-Code", "H-Code", "HV Code"]);
    }

    #[test]
    fn extended_adds_background_codes() {
        let codes = extended(7);
        assert_eq!(codes.len(), 8);
        assert_eq!(codes[5].name(), "EVENODD");
        assert_eq!(codes[6].name(), "P-Code");
        assert_eq!(codes[7].name(), "Liberation");
    }
}
