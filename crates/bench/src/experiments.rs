//! One module per paper artifact.
//!
//! * [`fig6`] — partial-stripe-write efficiency (Fig. 6a/6b/6c);
//! * [`fig7`] — degraded reads (Fig. 7a/7b);
//! * [`fig8`] — the worked single-disk recovery plan of Fig. 8;
//! * [`fig9`] — single- and double-failure recovery (Fig. 9a/9b);
//! * [`table3`] — the structural comparison of Table III;
//! * [`ablation`] — extra studies: recovery-search strategies and stripe
//!   rotation vs parity spreading.

pub mod ablation;
pub mod complexity;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table3;

use std::sync::Arc;

use raid_array::RaidVolume;
use raid_core::ArrayCode;

/// Common data-element address space shared by every code in the write and
/// read experiments, so each code serves the identical logical workload.
pub const DATA_SPACE: usize = 2400;

/// Element size used by the in-memory volumes. Timing uses the simulator's
/// 16 MB profile; the in-memory payload can stay small.
pub const ELEMENT_BYTES: usize = 8;

/// Builds a volume for `code` with at least [`DATA_SPACE`] data elements.
pub fn volume_for(code: &Arc<dyn ArrayCode>) -> RaidVolume {
    let per_stripe = code.layout().num_data_cells();
    let stripes = DATA_SPACE.div_ceil(per_stripe);
    RaidVolume::in_memory(Arc::clone(code), stripes, ELEMENT_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::evaluated;

    #[test]
    fn volumes_cover_the_common_space() {
        for code in evaluated(7) {
            let v = volume_for(&code);
            assert!(v.data_elements() >= DATA_SPACE, "{}", v.code().name());
        }
    }
}
