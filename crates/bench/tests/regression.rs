//! Numeric regression pins for the deterministic experiments: these exact
//! values were measured by the harness and cross-checked against the
//! paper's Fig. 9 shape (EXPERIMENTS.md); any construction or planner
//! change that shifts them should be a conscious decision.

use raid_bench::experiments::fig9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 5e-4
}

#[test]
fn fig9a_values_at_p7_are_pinned() {
    let rows = fig9::run_9a(&[7]);
    let get = |n: &str| rows.iter().find(|r| r.code == n).unwrap().reads_per_element;
    assert!(close(get("HV Code"), 3.000), "{}", get("HV Code"));
    assert!(close(get("HDP"), 3.167), "{}", get("HDP"));
    assert!(close(get("X-Code"), 3.714), "{}", get("X-Code"));
    assert!(close(get("RDP"), 4.688), "{}", get("RDP"));
    assert!(close(get("H-Code"), 4.688), "{}", get("H-Code"));
}

#[test]
fn fig9b_values_at_p7_are_pinned() {
    let rows = fig9::run_9b(&[7]);
    let get = |n: &str| rows.iter().find(|r| r.code == n).unwrap();
    assert!(close(get("HV Code").expected_lc, 4.20));
    assert!(close(get("X-Code").expected_lc, 5.00));
    assert!(close(get("HDP").expected_lc, 8.40));
    assert!(close(get("RDP").expected_lc, 7.5714));
    assert!(close(get("H-Code").expected_lc, 7.5714));
    assert!(close(get("HV Code").avg_chains, 4.0));
    assert!(close(get("X-Code").avg_chains, 4.0));
    assert!(close(get("HDP").avg_chains, 2.0));
}

#[test]
fn paper_quoted_percentages_hold_at_p7() {
    // §V-C: HV saves 5.4% vs HDP and up to 39.8% vs H-Code at p = 7.
    let rows = fig9::run_9a(&[7]);
    let get = |n: &str| rows.iter().find(|r| r.code == n).unwrap().reads_per_element;
    let hv = get("HV Code");
    let vs_hdp = 1.0 - hv / get("HDP");
    let vs_hcode = 1.0 - hv / get("H-Code");
    assert!((0.03..0.08).contains(&vs_hdp), "vs HDP: {vs_hdp}");
    assert!((0.30..0.45).contains(&vs_hcode), "vs H-Code: {vs_hcode}");

    // §V-D: ~47% double-recovery time saving vs HDP at p = 7.
    let rows = fig9::run_9b(&[7]);
    let get = |n: &str| rows.iter().find(|r| r.code == n).unwrap().time_ms;
    let saving = 1.0 - get("HV Code") / get("HDP");
    assert!((0.42..0.55).contains(&saving), "vs HDP: {saving}");
}
