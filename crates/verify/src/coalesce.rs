//! Symbolic proof that coalesced write-back cache flushes are correct.
//!
//! The stripe cache (`raid_array::cache`) flushes a dirty stripe as one
//! `LoweredOp` whose XOR program is built by
//! [`raid_array::batched_write_steps`] over a **double-height** grid:
//! rows `0..R` hold the stripe's *old* element values, and the upper
//! half holds the *new* values — `up(m)` for each dirty data cell `m` is
//! preset from the cache, and each touched parity `p` is computed into
//! `up(p)`. This module proves, in the same GF(2) symbolic domain as
//! [`crate::plan_check`], that for every touched parity the optimized
//! flush program computes exactly the right linear combination:
//!
//! * **RMW**: `up(p) = p ⊕ Σ_dirty (m ⊕ up(m))` — the incremental
//!   parity-delta identity, with cascaded parities (a chain whose member
//!   is itself an updated parity) folded in recursively;
//! * **Reconstruct / full-stripe**: `up(p) = Σ_members (dirty ? up(m) : m)`
//!   — direct re-encode from the post-write stripe.
//!
//! Equality against the independently-derived expectation also proves
//! the program never reads an *uninitialized* upper-half scratch cell:
//! any such read would leak a basis vector the expectation cannot
//! contain. Both the raw step list and its `xopt`-optimized form are
//! checked, so a failure localizes blame to the step builder or the
//! optimizer.

use std::collections::BTreeMap;
use std::fmt;

use raid_array::batched_write_steps;
use raid_core::plan::write::{plan_batched_write, WriteMode, WritePlan};
use raid_core::{Cell, Layout, XorPlan};

use crate::symbolic::{SymExpr, SymState};

/// A failed coalesced-flush proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalesceError {
    /// Write mode under which the flush program was compiled.
    pub mode: WriteMode,
    /// Dirty data ordinals of the failing flush.
    pub ordinals: Vec<usize>,
    /// Which compiled form failed (`"steps"` or `"optimized"`).
    pub stage: &'static str,
    /// Parity cell whose computed value deviates.
    pub parity: Cell,
    /// The symbolic equation, rendered.
    pub detail: String,
}

impl fmt::Display for CoalesceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coalesced flush ({:?}, dirty {:?}, {} form) computes the wrong \
             value for parity {}: {}",
            self.mode, self.ordinals, self.stage, self.parity, self.detail
        )
    }
}

impl std::error::Error for CoalesceError {}

/// The independently-derived expected expression for every touched
/// parity's `up(p)` slot, in cascade (dependency) order.
///
/// Seeded with `up(m)` for each dirty data cell, then each parity whose
/// touched members are all resolved is folded in — the same dependency
/// order the step builder must discover, but derived here from the chain
/// declarations alone.
fn expected_exprs(layout: &Layout, plan: &WritePlan, mode: WriteMode) -> Vec<(Cell, SymExpr)> {
    let (rows, cols) = (layout.rows(), layout.cols());
    let nbasis = 2 * rows * cols;
    let var = |c: Cell| SymExpr::basis(nbasis, c.index(cols));
    let up = |c: Cell| Cell::new(c.row + rows, c.col);

    // New values known so far: dirty data first, parities as they resolve.
    let mut new: BTreeMap<Cell, SymExpr> = plan
        .data_writes
        .iter()
        .map(|&m| (m, var(up(m))))
        .collect();
    let mut pending = plan.parity_writes.clone();
    let mut out = Vec::with_capacity(pending.len());
    while !pending.is_empty() {
        let ready = pending
            .iter()
            .position(|&p| {
                let chain = layout.chain(layout.chain_of_parity(p).expect("parity owns a chain"));
                chain
                    .members
                    .iter()
                    .all(|m| !plan.parity_writes.contains(m) || new.contains_key(m))
            })
            .expect("parity update dependencies form a cycle");
        let p = pending.remove(ready);
        let chain = layout.chain(layout.chain_of_parity(p).expect("parity owns a chain"));
        let mut acc = SymExpr::zero(nbasis);
        match mode {
            WriteMode::Rmw => {
                acc.xor_assign(&var(p));
                for m in &chain.members {
                    if let Some(newer) = new.get(m) {
                        acc.xor_assign(&var(*m));
                        acc.xor_assign(newer);
                    }
                }
            }
            WriteMode::Reconstruct | WriteMode::FullStripe => {
                for m in &chain.members {
                    match new.get(m) {
                        Some(newer) => acc.xor_assign(newer),
                        None => acc.xor_assign(&var(*m)),
                    }
                }
            }
        }
        new.insert(p, acc.clone());
        out.push((p, acc));
    }
    out
}

/// Proves one coalesced flush: the step list for `ordinals` under `mode`,
/// and its optimized form, both compute every touched parity's expected
/// expression over the double-height grid.
///
/// # Errors
///
/// Returns the first deviating parity with its symbolic equation.
///
/// # Panics
///
/// Panics if `ordinals` is empty or out of range for the layout (caller
/// bug, mirroring `plan_batched_write`).
pub fn prove_batched_flush(
    layout: &Layout,
    ordinals: &[usize],
    mode: WriteMode,
) -> Result<(), CoalesceError> {
    let (rows, cols) = (layout.rows(), layout.cols());
    let plan = plan_batched_write(layout, ordinals);
    let expected = expected_exprs(layout, &plan, mode);
    let steps = batched_write_steps(layout, &plan, mode);
    let raw = XorPlan::from_steps(2 * rows, cols, steps.iter().map(|(t, s)| (*t, s.as_slice())));
    let opt = raw.clone().optimized();

    for (stage, compiled) in [("steps", &raw), ("optimized", &opt)] {
        let mut state = SymState::identity(2 * rows, cols);
        state.execute(compiled).expect("shape fixed by construction");
        for (p, want) in &expected {
            let up_p = Cell::new(p.row + rows, p.col);
            let got = state.expr(up_p);
            if got != want {
                let n = 2 * rows * cols;
                return Err(CoalesceError {
                    mode,
                    ordinals: ordinals.to_vec(),
                    stage,
                    parity: *p,
                    detail: format!(
                        "computed {} but the write algebra requires {}",
                        got.render(cols, n),
                        want.render(cols, n)
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Dirty-ordinal subsets worth proving for a layout: the boundary
/// singletons, a gapped pair (parity sharing across a hole), alternating
/// elements, a half-stripe run, and the full stripe.
fn probe_subsets(layout: &Layout) -> Vec<Vec<usize>> {
    let n = layout.num_data_cells();
    let mut subsets = vec![vec![0], vec![n - 1], (0..n).collect::<Vec<_>>()];
    if n >= 3 {
        subsets.push(vec![0, n - 1]);
        subsets.push((0..n).step_by(2).collect());
        subsets.push((0..n / 2).collect());
    }
    subsets
}

/// Proves every probe subset under both partial-write modes (the
/// full-stripe case rides on `Reconstruct`, which compiles identically).
/// Returns the number of (subset, mode) proofs that ran.
///
/// # Errors
///
/// Returns the first failing proof.
pub fn prove_layout_flushes(layout: &Layout) -> Result<usize, CoalesceError> {
    let mut proofs = 0;
    for subset in probe_subsets(layout) {
        for mode in [WriteMode::Rmw, WriteMode::Reconstruct] {
            prove_batched_flush(layout, &subset, mode)?;
            proofs += 1;
        }
    }
    Ok(proofs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn every_code_proves_coalesced_flushes_at_small_primes() {
        for name in crate::CODE_NAMES {
            for p in [5usize, 7] {
                let code = build(name, p).unwrap_or_else(|e| panic!("{e}"));
                let proofs = prove_layout_flushes(code.layout())
                    .unwrap_or_else(|e| panic!("{name} p={p}: {e}"));
                assert!(proofs >= 6, "{name} p={p} ran only {proofs} proofs");
            }
        }
    }

    #[test]
    fn rmw_singleton_matches_partial_write_semantics() {
        let code = build("hv", 5).unwrap();
        let layout = code.layout();
        // A single dirty element under RMW is exactly the classic
        // read-modify-write path the healthy write planner uses.
        prove_batched_flush(layout, &[3], WriteMode::Rmw).unwrap();
    }

    #[test]
    fn a_sabotaged_expectation_is_rejected() {
        // Guard the prover itself: flipping the mode between compilation
        // and expectation must be caught (RMW and reconstruct programs are
        // different linear maps whenever some member is untouched).
        let code = build("rdp", 5).unwrap();
        let layout = code.layout();
        let plan = plan_batched_write(layout, &[0]);
        let expected = expected_exprs(layout, &plan, WriteMode::Rmw);
        let steps = batched_write_steps(layout, &plan, WriteMode::Reconstruct);
        let raw = XorPlan::from_steps(
            2 * layout.rows(),
            layout.cols(),
            steps.iter().map(|(t, s)| (*t, s.as_slice())),
        );
        let mut state = SymState::identity(2 * layout.rows(), layout.cols());
        state.execute(&raw).unwrap();
        let (p, want) = &expected[0];
        let got = state.expr(Cell::new(p.row + layout.rows(), p.col));
        assert_ne!(got, want, "mode mixup must be distinguishable");
    }
}
