//! Symbolic crash-consistency proof for the pipeline's undo journals.
//!
//! Both pipeline entry points protect multi-element writes with an undo
//! journal: [`IoPipeline::execute`] journals each op's write targets
//! before storing them (`PerOp`), and `execute_batch` gathers the
//! pre-images of **every** op's targets and journals the whole batch as
//! one unit (`WholeBatch`). The chaos harness samples crash points at
//! random; this module replaces sampling with a proof: over the same
//! GF(2) symbolic domain as [`crate::symbolic`] — but with **backend
//! addresses** as the basis instead of stripe cells — it replays the
//! journal from *every* crash prefix of the write sequence and proves
//! the result is exactly the pre-state or the post-state, per stripe
//! (all-old-or-all-new), for all possible disk contents simultaneously.
//!
//! The journal itself is modeled faithfully, not assumed correct: the
//! entries are the addresses the protocol actually gathers, with
//! pre-image *expressions* read at gather time (before any write in
//! `WholeBatch`, at op start in `PerOp`). [`JournalCoverage::DropEntry`]
//! lets tests knock one undo record out and watch the proof reject the
//! exact crash prefixes that depend on it, naming the orphaned address
//! — the machine-checkable version of "the journal covers every write".
//!
//! [`IoPipeline::execute`]: raid_array::pipeline::IoPipeline::execute

use std::collections::BTreeMap;
use std::fmt;

use raid_array::pipeline::{DiskAddr, LoweredOp};
use raid_core::Layout;

use crate::hazard::{model_encode_batch, model_rebuild_batch};
use crate::symbolic::SymExpr;

/// Which journaling protocol to prove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalMode {
    /// `IoPipeline::execute`: one journal per op, rolled back alone.
    PerOp,
    /// `IoPipeline::execute_batch`: the whole batch under one journal,
    /// with all pre-images gathered before the first write.
    WholeBatch,
}

impl fmt::Display for JournalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalMode::PerOp => write!(f, "per-op"),
            JournalMode::WholeBatch => write!(f, "whole-batch"),
        }
    }
}

/// Journal contents relative to the protocol's full coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalCoverage {
    /// The journal the protocol actually writes: every target covered.
    Full,
    /// The journal with write-sequence entry `i` dropped — a deliberately
    /// corrupted journal for negative testing.
    DropEntry(usize),
}

/// A failed crash-consistency proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// A plan could not be executed symbolically (shape mismatch).
    Exec {
        /// The op whose plan failed.
        op: usize,
        /// The underlying failure.
        detail: String,
    },
    /// Replaying the journal from a crash prefix leaves an address
    /// holding neither its pre- nor its post-state value — an undo
    /// record is missing or wrong.
    MissingUndo {
        /// The protocol under proof.
        mode: JournalMode,
        /// Crash position: writes completed before the crash.
        crash_index: usize,
        /// The address the journal fails to restore.
        addr: DiskAddr,
        /// The symbolic equation (got vs required).
        detail: String,
    },
    /// After replay a stripe is torn: some of its addresses are old and
    /// some new.
    TornStripe {
        /// The protocol under proof.
        mode: JournalMode,
        /// Crash position: writes completed before the crash.
        crash_index: usize,
        /// The op (stripe index) left torn.
        op: usize,
        /// An address on the new side of the tear.
        addr: DiskAddr,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Exec { op, detail } => {
                write!(f, "op {op}: symbolic execution failed: {detail}")
            }
            JournalError::MissingUndo { mode, crash_index, addr, detail } => write!(
                f,
                "{mode} journal replay from crash index {crash_index} does not restore \
                 disk {} index {}: {detail}",
                addr.disk, addr.index
            ),
            JournalError::TornStripe { mode, crash_index, op, addr } => write!(
                f,
                "{mode} journal replay from crash index {crash_index} leaves stripe \
                 {op} torn at disk {} index {}",
                addr.disk, addr.index
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// A completed crash-consistency proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalProof {
    /// Crash prefixes proven (0 writes … all writes, per journal unit).
    pub crash_points: usize,
    /// Distinct backend addresses in the batch's footprint.
    pub addresses: usize,
    /// Ops in the batch.
    pub ops: usize,
}

/// The symbolic backend: one [`SymExpr`] per touched address, over a
/// basis where vector `b` is "whatever bytes address `b` held before the
/// batch".
#[derive(Clone, PartialEq, Eq)]
struct SymBackend {
    basis: BTreeMap<(usize, usize), usize>,
    cells: Vec<SymExpr>,
}

impl SymBackend {
    /// The identity pre-state over every address `ops` touches.
    fn pre_state(ops: &[LoweredOp]) -> Self {
        let mut basis = BTreeMap::new();
        for op in ops {
            for (_, a) in
                op.reads.iter().chain(&op.data_writes).chain(&op.parity_writes)
            {
                let next = basis.len();
                basis.entry((a.disk, a.index)).or_insert(next);
            }
        }
        let n = basis.len();
        let cells = (0..n).map(|b| SymExpr::basis(n, b)).collect();
        SymBackend { basis, cells }
    }

    fn nbasis(&self) -> usize {
        self.basis.len()
    }

    fn slot(&self, a: DiskAddr) -> usize {
        self.basis[&(a.disk, a.index)]
    }

    fn get(&self, a: DiskAddr) -> &SymExpr {
        &self.cells[self.slot(a)]
    }

    fn set(&mut self, a: DiskAddr, e: SymExpr) {
        let slot = self.slot(a);
        self.cells[slot] = e;
    }
}

/// Renders an address-basis expression using `a<slot>` symbols (the cell
/// renderer would mislabel address slots as grid cells).
fn render_addr_expr(e: &SymExpr) -> String {
    if e.is_empty() {
        return "0".to_string();
    }
    let parts: Vec<String> = e.iter().map(|b| format!("a{b}")).collect();
    parts.join(" ⊕ ")
}

/// Computes the values `op` writes, as expressions over `reads_from`:
/// scratch cells start zeroed, the op's reads land, the plan runs, and
/// each write target's cell expression is the stored value — exactly
/// `IoPipeline`'s scratch-stripe semantics.
fn op_write_values(
    op_index: usize,
    op: &LoweredOp,
    reads_from: &SymBackend,
) -> Result<Vec<(DiskAddr, SymExpr)>, JournalError> {
    let nbasis = reads_from.nbasis();
    // Scratch grid shape: the plan's, or just enough for the cells named.
    let (rows, cols) = match &op.plan {
        Some(plan) => (plan.rows(), plan.cols()),
        None => {
            let cells = op.reads.iter().chain(&op.data_writes).chain(&op.parity_writes);
            let (mut r, mut c) = (0, 0);
            for (cell, _) in cells {
                r = r.max(cell.row + 1);
                c = c.max(cell.col + 1);
            }
            (r, c)
        }
    };
    let ncells = rows * cols;
    let ntemps = op.plan.as_ref().map_or(0, |p| p.num_temps());
    let mut scratch = vec![SymExpr::zero(nbasis); ncells + ntemps];
    for (cell, a) in &op.reads {
        scratch[cell.index(cols)] = reads_from.get(*a).clone();
    }
    if let Some(plan) = &op.plan {
        if plan.rows() != rows || plan.cols() != cols {
            return Err(JournalError::Exec {
                op: op_index,
                detail: format!(
                    "plan shape {}×{} vs scratch {rows}×{cols}",
                    plan.rows(),
                    plan.cols()
                ),
            });
        }
        for view in plan.step_views() {
            let mut acc = SymExpr::zero(nbasis);
            for &s in view.srcs {
                acc.xor_assign(&scratch[s as usize]);
            }
            scratch[view.dst as usize] = acc;
        }
    }
    Ok(op
        .data_writes
        .iter()
        .chain(&op.parity_writes)
        .map(|(cell, a)| (*a, scratch[cell.index(cols)].clone()))
        .collect())
}

/// One modeled undo record: restore `addr` to `pre`.
struct UndoRecord {
    addr: DiskAddr,
    pre: SymExpr,
    /// Position in the write sequence (for [`JournalCoverage::DropEntry`]).
    write_index: usize,
}

/// Applies a crash prefix and replays the journal, then checks the
/// result equals `want` at every address. `crash_index` counts writes
/// completed; `base` is the state the unit started from.
fn check_crash_prefix(
    mode: JournalMode,
    base: &SymBackend,
    writes: &[(DiskAddr, SymExpr)],
    journal: &[UndoRecord],
    crash_index: usize,
    global_offset: usize,
    want: &SymBackend,
) -> Result<(), JournalError> {
    let mut state = base.clone();
    for (a, v) in &writes[..crash_index] {
        state.set(*a, v.clone());
    }
    // Rollback replays the stored pre-images in reverse write order,
    // exactly like `IoPipeline`'s in-flight rollback and the
    // `FileBackend` reopen recovery.
    for rec in journal.iter().rev() {
        state.set(rec.addr, rec.pre.clone());
    }
    if state == *want {
        return Ok(());
    }
    let (&(disk, index), _) = want
        .basis
        .iter()
        .find(|&(_, &slot)| state.cells[slot] != want.cells[slot])
        .expect("states differ at some address");
    let addr = DiskAddr { disk, index };
    Err(JournalError::MissingUndo {
        mode,
        crash_index: global_offset + crash_index,
        addr,
        detail: format!(
            "replay leaves {} but rollback requires {}",
            render_addr_expr(state.get(addr)),
            render_addr_expr(want.get(addr)),
        ),
    })
}

/// Proves all-crash-prefix atomicity of `ops` under `mode`, with the
/// journal contents given by `coverage`.
///
/// For `WholeBatch`: every crash prefix of the batch-wide write sequence
/// must replay to exactly the batch pre-state (all-old), and the
/// committed batch is exactly the post-state (all-new). For `PerOp`:
/// every crash prefix of every op's write sequence must replay to the
/// state with all earlier ops applied and this op absent — and each
/// stripe must come out all-old or all-new, never torn.
///
/// # Errors
///
/// The first [`JournalError`], naming the crash index and the address
/// the journal fails to cover.
pub fn prove_batch_atomicity(
    ops: &[LoweredOp],
    mode: JournalMode,
    coverage: JournalCoverage,
) -> Result<JournalProof, JournalError> {
    let pre = SymBackend::pre_state(ops);
    let keep = |rec: &UndoRecord| match coverage {
        JournalCoverage::Full => true,
        JournalCoverage::DropEntry(i) => rec.write_index != i,
    };
    let mut crash_points = 0;

    match mode {
        JournalMode::WholeBatch => {
            // Phase separation: every pre-image is gathered (and the
            // journal made durable) before the first write, so each undo
            // record holds the batch pre-state value even when two ops
            // write the same address.
            let mut writes: Vec<(DiskAddr, SymExpr)> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                writes.extend(op_write_values(i, op, &pre)?);
            }
            let journal: Vec<UndoRecord> = writes
                .iter()
                .enumerate()
                .map(|(j, (a, _))| UndoRecord {
                    addr: *a,
                    pre: pre.get(*a).clone(),
                    write_index: j,
                })
                .filter(keep)
                .collect();
            for k in 0..=writes.len() {
                check_crash_prefix(mode, &pre, &writes, &journal, k, 0, &pre)?;
                crash_points += 1;
            }
            // Past the commit point the journal is discarded: the state
            // is the full post-state, all-new by construction.
        }
        JournalMode::PerOp => {
            // Post-state per address, for the all-new side of the check.
            let mut post = pre.clone();
            let mut all_writes: Vec<Vec<(DiskAddr, SymExpr)>> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                let w = op_write_values(i, op, &post)?;
                for (a, v) in &w {
                    post.set(*a, v.clone());
                }
                all_writes.push(w);
            }

            let mut state = pre.clone();
            let mut global_offset = 0;
            for (i, writes) in all_writes.iter().enumerate() {
                let journal: Vec<UndoRecord> = writes
                    .iter()
                    .enumerate()
                    .map(|(j, (a, _))| UndoRecord {
                        addr: *a,
                        pre: state.get(*a).clone(),
                        write_index: global_offset + j,
                    })
                    .filter(keep)
                    .collect();
                for k in 0..=writes.len() {
                    // Rolling back op i must restore the state with ops
                    // 0..i committed and op i absent…
                    check_crash_prefix(
                        mode,
                        &state,
                        writes,
                        &journal,
                        k,
                        global_offset,
                        &state,
                    )?;
                    crash_points += 1;
                }
                // …and that state is all-old-or-all-new per stripe:
                // every earlier op's targets hold post values, every
                // later op's (and op i's own) hold pre values.
                for (j, w) in all_writes.iter().enumerate() {
                    let uniform = if j < i { &post } else { &pre };
                    for (a, _) in w {
                        if state.get(*a) != uniform.get(*a) {
                            return Err(JournalError::TornStripe {
                                mode,
                                crash_index: global_offset,
                                op: j,
                                addr: *a,
                            });
                        }
                    }
                }
                for (a, v) in writes {
                    state.set(*a, v.clone());
                }
                global_offset += writes.len();
            }
        }
    }

    Ok(JournalProof { crash_points, addresses: pre.nbasis(), ops: ops.len() })
}

/// Summary of one layout's journal proofs across modeled batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalSummary {
    /// Batches proven ((encode + rebuilds) × both modes).
    pub batches: usize,
    /// Total crash prefixes proven across all batches.
    pub crash_points: usize,
}

/// Stripes per modeled batch: small, but enough that per-op and
/// whole-batch crash windows interleave multiple stripes.
const MODEL_STRIPES: usize = 3;

/// Proves all-crash-prefix atomicity, in both journal modes, for every
/// batched path the volume lowers: `encode_all` and `rebuild_all` under
/// one- and two-column loss.
///
/// # Errors
///
/// The first [`JournalError`] across any modeled batch.
pub fn prove_layout_journal(layout: &Layout) -> Result<JournalSummary, JournalError> {
    let last = layout.cols() - 1;
    let batches = [
        model_encode_batch(layout, MODEL_STRIPES),
        model_rebuild_batch(layout, MODEL_STRIPES, &[0]),
        model_rebuild_batch(layout, MODEL_STRIPES, &[0, last]),
    ];
    let mut summary = JournalSummary { batches: 0, crash_points: 0 };
    for ops in &batches {
        for mode in [JournalMode::WholeBatch, JournalMode::PerOp] {
            let proof = prove_batch_atomicity(ops, mode, JournalCoverage::Full)?;
            summary.batches += 1;
            summary.crash_points += proof.crash_points;
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn every_code_proves_atomicity_at_small_primes() {
        for name in crate::CODE_NAMES {
            for p in [5usize, 7] {
                let code = build(name, p).unwrap_or_else(|e| panic!("{e}"));
                let s = prove_layout_journal(code.layout())
                    .unwrap_or_else(|e| panic!("{name} p={p}: {e}"));
                assert_eq!(s.batches, 6);
                assert!(s.crash_points > 0);
            }
        }
    }

    #[test]
    fn dropped_undo_record_names_the_crash_and_address() {
        let code = build("hv", 5).unwrap();
        let ops = model_encode_batch(code.layout(), MODEL_STRIPES);
        // Drop the undo record of write 3: every crash prefix that has
        // already stored write 3 (crash index >= 4) replays to a state
        // still holding the new value at its address.
        let err =
            prove_batch_atomicity(&ops, JournalMode::WholeBatch, JournalCoverage::DropEntry(3))
                .unwrap_err();
        let victim = ops[0].parity_writes[3].1; // writes 0..: op 0's parities first
        match &err {
            JournalError::MissingUndo { crash_index, addr, .. } => {
                assert_eq!(*crash_index, 4, "first prefix containing write 3");
                assert_eq!((addr.disk, addr.index), (victim.disk, victim.index));
            }
            other => panic!("expected MissingUndo, got {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("crash index 4"), "{msg}");
        assert!(msg.contains(&format!("disk {}", victim.disk)), "{msg}");
    }

    #[test]
    fn dropped_undo_record_is_caught_per_op_too() {
        let code = build("hv", 5).unwrap();
        let ops = model_encode_batch(code.layout(), MODEL_STRIPES);
        let err = prove_batch_atomicity(&ops, JournalMode::PerOp, JournalCoverage::DropEntry(0))
            .unwrap_err();
        assert!(
            matches!(err, JournalError::MissingUndo { crash_index: 1, .. }),
            "got {err}"
        );
    }

    #[test]
    fn rebuild_batches_prove_in_both_modes() {
        let code = build("rdp", 5).unwrap();
        let layout = code.layout();
        let ops = model_rebuild_batch(layout, MODEL_STRIPES, &[0, 1]);
        for mode in [JournalMode::WholeBatch, JournalMode::PerOp] {
            let proof = prove_batch_atomicity(&ops, mode, JournalCoverage::Full)
                .unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(proof.ops, MODEL_STRIPES);
        }
    }

    #[test]
    fn crash_points_cover_every_write_prefix() {
        let code = build("hv", 5).unwrap();
        let ops = model_encode_batch(code.layout(), 2);
        let writes: usize =
            ops.iter().map(|o| o.data_writes.len() + o.parity_writes.len()).sum();
        let whole =
            prove_batch_atomicity(&ops, JournalMode::WholeBatch, JournalCoverage::Full).unwrap();
        assert_eq!(whole.crash_points, writes + 1);
        let per_op =
            prove_batch_atomicity(&ops, JournalMode::PerOp, JournalCoverage::Full).unwrap();
        assert_eq!(per_op.crash_points, writes + ops.len());
    }
}
