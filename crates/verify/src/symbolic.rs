//! The symbolic GF(2) domain the static analyzer interprets plans over.
//!
//! Every element buffer of a stripe is abstracted to a **GF(2) linear
//! combination of basis vectors**: basis vector `i` stands for "whatever
//! bytes cell `i` held before the plan ran" (plus, for erasure analysis,
//! extra *garbage* vectors standing for the unknown content of lost
//! cells). A `dst = XOR(srcs)` plan op then becomes a row-XOR of symbol
//! sets — exact, byte-width-independent semantics, because XOR on byte
//! buffers is XOR on each bit position independently.
//!
//! Running a whole [`XorPlan`] over a [`SymState`] therefore computes, for
//! every cell, *which initial cell contents its final value is the XOR
//! of* — for **all possible data simultaneously**. Equality of two
//! [`SymExpr`]s is equality of the plan's effect on every input, which is
//! what lets [`crate::plan_check`] *prove* (not test) encode and decode
//! plans correct.

use std::fmt;

use raid_core::bitset::BitSet;
use raid_core::{Cell, XorPlan};

/// A GF(2) linear combination of basis vectors, stored as the set of basis
/// indices with coefficient 1 (XOR-ing a vector in twice cancels it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymExpr {
    bits: BitSet,
}

impl SymExpr {
    /// The zero expression over a basis of `nbasis` vectors.
    pub fn zero(nbasis: usize) -> Self {
        SymExpr { bits: BitSet::new(nbasis) }
    }

    /// The single basis vector `i` over a basis of `nbasis` vectors.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nbasis`.
    pub fn basis(nbasis: usize, i: usize) -> Self {
        let mut bits = BitSet::new(nbasis);
        bits.insert(i);
        SymExpr { bits }
    }

    /// `self ^= other` — GF(2) addition (symmetric difference of the
    /// index sets).
    ///
    /// # Panics
    ///
    /// Panics if the two expressions are over different basis sizes.
    pub fn xor_assign(&mut self, other: &SymExpr) {
        self.bits.xor_with(&other.bits);
    }

    /// True if basis vector `i` appears with coefficient 1.
    pub fn contains(&self, i: usize) -> bool {
        self.bits.contains(i)
    }

    /// Basis indices with coefficient 1, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter()
    }

    /// Number of basis vectors in the combination.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True for the zero expression.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// True if any index at or above `first_garbage` appears — i.e. the
    /// expression depends on the unknown content of an erased cell.
    pub fn has_garbage(&self, first_garbage: usize) -> bool {
        self.bits.iter().any(|i| i >= first_garbage)
    }

    /// Renders the combination in the paper's cell notation, e.g.
    /// `E[0,1] ⊕ E[2,3]`. Indices below `ncells` are cells of a
    /// `cols`-wide grid; indices at or above it print as `⊥k` — the
    /// garbage vector of erased cell `k`. The zero expression prints `0`.
    pub fn render(&self, cols: usize, ncells: usize) -> String {
        if self.is_empty() {
            return "0".to_string();
        }
        let mut parts = Vec::with_capacity(self.len());
        for i in self.bits.iter() {
            if i < ncells {
                parts.push(Cell::from_index(i, cols).to_string());
            } else {
                parts.push(format!("⊥{}", i - ncells));
            }
        }
        parts.join(" ⊕ ")
    }
}

/// Errors from symbolic plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymExecError {
    /// The plan's grid shape differs from the state's.
    ShapeMismatch {
        /// Plan shape `(rows, cols)`.
        plan: (usize, usize),
        /// State shape `(rows, cols)`.
        state: (usize, usize),
    },
}

impl fmt::Display for SymExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExecError::ShapeMismatch { plan, state } => write!(
                f,
                "plan addresses a {}×{} grid but the symbolic state is {}×{}",
                plan.0, plan.1, state.0, state.1
            ),
        }
    }
}

impl std::error::Error for SymExecError {}

/// A symbolic stripe: one [`SymExpr`] per cell of a `rows × cols` grid,
/// plus — while executing an optimized plan — one slot per scratch temp
/// in the plan's arena (indices `rows·cols ..` of `cells`, zeroed at the
/// start of every execution, mirroring the interpreter's per-call temp
/// buffers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymState {
    rows: usize,
    cols: usize,
    nbasis: usize,
    cells: Vec<SymExpr>,
}

impl SymState {
    /// The identity state: cell `i` holds exactly basis vector `i`. This
    /// models "the stripe as handed to the plan", with no assumptions
    /// about its content.
    pub fn identity(rows: usize, cols: usize) -> Self {
        Self::identity_with_extra(rows, cols, 0)
    }

    /// [`SymState::identity`] over a basis extended by `extra` garbage
    /// vectors (indices `rows·cols ..`), for erasure modelling.
    pub fn identity_with_extra(rows: usize, cols: usize, extra: usize) -> Self {
        let n = rows * cols;
        let nbasis = n + extra;
        let cells = (0..n).map(|i| SymExpr::basis(nbasis, i)).collect();
        SymState { rows, cols, nbasis, cells }
    }

    /// Rows of the grid.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the grid.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total basis size (cells + garbage vectors).
    pub fn nbasis(&self) -> usize {
        self.nbasis
    }

    /// The symbolic value of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn expr(&self, cell: Cell) -> &SymExpr {
        &self.cells[cell.index(self.cols)]
    }

    /// Overwrites the symbolic value of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds or the expression's basis size
    /// differs from the state's.
    pub fn set_expr(&mut self, cell: Cell, expr: SymExpr) {
        assert_eq!(expr.bits.capacity(), self.nbasis, "symbolic basis size mismatch");
        self.cells[cell.index(self.cols)] = expr;
    }

    /// Applies one `target = XOR(sources)` op with the interpreter's
    /// overwrite semantics: the target's previous value does **not**
    /// contribute (mirror of `Stripe::apply_indexed_xor`).
    ///
    /// # Panics
    ///
    /// Panics if any cell is out of bounds.
    pub fn apply(&mut self, target: Cell, sources: &[Cell]) {
        let mut acc = SymExpr::zero(self.nbasis);
        for &s in sources {
            acc.xor_assign(&self.cells[s.index(self.cols)]);
        }
        self.cells[target.index(self.cols)] = acc;
    }

    /// Runs a whole compiled plan symbolically, op by op, via the plan's
    /// zero-copy [`raid_core::xplan::StepView`]s. Scratch temps in the
    /// plan's arena get state slots beyond the grid, zeroed on entry
    /// (the interpreter allocates fresh temp buffers per call).
    ///
    /// # Errors
    ///
    /// Returns [`SymExecError::ShapeMismatch`] if the plan was compiled
    /// for a different grid shape.
    pub fn execute(&mut self, plan: &XorPlan) -> Result<(), SymExecError> {
        if plan.rows() != self.rows || plan.cols() != self.cols {
            return Err(SymExecError::ShapeMismatch {
                plan: (plan.rows(), plan.cols()),
                state: (self.rows, self.cols),
            });
        }
        let ncells = self.rows * self.cols;
        let nslots = ncells + plan.num_temps();
        if self.cells.len() < nslots {
            self.cells.resize(nslots, SymExpr::zero(self.nbasis));
        }
        for t in ncells..nslots {
            self.cells[t] = SymExpr::zero(self.nbasis);
        }
        for view in plan.step_views() {
            let mut acc = SymExpr::zero(self.nbasis);
            for &s in view.srcs {
                acc.xor_assign(&self.cells[s as usize]);
            }
            self.cells[view.dst as usize] = acc;
        }
        Ok(())
    }

    /// Predicts the concrete bytes of `cell` after the plan this state was
    /// built from runs over `initial`: the XOR of the initial elements of
    /// every basis cell in `cell`'s expression. Garbage vectors (erased
    /// content) contribute nothing — callers model erased cells as zeroed,
    /// exactly as `Stripe::erase` does.
    ///
    /// This is the bridge the property tests use to pin the symbolic
    /// semantics against the real interpreter byte-for-byte.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or `cell` is out of bounds.
    pub fn predict_bytes(&self, cell: Cell, initial: &raid_core::Stripe) -> Vec<u8> {
        assert_eq!(initial.rows(), self.rows, "symbolic/stripe row mismatch");
        assert_eq!(initial.cols(), self.cols, "symbolic/stripe col mismatch");
        let mut out = vec![0u8; initial.element_size()];
        for i in self.expr(cell).iter() {
            if i < self.rows * self.cols {
                raid_math::xor::xor_into(&mut out, initial.element(Cell::from_index(i, self.cols)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_assign_cancels_pairs() {
        let mut a = SymExpr::basis(4, 0);
        let b = SymExpr::basis(4, 0);
        a.xor_assign(&b);
        assert!(a.is_empty());
        assert_eq!(a.render(2, 4), "0");
    }

    #[test]
    fn apply_overwrites_target() {
        // 1×3 grid: target (0,2) = (0,0) ^ (0,1); its old value vanishes.
        let mut s = SymState::identity(1, 3);
        s.apply(Cell::new(0, 2), &[Cell::new(0, 0), Cell::new(0, 1)]);
        let e = s.expr(Cell::new(0, 2));
        assert_eq!(e.len(), 2);
        assert!(e.contains(0) && e.contains(1) && !e.contains(2));
        assert_eq!(e.render(3, 3), "E[0,0] ⊕ E[0,1]");
    }

    #[test]
    fn execute_matches_plan_semantics() {
        // q = d0 ^ p with p = d0 ^ d1 collapses to q = d1.
        let c = Cell::new;
        let plan = XorPlan::from_steps(
            1,
            4,
            [
                (c(0, 2), [c(0, 0), c(0, 1)].as_slice()),
                (c(0, 3), [c(0, 0), c(0, 2)].as_slice()),
            ],
        );
        let mut s = SymState::identity(1, 4);
        s.execute(&plan).unwrap();
        assert_eq!(*s.expr(c(0, 3)), SymExpr::basis(4, 1));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let plan = XorPlan::from_steps(2, 2, []);
        let mut s = SymState::identity(1, 2);
        assert!(matches!(s.execute(&plan), Err(SymExecError::ShapeMismatch { .. })));
    }

    #[test]
    fn garbage_vectors_render_and_detect() {
        let mut s = SymState::identity_with_extra(1, 2, 1);
        s.set_expr(Cell::new(0, 0), SymExpr::basis(3, 2));
        assert!(s.expr(Cell::new(0, 0)).has_garbage(2));
        assert_eq!(s.expr(Cell::new(0, 0)).render(2, 2), "⊥0");
        assert!(!s.expr(Cell::new(0, 1)).has_garbage(2));
    }

    #[test]
    fn predict_bytes_xors_initial_elements() {
        let c = Cell::new;
        let plan = XorPlan::from_steps(1, 3, [(c(0, 2), [c(0, 0), c(0, 1)].as_slice())]);
        let mut sym = SymState::identity(1, 3);
        sym.execute(&plan).unwrap();

        let mut initial = raid_core::Stripe::zeroed(1, 3, 4);
        initial.set_element(c(0, 0), &[1, 2, 3, 4]);
        initial.set_element(c(0, 1), &[4, 4, 4, 4]);
        let mut actual = initial.clone();
        plan.execute(&mut actual);
        for col in 0..3 {
            assert_eq!(sym.predict_bytes(c(0, col), &initial), actual.element(c(0, col)));
        }
    }
}
