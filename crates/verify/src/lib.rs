//! `raid-verify` — a symbolic GF(2) static analyzer for the workspace's
//! two intermediate representations.
//!
//! Everything this workspace executes against disk buffers is first
//! compiled to one of two IRs: [`raid_core::XorPlan`] (flat
//! `dst = XOR(srcs)` programs) and `raid_array`'s `LoweredOp` (reads +
//! plan + writes). Both are small enough to *prove* correct rather than
//! merely test:
//!
//! * [`symbolic`] — the abstract domain: cells as GF(2) basis vectors,
//!   plan ops as row-XORs;
//! * [`plan_check`] — encode/decode plan provers and the exhaustive
//!   per-`p` MDS proof ([`plan_check::prove_mds`]);
//! * [`report`] — structural metrics checked against the paper's
//!   closed-form table values, rendered as JSON;
//! * [`hazard`] — the partition-hazard auditor: cross-partition
//!   footprint disjointness for every batched path the volume lowers;
//! * [`journal`] — the crash-consistency proof: every crash prefix of
//!   both undo-journal protocols replays to all-old-or-all-new;
//! * [`schedules`] — exhaustive small-model checking of the executor's
//!   concurrent protocols over the `interleave` shim;
//! * the `LoweredOp` audit itself lives in `raid_array::audit` (this
//!   crate sits above `raid-array` in the dependency graph, so the
//!   pipeline can also self-audit under `debug_assertions`); it is
//!   re-exported here as [`audit`].
//!
//! The front doors are [`check_code`] / [`check_all`], used by
//! `hvraid lint`, `make verify`, and the tier-1 test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalesce;
pub mod hazard;
pub mod journal;
pub mod plan_check;
pub mod report;
pub mod schedules;
pub mod symbolic;

pub use raid_array::audit;

use std::sync::Arc;

use raid_core::ArrayCode;

use plan_check::{prove_equivalent, prove_mds, verify_encode, PlanError};
use raid_core::XorPlan;
use report::{diff_expectation, paper_expectation, CodeMetrics, CodeReport};

/// Codes the analyzer (and the CLI, which delegates here) knows.
pub const CODE_NAMES: [&str; 8] =
    ["hv", "rdp", "evenodd", "xcode", "hcode", "hdp", "pcode", "liberation"];

/// The primes every code is verified at by [`check_all`]; matches the
/// paper's evaluation range.
pub const DEFAULT_PRIMES: [usize; 5] = [5, 7, 11, 13, 17];

/// Builds a registered code by name.
///
/// # Errors
///
/// Returns a human-readable message for unknown names or invalid primes.
pub fn build(name: &str, p: usize) -> Result<Arc<dyn ArrayCode>, String> {
    use hv_code::HvCode;
    use raid_baselines::{EvenOddCode, HCode, HdpCode, LiberationCode, PCode, RdpCode, XCode};
    let err = |e: &dyn std::fmt::Display| format!("cannot build {name} at p={p}: {e}");
    match name {
        "hv" => HvCode::new(p).map(|c| Arc::new(c) as Arc<dyn ArrayCode>).map_err(|e| err(&e)),
        "rdp" => RdpCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "evenodd" => EvenOddCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "xcode" => XCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "hcode" => HCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "hdp" => HdpCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "pcode" => PCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e)),
        "liberation" => {
            LiberationCode::new(p).map(|c| Arc::new(c) as _).map_err(|e| err(&e))
        }
        other => Err(format!(
            "unknown code '{other}' (expected one of {})",
            CODE_NAMES.join(", ")
        )),
    }
}

/// A verification failure for one code at one prime.
#[derive(Debug, Clone)]
pub enum CheckError {
    /// The code could not be constructed at this prime.
    Build(String),
    /// A plan failed symbolic verification.
    Plan(PlanError),
    /// A coalesced cache-flush program failed symbolic verification.
    Coalesce(coalesce::CoalesceError),
    /// A partitioned batch has a cross-partition footprint hazard.
    Hazard(hazard::HazardError),
    /// An undo-journal crash prefix fails to restore all-old-or-all-new.
    Journal(journal::JournalError),
    /// The layout deviates from the paper's published table values.
    PaperMismatch(Vec<String>),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Build(msg) => write!(f, "{msg}"),
            CheckError::Plan(e) => write!(f, "{e}"),
            CheckError::Coalesce(e) => write!(f, "{e}"),
            CheckError::Hazard(e) => write!(f, "{e}"),
            CheckError::Journal(e) => write!(f, "{e}"),
            CheckError::PaperMismatch(diffs) => {
                write!(f, "layout deviates from the paper: {}", diffs.join("; "))
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Statically verifies one code at one prime: encode-plan proof, proof
/// that the cached (optimizer-rewritten) encode plan is GF(2)-equivalent
/// to the chain specification and never costs more reads than the
/// cascaded chain walk, exhaustive single/double-erasure MDS proof (which
/// itself re-proves every optimized decode plan), coalesced-flush proof,
/// partition-hazard audit and all-crash-prefix journal proof over the
/// volume's modeled batches, and paper-table check.
///
/// # Errors
///
/// Returns the first [`CheckError`]; plan failures carry the offending
/// symbolic equation in their `Display` form.
pub fn check_code(name: &str, p: usize) -> Result<CodeReport, CheckError> {
    let code = build(name, p).map_err(CheckError::Build)?;
    let layout = code.layout();

    let cached = layout.encode_plan();
    let encode = verify_encode(layout, cached).map_err(CheckError::Plan)?;
    // The optimized cached plan must be provably identical to both
    // specification forms, and must never read more than the cascaded
    // chain walk (the pre-optimizer plan) would.
    let cascaded = XorPlan::compile_encode(layout);
    let expanded = XorPlan::compile_encode_expanded(layout);
    prove_equivalent(&cascaded, cached).map_err(CheckError::Plan)?;
    prove_equivalent(&expanded, cached).map_err(CheckError::Plan)?;
    if cached.num_source_reads() > cascaded.num_source_reads() {
        return Err(CheckError::Plan(PlanError::TempHazard {
            detail: format!(
                "optimizer regressed encode reads: cascaded {} → cached {}",
                cascaded.num_source_reads(),
                cached.num_source_reads()
            ),
        }));
    }
    let mds = prove_mds(layout).map_err(CheckError::Plan)?;
    // The write-back cache's coalesced flush programs (both partial-write
    // modes, across representative dirty subsets) must compute exactly
    // the parity algebra over the double-height old/new grid.
    coalesce::prove_layout_flushes(layout).map_err(CheckError::Coalesce)?;
    // Every batched path the volume lowers must have partition-disjoint
    // backend footprints (no two workers can touch the same bytes, and
    // batched phase separation never serves a read stale) …
    let hazards = hazard::prove_layout_hazard_free(layout).map_err(CheckError::Hazard)?;
    // … and replaying the undo journal from every crash prefix of those
    // batches must restore exactly all-old or all-new, per stripe, in
    // both journal protocols.
    let journal = journal::prove_layout_journal(layout).map_err(CheckError::Journal)?;

    let metrics = CodeMetrics::measure(layout);
    let paper_diffs = match paper_expectation(name, p) {
        Some(e) => diff_expectation(&metrics, &e),
        None => Vec::new(),
    };
    if !paper_diffs.is_empty() {
        return Err(CheckError::PaperMismatch(paper_diffs));
    }

    Ok(CodeReport {
        code: name.to_string(),
        p,
        metrics,
        encode_ops: encode.ops,
        encode_source_reads: encode.source_reads,
        encode_reads_spec: expanded.num_source_reads(),
        encode_reads_cascaded: cascaded.num_source_reads(),
        encode_temps: cached.num_temps(),
        mds_singles: mds.singles,
        mds_pairs: mds.pairs,
        hazard_batches: hazards.batches,
        journal_crash_points: journal.crash_points,
        paper_diffs,
    })
}

/// Runs [`check_code`] over every registered code at every default prime.
/// Returns all reports on success.
///
/// # Errors
///
/// Returns `(code, p, error)` for the first failing combination.
pub fn check_all() -> Result<Vec<CodeReport>, (String, usize, CheckError)> {
    let mut reports = Vec::with_capacity(CODE_NAMES.len() * DEFAULT_PRIMES.len());
    for name in CODE_NAMES {
        for p in DEFAULT_PRIMES {
            match check_code(name, p) {
                Ok(r) => reports.push(r),
                Err(e) => return Err((name.to_string(), p, e)),
            }
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hv_checks_clean_at_small_primes() {
        for p in [5usize, 7] {
            let r = check_code("hv", p).unwrap_or_else(|e| panic!("hv p={p}: {e}"));
            assert_eq!(r.mds_singles, p - 1);
            assert_eq!(r.mds_pairs, (p - 1) * (p - 2) / 2);
            assert!(r.paper_diffs.is_empty());
        }
    }

    #[test]
    fn every_registered_name_builds_at_default_primes() {
        for name in CODE_NAMES {
            for p in DEFAULT_PRIMES {
                build(name, p).unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }

    #[test]
    fn unknown_code_is_a_build_error() {
        assert!(matches!(check_code("nope", 5), Err(CheckError::Build(_))));
    }
}
