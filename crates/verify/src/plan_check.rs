//! Static verification of compiled [`XorPlan`]s against their [`Layout`].
//!
//! Three provers, all running over the symbolic domain of
//! [`crate::symbolic`] — no data buffers are ever touched:
//!
//! * [`verify_encode`] — an encode plan must write **every** parity cell
//!   exactly once, read no parity before the plan produces it, contain no
//!   dead, duplicate or self-referential op, and leave each parity equal
//!   to its chain equation expanded over data cells (HV Code's Eq. 1/2,
//!   RDP's row+diagonal equations, … — whatever the layout defines);
//! * [`verify_decode`] — a decode plan for an erasure pattern must
//!   overwrite only erased cells and end with every erased cell equal to
//!   the value the encode equations imply, with **no** residue of the
//!   erased (garbage) content;
//! * [`prove_mds`] — enumerates every single- and double-disk erasure,
//!   plans its decode, and [`verify_decode`]s the compiled plan. Passing
//!   is a per-`p` exhaustive proof of the MDS property for the plans the
//!   compiler actually emits.
//!
//! Failures carry the offending symbolic equation, rendered in the
//! paper's `E[i,j]` notation, not just a boolean.

use std::fmt;

use raid_core::bitset::BitSet;
use raid_core::xplan::{PlanCell, StepView};
use raid_core::{Cell, Layout, XorPlan};

use crate::symbolic::{SymExpr, SymState};

/// A static-verification failure, with enough context to print the
/// offending symbolic equation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The plan's grid shape differs from the layout's.
    ShapeMismatch {
        /// Plan shape `(rows, cols)`.
        plan: (usize, usize),
        /// Layout shape `(rows, cols)`.
        layout: (usize, usize),
    },
    /// An encode op targets a cell the layout does not mark as parity.
    TargetNotParity {
        /// The offending target.
        target: Cell,
    },
    /// Two ops write the same cell without a consuming read in between —
    /// the first op is dead.
    DuplicateTarget {
        /// The doubly-written cell.
        target: Cell,
    },
    /// An op lists its own target as a source (reads the half-written
    /// destination).
    SelfRead {
        /// The offending target.
        target: Cell,
    },
    /// An op lists the same source twice; over GF(2) the pair cancels, so
    /// both reads are dead work and almost certainly a compiler bug.
    DuplicateSource {
        /// The op's target.
        target: Cell,
        /// The twice-listed source.
        source: Cell,
    },
    /// An encode op reads a parity cell before the plan has produced it —
    /// a read-before-write hazard on stale parity.
    StaleParityRead {
        /// The op's target.
        target: Cell,
        /// The parity read too early.
        source: Cell,
    },
    /// The plan never writes a parity cell the layout defines.
    MissingParity {
        /// The unwritten parity.
        parity: Cell,
    },
    /// A decode op overwrites a cell that was never erased.
    SurvivorClobbered {
        /// The surviving cell the plan writes.
        target: Cell,
    },
    /// A cell's final symbolic value differs from what the layout
    /// requires. The rendered equations name the basis cells.
    WrongEquation {
        /// The cell whose value is wrong.
        cell: Cell,
        /// The plan's computed expansion, rendered.
        got: String,
        /// The layout-required expansion, rendered.
        want: String,
    },
    /// A reconstructed cell still depends on erased (unknown) content.
    GarbageResidue {
        /// The cell whose reconstruction is contaminated.
        cell: Cell,
        /// The computed expansion, rendered (garbage prints as `⊥k`).
        got: String,
    },
    /// The layout's parity chains depend on each other cyclically, so no
    /// encode order exists.
    CyclicParityDependency,
    /// `plan_decode` found no reconstruction for an erasure pattern — the
    /// layout is not MDS.
    NotDecodable {
        /// The erased disks.
        disks: Vec<usize>,
    },
    /// Context wrapper: which erasure pattern a decode failure belongs to.
    Pattern {
        /// The erased disks.
        disks: Vec<usize>,
        /// The underlying failure.
        inner: Box<PlanError>,
    },
    /// A hazard involving a scratch temp of an optimized plan (written
    /// twice, read before written, self-read, duplicate listing).
    TempHazard {
        /// Rendered description of the hazard, naming the op and temp.
        detail: String,
    },
    /// An optimized plan writes a grid cell its original never produced.
    ExtraTarget {
        /// The extra target cell.
        cell: Cell,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ShapeMismatch { plan, layout } => write!(
                f,
                "plan grid {}×{} does not match layout {}×{}",
                plan.0, plan.1, layout.0, layout.1
            ),
            PlanError::TargetNotParity { target } => {
                write!(f, "encode op writes {target}, which is not a parity cell")
            }
            PlanError::DuplicateTarget { target } => {
                write!(f, "{target} is written twice; the first op is dead")
            }
            PlanError::SelfRead { target } => {
                write!(f, "op for {target} reads its own target")
            }
            PlanError::DuplicateSource { target, source } => write!(
                f,
                "op for {target} lists {source} twice; the GF(2) pair cancels to nothing"
            ),
            PlanError::StaleParityRead { target, source } => write!(
                f,
                "op for {target} reads parity {source} before the plan writes it"
            ),
            PlanError::MissingParity { parity } => {
                write!(f, "plan never writes parity {parity}")
            }
            PlanError::SurvivorClobbered { target } => {
                write!(f, "decode plan overwrites surviving cell {target}")
            }
            PlanError::WrongEquation { cell, got, want } => write!(
                f,
                "{cell}: plan computes {cell} = {got}, but the layout requires {cell} = {want}"
            ),
            PlanError::GarbageResidue { cell, got } => write!(
                f,
                "{cell}: reconstruction still depends on erased content: {cell} = {got}"
            ),
            PlanError::CyclicParityDependency => {
                write!(f, "parity chains depend on each other cyclically")
            }
            PlanError::NotDecodable { disks } => write!(
                f,
                "erasure of disk(s) {disks:?} has no decode plan — the layout is not MDS"
            ),
            PlanError::Pattern { disks, inner } => {
                write!(f, "erasure of disk(s) {disks:?}: {inner}")
            }
            PlanError::TempHazard { detail } => write!(f, "{detail}"),
            PlanError::ExtraTarget { cell } => {
                write!(f, "optimized plan writes {cell}, which the original never produced")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// What [`verify_encode`] proved, with the plan's cost counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeProof {
    /// Number of `dst = XOR(srcs)` ops in the plan.
    pub ops: usize,
    /// Total element reads the plan performs.
    pub source_reads: usize,
}

/// What [`prove_mds`] proved: how many erasure patterns were verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdsProof {
    /// Single-disk patterns verified (= number of disks).
    pub singles: usize,
    /// Double-disk patterns verified (= `n·(n−1)/2`).
    pub pairs: usize,
}

/// The correct post-encode expansion of every cell over the **initial
/// data-cell basis**: data cells map to themselves, parity cells to the
/// XOR of data cells their chain equation implies (cascades through
/// parity-of-parity chains, as in RDP and HDP). Basis indices are linear
/// cell indices over a basis of `layout.num_cells() + extra` vectors.
///
/// # Errors
///
/// Returns [`PlanError::CyclicParityDependency`] if the chains admit no
/// evaluation order.
pub fn expected_encoding(layout: &Layout, extra: usize) -> Result<Vec<SymExpr>, PlanError> {
    let cols = layout.cols();
    let ncells = layout.num_cells();
    let nbasis = ncells + extra;
    let mut expected: Vec<Option<SymExpr>> = (0..ncells)
        .map(|i| {
            layout
                .is_data(Cell::from_index(i, cols))
                .then(|| SymExpr::basis(nbasis, i))
        })
        .collect();

    // Fixpoint: resolve any chain whose members are all resolved. Each
    // round resolves at least one chain unless there is a cycle.
    let nchains = layout.chains().len();
    let mut resolved = 0usize;
    while resolved < nchains {
        let before = resolved;
        for chain in layout.chains() {
            let pi = chain.parity.index(cols);
            if expected[pi].is_some() {
                continue;
            }
            if chain.members.iter().all(|m| expected[m.index(cols)].is_some()) {
                let mut acc = SymExpr::zero(nbasis);
                for m in &chain.members {
                    acc.xor_assign(expected[m.index(cols)].as_ref().expect("resolved member"));
                }
                expected[pi] = Some(acc);
                resolved += 1;
            }
        }
        if resolved == before {
            return Err(PlanError::CyclicParityDependency);
        }
    }
    Ok(expected
        .into_iter()
        .map(|e| e.expect("layout validation guarantees every parity owns a chain"))
        .collect())
}

/// Shared per-op source hazard scan over one zero-copy [`StepView`]:
/// self-reads, duplicate sources and reads of unwritten scratch temps,
/// plus a caller-supplied check for grid sources (receiving the source
/// cell and whether the plan has already written it).
fn structural_sources(
    plan: &XorPlan,
    view: StepView<'_>,
    written: &BitSet,
    mut grid_check: impl FnMut(Cell, bool) -> Result<(), PlanError>,
) -> Result<(), PlanError> {
    let nslots = plan.rows() * plan.cols() + plan.num_temps();
    let dst = plan.plan_cell(view.dst);
    let mut seen = BitSet::new(nslots);
    for &s in view.srcs {
        if s == view.dst {
            return Err(match dst {
                PlanCell::Grid(target) => PlanError::SelfRead { target },
                PlanCell::Temp(t) => PlanError::TempHazard {
                    detail: format!("op for scratch temp t{t} reads its own target"),
                },
            });
        }
        if !seen.insert(s as usize) {
            return Err(match (dst, plan.plan_cell(s)) {
                (PlanCell::Grid(target), PlanCell::Grid(source)) => {
                    PlanError::DuplicateSource { target, source }
                }
                (d, src) => PlanError::TempHazard {
                    detail: format!("op for {d} lists {src} twice"),
                },
            });
        }
        match plan.plan_cell(s) {
            PlanCell::Grid(sc) => grid_check(sc, written.contains(s as usize))?,
            PlanCell::Temp(t) => {
                if !written.contains(s as usize) {
                    return Err(PlanError::TempHazard {
                        detail: format!(
                            "op for {dst} reads scratch temp t{t} before it is written"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Proves an encode plan correct for `layout` (see the module docs for
/// the exact obligations).
///
/// # Errors
///
/// Returns the first [`PlanError`] found; the `Display` form prints the
/// offending symbolic equation.
pub fn verify_encode(layout: &Layout, plan: &XorPlan) -> Result<EncodeProof, PlanError> {
    if plan.rows() != layout.rows() || plan.cols() != layout.cols() {
        return Err(PlanError::ShapeMismatch {
            plan: (plan.rows(), plan.cols()),
            layout: (layout.rows(), layout.cols()),
        });
    }
    let cols = layout.cols();
    let ncells = layout.num_cells();

    // Structural pass (over the zero-copy step views, which also cover
    // scratch temps): dead/duplicate/self-referential ops and
    // read-before-write hazards on stale parity or unwritten temps.
    let mut written = BitSet::new(ncells + plan.num_temps());
    let mut source_reads = 0usize;
    for view in plan.step_views() {
        let dst = plan.plan_cell(view.dst);
        if let PlanCell::Grid(target) = dst {
            if layout.is_data(target) {
                return Err(PlanError::TargetNotParity { target });
            }
        }
        if !written.insert(view.dst as usize) {
            return Err(match dst {
                PlanCell::Grid(target) => PlanError::DuplicateTarget { target },
                PlanCell::Temp(t) => PlanError::TempHazard {
                    detail: format!("scratch temp t{t} is written twice"),
                },
            });
        }
        structural_sources(plan, view, &written, |sc, defined| {
            if !layout.is_data(sc) && !defined {
                match dst {
                    PlanCell::Grid(target) => {
                        Err(PlanError::StaleParityRead { target, source: sc })
                    }
                    PlanCell::Temp(_) => Err(PlanError::TempHazard {
                        detail: format!(
                            "op for {dst} reads parity {sc} before the plan writes it"
                        ),
                    }),
                }
            } else {
                Ok(())
            }
        })?;
        source_reads += view.srcs.len();
    }
    for chain in layout.chains() {
        if !written.contains(chain.parity.index(cols)) {
            return Err(PlanError::MissingParity { parity: chain.parity });
        }
    }

    // Semantic pass: symbolic execution from the identity state must land
    // every parity on its chain equation's data-basis expansion.
    let expected = expected_encoding(layout, 0)?;
    let mut state = SymState::identity(layout.rows(), cols);
    state.execute(plan).expect("shape checked above");
    for chain in layout.chains() {
        let got = state.expr(chain.parity);
        let want = &expected[chain.parity.index(cols)];
        if got != want {
            return Err(PlanError::WrongEquation {
                cell: chain.parity,
                got: got.render(cols, ncells),
                want: want.render(cols, ncells),
            });
        }
    }
    Ok(EncodeProof { ops: plan.num_ops(), source_reads })
}

/// Proves a decode plan reconstructs every cell of `lost` exactly, given a
/// stripe whose surviving cells are consistently encoded. See
/// [`verify_decode_targeted`] for plans that only reconstruct a subset.
///
/// # Errors
///
/// Returns the first [`PlanError`] found.
pub fn verify_decode(layout: &Layout, lost: &[Cell], plan: &XorPlan) -> Result<(), PlanError> {
    verify_decode_targeted(layout, lost, lost, plan)
}

/// Like [`verify_decode`], but only the `required` cells (a subset of
/// `lost`) must come out exactly right — the contract of
/// `plan_targeted_decode`'s backward slices.
///
/// # Errors
///
/// Returns the first [`PlanError`] found.
pub fn verify_decode_targeted(
    layout: &Layout,
    lost: &[Cell],
    required: &[Cell],
    plan: &XorPlan,
) -> Result<(), PlanError> {
    if plan.rows() != layout.rows() || plan.cols() != layout.cols() {
        return Err(PlanError::ShapeMismatch {
            plan: (plan.rows(), plan.cols()),
            layout: (layout.rows(), layout.cols()),
        });
    }
    let cols = layout.cols();
    let ncells = layout.num_cells();
    let mut lost_set = BitSet::new(ncells);
    for &c in lost {
        lost_set.insert(c.index(cols));
    }

    // Structural pass: only erased cells (or scratch temps) may be
    // written, each at most once; no self-reads, duplicate sources or
    // reads of unwritten temps.
    let mut written = BitSet::new(ncells + plan.num_temps());
    for view in plan.step_views() {
        let dst = plan.plan_cell(view.dst);
        if let PlanCell::Grid(target) = dst {
            if !lost_set.contains(target.index(cols)) {
                return Err(PlanError::SurvivorClobbered { target });
            }
        }
        if !written.insert(view.dst as usize) {
            return Err(match dst {
                PlanCell::Grid(target) => PlanError::DuplicateTarget { target },
                PlanCell::Temp(t) => PlanError::TempHazard {
                    detail: format!("scratch temp t{t} is written twice"),
                },
            });
        }
        structural_sources(plan, view, &written, |_, _| Ok(()))?;
    }

    // Initial symbolic stripe: survivors hold their encoded expansion over
    // the data basis; erased cell k holds garbage vector `ncells + k`.
    let encoded = expected_encoding(layout, lost.len())?;
    let mut state = SymState::identity_with_extra(layout.rows(), cols, lost.len());
    for (i, expansion) in encoded.iter().enumerate() {
        let cell = Cell::from_index(i, cols);
        if let Some(k) = lost.iter().position(|&l| l == cell) {
            state.set_expr(cell, SymExpr::basis(ncells + lost.len(), ncells + k));
        } else {
            state.set_expr(cell, expansion.clone());
        }
    }
    state.execute(plan).expect("shape checked above");

    for &cell in required {
        let got = state.expr(cell);
        if got.has_garbage(ncells) {
            return Err(PlanError::GarbageResidue {
                cell,
                got: got.render(cols, ncells),
            });
        }
        let want = &encoded[cell.index(cols)];
        if got != want {
            return Err(PlanError::WrongEquation {
                cell,
                got: got.render(cols, ncells),
                want: want.render(cols, ncells),
            });
        }
    }
    Ok(())
}

/// What [`prove_equivalent`] proved, with both plans' read costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceProof {
    /// Grid cells whose final symbolic expression was compared.
    pub cells_checked: usize,
    /// Source reads in the original plan.
    pub reads_before: usize,
    /// Source reads in the optimized plan.
    pub reads_after: usize,
}

/// Proves `optimized` computes the same GF(2) function of the stripe's
/// initial contents as `original`, for every cell in `original`'s output
/// set: both plans are executed symbolically from the identity state
/// (scratch temps resolve by substitution — they start at zero and only
/// ever hold combinations of initial grid contents) and every output
/// cell's final expression must match exactly. By linearity over GF(2),
/// agreement on the basis is agreement on **all** stripe contents.
/// `optimized` must also write no grid cell `original` never produced.
///
/// This is the independent proof obligation behind `erasure::xopt`: the
/// optimizer self-checks with its own symbolic executor, and this prover
/// re-derives the same property in a separately implemented domain for
/// every plan the codes actually cache.
///
/// # Errors
///
/// Returns [`PlanError::ShapeMismatch`] if the grids differ,
/// [`PlanError::ExtraTarget`] if `optimized` writes a cell `original`
/// does not, or [`PlanError::WrongEquation`] naming the first output
/// cell whose expressions diverge.
pub fn prove_equivalent(
    original: &XorPlan,
    optimized: &XorPlan,
) -> Result<EquivalenceProof, PlanError> {
    if original.rows() != optimized.rows() || original.cols() != optimized.cols() {
        return Err(PlanError::ShapeMismatch {
            plan: (optimized.rows(), optimized.cols()),
            layout: (original.rows(), original.cols()),
        });
    }
    let (rows, cols) = (original.rows(), original.cols());
    let ncells = rows * cols;

    let mut orig_state = SymState::identity(rows, cols);
    orig_state.execute(original).expect("shape checked above");
    let mut opt_state = SymState::identity(rows, cols);
    opt_state.execute(optimized).expect("shape checked above");

    let orig_written: BitSet = {
        let mut b = BitSet::new(ncells);
        for c in original.targets() {
            b.insert(c.index(cols));
        }
        b
    };
    for cell in optimized.targets() {
        if !orig_written.contains(cell.index(cols)) {
            return Err(PlanError::ExtraTarget { cell });
        }
    }

    let outputs = original.output_indices();
    for &oi in &outputs {
        let cell = Cell::from_index(oi as usize, cols);
        let got = opt_state.expr(cell);
        let want = orig_state.expr(cell);
        if got != want {
            return Err(PlanError::WrongEquation {
                cell,
                got: got.render(cols, ncells),
                want: want.render(cols, ncells),
            });
        }
    }
    Ok(EquivalenceProof {
        cells_checked: outputs.len(),
        reads_before: original.num_source_reads(),
        reads_after: optimized.num_source_reads(),
    })
}

/// Exhaustively proves the MDS property for the plans the decode compiler
/// emits: every single- and double-disk erasure pattern gets a plan, that
/// plan symbolically reconstructs every erased cell, and the `xopt`
/// middle-end's rewrite of it (the plan the runtime actually executes) is
/// proven equivalent, re-verified, and never costs more reads.
///
/// # Errors
///
/// Returns [`PlanError::NotDecodable`] (wrapped with the pattern) if some
/// pattern has no plan, or the wrapped verification failure if a plan (or
/// its optimized rewrite) is wrong.
pub fn prove_mds(layout: &Layout) -> Result<MdsProof, PlanError> {
    let n = layout.cols();
    let verify_pattern = |disks: &[usize]| -> Result<(), PlanError> {
        let wrap = |e: PlanError| PlanError::Pattern {
            disks: disks.to_vec(),
            inner: Box::new(e),
        };
        let lost: Vec<Cell> = disks.iter().flat_map(|&d| layout.cells_in_col(d)).collect();
        let decode = raid_core::decoder::plan_decode(layout, &lost)
            .map_err(|_| PlanError::NotDecodable { disks: disks.to_vec() })?;
        let compiled = XorPlan::compile_decode(layout, &decode);
        verify_decode(layout, &lost, &compiled).map_err(wrap)?;
        let optimized = compiled.optimized();
        let eq = prove_equivalent(&compiled, &optimized).map_err(wrap)?;
        if eq.reads_after > eq.reads_before {
            return Err(wrap(PlanError::TempHazard {
                detail: format!(
                    "optimizer increased decode reads: {} → {}",
                    eq.reads_before, eq.reads_after
                ),
            }));
        }
        verify_decode(layout, &lost, &optimized).map_err(wrap)
    };
    for f in 0..n {
        verify_pattern(&[f])?;
    }
    for f1 in 0..n {
        for f2 in (f1 + 1)..n {
            verify_pattern(&[f1, f2])?;
        }
    }
    Ok(MdsProof { singles: n, pairs: n * (n - 1) / 2 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raid_core::layout::{Chain, ElementKind, ParityClass};

    /// X-Code p=3: a genuine MDS layout over 3 columns.
    fn xcode3() -> Layout {
        let c = Cell::new;
        let mut kinds = vec![ElementKind::Data; 3];
        kinds.extend(vec![ElementKind::Parity(ParityClass::Diagonal); 3]);
        kinds.extend(vec![ElementKind::Parity(ParityClass::AntiDiagonal); 3]);
        let mut chains = Vec::new();
        for i in 0..3usize {
            chains.push(Chain {
                class: ParityClass::Diagonal,
                parity: c(1, i),
                members: vec![c(0, (i + 2) % 3)],
            });
            chains.push(Chain {
                class: ParityClass::AntiDiagonal,
                parity: c(2, i),
                members: vec![c(0, (i + 1) % 3)],
            });
        }
        Layout::new(3, 3, kinds, chains).unwrap()
    }

    /// Cascaded toy: p = d0 ^ d1, q = d0 ^ p (parity-of-parity).
    fn cascade() -> Layout {
        let c = Cell::new;
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
            ElementKind::Parity(ParityClass::Diagonal),
        ];
        let chains = vec![
            Chain { class: ParityClass::Horizontal, parity: c(0, 2), members: vec![c(0, 0), c(0, 1)] },
            Chain { class: ParityClass::Diagonal, parity: c(0, 3), members: vec![c(0, 0), c(0, 2)] },
        ];
        Layout::new(1, 4, kinds, chains).unwrap()
    }

    #[test]
    fn compiled_encode_plans_verify() {
        for layout in [xcode3(), cascade()] {
            let proof = verify_encode(&layout, layout.encode_plan()).unwrap();
            assert_eq!(proof.ops, layout.chains().len());
        }
    }

    #[test]
    fn expected_encoding_expands_cascades() {
        let layout = cascade();
        let exp = expected_encoding(&layout, 0).unwrap();
        // q = d0 ^ (d0 ^ d1) = d1.
        assert_eq!(exp[3], SymExpr::basis(4, 1));
    }

    #[test]
    fn wrong_source_list_is_rejected_with_the_equation() {
        let layout = cascade();
        let c = Cell::new;
        // Correct: p = d0 ^ d1. Corrupt: p = d1 only.
        let bad = XorPlan::from_steps(
            1,
            4,
            [
                (c(0, 2), [c(0, 1)].as_slice()),
                (c(0, 3), [c(0, 0), c(0, 2)].as_slice()),
            ],
        );
        let err = verify_encode(&layout, &bad).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("E[0,2]"), "{msg}");
        assert!(msg.contains("requires"), "{msg}");
        assert!(msg.contains("E[0,0] ⊕ E[0,1]"), "{msg}");
    }

    #[test]
    fn stale_parity_read_is_a_hazard() {
        let layout = cascade();
        let c = Cell::new;
        // q reads p before p is produced.
        let bad = XorPlan::from_steps(
            1,
            4,
            [
                (c(0, 3), [c(0, 0), c(0, 2)].as_slice()),
                (c(0, 2), [c(0, 0), c(0, 1)].as_slice()),
            ],
        );
        assert!(matches!(
            verify_encode(&layout, &bad),
            Err(PlanError::StaleParityRead { .. })
        ));
    }

    #[test]
    fn missing_and_duplicate_ops_rejected() {
        let layout = cascade();
        let c = Cell::new;
        let missing = XorPlan::from_steps(1, 4, [(c(0, 2), [c(0, 0), c(0, 1)].as_slice())]);
        assert!(matches!(
            verify_encode(&layout, &missing),
            Err(PlanError::MissingParity { .. })
        ));
        let dup = XorPlan::from_steps(
            1,
            4,
            [
                (c(0, 2), [c(0, 0), c(0, 1)].as_slice()),
                (c(0, 2), [c(0, 0), c(0, 1)].as_slice()),
                (c(0, 3), [c(0, 0), c(0, 2)].as_slice()),
            ],
        );
        assert!(matches!(verify_encode(&layout, &dup), Err(PlanError::DuplicateTarget { .. })));
        let dup_src = XorPlan::from_steps(
            1,
            4,
            [
                (c(0, 2), [c(0, 0), c(0, 1), c(0, 0), c(0, 0)].as_slice()),
                (c(0, 3), [c(0, 0), c(0, 2)].as_slice()),
            ],
        );
        assert!(matches!(
            verify_encode(&layout, &dup_src),
            Err(PlanError::DuplicateSource { .. })
        ));
    }

    #[test]
    fn mds_proof_on_xcode3() {
        let proof = prove_mds(&xcode3()).unwrap();
        assert_eq!(proof.singles, 3);
        assert_eq!(proof.pairs, 3);
    }

    #[test]
    fn non_mds_layout_fails_the_proof() {
        // Single parity: any double erasure touching d0,d1 is undecodable.
        let c = Cell::new;
        let kinds = vec![
            ElementKind::Data,
            ElementKind::Data,
            ElementKind::Parity(ParityClass::Horizontal),
        ];
        let chains = vec![Chain {
            class: ParityClass::Horizontal,
            parity: c(0, 2),
            members: vec![c(0, 0), c(0, 1)],
        }];
        let layout = Layout::new(1, 3, kinds, chains).unwrap();
        assert!(matches!(prove_mds(&layout), Err(PlanError::NotDecodable { .. })));
    }

    #[test]
    fn decode_that_leaves_garbage_is_rejected() {
        let layout = xcode3();
        let lost: Vec<Cell> = layout.cells_in_col(0);
        // A "decode" that copies an erased cell from another erased cell.
        let bad = XorPlan::from_steps(
            3,
            3,
            [
                (Cell::new(0, 0), [Cell::new(1, 0)].as_slice()),
                (Cell::new(1, 0), [Cell::new(0, 2)].as_slice()),
                (Cell::new(2, 0), [Cell::new(0, 1)].as_slice()),
            ],
        );
        let err = verify_decode(&layout, &lost, &bad).unwrap_err();
        assert!(matches!(err, PlanError::GarbageResidue { .. }), "{err}");
        assert!(err.to_string().contains('⊥'), "{err}");
    }

    #[test]
    fn decode_clobbering_a_survivor_is_rejected() {
        let layout = xcode3();
        let lost: Vec<Cell> = layout.cells_in_col(0);
        let bad = XorPlan::from_steps(3, 3, [(Cell::new(0, 1), [Cell::new(0, 2)].as_slice())]);
        assert!(matches!(
            verify_decode(&layout, &lost, &bad),
            Err(PlanError::SurvivorClobbered { .. })
        ));
    }

    #[test]
    fn targeted_slices_verify() {
        let layout = xcode3();
        let mut lost = layout.cells_in_col(0);
        lost.extend(layout.cells_in_col(1));
        let wanted = [Cell::new(0, 0)];
        let plan =
            raid_core::decoder::plan_targeted_decode(&layout, &lost, &wanted).unwrap();
        let compiled = XorPlan::compile_decode(&layout, &plan);
        verify_decode_targeted(&layout, &lost, &wanted, &compiled).unwrap();
    }
}
