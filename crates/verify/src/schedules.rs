//! Exhaustive small-model checking of the executor's concurrent
//! protocols, over the [`interleave`] explorer.
//!
//! PR 7's concurrency rests on three hand-rolled protocols, each guarded
//! so far only by proptests that *sample* orderings:
//!
//! * the **work-stealing cursor** of `run_partitioned` — per-partition
//!   `AtomicUsize::fetch_add` claims plus a `Mutex` slot per stripe;
//! * the **sharded ledger merge** — worker-private [`LedgerShard`]s
//!   aggregated by [`IoLedger::merge_shards`], which promises
//!   order-independent totals;
//! * the **per-disk queue hand-off** of `FileBackend::submit_batch` —
//!   requests bucketed per disk, each queue served in submission order,
//!   queues interleaving freely against each other.
//!
//! Each is modeled here at loom granularity (one atomic transition per
//! step) and checked against its *sequential* specification across
//! **every** interleaving of a bounded configuration — turning "any
//! shuffled order == sequential" from a sampled property into exhaustive
//! small-model checking. The models are deliberately tiny (2 workers, a
//! handful of stripes): exhaustiveness over a small model catches
//! protocol-logic races (lost claims, double execution, order-dependent
//! merges), which is the failure class these protocols can actually
//! have — they contain no unsafe code, so memory-model bugs are out of
//! scope by construction (and `make tsan-smoke` covers the real
//! executable separately).

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

use interleave::{explore, ExploreError, Explored, Model};
use raid_core::io::{IoLedger, LedgerShard, RequestSet};

/// A failed schedule exploration, tagged with the model that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// The model ("cursor", "merge", "queue").
    pub model: &'static str,
    /// The explorer's counterexample or budget overflow.
    pub error: ExploreError,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} model: {}", self.model, self.error)
    }
}

impl std::error::Error for ScheduleError {}

/// One model's exhaustive pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelResult {
    /// The model name.
    pub model: &'static str,
    /// Configurations checked.
    pub configs: usize,
    /// Complete schedules explored across all configurations.
    pub schedules: u64,
    /// Longest schedule seen.
    pub max_depth: usize,
}

/// Complete schedules any single configuration may have; beyond this the
/// model is too big to call "exhaustively checked".
const BUDGET: u64 = 2_000_000;

// ---------------------------------------------------------------------------
// Cursor model: run_partitioned's work-stealing claim protocol
// ---------------------------------------------------------------------------

/// Per-worker program state for [`CursorModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct CursorWorker {
    /// Partition visit order: owned partitions first, then stealable —
    /// the same `p % threads == w` split `run_partitioned` uses.
    order: Vec<usize>,
    /// Position in `order`.
    at: usize,
    /// A stripe index claimed by `fetch_add` whose slot is not yet taken
    /// — the window between the two atomic steps.
    pending: Option<usize>,
}

/// The work-stealing cursor protocol of `run_partitioned`, at atomic
/// granularity: step A is one `cursors[p].fetch_add(1, Relaxed)` (claim
/// by ticket), step B is the `Mutex` slot take (hand-off of the stripe).
/// A worker that draws a ticket `>= end` moves to its next partition.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CursorModel {
    parts: Vec<Range<usize>>,
    cursors: Vec<usize>,
    /// Slot taken (stripe handed to exactly one worker so far).
    taken: Vec<bool>,
    workers: Vec<CursorWorker>,
}

impl CursorModel {
    fn new(parts: Vec<Range<usize>>, nworkers: usize) -> Self {
        let stripes = parts.last().map_or(0, |r| r.end);
        let cursors = parts.iter().map(|r| r.start).collect();
        let nparts = parts.len();
        let workers = (0..nworkers)
            .map(|w| {
                let owned = (0..nparts).filter(|p| p % nworkers == w);
                let stealable = (0..nparts).filter(|p| p % nworkers != w);
                CursorWorker { order: owned.chain(stealable).collect(), at: 0, pending: None }
            })
            .collect();
        CursorModel { parts, cursors, taken: vec![false; stripes], workers }
    }
}

impl Model for CursorModel {
    fn threads(&self) -> usize {
        self.workers.len()
    }

    fn done(&self, w: usize) -> bool {
        let worker = &self.workers[w];
        worker.pending.is_none() && worker.at >= worker.order.len()
    }

    fn step(&mut self, w: usize) -> Result<(), String> {
        if let Some(i) = self.workers[w].pending.take() {
            // Slot take: the Mutex hand-off. The ticket from fetch_add is
            // unique, so the slot must still be unclaimed.
            if self.taken[i] {
                return Err(format!("stripe {i} claimed twice (worker {w})"));
            }
            self.taken[i] = true;
            return Ok(());
        }
        let worker = &self.workers[w];
        let p = worker.order[worker.at];
        let ticket = self.cursors[p];
        self.cursors[p] += 1;
        if ticket >= self.parts[p].end {
            self.workers[w].at += 1;
        } else {
            self.workers[w].pending = Some(ticket);
        }
        Ok(())
    }

    fn invariant(&self) -> Result<(), String> {
        // Overshoot bound: each worker draws at most one ticket past
        // `end` per partition (it advances immediately), so a cursor can
        // never exceed end + nworkers.
        for (p, range) in self.parts.iter().enumerate() {
            let bound = range.end + self.workers.len();
            if self.cursors[p] > bound {
                return Err(format!(
                    "cursor {p} overshot: {} > end {} + {} workers",
                    self.cursors[p],
                    range.end,
                    self.workers.len()
                ));
            }
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        if let Some(i) = self.taken.iter().position(|&t| !t) {
            return Err(format!("stripe {i} never executed"));
        }
        for (p, range) in self.parts.iter().enumerate() {
            if self.cursors[p] < range.end {
                return Err(format!("cursor {p} stopped before its range end"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Merge model: sharded ledgers vs the sequential single ledger
// ---------------------------------------------------------------------------

/// Sharded-ledger accounting under work stealing: workers claim stripes
/// from a shared cursor (one atomic step) and absorb each stripe's
/// [`RequestSet`] into their *private* [`LedgerShard`] (a second step —
/// private state, but its timing window is modeled so the claim→absorb
/// gap is explored too). Every interleaving assigns stripes to workers
/// differently; [`IoLedger::merge_shards`] must erase that difference.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MergeModel {
    sets: Vec<RequestSet>,
    disks: usize,
    cursor: usize,
    shards: Vec<LedgerShard>,
    pending: Vec<Option<usize>>,
    finished: Vec<bool>,
}

impl MergeModel {
    fn new(disks: usize, sets: Vec<RequestSet>, nworkers: usize) -> Self {
        MergeModel {
            sets,
            disks,
            cursor: 0,
            shards: (0..nworkers).map(|w| LedgerShard::new(w, disks)).collect(),
            pending: vec![None; nworkers],
            finished: vec![false; nworkers],
        }
    }

    /// The sequential specification: one ledger absorbing every set in
    /// stripe order on a single thread.
    fn sequential(&self) -> IoLedger {
        let mut ledger = IoLedger::new(self.disks);
        for rs in &self.sets {
            ledger.absorb(rs);
        }
        ledger
    }
}

impl Model for MergeModel {
    fn threads(&self) -> usize {
        self.shards.len()
    }

    fn done(&self, w: usize) -> bool {
        self.finished[w]
    }

    fn step(&mut self, w: usize) -> Result<(), String> {
        if let Some(i) = self.pending[w].take() {
            self.shards[w].absorb(&self.sets[i]);
            return Ok(());
        }
        if self.cursor < self.sets.len() {
            self.pending[w] = Some(self.cursor);
            self.cursor += 1;
        } else {
            self.finished[w] = true;
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let merged = IoLedger::merge_shards(self.disks, self.shards.clone());
        let seq = self.sequential();
        if merged.reads() != seq.reads() || merged.writes() != seq.writes() {
            return Err(format!(
                "merge_shards diverged from the sequential ledger: \
                 merged reads {:?} writes {:?}, sequential reads {:?} writes {:?}",
                merged.reads(),
                merged.writes(),
                seq.reads(),
                seq.writes()
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Queue model: FileBackend's per-disk batch hand-off
// ---------------------------------------------------------------------------

/// One request of the modeled batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueReq {
    Read { index: usize },
    Write { index: usize, val: u8 },
}

/// `FileBackend::submit_batch`'s hand-off: the batch is bucketed into
/// per-disk queues preserving submission order, and each queue is served
/// by a worker with no cross-queue ordering at all (one served request =
/// one atomic step — the file I/O for distinct elements is independent).
/// Every interleaving must produce completions identical to serving the
/// batch sequentially — in particular an in-batch read *after* a write
/// to the same element must observe that write.
#[derive(Debug, Clone, PartialEq, Eq)]
struct QueueModel {
    /// Per-disk queues: `(position in batch, request)`.
    queues: Vec<Vec<(usize, QueueReq)>>,
    /// Next unserved entry per queue.
    heads: Vec<usize>,
    /// Element contents, keyed `(disk, index)`.
    elements: BTreeMap<(usize, usize), u8>,
    /// One completion slot per batch entry (`Some(byte)` for reads,
    /// `None` for writes) — filled as requests are served.
    completions: Vec<Option<Option<u8>>>,
}

impl QueueModel {
    fn new(disks: usize, batch: &[(usize, QueueReq)]) -> Self {
        let mut queues = vec![Vec::new(); disks];
        for (pos, &(disk, req)) in batch.iter().enumerate() {
            queues[disk].push((pos, req));
        }
        QueueModel {
            heads: vec![0; queues.len()],
            queues,
            elements: BTreeMap::new(),
            completions: vec![None; batch.len()],
        }
    }

    /// The sequential specification: the whole batch served in
    /// submission order by one thread.
    fn sequential(&self) -> Vec<Option<u8>> {
        let mut elements: BTreeMap<(usize, usize), u8> = BTreeMap::new();
        let mut flat: Vec<(usize, usize, QueueReq)> = self
            .queues
            .iter()
            .enumerate()
            .flat_map(|(d, q)| q.iter().map(move |&(pos, req)| (pos, d, req)))
            .collect();
        flat.sort_by_key(|&(pos, ..)| pos);
        flat.into_iter()
            .map(|(_, disk, req)| match req {
                QueueReq::Read { index } => {
                    Some(elements.get(&(disk, index)).copied().unwrap_or(0))
                }
                QueueReq::Write { index, val } => {
                    elements.insert((disk, index), val);
                    None
                }
            })
            .collect()
    }
}

impl Model for QueueModel {
    fn threads(&self) -> usize {
        self.queues.len()
    }

    fn done(&self, d: usize) -> bool {
        self.heads[d] >= self.queues[d].len()
    }

    fn step(&mut self, d: usize) -> Result<(), String> {
        let (pos, req) = self.queues[d][self.heads[d]];
        self.heads[d] += 1;
        let served = match req {
            QueueReq::Read { index } => {
                Some(self.elements.get(&(d, index)).copied().unwrap_or(0))
            }
            QueueReq::Write { index, val } => {
                self.elements.insert((d, index), val);
                None
            }
        };
        if self.completions[pos].replace(served).is_some() {
            return Err(format!("batch entry {pos} served twice"));
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let got: Vec<Option<u8>> = self
            .completions
            .iter()
            .map(|c| c.ok_or("unserved batch entry".to_string()))
            .collect::<Result<_, _>>()?;
        let want = self.sequential();
        if got != want {
            return Err(format!(
                "per-disk queue hand-off diverged from sequential service: \
                 got {got:?}, sequential {want:?}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The three gates
// ---------------------------------------------------------------------------

fn run<M: Model>(
    model: &'static str,
    configs: &[M],
) -> Result<ModelResult, ScheduleError> {
    let mut result = ModelResult { model, configs: configs.len(), schedules: 0, max_depth: 0 };
    for m in configs {
        let Explored { schedules, max_depth } =
            explore(m, BUDGET).map_err(|error| ScheduleError { model, error })?;
        result.schedules += schedules;
        result.max_depth = result.max_depth.max(max_depth);
    }
    Ok(result)
}

/// Exhaustively checks the work-stealing cursor protocol: even splits,
/// a skewed map, and the all-stealers-on-one-partition stress shape.
///
/// # Errors
///
/// The first counterexample schedule.
// The `vec!`s here hold partition *intervals*, not element lists —
// `vec![0..2]` really is one two-stripe partition.
#[allow(clippy::single_range_in_vec_init)]
pub fn check_cursor_model() -> Result<ModelResult, ScheduleError> {
    run(
        "cursor",
        &[
            // Two workers over an even 2-partition split.
            CursorModel::new(vec![0..2, 2..3], 2),
            // Skewed: one partition holds everything; worker 1 can only
            // steal.
            CursorModel::new(vec![0..3, 3..3], 2),
            // Both workers hammer a single shared cursor — the maximal
            // overshoot case (cursor may reach end + workers).
            CursorModel::new(vec![0..2], 2),
        ],
    )
}

/// Exhaustively checks shard merging against the sequential
/// single-ledger model, under every work-stealing stripe assignment.
///
/// # Errors
///
/// The first counterexample schedule.
pub fn check_merge_model() -> Result<ModelResult, ScheduleError> {
    // Distinct per-stripe request sets so a mis-assignment or double
    // absorb is visible in the totals.
    let sets: Vec<RequestSet> = (0..4)
        .map(|i| {
            let mut rs = RequestSet::new(3);
            rs.add_reads(i % 3, (i + 1) as u64);
            rs.add_data_write((i + 1) % 3);
            if i % 2 == 0 {
                rs.add_parity_write(2);
            }
            rs
        })
        .collect();
    run(
        "merge",
        &[MergeModel::new(3, sets.clone(), 2), MergeModel::new(3, sets[..3].to_vec(), 3)],
    )
}

/// Exhaustively checks the per-disk queue hand-off, including in-batch
/// read-after-write on the same element.
///
/// # Errors
///
/// The first counterexample schedule.
pub fn check_queue_model() -> Result<ModelResult, ScheduleError> {
    use QueueReq::{Read, Write};
    // Disk 0: write, read-back (must observe the write), overwrite, read
    // again; disk 1 and 2 interleave freely against it.
    let batch = [
        (0, Write { index: 0, val: 1 }),
        (1, Write { index: 0, val: 9 }),
        (0, Read { index: 0 }),
        (2, Read { index: 5 }),
        (0, Write { index: 0, val: 2 }),
        (1, Read { index: 0 }),
        (0, Read { index: 0 }),
        (2, Write { index: 5, val: 7 }),
    ];
    run("queue", &[QueueModel::new(3, &batch)])
}

/// Runs all three protocol models exhaustively.
///
/// # Errors
///
/// The first [`ScheduleError`] (counterexample schedule or budget
/// overflow).
pub fn check_all_models() -> Result<Vec<ModelResult>, ScheduleError> {
    Ok(vec![check_cursor_model()?, check_merge_model()?, check_queue_model()?])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_pass_exhaustively() {
        let results = check_all_models().unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.schedules > 0, "{} explored nothing", r.model);
        }
        // The cursor model must actually explore concurrency, not a
        // single serialized path.
        assert!(results[0].schedules > 100, "cursor: {}", results[0].schedules);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // vec![0..2]: one 2-stripe partition
    fn a_broken_cursor_protocol_is_caught() {
        // Sabotage: both workers' claim step reads the cursor without
        // advancing it atomically — model the classic read/increment
        // split by giving two workers the same ticket.
        #[derive(Clone)]
        struct Broken(CursorModel);
        impl Model for Broken {
            fn threads(&self) -> usize {
                self.0.threads()
            }
            fn done(&self, w: usize) -> bool {
                self.0.done(w)
            }
            fn step(&mut self, w: usize) -> Result<(), String> {
                if self.0.workers[w].pending.is_none() {
                    let p = self.0.workers[w].order[self.0.workers[w].at];
                    let ticket = self.0.cursors[p];
                    // Non-atomic: claim the ticket WITHOUT advancing the
                    // cursor; a second worker stepping here dupes it.
                    if ticket >= self.0.parts[p].end {
                        self.0.cursors[p] += 1;
                        self.0.workers[w].at += 1;
                    } else {
                        self.0.workers[w].pending = Some(ticket);
                    }
                    return Ok(());
                }
                self.0.step(w)
            }
            fn check_final(&self) -> Result<(), String> {
                self.0.check_final()
            }
        }
        let err = explore(&Broken(CursorModel::new(vec![0..2], 2)), 100_000).unwrap_err();
        let ExploreError::Violation { detail, .. } = err else { panic!("expected violation") };
        assert!(detail.contains("claimed twice"), "{detail}");
    }

    #[test]
    fn queue_model_spec_observes_in_batch_raw() {
        use QueueReq::{Read, Write};
        let m = QueueModel::new(1, &[(0, Write { index: 0, val: 5 }), (0, Read { index: 0 })]);
        assert_eq!(m.sequential(), vec![None, Some(5)]);
    }
}
