//! Machine-readable verification reports: measured structural metrics per
//! code, checked against the closed-form values the HV Code paper (and the
//! papers of the baseline codes) predict.
//!
//! The expectations in [`paper_expectation`] are the paper-table values as
//! functions of the prime `p` — update complexity (paper §V.B, Table-style
//! comparison of HV vs RDP/X-Code/H-Code/HDP), parity-chain lengths, and
//! the per-disk parity distribution that drives the paper's load-balance
//! argument. A mismatch means the constructed layout deviates from the
//! published construction, even if it is still a valid MDS code.

use raid_core::plan::update::update_complexity;
use raid_core::Layout;

/// Structural metrics measured from a constructed layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeMetrics {
    /// Disks (columns) in the stripe.
    pub disks: usize,
    /// Rows (elements per disk).
    pub rows: usize,
    /// Average parity updates per single-element data write.
    pub update_complexity: f64,
    /// `(chain_length, count)` pairs, ascending by length. Chain length
    /// counts the parity cell itself, matching the papers' convention.
    pub chain_lengths: Vec<(usize, usize)>,
    /// Parity cells per disk, by column.
    pub parities_per_disk: Vec<usize>,
}

impl CodeMetrics {
    /// Measures `layout`.
    pub fn measure(layout: &Layout) -> CodeMetrics {
        let mut per_disk = vec![0usize; layout.cols()];
        for chain in layout.chains() {
            per_disk[chain.parity.col] += 1;
        }
        CodeMetrics {
            disks: layout.cols(),
            rows: layout.rows(),
            update_complexity: update_complexity(layout),
            chain_lengths: layout.chain_length_histogram(),
            parities_per_disk: per_disk,
        }
    }
}

/// The paper-predicted values for a code at prime `p`.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperExpectation {
    /// Expected disks.
    pub disks: usize,
    /// Expected rows.
    pub rows: usize,
    /// Expected update complexity.
    pub update_complexity: f64,
    /// Expected `(chain_length, count)` histogram, ascending by length.
    pub chain_lengths: Vec<(usize, usize)>,
    /// Expected parity cells per disk, sorted ascending (the distribution
    /// matters for load balance; the column order does not).
    pub parities_per_disk_sorted: Vec<usize>,
}

/// Closed-form paper-table expectation for `name` at prime `p`, or `None`
/// for codes whose published tables we have not transcribed.
pub fn paper_expectation(name: &str, p: usize) -> Option<PaperExpectation> {
    match name {
        // HV Code (the paper, §III): p−1 disks, p−1 rows, optimal update
        // complexity 2, all 2(p−1) chains of length p−2, and exactly one
        // horizontal + one vertical parity per disk — perfectly balanced.
        "hv" => Some(PaperExpectation {
            disks: p - 1,
            rows: p - 1,
            update_complexity: 2.0,
            chain_lengths: vec![(p - 2, 2 * (p - 1))],
            parities_per_disk_sorted: vec![2; p - 1],
        }),
        // RDP: two dedicated parity disks; diagonal chains include the row
        // parities, which is what lifts update complexity above 2.
        "rdp" => Some(PaperExpectation {
            disks: p + 1,
            rows: p - 1,
            update_complexity: {
                let f = (p - 2) as f64 / (p - 1) as f64;
                2.0 + f * f
            },
            chain_lengths: vec![(p, 2 * (p - 1))],
            parities_per_disk_sorted: {
                let mut v = vec![0; p - 1];
                v.extend([p - 1, p - 1]);
                v
            },
        }),
        // X-Code: vertical code over p disks, two parity rows, optimal
        // update complexity, all chains length p−1.
        "xcode" => Some(PaperExpectation {
            disks: p,
            rows: p,
            update_complexity: 2.0,
            chain_lengths: vec![(p - 1, 2 * p)],
            parities_per_disk_sorted: vec![2; p],
        }),
        // H-Code: horizontal parity disk + anti-diagonals stored inside the
        // data area; one column carries no parity at all.
        "hcode" => Some(PaperExpectation {
            disks: p + 1,
            rows: p - 1,
            update_complexity: 2.0,
            chain_lengths: vec![(p, 2 * (p - 1))],
            parities_per_disk_sorted: {
                let mut v = vec![0];
                v.extend(vec![1; p - 1]);
                v.push(p - 1);
                v
            },
        }),
        // HDP: horizontal-diagonal parities consume a full diagonal each,
        // giving balanced load but update complexity 3.
        "hdp" => Some(PaperExpectation {
            disks: p - 1,
            rows: p - 1,
            update_complexity: 3.0,
            chain_lengths: vec![(p - 2, p - 1), (p - 1, p - 1)],
            parities_per_disk_sorted: vec![2; p - 1],
        }),
        _ => None,
    }
}

/// Compares measured metrics against a paper expectation; returns the list
/// of human-readable mismatches (empty = match).
pub fn diff_expectation(m: &CodeMetrics, e: &PaperExpectation) -> Vec<String> {
    let mut diffs = Vec::new();
    if m.disks != e.disks {
        diffs.push(format!("disks: measured {}, paper says {}", m.disks, e.disks));
    }
    if m.rows != e.rows {
        diffs.push(format!("rows: measured {}, paper says {}", m.rows, e.rows));
    }
    if (m.update_complexity - e.update_complexity).abs() > 1e-9 {
        diffs.push(format!(
            "update complexity: measured {:.4}, paper says {:.4}",
            m.update_complexity, e.update_complexity
        ));
    }
    if m.chain_lengths != e.chain_lengths {
        diffs.push(format!(
            "chain-length histogram: measured {:?}, paper says {:?}",
            m.chain_lengths, e.chain_lengths
        ));
    }
    let mut sorted = m.parities_per_disk.clone();
    sorted.sort_unstable();
    if sorted != e.parities_per_disk_sorted {
        diffs.push(format!(
            "parities per disk: measured {:?} (sorted), paper says {:?}",
            sorted, e.parities_per_disk_sorted
        ));
    }
    diffs
}

/// The full verification record for one code at one prime.
#[derive(Debug, Clone)]
pub struct CodeReport {
    /// Registry name of the code.
    pub code: String,
    /// The prime parameter.
    pub p: usize,
    /// Measured structural metrics.
    pub metrics: CodeMetrics,
    /// Encode-plan op count and source reads (from the proof).
    pub encode_ops: usize,
    /// Total encode source reads of the cached (optimized) plan.
    pub encode_source_reads: usize,
    /// Source reads of the unoptimized *expanded* specification form
    /// (each parity as its data-only GF(2) expansion) — what a naive
    /// chain-oblivious executor would pay, and the baseline `xopt`'s
    /// savings are reported against.
    pub encode_reads_spec: usize,
    /// Source reads of the cascaded chain-walk compile — the
    /// pre-optimizer plan shape. The cached plan never reads more than
    /// this (asserted by `check_code`).
    pub encode_reads_cascaded: usize,
    /// Scratch temps in the cached (optimized) encode plan.
    pub encode_temps: usize,
    /// Single-disk erasure patterns proven.
    pub mds_singles: usize,
    /// Double-disk erasure patterns proven.
    pub mds_pairs: usize,
    /// Modeled batches proven free of partition footprint hazards.
    pub hazard_batches: usize,
    /// Crash prefixes proven all-old-or-all-new by the journal proof.
    pub journal_crash_points: usize,
    /// Paper-expectation mismatches (empty when the paper table matches or
    /// no expectation is on file).
    pub paper_diffs: Vec<String>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl CodeReport {
    /// Renders the report as a single JSON object (hand-rolled; the
    /// workspace carries no serde).
    pub fn to_json(&self) -> String {
        let chain_lengths: Vec<String> = self
            .metrics
            .chain_lengths
            .iter()
            .map(|(len, count)| format!("[{len},{count}]"))
            .collect();
        let per_disk: Vec<String> =
            self.metrics.parities_per_disk.iter().map(|n| n.to_string()).collect();
        let diffs: Vec<String> =
            self.paper_diffs.iter().map(|d| format!("\"{}\"", json_escape(d))).collect();
        format!(
            concat!(
                "{{\"code\":\"{}\",\"p\":{},\"disks\":{},\"rows\":{},",
                "\"update_complexity\":{:.6},\"chain_lengths\":[{}],",
                "\"parities_per_disk\":[{}],\"encode_ops\":{},",
                "\"encode_source_reads\":{},\"encode_reads_spec\":{},",
                "\"encode_reads_cascaded\":{},\"encode_temps\":{},",
                "\"mds_singles\":{},\"mds_pairs\":{},",
                "\"hazard_batches\":{},\"journal_crash_points\":{},",
                "\"paper_match\":{},\"paper_diffs\":[{}]}}"
            ),
            json_escape(&self.code),
            self.p,
            self.metrics.disks,
            self.metrics.rows,
            self.metrics.update_complexity,
            chain_lengths.join(","),
            per_disk.join(","),
            self.encode_ops,
            self.encode_source_reads,
            self.encode_reads_spec,
            self.encode_reads_cascaded,
            self.encode_temps,
            self.mds_singles,
            self.mds_pairs,
            self.hazard_batches,
            self.journal_crash_points,
            self.paper_diffs.is_empty(),
            diffs.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hv_expectation_matches_measurement() {
        for p in [5usize, 7, 11] {
            let code = hv_code::HvCode::new(p).unwrap();
            let m = CodeMetrics::measure(raid_core::ArrayCode::layout(&code));
            let e = paper_expectation("hv", p).unwrap();
            assert_eq!(diff_expectation(&m, &e), Vec::<String>::new());
        }
    }

    #[test]
    fn expectation_diff_reports_mismatch() {
        let code = hv_code::HvCode::new(5).unwrap();
        let m = CodeMetrics::measure(raid_core::ArrayCode::layout(&code));
        let mut e = paper_expectation("hv", 5).unwrap();
        e.update_complexity = 3.0;
        let diffs = diff_expectation(&m, &e);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("update complexity"), "{diffs:?}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let code = hv_code::HvCode::new(5).unwrap();
        let layout = raid_core::ArrayCode::layout(&code);
        let report = CodeReport {
            code: "hv".into(),
            p: 5,
            metrics: CodeMetrics::measure(layout),
            encode_ops: layout.chains().len(),
            encode_source_reads: 0,
            encode_reads_spec: 0,
            encode_reads_cascaded: 0,
            encode_temps: 0,
            mds_singles: 4,
            mds_pairs: 6,
            hazard_batches: 5,
            journal_crash_points: 0,
            paper_diffs: vec!["a \"quoted\" diff".into()],
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"code\":\"hv\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"paper_match\":false"));
    }
}
