//! Static partition-hazard auditor: proves that a partitioned batch can
//! never make two workers touch the same backend bytes.
//!
//! `IoPipeline::execute_batch` runs one `LoweredOp` per stripe in three
//! backend phases: *all* reads are submitted as one batch, every plan
//! executes in a private scratch stripe under `run_partitioned`, and
//! *all* writes are journaled and submitted as one batch. Two distinct
//! reorderings hide in that shape:
//!
//! * **Across partitions** — the partition abstraction promises that
//!   ranges are independent (`flush_partition(B)` may run while a rebuild
//!   is parked in range A, so cross-partition op order is undefined). If
//!   two partitions wrote the same backend address, the surviving value
//!   would depend on scheduling; if one read what another writes, its
//!   input would. Both must be statically impossible.
//! * **Across ops, within a batch** — phase separation hoists every read
//!   before every write, and `FileBackend::submit_batch`'s per-disk
//!   queues only preserve *per-disk submission* order. An op that reads
//!   an address some *other* op writes would see the pre-batch value,
//!   diverging from the serial op-by-op semantics of
//!   `IoPipeline::execute`. (An op reading an address *it* writes is the
//!   ordinary RMW shape and is fine — serial execution also reads before
//!   writing within one op.)
//!
//! [`audit_partition_hazards`] proves both properties from the lowered
//! ops alone — write/write disjointness across partitions, read/write
//! disjointness across ops — and emits a machine-readable
//! [`HazardReport`] of every partition's per-disk address footprint. A
//! violation names the offending disk and address range, which is what
//! turns "two workers raced" from a heisenbug into a compile-time error.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

use raid_array::partition::PartitionMap;
use raid_array::pipeline::{DiskAddr, LoweredOp};
use raid_core::decoder;
use raid_core::{Cell, Layout, XorPlan};

/// A proven partition-disjointness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HazardError {
    /// The batch does not have one op per stripe of the map.
    OpCountMismatch {
        /// Ops in the batch.
        ops: usize,
        /// Stripes the map covers.
        stripes: usize,
    },
    /// Two partitions write overlapping backend addresses.
    WriteWrite {
        /// The lower-numbered partition.
        a: usize,
        /// The higher-numbered partition.
        b: usize,
        /// The disk both write.
        disk: usize,
        /// The overlapping element-index range on that disk.
        range: Range<usize>,
    },
    /// One op reads backend addresses another op writes — batched phase
    /// separation would serve the read from the pre-batch state.
    ReadWrite {
        /// The op (stripe index) doing the read.
        reader_op: usize,
        /// Partition owning the reader.
        reader_partition: usize,
        /// The op (stripe index) doing the write.
        writer_op: usize,
        /// Partition owning the writer.
        writer_partition: usize,
        /// The disk in conflict.
        disk: usize,
        /// The overlapping element-index range on that disk.
        range: Range<usize>,
    },
}

impl fmt::Display for HazardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HazardError::OpCountMismatch { ops, stripes } => {
                write!(f, "batch has {ops} ops but the partition map covers {stripes} stripes")
            }
            HazardError::WriteWrite { a, b, disk, range } => write!(
                f,
                "partitions {a} and {b} both write disk {disk} indices [{}, {}) — \
                 the surviving bytes would depend on worker scheduling",
                range.start, range.end
            ),
            HazardError::ReadWrite {
                reader_op,
                reader_partition,
                writer_op,
                writer_partition,
                disk,
                range,
            } => write!(
                f,
                "op {reader_op} (partition {reader_partition}) reads disk {disk} \
                 indices [{}, {}) which op {writer_op} (partition {writer_partition}) \
                 writes — batched phase separation would serve the read stale",
                range.start, range.end
            ),
        }
    }
}

impl std::error::Error for HazardError {}

/// One partition's backend address footprint: per-disk coalesced index
/// ranges, reads and writes separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    /// The partition index.
    pub partition: usize,
    /// Ops (stripe indices) assigned to this partition.
    pub ops: Range<usize>,
    /// disk → sorted disjoint index ranges read.
    pub reads: BTreeMap<usize, Vec<Range<usize>>>,
    /// disk → sorted disjoint index ranges written.
    pub writes: BTreeMap<usize, Vec<Range<usize>>>,
}

/// The machine-readable result of a clean hazard audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardReport {
    /// Ops audited.
    pub ops: usize,
    /// Disks addressed.
    pub disks: usize,
    /// Per-partition footprints, ascending by partition.
    pub partitions: Vec<Footprint>,
}

fn json_ranges(ranges: &BTreeMap<usize, Vec<Range<usize>>>) -> String {
    let per_disk: Vec<String> = ranges
        .iter()
        .map(|(disk, rs)| {
            let spans: Vec<String> =
                rs.iter().map(|r| format!("[{},{}]", r.start, r.end)).collect();
            format!("{{\"disk\":{disk},\"ranges\":[{}]}}", spans.join(","))
        })
        .collect();
    format!("[{}]", per_disk.join(","))
}

impl HazardReport {
    /// Renders the report as one JSON object (hand-rolled; the workspace
    /// carries no serde). Ranges are `[start, end)` pairs.
    pub fn to_json(&self) -> String {
        let parts: Vec<String> = self
            .partitions
            .iter()
            .map(|fp| {
                format!(
                    "{{\"partition\":{},\"ops\":[{},{}],\"reads\":{},\"writes\":{}}}",
                    fp.partition,
                    fp.ops.start,
                    fp.ops.end,
                    json_ranges(&fp.reads),
                    json_ranges(&fp.writes),
                )
            })
            .collect();
        format!(
            "{{\"ops\":{},\"disks\":{},\"hazards\":0,\"partitions\":[{}]}}",
            self.ops,
            self.disks,
            parts.join(",")
        )
    }
}

/// Coalesces a sorted list of element indices into maximal `[start, end)`
/// ranges.
fn coalesce(sorted: &[usize]) -> Vec<Range<usize>> {
    let mut out: Vec<Range<usize>> = Vec::new();
    for &i in sorted {
        match out.last_mut() {
            Some(last) if last.end == i => last.end = i + 1,
            Some(last) if last.contains(&i) => {}
            _ => out.push(i..i + 1),
        }
    }
    out
}

fn footprint_of(
    partition: usize,
    ops_range: Range<usize>,
    ops: &[LoweredOp],
) -> Footprint {
    let mut reads: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut writes: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for op in &ops[ops_range.clone()] {
        for (_, a) in &op.reads {
            reads.entry(a.disk).or_default().push(a.index);
        }
        for (_, a) in op.data_writes.iter().chain(&op.parity_writes) {
            writes.entry(a.disk).or_default().push(a.index);
        }
    }
    let pack = |m: BTreeMap<usize, Vec<usize>>| {
        m.into_iter()
            .map(|(disk, mut idx)| {
                idx.sort_unstable();
                (disk, coalesce(&idx))
            })
            .collect()
    };
    Footprint { partition, ops: ops_range, reads: pack(reads), writes: pack(writes) }
}

/// Proves cross-partition write/write and cross-op read/write
/// disjointness for a batch of one-`LoweredOp`-per-stripe ops under
/// `map`, and returns the per-partition footprint report.
///
/// Op `i` is the op for stripe `i` and belongs to partition
/// `map.owner_of(i)` — exactly how `execute_batch` routes it.
///
/// # Errors
///
/// The first [`HazardError`], naming the offending disk and coalesced
/// address range.
pub fn audit_partition_hazards(
    map: &PartitionMap,
    ops: &[LoweredOp],
    disks: usize,
) -> Result<HazardReport, HazardError> {
    if ops.len() != map.stripes() {
        return Err(HazardError::OpCountMismatch { ops: ops.len(), stripes: map.stripes() });
    }

    // Point-level ownership indices: address → first writer (op), plus
    // every conflict gathered so the error can name a *coalesced* range
    // rather than a lone element.
    let owner = |op: usize| map.owner_of(op);
    let mut write_owner: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    // (partition a, partition b, disk) → conflicting indices.
    let mut ww: BTreeMap<(usize, usize, usize), Vec<usize>> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        for (_, DiskAddr { disk, index }) in op.data_writes.iter().chain(&op.parity_writes) {
            if let Some(&prev) = write_owner.get(&(*disk, *index)) {
                let (pa, pb) = (owner(prev), owner(i));
                if pa != pb {
                    let key = (pa.min(pb), pa.max(pb), *disk);
                    ww.entry(key).or_default().push(*index);
                }
            } else {
                write_owner.insert((*disk, *index), i);
            }
        }
    }
    if let Some(((a, b, disk), mut idx)) = ww.into_iter().next() {
        idx.sort_unstable();
        let range = coalesce(&idx).remove(0);
        return Err(HazardError::WriteWrite { a, b, disk, range });
    }

    // Read/write: any op reading an address a *different* op writes.
    // (reader op, writer op, disk) → conflicting indices.
    let mut rw: BTreeMap<(usize, usize, usize), Vec<usize>> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        for (_, DiskAddr { disk, index }) in &op.reads {
            if let Some(&w) = write_owner.get(&(*disk, *index)) {
                if w != i {
                    rw.entry((i, w, *disk)).or_default().push(*index);
                }
            }
        }
    }
    if let Some(((reader_op, writer_op, disk), mut idx)) = rw.into_iter().next() {
        idx.sort_unstable();
        let range = coalesce(&idx).remove(0);
        return Err(HazardError::ReadWrite {
            reader_op,
            reader_partition: owner(reader_op),
            writer_op,
            writer_partition: owner(writer_op),
            disk,
            range,
        });
    }

    let partitions = map
        .partitions()
        .iter()
        .map(|p| footprint_of(p.index, p.range(), ops))
        .collect();
    Ok(HazardReport { ops: ops.len(), disks, partitions })
}

/// The backend address of `cell` in stripe `stripe` under the identity
/// (rotation-free) addressing — the same `index = stripe·rows + row`
/// packing `RaidVolume::addr_of` uses. Rotation permutes only the disk
/// column, never the index, so disjointness proven here carries over to
/// every rotated placement.
fn model_addr(layout: &Layout, stripe: usize, cell: Cell) -> DiskAddr {
    DiskAddr { disk: cell.col, index: stripe * layout.rows() + cell.row }
}

/// The lowered batch `RaidVolume::encode_all` submits, reconstructed
/// from the layout alone: per stripe, data-cell reads, the cached encode
/// plan, and every parity write.
pub fn model_encode_batch(layout: &Layout, stripes: usize) -> Vec<LoweredOp> {
    let parities: Vec<Cell> =
        (0..layout.cols()).flat_map(|col| layout.parities_in_col(col)).collect();
    (0..stripes)
        .map(|idx| LoweredOp {
            reads: layout
                .data_cells()
                .iter()
                .map(|&c| (c, model_addr(layout, idx, c)))
                .collect(),
            plan: Some(layout.encode_plan().clone()),
            parity_writes: parities.iter().map(|&c| (c, model_addr(layout, idx, c))).collect(),
            ..Default::default()
        })
        .collect()
}

/// The lowered batch `RaidVolume::rebuild_all` submits for `lost_cols`:
/// per stripe, surviving-cell reads, the optimized decode plan, and
/// lost-column writes.
///
/// # Panics
///
/// Panics if `lost_cols` is not decodable (more than two columns, or out
/// of range) — caller bug, mirroring the volume.
pub fn model_rebuild_batch(layout: &Layout, stripes: usize, lost_cols: &[usize]) -> Vec<LoweredOp> {
    let lost: Vec<Cell> = lost_cols.iter().flat_map(|&c| layout.cells_in_col(c)).collect();
    let decode = decoder::plan_decode(layout, &lost).expect("RAID-6 repairs up to two columns");
    let plan = XorPlan::compile_decode(layout, &decode).optimized();
    (0..stripes)
        .map(|idx| {
            let mut reads = Vec::new();
            let mut data_writes = Vec::new();
            let mut parity_writes = Vec::new();
            for col in 0..layout.cols() {
                for cell in layout.cells_in_col(col) {
                    let target = (cell, model_addr(layout, idx, cell));
                    if !lost_cols.contains(&col) {
                        reads.push(target);
                    } else if layout.is_data(cell) {
                        data_writes.push(target);
                    } else {
                        parity_writes.push(target);
                    }
                }
            }
            LoweredOp { reads, plan: Some(plan.clone()), data_writes, parity_writes }
        })
        .collect()
}

/// Summary of one layout's clean hazard proofs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardSummary {
    /// Batches audited (encode + per-lost-pattern rebuilds).
    pub batches: usize,
    /// Cross-checked partition pairs across all batches.
    pub partitions: usize,
    /// The encode batch's report (the representative one for `--json`).
    pub encode_report: HazardReport,
}

/// Stripes per model batch: enough to span several partitions and hit
/// uneven splits.
const MODEL_STRIPES: usize = 5;
/// Partitions per model batch: coprime with [`MODEL_STRIPES`] so ranges
/// come out uneven (sizes 2/2/1).
const MODEL_PARTITIONS: usize = 3;

/// Proves partition-footprint disjointness for every batched path the
/// volume lowers: `encode_all`, and `rebuild_all` under one- and
/// two-column loss (first, last, and adjacent-pair columns).
///
/// # Errors
///
/// The first [`HazardError`] across any modeled batch.
pub fn prove_layout_hazard_free(layout: &Layout) -> Result<HazardSummary, HazardError> {
    let map = PartitionMap::build(MODEL_STRIPES, MODEL_PARTITIONS);
    let disks = layout.cols();
    let encode_report =
        audit_partition_hazards(&map, &model_encode_batch(layout, MODEL_STRIPES), disks)?;
    let last = layout.cols() - 1;
    let mut batches = 1;
    for lost in [vec![0], vec![last], vec![0, last], vec![0, 1]] {
        let ops = model_rebuild_batch(layout, MODEL_STRIPES, &lost);
        audit_partition_hazards(&map, &ops, disks)?;
        batches += 1;
    }
    Ok(HazardSummary { batches, partitions: map.len(), encode_report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    fn layout_of(name: &str, p: usize) -> std::sync::Arc<dyn raid_core::ArrayCode> {
        build(name, p).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn every_code_is_hazard_free_at_small_primes() {
        for name in crate::CODE_NAMES {
            for p in [5usize, 7] {
                let code = layout_of(name, p);
                let summary = prove_layout_hazard_free(code.layout())
                    .unwrap_or_else(|e| panic!("{name} p={p}: {e}"));
                assert_eq!(summary.batches, 5);
            }
        }
    }

    #[test]
    fn overlapping_partition_write_is_named() {
        let code = layout_of("hv", 5);
        let layout = code.layout();
        let mut ops = model_encode_batch(layout, MODEL_STRIPES);
        let map = PartitionMap::build(MODEL_STRIPES, MODEL_PARTITIONS);
        // Sabotage: the last stripe's first parity write aliases stripe
        // 0's address — a cross-partition write/write collision.
        let victim = ops[0].parity_writes[0].1;
        ops[MODEL_STRIPES - 1].parity_writes[0].1 = victim;
        let err = audit_partition_hazards(&map, &ops, layout.cols()).unwrap_err();
        match &err {
            HazardError::WriteWrite { a, b, disk, range } => {
                assert_eq!((*a, *b), (0, map.owner_of(MODEL_STRIPES - 1)));
                assert_eq!(*disk, victim.disk);
                assert!(range.contains(&victim.index), "{err}");
            }
            other => panic!("expected WriteWrite, got {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains(&format!("disk {}", victim.disk)), "{msg}");
    }

    #[test]
    fn cross_op_read_of_written_address_is_named() {
        let code = layout_of("hv", 5);
        let layout = code.layout();
        let mut ops = model_encode_batch(layout, MODEL_STRIPES);
        let map = PartitionMap::build(MODEL_STRIPES, MODEL_PARTITIONS);
        // Sabotage: stripe 1 reads a parity address stripe 0 writes.
        let victim = ops[0].parity_writes[0].1;
        ops[1].reads[0].1 = victim;
        match audit_partition_hazards(&map, &ops, layout.cols()).unwrap_err() {
            HazardError::ReadWrite { reader_op, writer_op, disk, range, .. } => {
                assert_eq!((reader_op, writer_op), (1, 0));
                assert_eq!(disk, victim.disk);
                assert!(range.contains(&victim.index));
            }
            other => panic!("expected ReadWrite, got {other}"),
        }
    }

    #[test]
    fn rmw_style_self_read_is_not_a_hazard() {
        // An op reading an address it writes itself is the RMW shape;
        // only *cross-op* read/write overlap breaks phase separation.
        let code = layout_of("hv", 5);
        let layout = code.layout();
        let mut ops = model_encode_batch(layout, 2);
        let (cell, addr) = ops[0].parity_writes[0];
        ops[0].reads.push((cell, addr));
        let map = PartitionMap::build(2, 2);
        audit_partition_hazards(&map, &ops, layout.cols()).unwrap();
    }

    #[test]
    fn op_count_mismatch_is_rejected() {
        let code = layout_of("hv", 5);
        let ops = model_encode_batch(code.layout(), 3);
        let map = PartitionMap::build(4, 2);
        assert!(matches!(
            audit_partition_hazards(&map, &ops, code.layout().cols()),
            Err(HazardError::OpCountMismatch { ops: 3, stripes: 4 })
        ));
    }

    #[test]
    fn report_json_lists_partition_footprints() {
        let code = layout_of("hv", 5);
        let layout = code.layout();
        let summary = prove_layout_hazard_free(layout).unwrap();
        let json = summary.encode_report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"hazards\":0"), "{json}");
        assert!(json.contains("\"partition\":2"), "{json}");
        // Uneven 5-stripe/3-partition split: ranges [0,2) [2,4) [4,5).
        assert!(json.contains("\"ops\":[0,2]"), "{json}");
        assert!(json.contains("\"ops\":[4,5]"), "{json}");
        // Stripe-disjoint index packing: every footprint index of
        // partition 0 (stripes 0..2) lies below 2·rows.
        let rows = layout.rows();
        let fp = &summary.encode_report.partitions[0];
        for ranges in fp.reads.values().chain(fp.writes.values()) {
            for r in ranges {
                assert!(r.end <= 2 * rows, "partition 0 range {r:?} crosses stripe 2");
            }
        }
    }

    #[test]
    fn coalesce_packs_maximal_ranges() {
        assert_eq!(coalesce(&[0, 1, 2, 4, 7, 8]), vec![0..3, 4..5, 7..9]);
        assert_eq!(coalesce(&[3, 3, 4]), vec![3..5]);
        assert!(coalesce(&[]).is_empty());
    }
}
