//! Seeded randomness for the fleet clock: a splitmix64 stream plus the
//! inverse-CDF Weibull sampler driving failure and latent-sector
//! arrivals.
//!
//! The harness promises byte-identical reports for a fixed seed on any
//! host, so — like the chaos module it grew out of — it carries its own
//! tiny generator instead of depending on a platform RNG.

/// Splitmix64: tiny, seedable, identical on every platform.
#[derive(Debug, Clone)]
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Rng(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (`n = 0` yields 0).
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub(crate) fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Weibull-distributed interval via the inverse CDF:
    /// `scale · (−ln(1−u))^(1/shape)`. Shape < 1 models infant
    /// mortality, 1 is exponential (memoryless), > 1 wear-out — disk
    /// populations are conventionally fit with shapes just above 1.
    pub(crate) fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        debug_assert!(shape > 0.0 && scale > 0.0);
        let u = self.unit();
        scale * (-(1.0 - u).ln()).powf(1.0 / shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn weibull_samples_match_the_distribution() {
        let mut r = Rng::new(1);
        let (shape, scale) = (1.2, 1500.0);
        let n = 20_000usize;
        let samples: Vec<f64> = (0..n).map(|_| r.weibull(shape, scale)).collect();
        assert!(samples.iter().all(|&s| s.is_finite() && s >= 0.0));
        // Empirical median vs the closed form `scale · ln(2)^(1/shape)`.
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[n / 2];
        let expected = scale * std::f64::consts::LN_2.powf(1.0 / shape);
        assert!(
            (median - expected).abs() / expected < 0.05,
            "median {median:.1} vs expected {expected:.1}"
        );
        // Shape 1 degenerates to the exponential: mean ≈ scale.
        let mut r = Rng::new(2);
        let mean: f64 = (0..n).map(|_| r.weibull(1.0, 100.0)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "exponential mean {mean:.1}");
    }
}
