//! The machine-readable outcome of a fleet run.
//!
//! [`FleetReport`] is the harness's product: MTTR distributions,
//! data-loss events, spare-pool occupancy, degraded-window fractions,
//! scrub coverage, throttle behavior, and the analytic-vs-measured model
//! comparison. [`FleetReport::to_json`] renders it with fixed key order
//! and fixed-precision floats so a seeded run is byte-identical across
//! hosts — the `fleet-smoke` gate diffs two runs.

use std::fmt;

// The distribution math is shared workspace-wide (the service front-end
// reports from the same definitions); re-exported here so fleet callers
// keep their historical import paths.
pub use raid_core::stats::{percentile, DistSummary};

/// Shared hot-spare pool over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpareStats {
    /// Pool capacity (and initial stock).
    pub capacity: usize,
    /// Spares granted to volumes.
    pub grants: u64,
    /// Spare requests that arrived while the pool was empty.
    pub exhausted_requests: u64,
    /// Lowest occupancy seen.
    pub min_available: usize,
    /// Mean wait from request to grant, hours (0 with no grants).
    pub mean_wait_h: f64,
    /// Occupancy timeline: `(hour, available)` at every change,
    /// starting at `(0, capacity)`.
    pub timeline: Vec<(f64, usize)>,
}

/// Scrub scheduler counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubStats {
    /// Whole-volume scrub passes completed.
    pub passes: u64,
    /// Stripes checked across all passes.
    pub stripes_scrubbed: u64,
    /// Due passes deferred because the volume was degraded (a degraded
    /// scrub cannot tell corruption from loss).
    pub deferred: u64,
    /// Silent corruptions the arrival process injected.
    pub corruptions_injected: u64,
    /// Corruptions a scrub pass localized and repaired in place.
    pub repaired: u64,
    /// Stripes whose damage a scrub could not localize.
    pub unlocalizable: u64,
}

/// Rebuild-throttle behavior over the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleStats {
    /// Whether adaptive pacing was on.
    pub qos: bool,
    /// Mean granted rate over rebuild ticks, stripes per tick.
    pub mean_rate: f64,
    /// Multiplicative-backoff events.
    pub backoffs: u64,
    /// Rebuild ticks spent pinned at the floor rate.
    pub min_rate_ticks: u64,
    /// Ticks with an active rebuild.
    pub rebuild_ticks: u64,
}

/// Foreground service quality over the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForegroundStats {
    /// Foreground writes served.
    pub ops: u64,
    /// p99 latency over ticks with no rebuild and no failures, ms.
    pub p99_healthy_ms: f64,
    /// p99 latency over ticks with an active rebuild, ms (0 when no
    /// rebuild ever ran).
    pub p99_rebuild_ms: f64,
    /// `p99_rebuild / p99_healthy` (0 when either side is empty).
    pub inflation: f64,
}

/// Analytic closed forms next to their measured replacements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelStats {
    /// Closed-form single-disk rebuild time, ms.
    pub analytic_rebuild_single_ms: f64,
    /// Closed-form double-disk rebuild time, ms.
    pub analytic_rebuild_double_ms: f64,
    /// MTTDL from the closed-form rebuild windows, hours.
    pub analytic_mttdl_h: f64,
    /// Mean measured rebuild disk time (ledger I/O ÷ modeled bandwidth,
    /// bottleneck disk), ms; `None` with no completed rebuilds.
    pub measured_rebuild_io_ms: Option<f64>,
    /// Mean measured wall MTTR — failure to rebuilt, including spare
    /// wait and throttling — hours; `None` with no completed rebuilds.
    pub measured_mttr_h: Option<f64>,
    /// MTTDL with the measured MTTR substituted for the closed-form
    /// repair windows, hours.
    pub measured_mttdl_h: Option<f64>,
    /// `(measured_io − analytic_single) / analytic_single × 100`.
    pub rebuild_io_delta_pct: Option<f64>,
    /// `measured_mttdl / analytic_mttdl`.
    pub mttdl_measured_over_analytic: Option<f64>,
}

/// Everything a fleet run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Code under test.
    pub code: String,
    /// Disks per volume.
    pub disks: usize,
    /// Volumes simulated.
    pub volumes: usize,
    /// Simulated horizon, hours.
    pub hours: f64,
    /// Master seed.
    pub seed: u64,
    /// Stripes per volume.
    pub stripes: usize,
    /// Element size, bytes.
    pub element_size: usize,
    /// Disk-failure arrivals processed.
    pub disk_failures: u64,
    /// Disks rebuilt onto spares.
    pub rebuilds_completed: u64,
    /// Volumes that hit a third concurrent failure.
    pub data_loss_events: u64,
    /// `(volume, hour)` of each data-loss event.
    pub lost_volumes: Vec<(usize, f64)>,
    /// Wall MTTR distribution, hours; `None` with no completed rebuilds.
    pub mttr_h: Option<DistSummary>,
    /// Measured rebuild disk-time distribution, ms.
    pub rebuild_io_ms: Option<DistSummary>,
    /// Spare-pool stats.
    pub spares: SpareStats,
    /// Fraction of volume-ticks with ≥ 1 disk down.
    pub degraded_fraction: f64,
    /// Fraction of volume-ticks with 2 disks down.
    pub critical_fraction: f64,
    /// Foreground writes refused by the critical write fence.
    pub fenced_writes: u64,
    /// Scrub stats.
    pub scrub: ScrubStats,
    /// Throttle stats.
    pub throttle: ThrottleStats,
    /// Foreground stats.
    pub foreground: ForegroundStats,
    /// Analytic-vs-measured model comparison.
    pub models: ModelStats,
}

fn f3(x: f64) -> String {
    format!("{x:.3}")
}

fn opt_f3(x: Option<f64>) -> String {
    x.map_or_else(|| "null".to_string(), f3)
}

fn dist_json(d: Option<&DistSummary>) -> String {
    match d {
        None => "null".to_string(),
        Some(d) => format!(
            "{{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"max\": {}}}",
            d.count,
            f3(d.mean),
            f3(d.p50),
            f3(d.p95),
            f3(d.max)
        ),
    }
}

impl FleetReport {
    /// Schema version stamped into the JSON (bump on breaking changes;
    /// `make fleet-smoke` pins it).
    pub const SCHEMA_VERSION: u32 = 1;

    /// Deterministic JSON: fixed key order, fixed-precision floats —
    /// byte-identical for a fixed seed.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {},\n", Self::SCHEMA_VERSION));
        s.push_str(&format!("  \"code\": \"{}\",\n", self.code));
        s.push_str(&format!("  \"disks\": {},\n", self.disks));
        s.push_str(&format!("  \"volumes\": {},\n", self.volumes));
        s.push_str(&format!("  \"hours\": {},\n", f3(self.hours)));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"stripes\": {},\n", self.stripes));
        s.push_str(&format!("  \"element_size\": {},\n", self.element_size));
        s.push_str(&format!("  \"disk_failures\": {},\n", self.disk_failures));
        s.push_str(&format!("  \"rebuilds_completed\": {},\n", self.rebuilds_completed));
        s.push_str(&format!("  \"data_loss_events\": {},\n", self.data_loss_events));
        let lost: Vec<String> =
            self.lost_volumes.iter().map(|(v, t)| format!("[{}, {}]", v, f3(*t))).collect();
        s.push_str(&format!("  \"lost_volumes\": [{}],\n", lost.join(", ")));
        s.push_str(&format!("  \"mttr_h\": {},\n", dist_json(self.mttr_h.as_ref())));
        s.push_str(&format!("  \"rebuild_io_ms\": {},\n", dist_json(self.rebuild_io_ms.as_ref())));
        let timeline: Vec<String> =
            self.spares.timeline.iter().map(|(t, a)| format!("[{}, {}]", f3(*t), a)).collect();
        s.push_str(&format!(
            "  \"spare_pool\": {{\"capacity\": {}, \"grants\": {}, \"exhausted_requests\": {}, \
             \"min_available\": {}, \"mean_wait_h\": {}, \"timeline\": [{}]}},\n",
            self.spares.capacity,
            self.spares.grants,
            self.spares.exhausted_requests,
            self.spares.min_available,
            f3(self.spares.mean_wait_h),
            timeline.join(", ")
        ));
        s.push_str(&format!("  \"degraded_fraction\": {},\n", f3(self.degraded_fraction)));
        s.push_str(&format!("  \"critical_fraction\": {},\n", f3(self.critical_fraction)));
        s.push_str(&format!("  \"fenced_writes\": {},\n", self.fenced_writes));
        s.push_str(&format!(
            "  \"scrub\": {{\"passes\": {}, \"stripes_scrubbed\": {}, \"deferred\": {}, \
             \"corruptions_injected\": {}, \"repaired\": {}, \"unlocalizable\": {}}},\n",
            self.scrub.passes,
            self.scrub.stripes_scrubbed,
            self.scrub.deferred,
            self.scrub.corruptions_injected,
            self.scrub.repaired,
            self.scrub.unlocalizable
        ));
        s.push_str(&format!(
            "  \"throttle\": {{\"qos\": {}, \"mean_rate\": {}, \"backoffs\": {}, \
             \"min_rate_ticks\": {}, \"rebuild_ticks\": {}}},\n",
            self.throttle.qos,
            f3(self.throttle.mean_rate),
            self.throttle.backoffs,
            self.throttle.min_rate_ticks,
            self.throttle.rebuild_ticks
        ));
        s.push_str(&format!(
            "  \"foreground\": {{\"ops\": {}, \"p99_healthy_ms\": {}, \"p99_rebuild_ms\": {}, \
             \"inflation\": {}}},\n",
            self.foreground.ops,
            f3(self.foreground.p99_healthy_ms),
            f3(self.foreground.p99_rebuild_ms),
            f3(self.foreground.inflation)
        ));
        s.push_str(&format!(
            "  \"models\": {{\"analytic_rebuild_single_ms\": {}, \
             \"analytic_rebuild_double_ms\": {}, \"analytic_mttdl_h\": {}, \
             \"measured_rebuild_io_ms\": {}, \"measured_mttr_h\": {}, \
             \"measured_mttdl_h\": {}, \"rebuild_io_delta_pct\": {}, \
             \"mttdl_measured_over_analytic\": {}}}\n",
            f3(self.models.analytic_rebuild_single_ms),
            f3(self.models.analytic_rebuild_double_ms),
            f3(self.models.analytic_mttdl_h),
            opt_f3(self.models.measured_rebuild_io_ms),
            opt_f3(self.models.measured_mttr_h),
            opt_f3(self.models.measured_mttdl_h),
            opt_f3(self.models.rebuild_io_delta_pct),
            opt_f3(self.models.mttdl_measured_over_analytic)
        ));
        s.push_str("}\n");
        s
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} volumes × {} ({} disks), {:.0} h, seed {}",
            self.volumes, self.code, self.disks, self.hours, self.seed
        )?;
        writeln!(
            f,
            "  failures: {} ({} rebuilt, {} data-loss)",
            self.disk_failures, self.rebuilds_completed, self.data_loss_events
        )?;
        match &self.mttr_h {
            Some(d) => writeln!(
                f,
                "  MTTR: mean {:.1} h, p50 {:.1} h, p95 {:.1} h, max {:.1} h over {} rebuilds",
                d.mean, d.p50, d.p95, d.max, d.count
            )?,
            None => writeln!(f, "  MTTR: no completed rebuilds")?,
        }
        writeln!(
            f,
            "  spares: {} capacity, {} grants, {} exhausted requests, mean wait {:.1} h",
            self.spares.capacity,
            self.spares.grants,
            self.spares.exhausted_requests,
            self.spares.mean_wait_h
        )?;
        writeln!(
            f,
            "  exposure: degraded {:.2}% of volume-hours, critical {:.2}%, {} fenced writes",
            self.degraded_fraction * 100.0,
            self.critical_fraction * 100.0,
            self.fenced_writes
        )?;
        writeln!(
            f,
            "  scrub: {} passes, {} injected, {} repaired, {} unlocalizable, {} deferred",
            self.scrub.passes,
            self.scrub.corruptions_injected,
            self.scrub.repaired,
            self.scrub.unlocalizable,
            self.scrub.deferred
        )?;
        writeln!(
            f,
            "  throttle{}: mean rate {:.2} stripes/tick, {} backoffs over {} rebuild ticks",
            if self.throttle.qos { "" } else { " (off)" },
            self.throttle.mean_rate,
            self.throttle.backoffs,
            self.throttle.rebuild_ticks
        )?;
        writeln!(
            f,
            "  foreground: {} ops, p99 {:.0} ms healthy / {:.0} ms under rebuild ({:.2}×)",
            self.foreground.ops,
            self.foreground.p99_healthy_ms,
            self.foreground.p99_rebuild_ms,
            self.foreground.inflation
        )?;
        writeln!(
            f,
            "  models: analytic rebuild {:.0} ms, MTTDL {:.3e} h",
            self.models.analytic_rebuild_single_ms, self.models.analytic_mttdl_h
        )?;
        match (
            self.models.measured_rebuild_io_ms,
            self.models.measured_mttr_h,
            self.models.measured_mttdl_h,
        ) {
            (Some(io), Some(mttr), Some(mttdl)) => {
                writeln!(
                    f,
                    "          measured rebuild I/O {:.0} ms ({:+.1}% vs analytic), wall MTTR \
                     {:.1} h, MTTDL {:.3e} h ({:.3e}× analytic)",
                    io,
                    self.models.rebuild_io_delta_pct.unwrap_or(0.0),
                    mttr,
                    mttdl,
                    self.models.mttdl_measured_over_analytic.unwrap_or(0.0)
                )
            }
            _ => writeln!(f, "          measured: no completed rebuilds to feed back"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_summary_percentiles() {
        let mut s = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let d = DistSummary::from(&mut s).unwrap();
        assert_eq!(d.count, 5);
        assert!((d.mean - 3.0).abs() < 1e-12);
        assert_eq!(d.p50, 3.0);
        assert_eq!(d.p95, 5.0);
        assert_eq!(d.max, 5.0);
        assert!(DistSummary::from(&mut Vec::new()).is_none());
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 4.0);
        assert_eq!(percentile(&s, 0.5), 3.0); // round(1.5) = 2
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
