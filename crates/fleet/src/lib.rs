//! Fleet reliability harness.
//!
//! Runs hundreds of [`raid_array::RaidVolume`]s against the disk
//! simulator under one seeded discrete-event clock: Weibull disk-failure
//! and latent-corruption arrivals, a shared hot-spare pool with a
//! replenishment delay and explicit exhaustion handling, a staggered
//! scrub scheduler, and an adaptive rebuild throttle that arbitrates
//! rebuild I/O against foreground workloads. The run's product is a
//! machine-readable [`FleetReport`] whose *measured* rebuild windows feed
//! back into the analytic MTTDL model
//! ([`raid_array::reliability::mttdl_from_inputs`]) next to the closed
//! forms they replace.
//!
//! ```
//! use raid_fleet::{run, FleetConfig};
//! # use std::sync::Arc;
//! # use raid_core::ArrayCode;
//! let code: Arc<dyn ArrayCode> = Arc::new(hv_code::HvCode::new(5).unwrap());
//! let cfg = FleetConfig { volumes: 4, hours: 48.0, ..FleetConfig::default() };
//! let report = run(&code, &cfg);
//! assert_eq!(report.volumes, 4);
//! // Byte-identical for a fixed seed:
//! assert_eq!(report.to_json(), run(&code, &cfg).to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod qos;
pub mod report;
mod rng;
pub mod sim;

pub use config::FleetConfig;
pub use qos::{rebuild_under_load, QosRun};
pub use report::{
    DistSummary, FleetReport, ForegroundStats, ModelStats, ScrubStats, SpareStats, ThrottleStats,
};
pub use sim::run;
