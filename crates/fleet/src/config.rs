//! Fleet-run parameters.

use disk_sim::DiskProfile;
use raid_array::ThrottleConfig;

/// Parameters of one fleet run.
///
/// The defaults describe an *accelerated-life* campaign: Weibull failure
/// arrivals with a 1 500-hour characteristic life compress years of
/// field exposure into a two-week simulated horizon so a 100-volume
/// fleet produces tens of rebuild episodes, while the analytic MTTDL
/// model still consumes the datasheet [`FleetConfig::mttf_hours`] — the
/// acceleration changes how often repairs are *observed*, not how the
/// repair windows feed the Markov chain.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Volumes in the fleet.
    pub volumes: usize,
    /// Simulated horizon, hours.
    pub hours: f64,
    /// Master seed; every volume derives its own streams from it.
    pub seed: u64,
    /// Stripes per volume.
    pub stripes: usize,
    /// Element size per volume, bytes (kept tiny — timing is modeled
    /// through [`DiskProfile`], not through buffer sizes).
    pub element_size: usize,
    /// Disk service-time model for both queueing and the analytic
    /// rebuild estimates.
    pub profile: DiskProfile,
    /// Weibull shape of disk lifetimes (>1 = wear-out).
    pub fail_shape: f64,
    /// Weibull scale (characteristic life) of disk lifetimes, hours.
    /// Deliberately short — an accelerated-life campaign.
    pub fail_scale_h: f64,
    /// Datasheet per-disk MTTF fed to the analytic and measured MTTDL
    /// models, hours.
    pub mttf_hours: f64,
    /// Mean interval between latent/silent-corruption arrivals per
    /// volume, hours (exponential arrivals; scrubbing is what finds
    /// them).
    pub latent_mean_h: f64,
    /// Hot spares the shared pool starts with (and its capacity).
    pub spare_capacity: usize,
    /// Delay to restock one consumed spare, hours.
    pub spare_replenish_h: f64,
    /// Scrub cadence per volume, hours (volumes are staggered across the
    /// interval so the fleet never scrubs in lockstep).
    pub scrub_interval_h: f64,
    /// Scheduling-tick length, hours.
    pub tick_h: f64,
    /// Foreground writes issued per volume per tick.
    pub fg_writes_per_tick: usize,
    /// Elements per foreground write.
    pub fg_write_len: usize,
    /// Zipf skew of the foreground trace (0 = uniform).
    pub fg_theta: f64,
    /// Adaptive rebuild throttling: `true` paces rebuild I/O off
    /// foreground p99, `false` rebuilds at the throttle ceiling
    /// unconditionally.
    pub qos: bool,
    /// Throttle controller tuning.
    pub throttle: ThrottleConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            volumes: 100,
            hours: 336.0,
            seed: 42,
            stripes: 24,
            element_size: 64,
            profile: DiskProfile::savvio_10k(),
            fail_shape: 1.2,
            fail_scale_h: 1_500.0,
            mttf_hours: 1_000_000.0,
            latent_mean_h: 150.0,
            spare_capacity: 12,
            spare_replenish_h: 24.0,
            scrub_interval_h: 168.0,
            tick_h: 1.0,
            fg_writes_per_tick: 4,
            fg_write_len: 2,
            fg_theta: 0.9,
            qos: true,
            throttle: ThrottleConfig::default(),
        }
    }
}

impl FleetConfig {
    /// The spare capacity a fleet of `volumes` defaults to: one spare
    /// per eight volumes, at least two.
    pub fn default_spares_for(volumes: usize) -> usize {
        (volumes / 8).max(2)
    }

    /// Panics with a message if a parameter is out of its domain.
    pub(crate) fn validate(&self) {
        assert!(self.volumes > 0, "need at least one volume");
        assert!(self.hours > 0.0, "need a positive horizon");
        assert!(self.tick_h > 0.0, "need a positive tick");
        assert!(self.stripes > 0 && self.element_size > 0, "need a non-empty volume");
        assert!(self.fail_shape > 0.0 && self.fail_scale_h > 0.0, "bad Weibull parameters");
        assert!(self.mttf_hours > 0.0, "MTTF must be positive");
        assert!(self.latent_mean_h > 0.0, "latent arrival mean must be positive");
        assert!(self.spare_replenish_h >= 0.0, "replenish delay cannot be negative");
        assert!(self.scrub_interval_h > 0.0, "scrub interval must be positive");
        assert!(self.fg_write_len > 0, "foreground writes need a length");
    }
}
