//! The fleet simulator: many [`RaidVolume`]s under one seeded
//! discrete-event clock.
//!
//! Time advances in scheduling ticks ([`FleetConfig::tick_h`]). Each
//! tick, per volume and in deterministic order:
//!
//! 1. **Failure arrivals** — per-disk Weibull lifetimes come due; a
//!    third concurrent failure is a data-loss event (the volume is
//!    retired from the run), otherwise the disk is failed and a spare
//!    requested from the shared pool.
//! 2. **Rebuild** — the throttle grants a stripe budget and
//!    [`RaidVolume::maintain`] spends it; the rebuild burst's ledger is
//!    charged to the volume's disk queues *ahead of* the tick's
//!    foreground writes, and accumulated per rebuild episode for the
//!    measured-MTTR feedback.
//! 3. **Foreground writes** — a Zipf trace from `raid-workloads` replays
//!    against the volume; each write's ledger flows through the same
//!    queues, so its latency includes any wait behind the rebuild burst.
//!    Writes refused by the critical write fence are counted, not
//!    retried.
//! 4. **Throttle feedback** — the tick's foreground p99 versus the
//!    volume's healthy baseline drives the AIMD controller
//!    ([`raid_array::RebuildThrottle`]).
//! 5. **Scrub & latent arrivals** — silent corruptions arrive on a
//!    Weibull clock and are found (and repaired) by the periodic scrub.
//!
//! Spares live in one shared pool with a replenishment delay: a consumed
//! spare is restocked [`FleetConfig::spare_replenish_h`] later, requests
//! beyond the stock queue FIFO, and a volume parked at the correction
//! limit with nothing in the pool fences writes
//! ([`RaidVolume::set_write_fence`]) instead of accepting data with zero
//! redundancy.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use disk_sim::DiskQueues;
use raid_array::mttr::{estimate_rebuild, measured_rebuild_ms};
use raid_array::reliability::{estimate_mttdl, mttdl_from_inputs, MttdlInputs};
use raid_array::{RaidVolume, RebuildThrottle, VolumeError};
use raid_core::stats::Ewma;
use raid_core::{ArrayCode, Cell};
use raid_workloads::skew::zipf_write_trace;

use crate::config::FleetConfig;
use crate::report::{
    percentile, DistSummary, FleetReport, ForegroundStats, ModelStats, ScrubStats, SpareStats,
    ThrottleStats,
};
use crate::rng::Rng;

/// Patterns in each volume's foreground trace before it cycles.
const TRACE_PATTERNS: usize = 256;

/// The shared hot-spare pool.
struct SparePool {
    capacity: usize,
    available: usize,
    /// Hours at which consumed spares come back.
    restocks: Vec<f64>,
    /// FIFO of `(request hour, volume)` waiting for stock.
    waiters: VecDeque<(f64, usize)>,
    timeline: Vec<(f64, usize)>,
    waits_h: Vec<f64>,
    grants: u64,
    exhausted_requests: u64,
    min_available: usize,
}

impl SparePool {
    fn new(capacity: usize) -> Self {
        SparePool {
            capacity,
            available: capacity,
            restocks: Vec::new(),
            waiters: VecDeque::new(),
            timeline: vec![(0.0, capacity)],
            waits_h: Vec::new(),
            grants: 0,
            exhausted_requests: 0,
            min_available: capacity,
        }
    }

    fn note(&mut self, t_h: f64) {
        self.timeline.push((t_h, self.available));
        self.min_available = self.min_available.min(self.available);
    }

    /// Returns restocked spares that came due by `t_h` to the shelf.
    fn restock_due(&mut self, t_h: f64) {
        let before = self.restocks.len();
        self.restocks.retain(|&due| due > t_h);
        let restocked = before - self.restocks.len();
        if restocked > 0 {
            self.available += restocked;
            self.note(t_h);
        }
    }

    fn request(&mut self, t_h: f64, volume: usize) {
        if self.available == 0 {
            self.exhausted_requests += 1;
        }
        self.waiters.push_back((t_h, volume));
    }

    /// Takes one spare off the shelf and schedules its replacement.
    fn consume(&mut self, t_h: f64, requested_h: f64, replenish_h: f64) {
        debug_assert!(self.available > 0);
        self.available -= 1;
        self.restocks.push(t_h + replenish_h);
        self.grants += 1;
        self.waits_h.push(t_h - requested_h);
        self.note(t_h);
    }
}

/// One volume's slice of fleet state.
struct Slot {
    volume: RaidVolume,
    queues: DiskQueues,
    rng: Rng,
    /// Per-disk hour the next failure comes due (∞ while failed).
    next_fail_h: Vec<f64>,
    next_corrupt_h: f64,
    next_scrub_h: f64,
    /// The cycling foreground trace, pre-expanded.
    trace: Vec<(usize, usize)>,
    trace_pos: usize,
    throttle: RebuildThrottle,
    /// EWMA of healthy-tick foreground p99, the throttle's baseline.
    healthy_p99: Ewma,
    /// Hour each currently-failed disk died.
    fail_time_h: BTreeMap<usize, f64>,
    /// Spare requests issued and not yet granted.
    requests_out: usize,
    /// Per-disk element I/O of the active rebuild episode.
    episode_io: Vec<u64>,
    lost_at_h: Option<f64>,
}

impl Slot {
    /// Failed disks not covered by the active rebuild task or by granted
    /// (unconsumed) spares — the number of spares still worth requesting.
    fn uncovered(&self) -> usize {
        let failed = self.volume.failed_disks();
        let covered = self
            .volume
            .rebuild_progress()
            .map_or(0, |t| t.disks.iter().filter(|d| failed.contains(d)).count());
        // Granted-but-unconsumed spares also cover pending need.
        failed.len().saturating_sub(covered).saturating_sub(self.volume.spares())
    }
}

/// Runs one seeded fleet campaign and reports.
///
/// Deterministic for a fixed `(code, cfg)` — every random stream derives
/// from [`FleetConfig::seed`] and volumes step in index order, so
/// [`FleetReport::to_json`] is byte-identical across runs and hosts.
///
/// # Panics
///
/// Panics if the config is out of domain (see [`FleetConfig`] fields).
pub fn run(code: &Arc<dyn ArrayCode>, cfg: &FleetConfig) -> FleetReport {
    cfg.validate();
    let layout = code.layout();
    let (rows, disks) = (layout.rows(), layout.cols());
    let service_ms = cfg.profile.element_service_ms();
    let max_budget = cfg.throttle.max_rate.ceil().max(1.0) as usize;

    // --- Build the fleet. ---
    let mut seeder = Rng::new(cfg.seed);
    let mut slots: Vec<Slot> = (0..cfg.volumes)
        .map(|i| {
            let slot_seed = seeder.next_u64();
            let mut volume =
                RaidVolume::in_memory(Arc::clone(code), cfg.stripes, cfg.element_size);
            volume.set_write_fence(true);
            let data_elements = volume.data_elements();
            let fill: Vec<u8> = (0..data_elements * cfg.element_size)
                .map(|k| (k as u8).wrapping_mul(31).wrapping_add(i as u8))
                .collect();
            volume.write(0, &fill).expect("healthy fill");
            let trace = zipf_write_trace(
                cfg.fg_write_len.min(data_elements),
                TRACE_PATTERNS,
                data_elements,
                cfg.fg_theta,
                slot_seed ^ 0x5EED_F00D,
            )
            .clamped(data_elements)
            .expanded()
            .collect();
            let mut rng = Rng::new(slot_seed);
            let next_fail_h =
                (0..disks).map(|_| rng.weibull(cfg.fail_shape, cfg.fail_scale_h)).collect();
            let next_corrupt_h = rng.weibull(1.0, cfg.latent_mean_h);
            // Stagger scrubs across the interval so the fleet never
            // scrubs in lockstep.
            let next_scrub_h =
                cfg.scrub_interval_h * (i as f64 + 1.0) / cfg.volumes.max(1) as f64;
            Slot {
                volume,
                queues: DiskQueues::new(disks, cfg.profile),
                rng,
                next_fail_h,
                next_corrupt_h,
                next_scrub_h,
                trace,
                trace_pos: 0,
                throttle: RebuildThrottle::new(cfg.throttle),
                healthy_p99: Ewma::new(0.2),
                fail_time_h: BTreeMap::new(),
                requests_out: 0,
                episode_io: vec![0; disks],
                lost_at_h: None,
            }
        })
        .collect();
    let mut pool = SparePool::new(cfg.spare_capacity);

    // --- Run the clock. ---
    let ticks = (cfg.hours / cfg.tick_h).ceil() as u64;
    let mut disk_failures = 0u64;
    let mut rebuilds_completed = 0u64;
    let mut lost_volumes: Vec<(usize, f64)> = Vec::new();
    let mut mttr_samples: Vec<f64> = Vec::new();
    let mut episode_io_samples: Vec<f64> = Vec::new();
    let mut fg_healthy_ms: Vec<f64> = Vec::new();
    let mut fg_rebuild_ms: Vec<f64> = Vec::new();
    let mut fg_ops = 0u64;
    let mut fenced_writes = 0u64;
    let mut degraded_ticks = 0u64;
    let mut critical_ticks = 0u64;
    let mut live_ticks = 0u64;
    let mut scrub = ScrubStats {
        passes: 0,
        stripes_scrubbed: 0,
        deferred: 0,
        corruptions_injected: 0,
        repaired: 0,
        unlocalizable: 0,
    };
    let mut rate_sum = 0.0f64;
    let mut rebuild_ticks = 0u64;
    let mut min_rate_ticks = 0u64;
    let mut backoffs = 0u64;
    let mut tick_lat: Vec<f64> = Vec::new();

    for tick in 0..ticks {
        let t_h = tick as f64 * cfg.tick_h;
        let t_ms = t_h * 3_600_000.0;

        // Fleet phase: restock the pool, then serve waiting volumes FIFO.
        pool.restock_due(t_h);
        while pool.available > 0 {
            let Some((req_h, vi)) = pool.waiters.pop_front() else { break };
            let slot = &mut slots[vi];
            slot.requests_out = slot.requests_out.saturating_sub(1);
            if slot.lost_at_h.is_some() || slot.uncovered() == 0 {
                // Stale request (volume lost, or need already covered).
                continue;
            }
            pool.consume(t_h, req_h, cfg.spare_replenish_h);
            slot.volume.set_spares(slot.volume.spares() + 1);
        }

        // Volume phase, in index order.
        for (vi, slot) in slots.iter_mut().enumerate() {
            if slot.lost_at_h.is_some() {
                continue;
            }

            // 1. Failure arrivals.
            for d in 0..disks {
                if slot.next_fail_h[d] > t_h {
                    continue;
                }
                let due_h = slot.next_fail_h[d];
                slot.next_fail_h[d] = f64::INFINITY;
                if slot.volume.failed_disks().len() >= 2 {
                    // Third concurrent failure: data loss.
                    slot.lost_at_h = Some(t_h);
                    lost_volumes.push((vi, t_h));
                    break;
                }
                disk_failures += 1;
                slot.volume.fail_disk(d).expect("third failure handled above");
                slot.fail_time_h.insert(d, due_h);
            }
            if slot.lost_at_h.is_some() {
                continue;
            }
            // Request spares for any uncovered failures.
            while slot.uncovered() > slot.requests_out {
                slot.requests_out += 1;
                pool.request(t_h, vi);
            }

            // 2. Rebuild under the throttle.
            let failed_before: BTreeSet<usize> =
                slot.volume.failed_disks().into_iter().collect();
            let had_task = slot.volume.rebuild_progress().is_some();
            let can_start = !failed_before.is_empty() && slot.volume.spares() > 0;
            let rebuilding_tick = had_task || can_start;
            if rebuilding_tick {
                let budget =
                    if cfg.qos { slot.throttle.take_budget() } else { max_budget };
                if budget > 0 {
                    let receipt =
                        slot.volume.maintain(budget).expect("in-memory rebuild step");
                    let per_disk = receipt.per_disk_totals();
                    // Rebuild burst queues ahead of this tick's
                    // foreground writes — the conservative order.
                    slot.queues.issue(t_ms, &per_disk);
                    for (acc, n) in slot.episode_io.iter_mut().zip(&per_disk) {
                        *acc += n;
                    }
                    let failed_after: BTreeSet<usize> =
                        slot.volume.failed_disks().into_iter().collect();
                    let mut finished = false;
                    for d in failed_before.difference(&failed_after) {
                        finished = true;
                        rebuilds_completed += 1;
                        let failed_at =
                            slot.fail_time_h.remove(d).unwrap_or(t_h);
                        mttr_samples.push((t_h + cfg.tick_h - failed_at).max(0.0));
                        // The rebuilt disk is factory-fresh: restart its
                        // lifetime clock.
                        slot.next_fail_h[*d] =
                            t_h + slot.rng.weibull(cfg.fail_shape, cfg.fail_scale_h);
                    }
                    if finished {
                        episode_io_samples
                            .push(measured_rebuild_ms(&slot.episode_io, cfg.profile));
                        slot.episode_io.iter_mut().for_each(|n| *n = 0);
                        backoffs += slot.throttle.backoffs();
                        slot.throttle = RebuildThrottle::new(cfg.throttle);
                    }
                }
            }

            // 3. Foreground writes through the same disk queues.
            tick_lat.clear();
            let fill_byte = (tick as u8).wrapping_mul(37).wrapping_add(vi as u8);
            for _ in 0..cfg.fg_writes_per_tick {
                if slot.trace.is_empty() {
                    break;
                }
                let (start, len) = slot.trace[slot.trace_pos];
                slot.trace_pos = (slot.trace_pos + 1) % slot.trace.len();
                let buf = vec![fill_byte; len * cfg.element_size];
                match slot.volume.write(start, &buf) {
                    Ok(receipt) => {
                        fg_ops += 1;
                        let lat = slot.queues.issue(t_ms, &receipt.per_disk_totals());
                        tick_lat.push(lat);
                    }
                    Err(VolumeError::SpareExhausted { .. }) => fenced_writes += 1,
                    Err(e) => panic!("foreground write failed: {e}"),
                }
            }
            tick_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
            let tick_p99 =
                if tick_lat.is_empty() { None } else { Some(percentile(&tick_lat, 0.99)) };

            // 4. Phase bookkeeping and throttle feedback.
            let failed_now = slot.volume.failed_disks().len();
            if rebuilding_tick {
                fg_rebuild_ms.extend_from_slice(&tick_lat);
                rebuild_ticks += 1;
                if cfg.qos {
                    let baseline = slot
                        .healthy_p99
                        .value()
                        .or(tick_p99)
                        .unwrap_or(service_ms);
                    slot.throttle.observe(tick_p99, baseline);
                    rate_sum += slot.throttle.rate();
                    if slot.throttle.rate() <= cfg.throttle.min_rate + 1e-12 {
                        min_rate_ticks += 1;
                    }
                } else {
                    rate_sum += max_budget as f64;
                }
            } else if failed_now == 0 {
                fg_healthy_ms.extend_from_slice(&tick_lat);
                if let Some(p99) = tick_p99 {
                    slot.healthy_p99.observe(p99);
                }
            }

            // 5. Latent-corruption arrivals and the scrub scheduler.
            while slot.next_corrupt_h <= t_h {
                slot.next_corrupt_h += slot.rng.weibull(1.0, cfg.latent_mean_h);
                if failed_now == 0 {
                    let stripe = slot.rng.below(cfg.stripes);
                    let cell = Cell::new(slot.rng.below(rows), slot.rng.below(disks));
                    let byte = slot.rng.below(cfg.element_size);
                    slot.volume.inject_corruption(stripe, cell, byte);
                    scrub.corruptions_injected += 1;
                }
            }
            if slot.next_scrub_h <= t_h {
                slot.next_scrub_h += cfg.scrub_interval_h;
                if failed_now == 0 {
                    let findings = slot.volume.scrub().expect("healthy scrub");
                    scrub.passes += 1;
                    scrub.stripes_scrubbed += cfg.stripes as u64;
                    for (_, report) in findings {
                        match report {
                            raid_core::scrub::ScrubReport::Repaired { .. } => {
                                scrub.repaired += 1
                            }
                            raid_core::scrub::ScrubReport::Unlocalizable { .. } => {
                                scrub.unlocalizable += 1
                            }
                            raid_core::scrub::ScrubReport::Clean => {}
                        }
                    }
                } else {
                    scrub.deferred += 1;
                }
            }

            // 6. Exposure accounting.
            live_ticks += 1;
            if failed_now >= 1 {
                degraded_ticks += 1;
            }
            if failed_now >= 2 {
                critical_ticks += 1;
            }
        }
    }

    // --- Feed the measurements back into the analytic models. ---
    let analytic_rebuild = estimate_rebuild(code.as_ref(), cfg.stripes, cfg.profile);
    let analytic_mttdl = estimate_mttdl(code.as_ref(), cfg.stripes, cfg.profile, cfg.mttf_hours);
    let mttr_dist = DistSummary::from(&mut mttr_samples);
    let io_dist = DistSummary::from(&mut episode_io_samples);
    let double_over_single = analytic_rebuild.double_ms / analytic_rebuild.single_ms;
    let measured_mttdl_h = mttr_dist.map(|d| {
        mttdl_from_inputs(&MttdlInputs {
            disks,
            mttf_hours: cfg.mttf_hours,
            rebuild_one_h: d.mean,
            // Double rebuilds are too rare to measure directly at fleet
            // scale; scale the measured single window by the analytic
            // double/single ratio.
            rebuild_two_h: d.mean * double_over_single,
            // The measured wall MTTR already contains the spare wait —
            // adding a pool model here would double-count it.
            spares: 0,
            spare_replenish_h: 0.0,
        })
        .mttdl_h
    });

    fg_healthy_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    fg_rebuild_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let p99_healthy = percentile(&fg_healthy_ms, 0.99);
    let p99_rebuild = percentile(&fg_rebuild_ms, 0.99);

    let mean_wait_h = if pool.waits_h.is_empty() {
        0.0
    } else {
        pool.waits_h.iter().sum::<f64>() / pool.waits_h.len() as f64
    };

    FleetReport {
        code: code.name().to_string(),
        disks,
        volumes: cfg.volumes,
        hours: cfg.hours,
        seed: cfg.seed,
        stripes: cfg.stripes,
        element_size: cfg.element_size,
        disk_failures,
        rebuilds_completed,
        data_loss_events: lost_volumes.len() as u64,
        lost_volumes,
        mttr_h: mttr_dist,
        rebuild_io_ms: io_dist,
        spares: SpareStats {
            capacity: pool.capacity,
            grants: pool.grants,
            exhausted_requests: pool.exhausted_requests,
            min_available: pool.min_available,
            mean_wait_h,
            timeline: pool.timeline,
        },
        degraded_fraction: if live_ticks == 0 {
            0.0
        } else {
            degraded_ticks as f64 / live_ticks as f64
        },
        critical_fraction: if live_ticks == 0 {
            0.0
        } else {
            critical_ticks as f64 / live_ticks as f64
        },
        fenced_writes,
        scrub,
        throttle: ThrottleStats {
            qos: cfg.qos,
            mean_rate: if rebuild_ticks == 0 { 0.0 } else { rate_sum / rebuild_ticks as f64 },
            backoffs,
            min_rate_ticks,
            rebuild_ticks,
        },
        foreground: ForegroundStats {
            ops: fg_ops,
            p99_healthy_ms: p99_healthy,
            p99_rebuild_ms: p99_rebuild,
            inflation: if p99_healthy > 0.0 && p99_rebuild > 0.0 {
                p99_rebuild / p99_healthy
            } else {
                0.0
            },
        },
        models: ModelStats {
            analytic_rebuild_single_ms: analytic_rebuild.single_ms,
            analytic_rebuild_double_ms: analytic_rebuild.double_ms,
            analytic_mttdl_h: analytic_mttdl.mttdl_h,
            measured_rebuild_io_ms: io_dist.map(|d| d.mean),
            measured_mttr_h: mttr_dist.map(|d| d.mean),
            measured_mttdl_h,
            rebuild_io_delta_pct: io_dist.map(|d| {
                (d.mean - analytic_rebuild.single_ms) / analytic_rebuild.single_ms * 100.0
            }),
            mttdl_measured_over_analytic: measured_mttdl_h
                .map(|m| m / analytic_mttdl.mttdl_h),
        },
    }
}
