//! Single-volume A/B experiment: rebuild under foreground load, with and
//! without the adaptive throttle.
//!
//! [`rebuild_under_load`] drives one [`RaidVolume`] through a warmup of
//! pure foreground traffic (establishing the healthy p99 baseline), kills
//! a disk, and replays the same trace while the rebuild runs. Each tick
//! the rebuild burst is charged to the per-disk queues *before* the
//! tick's foreground writes, so foreground latency pays for whatever
//! rebuild I/O the policy admitted. With `qos` on, the
//! [`RebuildThrottle`] paces the burst off the observed p99; with `qos`
//! off, the rebuild runs at the throttle ceiling every tick.
//!
//! Running the pair `(qos = true, qos = false)` at the same seed is the
//! repo's pinned evidence that the throttle bounds foreground latency
//! inflation at the cost of a longer rebuild.

use std::sync::Arc;

use disk_sim::{DiskProfile, DiskQueues};
use raid_array::{RaidVolume, RebuildThrottle, ThrottleConfig};
use raid_core::ArrayCode;
use raid_workloads::skew::zipf_write_trace;

use crate::report::percentile;

/// Ticks of pure foreground traffic before the failure.
const WARMUP_TICKS: usize = 24;
/// Foreground writes per tick.
const WRITES_PER_TICK: usize = 4;
/// Elements per foreground write.
const WRITE_LEN: usize = 2;
/// Zipf skew of the trace.
const THETA: f64 = 0.9;
/// Patterns in the trace before it cycles.
const TRACE_PATTERNS: usize = 128;
/// Wall-clock spacing between ticks, ms. Sized so the degraded
/// foreground load plus a floor-rate rebuild drains within the tick
/// while a ceiling-rate burst spills backlog into the next one — the
/// regime where pacing actually helps. (Fully saturated, throttling
/// could only prolong the misery; fully idle, it would never engage.)
const TICK_MS: f64 = 4_000.0;
/// Safety valve on the rebuild loop.
const MAX_REBUILD_TICKS: usize = 10_000;

/// Outcome of one rebuild-under-load run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosRun {
    /// Whether the adaptive throttle was on.
    pub qos: bool,
    /// Healthy foreground p99 from the warmup, ms.
    pub baseline_p99_ms: f64,
    /// Foreground p99 while the rebuild ran, ms.
    pub rebuild_p99_ms: f64,
    /// `rebuild_p99 / baseline_p99`.
    pub inflation: f64,
    /// Ticks the rebuild took.
    pub rebuild_ticks: u64,
    /// Mean stripe budget granted per rebuild tick.
    pub mean_rate: f64,
    /// Multiplicative-backoff events in the throttle.
    pub backoffs: u64,
}

/// Rebuilds disk 0 of a freshly filled volume under a Zipf foreground
/// workload and reports the latency cost.
///
/// Deterministic for a fixed `(code, stripes, element_size, seed, qos)`.
///
/// # Panics
///
/// Panics if the volume cannot be built or the rebuild does not finish
/// within the safety valve (it always finishes: the granted budget is at
/// least one stripe per tick).
pub fn rebuild_under_load(
    code: &Arc<dyn ArrayCode>,
    stripes: usize,
    element_size: usize,
    seed: u64,
    qos: bool,
) -> QosRun {
    let profile = DiskProfile::savvio_10k();
    let throttle_cfg = ThrottleConfig::default();
    let max_budget = throttle_cfg.max_rate.ceil().max(1.0) as usize;
    let disks = code.layout().cols();

    let mut volume = RaidVolume::in_memory(Arc::clone(code), stripes, element_size);
    let data_elements = volume.data_elements();
    let fill: Vec<u8> =
        (0..data_elements * element_size).map(|k| (k as u8).wrapping_mul(29)).collect();
    volume.write(0, &fill).expect("healthy fill");

    let trace: Vec<(usize, usize)> =
        zipf_write_trace(WRITE_LEN.min(data_elements), TRACE_PATTERNS, data_elements, THETA, seed)
            .clamped(data_elements)
            .expanded()
            .collect();
    let mut queues = DiskQueues::new(disks, profile);
    let mut pos = 0usize;
    let mut now_ms = 0.0f64;

    // Warmup: healthy baseline.
    let mut healthy: Vec<f64> = Vec::new();
    for _ in 0..WARMUP_TICKS {
        for _ in 0..WRITES_PER_TICK {
            let (start, len) = trace[pos];
            pos = (pos + 1) % trace.len();
            let buf = vec![0xA5u8; len * element_size];
            let receipt = volume.write(start, &buf).expect("healthy write");
            healthy.push(queues.issue(now_ms, &receipt.per_disk_totals()));
        }
        now_ms += TICK_MS;
    }
    healthy.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let baseline = percentile(&healthy, 0.99);

    // Kill a disk with one spare on the shelf; auto-heal opens the
    // rebuild task, and maintain() paces it from here.
    volume.set_spares(1);
    volume.fail_disk(0).expect("first failure");

    let mut throttle = RebuildThrottle::new(throttle_cfg);
    let mut under_rebuild: Vec<f64> = Vec::new();
    let mut rebuild_ticks = 0u64;
    let mut budget_sum = 0u64;
    while !volume.failed_disks().is_empty() {
        assert!(
            (rebuild_ticks as usize) < MAX_REBUILD_TICKS,
            "rebuild did not finish within {MAX_REBUILD_TICKS} ticks"
        );
        rebuild_ticks += 1;
        let budget = if qos { throttle.take_budget() } else { max_budget };
        budget_sum += budget as u64;
        if budget > 0 {
            let receipt = volume.maintain(budget).expect("rebuild step");
            queues.issue(now_ms, &receipt.per_disk_totals());
        }
        let mut tick_lat: Vec<f64> = Vec::new();
        for _ in 0..WRITES_PER_TICK {
            let (start, len) = trace[pos];
            pos = (pos + 1) % trace.len();
            let buf = vec![0x5Au8; len * element_size];
            let receipt = volume.write(start, &buf).expect("degraded write");
            tick_lat.push(queues.issue(now_ms, &receipt.per_disk_totals()));
        }
        under_rebuild.extend_from_slice(&tick_lat);
        if qos {
            tick_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
            let tick_p99 =
                if tick_lat.is_empty() { None } else { Some(percentile(&tick_lat, 0.99)) };
            throttle.observe(tick_p99, baseline);
        }
        now_ms += TICK_MS;
    }

    under_rebuild.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let rebuild_p99 = percentile(&under_rebuild, 0.99);
    QosRun {
        qos,
        baseline_p99_ms: baseline,
        rebuild_p99_ms: rebuild_p99,
        inflation: if baseline > 0.0 { rebuild_p99 / baseline } else { 0.0 },
        rebuild_ticks,
        mean_rate: if rebuild_ticks == 0 { 0.0 } else { budget_sum as f64 / rebuild_ticks as f64 },
        backoffs: throttle.backoffs(),
    }
}
