//! End-to-end checks of the fleet harness: determinism, accelerated-life
//! behavior, spare-pool exhaustion, and the measured-model feedback.

use std::sync::Arc;

use raid_core::ArrayCode;
use raid_fleet::{run, FleetConfig, FleetReport};

fn hv5() -> Arc<dyn ArrayCode> {
    Arc::new(hv_code::HvCode::new(5).expect("p=5 is prime"))
}

/// A small-but-busy campaign: short horizon, hot failure rate, small
/// pool — every subsystem (failures, spares, scrub, throttle) exercises.
fn busy_config() -> FleetConfig {
    FleetConfig {
        volumes: 8,
        hours: 96.0,
        seed: 7,
        stripes: 12,
        element_size: 16,
        fail_scale_h: 150.0,
        latent_mean_h: 40.0,
        spare_capacity: 3,
        spare_replenish_h: 12.0,
        scrub_interval_h: 24.0,
        ..FleetConfig::default()
    }
}

#[test]
fn seeded_runs_are_byte_identical() {
    let code = hv5();
    let cfg = busy_config();
    let a = run(&code, &cfg);
    let b = run(&code, &cfg);
    assert_eq!(a.to_json(), b.to_json());
    // And a different seed actually changes the outcome.
    let c = run(&code, &FleetConfig { seed: 8, ..busy_config() });
    assert_ne!(a.to_json(), c.to_json());
}

#[test]
fn accelerated_life_campaign_exercises_every_subsystem() {
    let code = hv5();
    let report = run(&code, &busy_config());

    // Failures arrived and rebuilds completed.
    assert!(report.disk_failures > 0, "no failures at scale 150 h over 96 h: {report}");
    assert!(report.rebuilds_completed > 0, "no rebuilds completed: {report}");
    let mttr = report.mttr_h.expect("completed rebuilds imply an MTTR distribution");
    assert!(mttr.count == report.rebuilds_completed);
    assert!(mttr.mean > 0.0 && mttr.max >= mttr.p95 && mttr.p95 >= mttr.p50);

    // The spare pool was used and its timeline is monotone in time.
    assert!(report.spares.grants > 0);
    assert_eq!(report.spares.timeline.first(), Some(&(0.0, report.spares.capacity)));
    for w in report.spares.timeline.windows(2) {
        assert!(w[1].0 >= w[0].0, "timeline goes backwards: {:?}", w);
    }

    // Scrub passes ran and found at least one injected corruption.
    assert!(report.scrub.passes > 0);
    assert!(report.scrub.corruptions_injected > 0);
    assert!(
        report.scrub.repaired + report.scrub.unlocalizable > 0,
        "scrub never caught an injected corruption: {report}"
    );

    // Degraded exposure is a fraction, and the measured models populated.
    assert!(report.degraded_fraction > 0.0 && report.degraded_fraction <= 1.0);
    assert!(report.models.measured_mttr_h.is_some());
    assert!(report.models.measured_mttdl_h.unwrap() > 0.0);
    assert!(report.models.rebuild_io_delta_pct.is_some());
}

#[test]
fn measured_mttr_degrades_mttdl_relative_to_the_closed_form() {
    // The measured wall MTTR includes spare waits and throttling, so it
    // is much longer than the pure-I/O analytic window — the fed-back
    // MTTDL must come out worse (smaller) than the analytic one.
    let code = hv5();
    let report = run(&code, &busy_config());
    let ratio = report
        .models
        .mttdl_measured_over_analytic
        .expect("rebuilds completed, so the ratio exists");
    assert!(
        ratio > 0.0 && ratio < 1.0,
        "measured MTTDL should be below analytic (ratio {ratio}): {report}"
    );
}

#[test]
fn starved_spare_pool_parks_volumes_and_fences_writes() {
    // No spares and none ever restocked: every failure stays uncovered,
    // second failures park volumes in the fenced critical state.
    let code = hv5();
    let cfg = FleetConfig {
        spare_capacity: 0,
        spare_replenish_h: 1e9,
        fail_scale_h: 60.0,
        hours: 192.0,
        ..busy_config()
    };
    let report = run(&code, &cfg);
    assert_eq!(report.rebuilds_completed, 0);
    assert!(report.spares.grants == 0);
    assert!(report.spares.exhausted_requests > 0, "pool never reported exhaustion: {report}");
    assert!(report.fenced_writes > 0, "critical volumes never fenced a write: {report}");
    assert!(report.critical_fraction > 0.0);
    assert!(report.models.measured_mttr_h.is_none(), "no rebuilds means no measured MTTR");
}

#[test]
fn json_schema_is_stable_and_parsable_shape() {
    let code = hv5();
    let cfg = FleetConfig { volumes: 2, hours: 24.0, ..busy_config() };
    let json = run(&code, &cfg).to_json();
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    for key in [
        "\"schema_version\": 1",
        "\"code\": \"HV Code\"",
        "\"disks\"",
        "\"volumes\": 2",
        "\"mttr_h\"",
        "\"spare_pool\"",
        "\"degraded_fraction\"",
        "\"fenced_writes\"",
        "\"scrub\"",
        "\"throttle\"",
        "\"foreground\"",
        "\"models\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    assert_eq!(FleetReport::SCHEMA_VERSION, 1);
}

#[test]
fn baseline_codes_run_through_the_same_harness() {
    // The report is code-agnostic: RDP at the same seed also runs clean.
    let code = raid_verify::build("rdp", 5).expect("rdp p=5");
    let report = run(&code, &FleetConfig { volumes: 4, hours: 48.0, ..busy_config() });
    assert_eq!(report.code, "RDP");
    assert!(report.disk_failures > 0);
}
