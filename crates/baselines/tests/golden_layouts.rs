//! Golden-layout snapshots: pin each construction's parity placement so an
//! accidental change to the build functions cannot slip past the (shape-
//! insensitive) MDS tests. Legend: `.` data, `H` horizontal, `V` vertical,
//! `D` diagonal, `A` anti-diagonal, `X` horizontal-diagonal parity.

use raid_baselines::{EvenOddCode, HCode, HdpCode, PCode, RdpCode, XCode};
use raid_core::ArrayCode;

#[test]
fn rdp_p5() {
    assert_eq!(
        RdpCode::new(5).unwrap().layout().render_ascii(),
        "....HD\n....HD\n....HD\n....HD\n"
    );
}

#[test]
fn evenodd_p5() {
    assert_eq!(
        EvenOddCode::new(5).unwrap().layout().render_ascii(),
        ".....HD\n.....HD\n.....HD\n.....HD\n"
    );
}

#[test]
fn xcode_p5() {
    assert_eq!(
        XCode::new(5).unwrap().layout().render_ascii(),
        ".....\n.....\n.....\nDDDDD\nAAAAA\n"
    );
}

#[test]
fn hcode_p5() {
    // Disk 0 data-only, anti-diagonal parities on the shifted diagonal,
    // dedicated horizontal disk last.
    assert_eq!(
        HCode::new(5).unwrap().layout().render_ascii(),
        ".A...H\n..A..H\n...A.H\n....AH\n"
    );
}

#[test]
fn hdp_p5() {
    // Horizontal-diagonal parity on the main diagonal, anti-diagonal parity
    // on the anti-diagonal.
    assert_eq!(
        HdpCode::new(5).unwrap().layout().render_ascii(),
        "X..A\n.XA.\n.AX.\nA..X\n"
    );
}

#[test]
fn pcode_p7() {
    // Parity row across disks 1..p−1; last disk data-only.
    assert_eq!(
        PCode::new(7).unwrap().layout().render_ascii(),
        "VVVVVV.\n.......\n.......\n"
    );
}
