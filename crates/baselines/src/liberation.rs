//! A Liberation-style minimum-density bit-matrix RAID-6 code (Plank,
//! FAST'08 — cited in the paper's list of MDS RAID-6 codes).
//!
//! Bit-matrix codes split every disk's stripe unit into `w = p` *packets*
//! and describe the second parity disk by one `w × w` binary matrix `X_i`
//! per data disk: Q's packet `r` is the XOR of the data packets selected by
//! row `r` of every `X_i`. The P disk uses identity matrices (plain row
//! XOR). The code is MDS iff every `X_i` and every pairwise sum
//! `X_i ⊕ X_j` is nonsingular over GF(2).
//!
//! Liberation codes choose `X_i = σ^i ⊕ E_i` — a cyclic shift plus a
//! *single extra one* — hitting the minimum possible density (`w + 1` ones
//! per matrix) so updates touch as few Q packets as possible. The extra
//! one for disk `i` goes at row `r_i ≡ (1 − i)·2⁻¹ (mod w)` and column
//! `c_i = r_i + i − 1 (mod w)`: one diagonal to the left of the shift
//! diagonal, rows stepping by the half of `1 − i`. Placing two extras in
//! the same row is always fatal — `(X_i ⊕ X_j)·𝟙 = e_{r_i} ⊕ e_{r_j}`
//! because the circulant part annihilates the all-ones vector — so the
//! rows `r_i` must form a system of distinct representatives, which the
//! halving walk provides. The positions are **verified**, not trusted:
//! construction re-checks every matrix and pairwise sum by Gaussian
//! elimination (the MDS battery below and `raid-verify` are further
//! proof; see DESIGN.md §2), and falls back to a first-fit backtracking
//! search over all `w²` positions per disk if the battery ever fails
//! (it holds for every prime `w ≤ 31`, beyond the supported range).
//!
//! Because a packet is just a row of the layout grid, the whole
//! construction maps onto [`Layout`] — `w` rows, `k + 2` columns — and
//! inherits every generic planner.

use raid_core::layout::{Chain, ElementKind, ParityClass};
use raid_core::{ArrayCode, Cell, Layout};
use raid_math::Prime;

use crate::CodeError;

/// A `w × w` binary matrix stored as one `u32` bitmask per row.
type BitMat = Vec<u32>;

fn identity(w: usize) -> BitMat {
    (0..w).map(|r| 1u32 << r).collect()
}

/// Cyclic shift: row `r` has its one at column `(r + s) mod w`.
fn shift(w: usize, s: usize) -> BitMat {
    (0..w).map(|r| 1u32 << ((r + s) % w)).collect()
}

fn xor_mat(a: &BitMat, b: &BitMat) -> BitMat {
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

/// Nonsingularity over GF(2) by elimination on row bitmasks.
fn invertible(m: &BitMat) -> bool {
    let w = m.len();
    let mut rows = m.clone();
    let mut rank = 0;
    for col in 0..w {
        let Some(pivot) = (rank..w).find(|&r| rows[r] >> col & 1 == 1) else {
            continue;
        };
        rows.swap(rank, pivot);
        for r in 0..w {
            if r != rank && rows[r] >> col & 1 == 1 {
                rows[r] ^= rows[rank];
            }
        }
        rank += 1;
    }
    rank == w
}

/// True if every matrix and every pairwise sum is nonsingular — the MDS
/// condition for a bit-matrix RAID-6 code.
fn mds_battery(mats: &[BitMat]) -> bool {
    mats.iter().all(invertible)
        && (0..mats.len()).all(|a| {
            (a + 1..mats.len()).all(|b| invertible(&xor_mat(&mats[a], &mats[b])))
        })
}

/// The closed-form coding matrices: `X_0 = I`, and for `i ≥ 1` the extra
/// one at `(r_i, c_i)` with `r_i ≡ (1 − i)·2⁻¹ (mod w)` and
/// `c_i = r_i + i − 1 (mod w)` (see the module doc). Runs the full
/// nonsingularity battery before returning; `None` means the formula does
/// not hold at this `w` and the caller should fall back to the search.
fn closed_form_matrices(w: usize, k: usize) -> Option<Vec<BitMat>> {
    if w.is_multiple_of(2) || k > w {
        return None;
    }
    let inv2 = w.div_ceil(2); // 2·(w+1)/2 = w + 1 ≡ 1 (mod w) for odd w
    let mut mats = vec![identity(w)];
    for i in 1..k {
        let r = ((1 + (w - 1) * i) * inv2) % w; // (1 − i)·2⁻¹ mod w
        let c = (r + i + w - 1) % w; // never the shift diagonal r + i
        let mut m = shift(w, i);
        m[r] ^= 1u32 << c;
        mats.push(m);
    }
    mds_battery(&mats).then_some(mats)
}

/// Fallback: searches the extra-one positions by backtracking first-fit
/// over the `w²` candidates per disk, verifying nonsingularity as it
/// goes. Exponential in the worst case — only reached if
/// [`closed_form_matrices`] declines.
fn search_matrices(w: usize, k: usize) -> Option<Vec<BitMat>> {
    fn go(w: usize, k: usize, acc: &mut Vec<BitMat>) -> bool {
        if acc.len() == k {
            return true;
        }
        let i = acc.len();
        let base = shift(w, i);
        for r in 0..w {
            for c in 0..w {
                let mut cand = base.clone();
                cand[r] ^= 1u32 << c;
                if cand[r] == 0 {
                    continue; // the extra one cancelled the shift's one
                }
                if !invertible(&cand) {
                    continue;
                }
                if acc.iter().all(|x| invertible(&xor_mat(x, &cand))) {
                    acc.push(cand);
                    if go(w, k, acc) {
                        return true;
                    }
                    acc.pop();
                }
            }
        }
        false
    }

    let mut acc = vec![identity(w)];
    // X_0 = I already satisfies invertibility; pairs are checked as the
    // others are placed.
    go(w, k, &mut acc).then_some(acc)
}

/// The Liberation-style code over `k + 2` disks with `w = p` packets.
///
/// ```
/// use raid_baselines::liberation::LiberationCode;
/// use raid_core::ArrayCode;
///
/// let code = LiberationCode::new(5)?; // w = 5 packets, 7 disks
/// assert_eq!(code.disks(), 7);
/// assert_eq!(code.rows(), 5);
/// # Ok::<(), raid_baselines::CodeError>(())
/// ```
#[derive(Debug)]
pub struct LiberationCode {
    p: Prime,
    layout: Layout,
    /// Ones per Q coding matrix, for density reporting.
    matrix_ones: Vec<usize>,
}

impl LiberationCode {
    /// Builds the code with `k = p` data disks (the full-width shape).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if `p` is not prime or neither the closed
    /// form nor the fallback search yields valid matrices (both succeed
    /// for every prime the tests sweep).
    pub fn new(p: usize) -> Result<Self, CodeError> {
        let prime = Prime::new(p)?;
        let w = p;
        let k = p;
        let mats = closed_form_matrices(w, k)
            .or_else(|| search_matrices(w, k))
            .ok_or(CodeError::TooSmall { p, min: 5 })?;
        let matrix_ones = mats
            .iter()
            .map(|m| m.iter().map(|r| r.count_ones() as usize).sum())
            .collect();
        Ok(LiberationCode { p: prime, layout: build_layout(w, k, &mats), matrix_ones })
    }

    /// Ones per coding matrix — `w` for `X_0` (identity) and `w + 1` for
    /// the rest, the minimum-density signature.
    pub fn matrix_ones(&self) -> &[usize] {
        &self.matrix_ones
    }
}

impl ArrayCode for LiberationCode {
    fn name(&self) -> &str {
        "Liberation"
    }

    fn prime(&self) -> Prime {
        self.p
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

fn build_layout(w: usize, k: usize, mats: &[BitMat]) -> Layout {
    let cols = k + 2;
    let (p_col, q_col) = (k, k + 1);

    let mut kinds = vec![ElementKind::Data; w * cols];
    for r in 0..w {
        kinds[Cell::new(r, p_col).index(cols)] = ElementKind::Parity(ParityClass::Horizontal);
        kinds[Cell::new(r, q_col).index(cols)] = ElementKind::Parity(ParityClass::Diagonal);
    }

    let mut chains = Vec::with_capacity(2 * w);
    // P: plain row parity over the data disks.
    for r in 0..w {
        chains.push(Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(r, p_col),
            members: (0..k).map(|i| Cell::new(r, i)).collect(),
        });
    }
    // Q: packet r gathers data packet c of disk i wherever X_i[r][c] = 1.
    for r in 0..w {
        let mut members = Vec::new();
        for (i, x) in mats.iter().enumerate() {
            for c in 0..w {
                if x[r] >> c & 1 == 1 {
                    members.push(Cell::new(c, i));
                }
            }
        }
        chains.push(Chain {
            class: ParityClass::Diagonal,
            parity: Cell::new(r, q_col),
            members,
        });
    }

    Layout::new(w, cols, kinds, chains).expect("Liberation construction yields a valid layout")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_raid6_code;
    use raid_core::plan::update::update_complexity;

    #[test]
    fn closed_form_passes_the_full_battery() {
        // The formula-placed matrices survive the exact Gaussian battery
        // at every supported prime — instant, unlike the old search,
        // which took minutes at p = 17 in debug builds.
        for p in [5usize, 7, 11, 13, 17, 19, 23, 29, 31] {
            let mats = closed_form_matrices(p, p).unwrap_or_else(|| panic!("w={p}"));
            assert!(mds_battery(&mats), "w={p}");
        }
    }

    #[test]
    fn construction_succeeds_and_is_minimum_density() {
        for p in [5usize, 7, 11, 13, 17, 19] {
            let code = LiberationCode::new(p).unwrap();
            let ones = code.matrix_ones();
            assert_eq!(ones[0], p, "X_0 is the identity");
            assert!(
                ones[1..].iter().all(|&o| o == p + 1),
                "p={p}: non-minimal density {ones:?}"
            );
        }
    }

    #[test]
    fn q_chains_have_minimal_total_size() {
        // Total Q-chain membership = total ones = p + (p−1)(p+1) = p² + p − 1...
        // wait: k = p matrices: identity (p ones) + (p−1) matrices of p+1.
        for p in [5usize, 7, 11] {
            let code = LiberationCode::new(p).unwrap();
            let q_members: usize = code
                .layout()
                .chains()
                .iter()
                .filter(|ch| matches!(ch.class, ParityClass::Diagonal))
                .map(|ch| ch.members.len())
                .sum();
            assert_eq!(q_members, p + (p - 1) * (p + 1), "p={p}");
        }
    }

    #[test]
    fn update_complexity_near_optimal() {
        // Each data packet is in exactly one P chain and on average just
        // over one Q chain — the minimum-density promise.
        for p in [5usize, 7, 11] {
            let code = LiberationCode::new(p).unwrap();
            let avg = update_complexity(code.layout());
            let expected = 1.0 + (p as f64 * p as f64 + p as f64 - 1.0) / (p as f64 * p as f64);
            assert!((avg - expected).abs() < 1e-9, "p={p}: {avg} vs {expected}");
        }
    }

    #[test]
    fn raid6_battery() {
        for p in [5usize, 7, 11] {
            assert_raid6_code(&LiberationCode::new(p).unwrap());
        }
    }
}
