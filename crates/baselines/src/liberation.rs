//! A Liberation-style minimum-density bit-matrix RAID-6 code (Plank,
//! FAST'08 — cited in the paper's list of MDS RAID-6 codes).
//!
//! Bit-matrix codes split every disk's stripe unit into `w = p` *packets*
//! and describe the second parity disk by one `w × w` binary matrix `X_i`
//! per data disk: Q's packet `r` is the XOR of the data packets selected by
//! row `r` of every `X_i`. The P disk uses identity matrices (plain row
//! XOR). The code is MDS iff every `X_i` and every pairwise sum
//! `X_i ⊕ X_j` is nonsingular over GF(2).
//!
//! Liberation codes choose `X_i = σ^i ⊕ E_i` — a cyclic shift plus a
//! *single extra one* — hitting the minimum possible density (`w + 1` ones
//! per matrix) so updates touch as few Q packets as possible. Plank gives
//! closed-form positions for the extra ones; this implementation instead
//! **searches** the extra-one position per disk (first-fit with
//! backtracking) and verifies the nonsingularity conditions, yielding
//! matrices with the same density and the same MDS guarantee (the
//! exhaustive battery below is the proof; see DESIGN.md §2).
//!
//! Because a packet is just a row of the layout grid, the whole
//! construction maps onto [`Layout`] — `w` rows, `k + 2` columns — and
//! inherits every generic planner.

use raid_core::layout::{Chain, ElementKind, ParityClass};
use raid_core::{ArrayCode, Cell, Layout};
use raid_math::Prime;

use crate::CodeError;

/// A `w × w` binary matrix stored as one `u32` bitmask per row.
type BitMat = Vec<u32>;

fn identity(w: usize) -> BitMat {
    (0..w).map(|r| 1u32 << r).collect()
}

/// Cyclic shift: row `r` has its one at column `(r + s) mod w`.
fn shift(w: usize, s: usize) -> BitMat {
    (0..w).map(|r| 1u32 << ((r + s) % w)).collect()
}

fn xor_mat(a: &BitMat, b: &BitMat) -> BitMat {
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

/// Nonsingularity over GF(2) by elimination on row bitmasks.
fn invertible(m: &BitMat) -> bool {
    let w = m.len();
    let mut rows = m.clone();
    let mut rank = 0;
    for col in 0..w {
        let Some(pivot) = (rank..w).find(|&r| rows[r] >> col & 1 == 1) else {
            continue;
        };
        rows.swap(rank, pivot);
        for r in 0..w {
            if r != rank && rows[r] >> col & 1 == 1 {
                rows[r] ^= rows[rank];
            }
        }
        rank += 1;
    }
    rank == w
}

/// Searches the per-disk coding matrices: `X_0 = I`, and for `i ≥ 1`
/// `X_i = σ^i ⊕ (one extra bit)` such that every matrix and every pairwise
/// sum stays nonsingular. Backtracking first-fit over the `w²` candidate
/// positions per disk.
fn search_matrices(w: usize, k: usize) -> Option<Vec<BitMat>> {
    fn go(w: usize, k: usize, acc: &mut Vec<BitMat>) -> bool {
        if acc.len() == k {
            return true;
        }
        let i = acc.len();
        let base = shift(w, i);
        for r in 0..w {
            for c in 0..w {
                let mut cand = base.clone();
                cand[r] ^= 1u32 << c;
                if cand[r] == 0 {
                    continue; // the extra one cancelled the shift's one
                }
                if !invertible(&cand) {
                    continue;
                }
                if acc.iter().all(|x| invertible(&xor_mat(x, &cand))) {
                    acc.push(cand);
                    if go(w, k, acc) {
                        return true;
                    }
                    acc.pop();
                }
            }
        }
        false
    }

    let mut acc = vec![identity(w)];
    // X_0 = I already satisfies invertibility; pairs are checked as the
    // others are placed.
    go(w, k, &mut acc).then_some(acc)
}

/// The Liberation-style code over `k + 2` disks with `w = p` packets.
///
/// ```
/// use raid_baselines::liberation::LiberationCode;
/// use raid_core::ArrayCode;
///
/// let code = LiberationCode::new(5)?; // w = 5 packets, 7 disks
/// assert_eq!(code.disks(), 7);
/// assert_eq!(code.rows(), 5);
/// # Ok::<(), raid_baselines::CodeError>(())
/// ```
#[derive(Debug)]
pub struct LiberationCode {
    p: Prime,
    layout: Layout,
    /// Ones per Q coding matrix, for density reporting.
    matrix_ones: Vec<usize>,
}

impl LiberationCode {
    /// Builds the code with `k = p` data disks (the full-width shape).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if `p` is not prime or the matrix search
    /// fails (it succeeds for every prime the tests sweep).
    pub fn new(p: usize) -> Result<Self, CodeError> {
        let prime = Prime::new(p)?;
        let w = p;
        let k = p;
        let mats = search_matrices(w, k).ok_or(CodeError::TooSmall { p, min: 5 })?;
        let matrix_ones = mats
            .iter()
            .map(|m| m.iter().map(|r| r.count_ones() as usize).sum())
            .collect();
        Ok(LiberationCode { p: prime, layout: build_layout(w, k, &mats), matrix_ones })
    }

    /// Ones per coding matrix — `w` for `X_0` (identity) and `w + 1` for
    /// the rest, the minimum-density signature.
    pub fn matrix_ones(&self) -> &[usize] {
        &self.matrix_ones
    }
}

impl ArrayCode for LiberationCode {
    fn name(&self) -> &str {
        "Liberation"
    }

    fn prime(&self) -> Prime {
        self.p
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

fn build_layout(w: usize, k: usize, mats: &[BitMat]) -> Layout {
    let cols = k + 2;
    let (p_col, q_col) = (k, k + 1);

    let mut kinds = vec![ElementKind::Data; w * cols];
    for r in 0..w {
        kinds[Cell::new(r, p_col).index(cols)] = ElementKind::Parity(ParityClass::Horizontal);
        kinds[Cell::new(r, q_col).index(cols)] = ElementKind::Parity(ParityClass::Diagonal);
    }

    let mut chains = Vec::with_capacity(2 * w);
    // P: plain row parity over the data disks.
    for r in 0..w {
        chains.push(Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(r, p_col),
            members: (0..k).map(|i| Cell::new(r, i)).collect(),
        });
    }
    // Q: packet r gathers data packet c of disk i wherever X_i[r][c] = 1.
    for r in 0..w {
        let mut members = Vec::new();
        for (i, x) in mats.iter().enumerate() {
            for c in 0..w {
                if x[r] >> c & 1 == 1 {
                    members.push(Cell::new(c, i));
                }
            }
        }
        chains.push(Chain {
            class: ParityClass::Diagonal,
            parity: Cell::new(r, q_col),
            members,
        });
    }

    Layout::new(w, cols, kinds, chains).expect("Liberation construction yields a valid layout")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_raid6_code;
    use raid_core::plan::update::update_complexity;

    #[test]
    fn construction_succeeds_and_is_minimum_density() {
        for p in [5usize, 7, 11, 13] {
            let code = LiberationCode::new(p).unwrap();
            let ones = code.matrix_ones();
            assert_eq!(ones[0], p, "X_0 is the identity");
            assert!(
                ones[1..].iter().all(|&o| o == p + 1),
                "p={p}: non-minimal density {ones:?}"
            );
        }
    }

    #[test]
    fn q_chains_have_minimal_total_size() {
        // Total Q-chain membership = total ones = p + (p−1)(p+1) = p² + p − 1...
        // wait: k = p matrices: identity (p ones) + (p−1) matrices of p+1.
        for p in [5usize, 7, 11] {
            let code = LiberationCode::new(p).unwrap();
            let q_members: usize = code
                .layout()
                .chains()
                .iter()
                .filter(|ch| matches!(ch.class, ParityClass::Diagonal))
                .map(|ch| ch.members.len())
                .sum();
            assert_eq!(q_members, p + (p - 1) * (p + 1), "p={p}");
        }
    }

    #[test]
    fn update_complexity_near_optimal() {
        // Each data packet is in exactly one P chain and on average just
        // over one Q chain — the minimum-density promise.
        for p in [5usize, 7, 11] {
            let code = LiberationCode::new(p).unwrap();
            let avg = update_complexity(code.layout());
            let expected = 1.0 + (p as f64 * p as f64 + p as f64 - 1.0) / (p as f64 * p as f64);
            assert!((avg - expected).abs() < 1e-9, "p={p}: {avg} vs {expected}");
        }
    }

    #[test]
    fn raid6_battery() {
        for p in [5usize, 7, 11] {
            assert_raid6_code(&LiberationCode::new(p).unwrap());
        }
    }
}
