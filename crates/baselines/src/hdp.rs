//! HDP — Horizontal-Diagonal Parity code (Wu, He, Wu, Wan, Liu, Cao & Xie,
//! DSN 2011).
//!
//! A code over `p − 1` disks with a `(p−1) × (p−1)` stripe (0-based rows
//! and columns `0..p−2`). Row `i` carries two parities:
//!
//! * the **horizontal-diagonal parity** `E_{i,i}` = XOR of *every other
//!   element of row `i`*, including the row's anti-diagonal parity — the
//!   parity-into-parity coupling that gives HDP its "3 extra updates"
//!   (Table III) and its weaker double-failure parallelism;
//! * the **anti-diagonal parity** `E_{i,p−2−i}`, whose chain is the wrapped
//!   diagonal `⟨row − col⟩_p = ⟨2i + 2⟩_p` running through the parity cell
//!   itself: the cells `(r, ⟨r − 2i − 2⟩_p)` that fall inside the stripe.
//!   Exactly one position of that diagonal falls off the grid (column
//!   `p − 1`), and none of the other cells is a parity, so the chain has
//!   `p − 3` data members — chain length `p − 2`, the short chain of
//!   Table III. The shape is pinned by this module's exhaustive MDS tests
//!   (see DESIGN.md §2).

use raid_core::layout::{Chain, ElementKind, ParityClass};
use raid_core::{ArrayCode, Cell, Layout};
use raid_math::Prime;

use crate::CodeError;

/// The HDP code over `p − 1` disks.
///
/// ```
/// use raid_baselines::HdpCode;
/// use raid_core::{ArrayCode, invariants};
///
/// let code = HdpCode::new(7)?;
/// assert_eq!(code.disks(), 6);
/// // Two parities per disk — HDP's load-balancing signature.
/// assert_eq!(invariants::parities_per_column(code.layout()), vec![2; 6]);
/// # Ok::<(), raid_baselines::CodeError>(())
/// ```
#[derive(Debug)]
pub struct HdpCode {
    p: Prime,
    layout: Layout,
}

impl HdpCode {
    /// Builds HDP for prime `p ≥ 5`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if `p` is not prime or `p = 3` (a 2×2 stripe
    /// of parities with no data).
    pub fn new(p: usize) -> Result<Self, CodeError> {
        let prime = Prime::new(p)?;
        if p < 5 {
            return Err(CodeError::TooSmall { p, min: 5 });
        }
        Ok(HdpCode { p: prime, layout: build_layout(prime) })
    }
}

impl ArrayCode for HdpCode {
    fn name(&self) -> &str {
        "HDP"
    }

    fn prime(&self) -> Prime {
        self.p
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

fn build_layout(p: Prime) -> Layout {
    let pv = p.get();
    let n = pv - 1; // rows = cols = p − 1, 0-based

    let mut kinds = vec![ElementKind::Data; n * n];
    for i in 0..n {
        kinds[Cell::new(i, i).index(n)] = ElementKind::Parity(ParityClass::HorizontalDiagonal);
        kinds[Cell::new(i, n - 1 - i).index(n)] = ElementKind::Parity(ParityClass::AntiDiagonal);
    }

    let mut chains = Vec::with_capacity(2 * n);
    // Horizontal-diagonal chains: E_{i,i} = XOR of the rest of row i,
    // anti-diagonal parity included.
    for i in 0..n {
        chains.push(Chain {
            class: ParityClass::HorizontalDiagonal,
            parity: Cell::new(i, i),
            members: (0..n).filter(|&j| j != i).map(|j| Cell::new(i, j)).collect(),
        });
    }
    // Anti-diagonal chains: the wrapped diagonal row − col ≡ 2i + 2 (mod p)
    // through the parity cell E_{i, p−2−i}.
    for i in 0..n {
        let d = (2 * i + 2) % pv;
        let parity = Cell::new(i, n - 1 - i);
        let members: Vec<Cell> = (0..n)
            .filter_map(|r| {
                let c = (r + pv - d) % pv;
                if c >= n {
                    return None; // falls off the grid
                }
                let cell = Cell::new(r, c);
                (cell != parity).then_some(cell)
            })
            .collect();
        debug_assert!(
            members.iter().all(|&m| m.row != m.col),
            "HDP anti-diagonal chain crosses a horizontal-diagonal parity"
        );
        chains.push(Chain { class: ParityClass::AntiDiagonal, parity, members });
    }

    Layout::new(n, n, kinds, chains).expect("HDP construction yields a valid layout")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_raid6_code;
    use raid_core::invariants;
    use raid_core::plan::update::{update_complexity, worst_case_updates};

    #[test]
    fn rejects_small_and_composite() {
        assert!(matches!(HdpCode::new(3), Err(CodeError::TooSmall { .. })));
        assert!(HdpCode::new(15).is_err());
        assert!(HdpCode::new(5).is_ok());
    }

    #[test]
    fn geometry_balanced_two_parities_per_disk() {
        for p in [5usize, 7, 11, 13] {
            let code = HdpCode::new(p).unwrap();
            assert_eq!(code.disks(), p - 1);
            assert_eq!(
                invariants::parities_per_column(code.layout()),
                vec![2; p - 1],
                "p={p}"
            );
        }
    }

    #[test]
    fn chain_lengths_match_table_three() {
        // Table III: HDP parity chains have lengths p−2 (anti-diagonal) and
        // p−1 (horizontal-diagonal).
        for p in [5usize, 7, 11, 13] {
            let code = HdpCode::new(p).unwrap();
            assert_eq!(
                code.layout().chain_length_histogram(),
                vec![(p - 2, p - 1), (p - 1, p - 1)],
                "p={p}"
            );
        }
    }

    #[test]
    fn update_complexity_is_three() {
        // Table III: HDP has 3 extra updates — a data write renews its
        // horizontal-diagonal parity, its anti-diagonal parity, and the
        // horizontal-diagonal parity of the row hosting that anti-diagonal
        // parity.
        for p in [5usize, 7, 11] {
            let code = HdpCode::new(p).unwrap();
            let avg = update_complexity(code.layout());
            assert!((avg - 3.0).abs() < 0.35, "p={p}: avg {avg}");
            assert_eq!(worst_case_updates(code.layout()), 3, "p={p}");
        }
    }

    #[test]
    fn raid6_battery() {
        for p in [5usize, 7, 11, 13] {
            assert_raid6_code(&HdpCode::new(p).unwrap());
        }
    }
}
