//! RDP — Row-Diagonal Parity (Corbett et al., FAST'04).
//!
//! `p + 1` disks, `p − 1` rows. Disks `0..p−1` hold data, disk `p − 1` the
//! row parity and disk `p` the diagonal parity. Diagonal `d` collects the
//! cells with `(row + col) mod p = d` over the data **and row-parity**
//! columns; diagonals `0..p−2` get a parity element, diagonal `p − 1` is
//! the *missing diagonal* left unprotected (its information is implied).
//!
//! Because diagonal chains include row-parity elements, a single data write
//! can cascade into up to three parity updates (row parity + own diagonal +
//! the diagonal of the row parity) — the "more than 2 extra updates" of the
//! paper's Table III.

use raid_core::layout::{Chain, ElementKind, ParityClass};
use raid_core::{ArrayCode, Cell, Layout};
use raid_math::Prime;

use crate::CodeError;

/// The RDP code over `p + 1` disks.
///
/// ```
/// use raid_baselines::RdpCode;
/// use raid_core::{ArrayCode, Stripe};
///
/// let code = RdpCode::new(5)?;          // 6 disks, as in the paper's Fig. 1
/// let mut s = Stripe::for_layout(code.layout(), 32);
/// s.fill_data_seeded(code.layout(), 1);
/// code.encode(&mut s);
/// let pristine = s.clone();
/// s.erase_col(0);
/// s.erase_col(4);                        // a data disk and the row-parity disk
/// let mut lost = code.layout().cells_in_col(0);
/// lost.extend(code.layout().cells_in_col(4));
/// code.decode(&mut s, &lost)?;
/// assert_eq!(s, pristine);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RdpCode {
    p: Prime,
    layout: Layout,
}

impl RdpCode {
    /// Builds RDP for prime `p ≥ 3`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if `p` is not prime (3 already yields a valid,
    /// if tiny, 4-disk array).
    pub fn new(p: usize) -> Result<Self, CodeError> {
        Self::with_data_disks(p, p - 1)
    }

    /// Builds a **shortened** RDP array: `data_disks ≤ p − 1` data disks
    /// plus the two parity disks. Shortening imagines the missing data
    /// columns as all-zero (they simply drop out of every chain), which is
    /// how RDP deployments support arbitrary array widths; the MDS property
    /// is inherited from the full-width code and re-verified by tests.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if `p` is not prime or `data_disks` is zero or
    /// exceeds `p − 1`.
    pub fn with_data_disks(p: usize, data_disks: usize) -> Result<Self, CodeError> {
        let prime = Prime::new(p)?;
        if data_disks == 0 || data_disks > p - 1 {
            return Err(CodeError::TooSmall { p, min: 3 });
        }
        Ok(RdpCode { p: prime, layout: build_layout(prime, data_disks) })
    }

    /// Number of data disks (equals `p − 1` unless shortened).
    pub fn data_disks(&self) -> usize {
        self.layout.cols() - 2
    }

    /// Column of the dedicated row-parity disk.
    pub fn row_parity_col(&self) -> usize {
        self.data_disks()
    }

    /// Column of the dedicated diagonal-parity disk.
    pub fn diag_parity_col(&self) -> usize {
        self.data_disks() + 1
    }

    /// The textbook RDP double-data-disk repair: the zig-zag walk that
    /// alternates diagonal and row chains, starting from the diagonals that
    /// miss each failed column (Corbett et al., FAST'04). Repairs the
    /// stripe in place and returns the reconstruction order.
    ///
    /// Only the both-data-disks case has the special structure; when a
    /// parity disk is involved the repair is the generic peel, and this
    /// method returns `None` so callers fall back to [`ArrayCode::decode`].
    ///
    /// # Panics
    ///
    /// Panics if the columns are equal or out of range.
    pub fn repair_double_data_disk(
        &self,
        stripe: &mut raid_core::Stripe,
        a: usize,
        b: usize,
    ) -> Option<Vec<Cell>> {
        let d = self.data_disks();
        assert!(a != b && a < self.disks() && b < self.disks(), "bad disk pair");
        if a >= d || b >= d {
            return None; // parity disk involved: generic path
        }
        let (f1, f2) = if a < b { (a, b) } else { (b, a) };
        let layout = self.layout();
        let rows = layout.rows();
        let pv = self.p.get();
        let mut order = Vec::with_capacity(2 * rows);
        let mut solved = vec![false; 2 * rows];
        let idx_of = |cell: Cell| if cell.col == f1 { cell.row } else { rows + cell.row };

        // One scratch buffer reused across the walk (see
        // `Stripe::xor_of_into`) instead of an allocation per element.
        let mut scratch = vec![0u8; stripe.element_size()];
        let mut repair = |cell: Cell,
                          chain_parity: Cell,
                          stripe: &mut raid_core::Stripe,
                          solved: &mut [bool],
                          order: &mut Vec<Cell>| {
            let chain = layout
                .chain_of_parity(chain_parity)
                .expect("parity cell owns its chain");
            let sources = layout.chain(chain).cells().filter(|&m| m != cell);
            stripe.xor_of_into(sources, &mut scratch);
            stripe.set_element(cell, &scratch);
            solved[idx_of(cell)] = true;
            order.push(cell);
        };

        // Two zig-zags. Each starts at the diagonal that MISSES one failed
        // column (g = other_col − 1 mod p), whose only lost cell is in the
        // start column; the row chain then crosses to the other column, and
        // the diagonal through that cell continues the walk. Cell of column
        // c on diagonal g sits at row (g − c) mod p; row p − 1 and diagonal
        // p − 1 do not exist and terminate the walk.
        for (start_col, other_col) in [(f1, f2), (f2, f1)] {
            let mut g = (other_col + pv - 1) % pv;
            loop {
                if g == pv - 1 {
                    break; // the missing diagonal
                }
                let row = (g + pv - start_col) % pv;
                if row >= rows || solved[idx_of(Cell::new(row, start_col))] {
                    break;
                }
                // Diagonal g's only remaining unknown: (row, start_col).
                repair(
                    Cell::new(row, start_col),
                    Cell::new(g, self.diag_parity_col()),
                    stripe,
                    &mut solved,
                    &mut order,
                );
                // Row chain crosses to the other failed column.
                let peer = Cell::new(row, other_col);
                if !solved[idx_of(peer)] {
                    repair(
                        peer,
                        Cell::new(row, self.row_parity_col()),
                        stripe,
                        &mut solved,
                        &mut order,
                    );
                }
                // Continue along the diagonal through `peer`; its other
                // lost cell is back in `start_col`.
                g = (row + other_col) % pv;
            }
        }

        solved.iter().all(|&s| s).then_some(order)
    }
}

impl ArrayCode for RdpCode {
    fn name(&self) -> &str {
        "RDP"
    }

    fn prime(&self) -> Prime {
        self.p
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

fn build_layout(p: Prime, data_disks: usize) -> Layout {
    let pv = p.get();
    let rows = pv - 1;
    let cols = data_disks + 2;
    let (rp_col, dp_col) = (data_disks, data_disks + 1);

    let mut kinds = vec![ElementKind::Data; rows * cols];
    for r in 0..rows {
        kinds[Cell::new(r, rp_col).index(cols)] = ElementKind::Parity(ParityClass::Horizontal);
        kinds[Cell::new(r, dp_col).index(cols)] = ElementKind::Parity(ParityClass::Diagonal);
    }

    // Physical column of full-width virtual column `v` (virtual data
    // columns `data_disks..p−1` are all-zero and dropped; the row-parity
    // column keeps its virtual index p−1 for the diagonal geometry).
    let physical = |v: usize| -> Option<usize> {
        if v < data_disks {
            Some(v)
        } else if v == pv - 1 {
            Some(rp_col)
        } else {
            None
        }
    };

    let mut chains = Vec::with_capacity(2 * rows);
    // Row parity: XOR of the (present) data cells of row r.
    for r in 0..rows {
        chains.push(Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(r, rp_col),
            members: (0..data_disks).map(|c| Cell::new(r, c)).collect(),
        });
    }
    // Diagonal parity: cells with (r + v) mod p = d over virtual columns
    // 0..p−1 (including the row-parity column at virtual p−1).
    for d in 0..rows {
        let members: Vec<Cell> = (0..pv)
            .filter_map(|v| {
                let r = (d + pv - v) % pv;
                if r >= rows {
                    return None;
                }
                physical(v).map(|c| Cell::new(r, c))
            })
            .collect();
        chains.push(Chain {
            class: ParityClass::Diagonal,
            parity: Cell::new(d, dp_col),
            members,
        });
    }

    Layout::new(rows, cols, kinds, chains).expect("RDP construction yields a valid layout")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_raid6_code;
    use raid_core::invariants;
    use raid_core::plan::update::{update_complexity, worst_case_updates};

    #[test]
    fn rejects_composites() {
        assert!(RdpCode::new(8).is_err());
        assert!(RdpCode::new(5).is_ok());
    }

    #[test]
    fn geometry_matches_figure_one() {
        // Fig. 1 of the HV paper: p = 5, six disks, rows 1..4; D5 and D6
        // are the parity disks (0-based cols 4 and 5).
        let code = RdpCode::new(5).unwrap();
        assert_eq!(code.disks(), 6);
        assert_eq!(code.rows(), 4);
        assert_eq!(code.row_parity_col(), 4);
        assert_eq!(code.diag_parity_col(), 5);
        assert_eq!(invariants::parities_per_column(code.layout()), vec![0, 0, 0, 0, 4, 4]);
        // Paper example: the diagonal chain of E1,6 (1-based) is
        // {E1,1, E4,3, E3,4, E2,5} — 0-based {E[0][0], E[3][2], E[2][3], E[1][4]}.
        let l = code.layout();
        let diag0 = l.chain_of_parity(Cell::new(0, 5)).unwrap();
        let mut members = l.chain(diag0).members.clone();
        members.sort();
        let mut expect =
            vec![Cell::new(0, 0), Cell::new(3, 2), Cell::new(2, 3), Cell::new(1, 4)];
        expect.sort();
        assert_eq!(members, expect);
    }

    #[test]
    fn chain_lengths_are_p() {
        // Table III: RDP parity chain length is p.
        for p in [5usize, 7, 11, 13] {
            let code = RdpCode::new(p).unwrap();
            assert_eq!(
                code.layout().chain_length_histogram(),
                vec![(p, 2 * (p - 1))],
                "p={p}"
            );
        }
    }

    #[test]
    fn update_complexity_exceeds_two() {
        // Table III: "more than 2 extra updates".
        for p in [5usize, 7, 11, 13] {
            let code = RdpCode::new(p).unwrap();
            let avg = update_complexity(code.layout());
            assert!(avg > 2.0, "p={p}: avg {avg}");
            assert_eq!(worst_case_updates(code.layout()), 3, "p={p}");
        }
    }

    #[test]
    fn raid6_battery() {
        for p in [3usize, 5, 7, 11, 13] {
            assert_raid6_code(&RdpCode::new(p).unwrap());
        }
    }

    #[test]
    fn zigzag_fast_path_matches_generic_decoder() {
        use raid_core::Stripe;
        for p in [5usize, 7, 11, 13] {
            let code = RdpCode::new(p).unwrap();
            let layout = code.layout();
            let mut pristine = Stripe::for_layout(layout, 16);
            pristine.fill_data_seeded(layout, p as u64 + 3);
            code.encode(&mut pristine);
            let d = code.data_disks();
            for f1 in 0..d {
                for f2 in (f1 + 1)..d {
                    let mut fast = pristine.clone();
                    fast.erase_col(f1);
                    fast.erase_col(f2);
                    let order = code
                        .repair_double_data_disk(&mut fast, f1, f2)
                        .unwrap_or_else(|| panic!("p={p} ({f1},{f2}): walk incomplete"));
                    assert_eq!(order.len(), 2 * layout.rows(), "p={p} ({f1},{f2})");
                    assert_eq!(fast, pristine, "p={p} ({f1},{f2})");
                }
            }
            // Parity-disk pairs take the generic path.
            let mut s = pristine.clone();
            assert!(code.repair_double_data_disk(&mut s, 0, code.row_parity_col()).is_none());
        }
    }

    #[test]
    fn zigzag_works_on_shortened_arrays() {
        use raid_core::Stripe;
        let code = RdpCode::with_data_disks(11, 6).unwrap();
        let layout = code.layout();
        let mut pristine = Stripe::for_layout(layout, 8);
        pristine.fill_data_seeded(layout, 9);
        code.encode(&mut pristine);
        for f1 in 0..6 {
            for f2 in (f1 + 1)..6 {
                let mut s = pristine.clone();
                s.erase_col(f1);
                s.erase_col(f2);
                code.repair_double_data_disk(&mut s, f1, f2)
                    .unwrap_or_else(|| panic!("({f1},{f2}): walk incomplete"));
                assert_eq!(s, pristine, "({f1},{f2})");
            }
        }
    }

    #[test]
    fn shortened_arrays_stay_mds() {
        // Every shortened width of the p = 7 and p = 11 arrays.
        for p in [7usize, 11] {
            for d in 1..p {
                let code = RdpCode::with_data_disks(p, d).unwrap();
                assert_eq!(code.disks(), d + 2, "p={p} d={d}");
                assert_eq!(code.data_disks(), d);
                assert_raid6_code(&code);
            }
        }
    }

    #[test]
    fn shortening_validates_width() {
        assert!(RdpCode::with_data_disks(7, 0).is_err());
        assert!(RdpCode::with_data_disks(7, 7).is_err());
        assert!(RdpCode::with_data_disks(7, 6).is_ok());
    }
}
