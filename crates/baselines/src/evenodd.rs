//! EVENODD (Blaum, Brady, Bruck & Menon, IEEE Trans. Computers 1995).
//!
//! The first XOR-only horizontal RAID-6 code: `p + 2` disks, `p − 1` rows.
//! Disks `0..p−1` hold data, disk `p` row parity and disk `p+1` diagonal
//! parity. The diagonal parity of diagonal `d` is
//! `S ⊕ (⊕ of the cells with (r+c) mod p = d)`, where the adjuster
//! `S = ⊕` of the cells on the special diagonal `(r+c) mod p = p−1`.
//!
//! In chain form, each diagonal chain's members are its own diagonal's
//! cells *plus* the S-diagonal's cells (the two sets are disjoint for
//! `d ≠ p−1`), which is why EVENODD's effective chains are long and its
//! update complexity high — the paper cites it as a horizontally-balanced
//! but update-expensive ancestor and excludes it from the headline figures;
//! we implement it for the background comparison and extra benches.

use raid_core::layout::{Chain, ElementKind, ParityClass};
use raid_core::{ArrayCode, Cell, Layout};
use raid_math::Prime;

use crate::CodeError;

/// The EVENODD code over `p + 2` disks.
///
/// ```
/// use raid_baselines::EvenOddCode;
/// use raid_core::ArrayCode;
///
/// let code = EvenOddCode::new(5)?;
/// assert_eq!(code.disks(), 7);
/// # Ok::<(), raid_baselines::CodeError>(())
/// ```
#[derive(Debug)]
pub struct EvenOddCode {
    p: Prime,
    layout: Layout,
}

impl EvenOddCode {
    /// Builds EVENODD for prime `p ≥ 3`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if `p` is not prime.
    pub fn new(p: usize) -> Result<Self, CodeError> {
        Self::with_data_disks(p, p)
    }

    /// Builds a **shortened** EVENODD array with `data_disks ≤ p` data
    /// disks: the missing data columns are imagined all-zero and drop out
    /// of every chain (including the S adjuster diagonal), preserving the
    /// MDS property — how EVENODD supports arbitrary widths in practice.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if `p` is not prime or `data_disks` is zero or
    /// exceeds `p`.
    pub fn with_data_disks(p: usize, data_disks: usize) -> Result<Self, CodeError> {
        let prime = Prime::new(p)?;
        if data_disks == 0 || data_disks > p {
            return Err(CodeError::TooSmall { p, min: 3 });
        }
        Ok(EvenOddCode { p: prime, layout: build_layout(prime, data_disks) })
    }

    /// Number of data disks (equals `p` unless shortened).
    pub fn data_disks(&self) -> usize {
        self.layout.cols() - 2
    }
}

impl ArrayCode for EvenOddCode {
    fn name(&self) -> &str {
        "EVENODD"
    }

    fn prime(&self) -> Prime {
        self.p
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

fn build_layout(p: Prime, data_disks: usize) -> Layout {
    let pv = p.get();
    let rows = pv - 1;
    let cols = data_disks + 2;
    let (rp_col, dp_col) = (data_disks, data_disks + 1);

    let mut kinds = vec![ElementKind::Data; rows * cols];
    for r in 0..rows {
        kinds[Cell::new(r, rp_col).index(cols)] = ElementKind::Parity(ParityClass::Horizontal);
        kinds[Cell::new(r, dp_col).index(cols)] = ElementKind::Parity(ParityClass::Diagonal);
    }

    // Cells of diagonal `d` among the *present* data columns (virtual
    // columns data_disks..p−1 are all-zero and dropped).
    let diag_cells = |d: usize| -> Vec<Cell> {
        (0..data_disks)
            .filter_map(|c| {
                let r = (d + pv - c) % pv;
                (r < rows).then_some(Cell::new(r, c))
            })
            .collect()
    };
    let s_cells = diag_cells(pv - 1);

    let mut chains = Vec::with_capacity(2 * rows);
    for r in 0..rows {
        chains.push(Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(r, rp_col),
            members: (0..data_disks).map(|c| Cell::new(r, c)).collect(),
        });
    }
    for d in 0..rows {
        let mut members = diag_cells(d);
        members.extend(s_cells.iter().copied());
        chains.push(Chain {
            class: ParityClass::Diagonal,
            parity: Cell::new(d, dp_col),
            members,
        });
    }

    Layout::new(rows, cols, kinds, chains).expect("EVENODD construction yields a valid layout")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_raid6_code;
    use raid_core::invariants;
    use raid_core::Stripe;
    use raid_math::xor::xor_gather_into;

    #[test]
    fn geometry() {
        let code = EvenOddCode::new(5).unwrap();
        assert_eq!(code.disks(), 7);
        assert_eq!(code.rows(), 4);
        let pc = invariants::parities_per_column(code.layout());
        assert_eq!(pc, vec![0, 0, 0, 0, 0, 4, 4]);
    }

    #[test]
    fn diagonal_parity_matches_classic_formula() {
        // Cross-check the chain encoding against the textbook
        // S ⊕ diagonal definition, computed independently.
        let p = 5usize;
        let code = EvenOddCode::new(p).unwrap();
        let l = code.layout();
        let mut s = Stripe::for_layout(l, 8);
        s.fill_data_seeded(l, 7);
        code.encode(&mut s);

        // S = XOR of cells with (r+c) mod p = p−1.
        let s_cells: Vec<&[u8]> = (0..p)
            .filter_map(|c| {
                let r = (p - 1 + p - c) % p;
                (r < p - 1).then(|| s.element(Cell::new(r, c)))
            })
            .collect();
        let mut adjuster = vec![0u8; s.element_size()];
        xor_gather_into(&mut adjuster, &s_cells);

        for d in 0..p - 1 {
            let diag: Vec<&[u8]> = (0..p)
                .filter_map(|c| {
                    let r = (d + p - c) % p;
                    (r < p - 1).then(|| s.element(Cell::new(r, c)))
                })
                .collect();
            let mut expect = vec![0u8; s.element_size()];
            xor_gather_into(&mut expect, &diag);
            raid_math::xor::xor_into(&mut expect, &adjuster);
            assert_eq!(s.element(Cell::new(d, p + 1)), &expect[..], "diagonal {d}");
        }
    }

    #[test]
    fn raid6_battery() {
        for p in [3usize, 5, 7, 11] {
            assert_raid6_code(&EvenOddCode::new(p).unwrap());
        }
    }

    #[test]
    fn shortened_arrays_stay_mds() {
        for p in [5usize, 7] {
            for d in 1..=p {
                let code = EvenOddCode::with_data_disks(p, d).unwrap();
                assert_eq!(code.disks(), d + 2, "p={p} d={d}");
                assert_raid6_code(&code);
            }
        }
        assert!(EvenOddCode::with_data_disks(7, 0).is_err());
        assert!(EvenOddCode::with_data_disks(7, 8).is_err());
    }
}
