//! P-Code (Jin, Jiang, Feng & Tian, ICS 2009) — the `p`-disk variant shown
//! in Fig. 3 of the HV paper.
//!
//! A vertical code over `p` disks with `(p−1)/2` rows. Row 0 of disks
//! `1..p−1` (1-based) holds the parities `P_1..P_{p−1}`; every data element
//! is identified with an unordered pair `{i, j} ⊂ {1..p−1}` and placed on
//! disk `⟨i + j⟩_p` (disk `p` takes the pairs summing to `0 (mod p)` and
//! holds no parity). The element for `{i, j}` joins exactly the two chains
//! `P_i` and `P_j` — e.g. for `p = 7`, the element `E_{2,1}` joins `P_2`
//! and `P_6` since `(2 + 6) mod 7 = 1`, matching the paper's caption.
//!
//! The pair→row assignment ("the mapping table" whose absence the HV paper
//! criticizes) is fixed canonically here: each disk's pairs are sorted by
//! their smaller endpoint and stacked top-down.

use raid_core::layout::{Chain, ElementKind, ParityClass};
use raid_core::{ArrayCode, Cell, Layout};
use raid_math::Prime;

use crate::CodeError;

/// The P-Code over `p` disks.
///
/// ```
/// use raid_baselines::PCode;
///
/// let code = PCode::new(7)?;
/// // Fig. 3's rule: the element joining P_2 and P_6 sits on disk ⟨2+6⟩_7.
/// assert_eq!(code.disk_of_pair(2, 6), 0); // 0-based disk #1
/// # Ok::<(), raid_baselines::CodeError>(())
/// ```
#[derive(Debug)]
pub struct PCode {
    p: Prime,
    layout: Layout,
}

impl PCode {
    /// Builds P-Code for prime `p ≥ 3`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if `p` is not prime.
    pub fn new(p: usize) -> Result<Self, CodeError> {
        let prime = Prime::new(p)?;
        Ok(PCode { p: prime, layout: build_layout(prime) })
    }

    /// The disk (0-based) hosting the data element for pair `{i, j}`
    /// (1-based, `i ≠ j`, both in `1..p−1`) — the paper's `⟨i+j⟩_p` rule,
    /// with disk `p` (0-based `p − 1`) taking the pairs summing to zero.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of `1..=p−1`.
    pub fn disk_of_pair(&self, i: usize, j: usize) -> usize {
        let pv = self.p.get();
        assert!(i != j && (1..pv).contains(&i) && (1..pv).contains(&j), "bad pair {{{i},{j}}}");
        let k = (i + j) % pv;
        if k == 0 {
            pv - 1
        } else {
            k - 1
        }
    }
}

impl ArrayCode for PCode {
    fn name(&self) -> &str {
        "P-Code"
    }

    fn prime(&self) -> Prime {
        self.p
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

fn build_layout(p: Prime) -> Layout {
    let pv = p.get();
    let rows = (pv - 1) / 2;
    let cols = pv;

    // Enumerate each disk's pairs, sorted by smaller endpoint.
    let mut pairs_of_disk: Vec<Vec<(usize, usize)>> = vec![Vec::new(); cols];
    for i in 1..pv {
        for j in (i + 1)..pv {
            let k = (i + j) % pv;
            let disk = if k == 0 { pv - 1 } else { k - 1 };
            pairs_of_disk[disk].push((i, j));
        }
    }
    for pairs in &mut pairs_of_disk {
        pairs.sort_unstable();
    }

    let mut kinds = vec![ElementKind::Data; rows * cols];
    for disk in 0..pv - 1 {
        kinds[Cell::new(0, disk).index(cols)] = ElementKind::Parity(ParityClass::Vertical);
    }

    // Cell of each pair: parity disks stack data from row 1, the last disk
    // from row 0.
    let mut members_of_parity: Vec<Vec<Cell>> = vec![Vec::new(); pv - 1];
    for (disk, pairs) in pairs_of_disk.iter().enumerate() {
        let base = if disk == pv - 1 { 0 } else { 1 };
        for (slot, &(i, j)) in pairs.iter().enumerate() {
            let cell = Cell::new(base + slot, disk);
            members_of_parity[i - 1].push(cell);
            members_of_parity[j - 1].push(cell);
        }
    }

    let chains: Vec<Chain> = members_of_parity
        .into_iter()
        .enumerate()
        .map(|(idx, members)| Chain {
            class: ParityClass::Vertical,
            parity: Cell::new(0, idx),
            members,
        })
        .collect();

    Layout::new(rows, cols, kinds, chains).expect("P-Code construction yields a valid layout")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_raid6_code;
    use raid_core::invariants;
    use raid_core::plan::update::update_complexity;

    #[test]
    fn figure_three_pairing_rule() {
        // Fig. 3 caption (p = 7): the data element joining P_2 and P_6
        // lives on disk ⟨2+6⟩_7 = 1 (1-based), i.e. 0-based disk 0.
        let code = PCode::new(7).unwrap();
        assert_eq!(code.disk_of_pair(2, 6), 0);
        // Pairs summing to 0 mod p land on the last disk.
        assert_eq!(code.disk_of_pair(3, 4), 6);
    }

    #[test]
    fn geometry() {
        for p in [5usize, 7, 11, 13] {
            let code = PCode::new(p).unwrap();
            let l = code.layout();
            assert_eq!(l.rows(), (p - 1) / 2, "p={p}");
            assert_eq!(l.cols(), p);
            // Disks 0..p−2 one parity each, last disk none.
            let mut expect = vec![1; p - 1];
            expect.push(0);
            assert_eq!(invariants::parities_per_column(l), expect, "p={p}");
            // Every chain has p − 2 data members (length p − 1).
            assert_eq!(l.chain_length_histogram(), vec![(p - 1, p - 1)], "p={p}");
            // Each data element joins exactly two chains.
            assert_eq!(invariants::data_membership_range(l), (2, 2), "p={p}");
            assert!((update_complexity(l) - 2.0).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "bad pair")]
    fn rejects_degenerate_pair() {
        PCode::new(7).unwrap().disk_of_pair(3, 3);
    }

    #[test]
    fn raid6_battery() {
        for p in [3usize, 5, 7, 11, 13] {
            assert_raid6_code(&PCode::new(p).unwrap());
        }
    }
}
