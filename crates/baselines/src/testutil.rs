//! Shared test machinery for the baseline codes.

use raid_core::invariants;
use raid_core::{ArrayCode, Stripe};

/// Full correctness battery: structural sanity, exhaustive double-column
/// MDS decodability, and byte-exact decode round trips for every pair.
pub fn assert_raid6_code(code: &dyn ArrayCode) {
    let layout = code.layout();
    let p = code.prime().get();

    // Every single-disk failure decodable.
    assert!(
        invariants::all_single_failures_decodable(layout),
        "{} p={p}: single-failure recovery broken",
        code.name()
    );
    // Exhaustive MDS.
    assert_eq!(
        invariants::find_undecodable_pair(layout),
        None,
        "{} p={p}: not MDS",
        code.name()
    );

    // Byte-exact round trip for every pair of failed disks.
    let mut stripe = Stripe::for_layout(layout, 8);
    stripe.fill_data_seeded(layout, 0xC0DE + p as u64);
    code.encode(&mut stripe);
    assert!(code.is_consistent(&stripe), "{} p={p}: encode inconsistent", code.name());
    let pristine = stripe.clone();
    let n = layout.cols();
    for f1 in 0..n {
        for f2 in (f1 + 1)..n {
            let mut broken = pristine.clone();
            broken.erase_col(f1);
            broken.erase_col(f2);
            let mut lost = layout.cells_in_col(f1);
            lost.extend(layout.cells_in_col(f2));
            code.decode(&mut broken, &lost)
                .unwrap_or_else(|e| panic!("{} p={p} ({f1},{f2}): {e}", code.name()));
            assert_eq!(broken, pristine, "{} p={p} ({f1},{f2})", code.name());
        }
    }
}
