//! Baseline RAID-6 MDS array codes, implemented from scratch on the
//! `raid-core` engine, for comparison against HV Code exactly as the paper
//! does:
//!
//! * [`rdp::RdpCode`] — Row-Diagonal Parity (Corbett et al., FAST'04),
//!   `p + 1` disks, dedicated row/diagonal parity disks;
//! * [`evenodd::EvenOddCode`] — EVENODD (Blaum et al., ToC'95), `p + 2`
//!   disks, S-adjuster diagonal parity;
//! * [`xcode::XCode`] — X-Code (Xu & Bruck, IT'99), `p` disks, diagonal +
//!   anti-diagonal parity rows;
//! * [`hcode::HCode`] — H-Code (Wu et al., IPDPS'11), `p + 1` disks,
//!   dedicated horizontal parity disk + spread anti-diagonal parities;
//! * [`hdp::HdpCode`] — HDP (Wu et al., DSN'11), `p − 1` disks,
//!   horizontal-diagonal + anti-diagonal parity;
//! * [`pcode::PCode`] — P-Code (Jin et al., ICS'09), `p` disks, vertical
//!   parity driven by the `i + j ≡ k (mod p)` pairing rule;
//! * [`liberation::LiberationCode`] — a Liberation-style minimum-density
//!   bit-matrix code (Plank, FAST'08), `p + 2` disks, packets-as-rows.
//!
//! Each code implements [`raid_core::ArrayCode`]; the exhaustive MDS tests
//! in every module and the shared structural checks in `testutil` (test
//! builds only) are the correctness ground truth. Where the original paper's
//! exact parity-to-diagonal assignment is not reprinted in the HV paper, the
//! assignment used here is pinned by those tests and documented in the
//! module docs (see DESIGN.md §2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evenodd;
pub mod hcode;
pub mod hdp;
pub mod liberation;
pub mod pcode;
pub mod rdp;
pub mod xcode;

#[cfg(test)]
pub(crate) mod testutil;

pub use evenodd::EvenOddCode;
pub use hcode::HCode;
pub use hdp::HdpCode;
pub use liberation::LiberationCode;
pub use pcode::PCode;
pub use rdp::RdpCode;
pub use xcode::XCode;

use std::fmt;

use raid_math::prime::NotPrimeError;

/// Parameter-validation error shared by every baseline code constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The parameter is not prime.
    NotPrime(NotPrimeError),
    /// The prime is too small to produce any data elements for this code.
    TooSmall {
        /// The rejected prime.
        p: usize,
        /// The minimum supported prime.
        min: usize,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::NotPrime(e) => e.fmt(f),
            CodeError::TooSmall { p, min } => {
                write!(f, "prime {p} too small for this code (minimum {min})")
            }
        }
    }
}

impl std::error::Error for CodeError {}

impl From<NotPrimeError> for CodeError {
    fn from(e: NotPrimeError) -> Self {
        CodeError::NotPrime(e)
    }
}
