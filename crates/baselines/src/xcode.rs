//! X-Code (Xu & Bruck, IEEE Trans. Information Theory 1999).
//!
//! A vertical code over `p` disks with a `p × p` stripe: rows `0..p−2` hold
//! data, row `p − 2` the diagonal parities and row `p − 1` the
//! anti-diagonal parities:
//!
//! * `E[p−2][i] = ⊕_{k=0}^{p−3} E[k][(i + k + 2) mod p]`
//! * `E[p−1][i] = ⊕_{k=0}^{p−3} E[k][(i − k − 2) mod p]`
//!
//! Every data element lies on exactly one diagonal and one anti-diagonal
//! (optimal update complexity 2), parities are spread two per disk (perfect
//! balance, four parallel recovery chains), but no two row-adjacent data
//! elements share a chain — the reason the paper finds X-Code poor at
//! partial stripe writes despite its recovery strengths.

use raid_core::layout::{Chain, ElementKind, ParityClass};
use raid_core::{ArrayCode, Cell, Layout};
use raid_math::Prime;

use crate::CodeError;

/// The X-Code over `p` disks.
///
/// ```
/// use raid_baselines::XCode;
/// use raid_core::ArrayCode;
///
/// let code = XCode::new(5)?;
/// assert_eq!(code.disks(), 5);
/// assert_eq!(code.rows(), 5);            // p×p stripe, 2 parity rows
/// # Ok::<(), raid_baselines::CodeError>(())
/// ```
#[derive(Debug)]
pub struct XCode {
    p: Prime,
    layout: Layout,
}

impl XCode {
    /// Builds X-Code for prime `p ≥ 5`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if `p` is not prime or `p = 3` (which leaves a
    /// single data row of limited interest but is still valid — we allow 3).
    pub fn new(p: usize) -> Result<Self, CodeError> {
        let prime = Prime::new(p)?;
        Ok(XCode { p: prime, layout: build_layout(prime) })
    }
}

impl ArrayCode for XCode {
    fn name(&self) -> &str {
        "X-Code"
    }

    fn prime(&self) -> Prime {
        self.p
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

fn build_layout(p: Prime) -> Layout {
    let pv = p.get();
    let rows = pv;
    let cols = pv;

    let mut kinds = vec![ElementKind::Data; rows * cols];
    for c in 0..cols {
        kinds[Cell::new(pv - 2, c).index(cols)] = ElementKind::Parity(ParityClass::Diagonal);
        kinds[Cell::new(pv - 1, c).index(cols)] = ElementKind::Parity(ParityClass::AntiDiagonal);
    }

    let mut chains = Vec::with_capacity(2 * cols);
    for i in 0..cols {
        let diag: Vec<Cell> =
            (0..pv - 2).map(|k| Cell::new(k, (i + k + 2) % pv)).collect();
        chains.push(Chain {
            class: ParityClass::Diagonal,
            parity: Cell::new(pv - 2, i),
            members: diag,
        });
    }
    for i in 0..cols {
        let anti: Vec<Cell> = (0..pv - 2)
            .map(|k| Cell::new(k, (i + pv - ((k + 2) % pv)) % pv))
            .collect();
        chains.push(Chain {
            class: ParityClass::AntiDiagonal,
            parity: Cell::new(pv - 1, i),
            members: anti,
        });
    }

    Layout::new(rows, cols, kinds, chains).expect("X-Code construction yields a valid layout")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_raid6_code;
    use raid_core::invariants;
    use raid_core::plan::update::update_complexity;
    use raid_core::schedule::double_failure_schedule;

    #[test]
    fn geometry() {
        let code = XCode::new(5).unwrap();
        assert_eq!(code.disks(), 5);
        assert_eq!(code.rows(), 5);
        assert_eq!(invariants::parities_per_column(code.layout()), vec![2; 5]);
        assert_eq!(invariants::data_membership_range(code.layout()), (2, 2));
    }

    #[test]
    fn chain_lengths_are_p_minus_1() {
        // Table III: X-Code parity chain length p − 1.
        for p in [5usize, 7, 11, 13] {
            let code = XCode::new(p).unwrap();
            assert_eq!(
                code.layout().chain_length_histogram(),
                vec![(p - 1, 2 * p)],
                "p={p}"
            );
        }
    }

    #[test]
    fn optimal_update_complexity() {
        for p in [5usize, 7, 11] {
            let code = XCode::new(p).unwrap();
            assert!((update_complexity(code.layout()) - 2.0).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn no_adjacent_data_shares_a_chain() {
        // Section II-C: "any two continuous data elements do not share a
        // common parity element" — the root of X-Code's partial-write cost.
        for p in [5usize, 7, 11] {
            let code = XCode::new(p).unwrap();
            let l = code.layout();
            let data = l.data_cells();
            for w in data.windows(2) {
                if w[0].row != w[1].row {
                    continue; // row-crossing adjacency is a different story
                }
                let a: std::collections::HashSet<_> =
                    l.chains_containing(w[0]).iter().collect();
                let shared = l.chains_containing(w[1]).iter().any(|c| a.contains(c));
                assert!(!shared, "p={p}: {} and {} share a chain", w[0], w[1]);
            }
        }
    }

    #[test]
    fn four_recovery_chains_on_double_failure() {
        // Table III: X-Code has 4 recovery chains.
        for p in [5usize, 7, 11] {
            let code = XCode::new(p).unwrap();
            for f1 in 0..p {
                for f2 in (f1 + 1)..p {
                    let sched = double_failure_schedule(code.layout(), f1, f2).unwrap();
                    assert_eq!(sched.num_chains, 4, "p={p} ({f1},{f2})");
                }
            }
        }
    }

    #[test]
    fn raid6_battery() {
        for p in [5usize, 7, 11, 13] {
            assert_raid6_code(&XCode::new(p).unwrap());
        }
    }
}
