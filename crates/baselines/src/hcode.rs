//! H-Code (Wu, Wan, He, Cao & Xie, IPDPS 2011).
//!
//! A hybrid code over `p + 1` disks, `p − 1` rows (1-based rows
//! `i ∈ 1..p−1`, columns `0..p`): column `p` is a dedicated horizontal
//! parity disk, and the `p − 1` anti-diagonal parities sit at the diagonal
//! positions `E_{i,i}` of columns `1..p−1` — disk 0 carries data only,
//! matching the HV paper's "spreads the p−1 anti-diagonal parity elements
//! over other p disks".
//!
//! * Horizontal parity: `E_{i,p} = ⊕_{j≠i} E_{i,j}` (row `i`'s data).
//! * Anti-diagonal parity: `E_{i,i}` protects the anti-diagonal
//!   `⟨col − row⟩_p = i` (1-based rows, 0-based columns):
//!   `E_{i,i} = ⊕ E_{⟨j−i⟩_p, j}` over `j ∈ 0..p−1, j ≠ ⟨i−... ⟩` — the one
//!   column whose row index would leave the stripe is skipped. The parity
//!   positions themselves all lie on the `col − row ≡ 0` diagonal, so
//!   anti-diagonal chains contain only data.
//!
//! This gives H-Code its signature property, cited by the HV paper: the
//! last data element of row `i` and the first of row `i+1` lie on the same
//! diagonal (`i + 1`), so a two-element partial write crossing a row
//! boundary updates one shared anti-diagonal parity. The assignment
//! "parity `E_{i,i}` ↔ diagonal `i`" is pinned by this module's exhaustive
//! MDS tests (see DESIGN.md §2).

use raid_core::layout::{Chain, ElementKind, ParityClass};
use raid_core::{ArrayCode, Cell, Layout};
use raid_math::Prime;

use crate::CodeError;

/// The H-Code over `p + 1` disks.
///
/// ```
/// use raid_baselines::HCode;
/// use raid_core::ArrayCode;
///
/// let code = HCode::new(7)?;
/// assert_eq!(code.disks(), 8);
/// assert_eq!(code.horizontal_parity_col(), 7); // dedicated parity disk
/// # Ok::<(), raid_baselines::CodeError>(())
/// ```
#[derive(Debug)]
pub struct HCode {
    p: Prime,
    layout: Layout,
}

impl HCode {
    /// Builds H-Code for prime `p ≥ 5`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if `p` is not prime or `p < 5` (at `p = 3`
    /// the two-row stripe leaves column 0 with a single data element and
    /// degenerate diagonals).
    pub fn new(p: usize) -> Result<Self, CodeError> {
        let prime = Prime::new(p)?;
        if p < 5 {
            return Err(CodeError::TooSmall { p, min: 5 });
        }
        Ok(HCode { p: prime, layout: build_layout(prime) })
    }

    /// Column of the dedicated horizontal-parity disk.
    pub fn horizontal_parity_col(&self) -> usize {
        self.p.get()
    }
}

impl ArrayCode for HCode {
    fn name(&self) -> &str {
        "H-Code"
    }

    fn prime(&self) -> Prime {
        self.p
    }

    fn layout(&self) -> &Layout {
        &self.layout
    }
}

fn build_layout(p: Prime) -> Layout {
    let pv = p.get();
    let rows = pv - 1; // 1-based i = r + 1
    let cols = pv + 1;

    let mut kinds = vec![ElementKind::Data; rows * cols];
    for r in 0..rows {
        kinds[Cell::new(r, pv).index(cols)] = ElementKind::Parity(ParityClass::Horizontal);
        // E_{i,i}: 1-based row i = r + 1, column i = r + 1.
        kinds[Cell::new(r, r + 1).index(cols)] = ElementKind::Parity(ParityClass::AntiDiagonal);
    }

    let mut chains = Vec::with_capacity(2 * rows);
    // Horizontal chains: row i's data over columns 0..p−1 (skipping the
    // anti-diagonal parity at column i).
    for r in 0..rows {
        chains.push(Chain {
            class: ParityClass::Horizontal,
            parity: Cell::new(r, pv),
            members: (0..pv).filter(|&j| j != r + 1).map(|j| Cell::new(r, j)).collect(),
        });
    }
    // Anti-diagonal chains: parity E_{i,i} covers the anti-diagonal
    // col − row ≡ i (1-based rows, 0-based cols): members (⟨j−i⟩ − 1, j)
    // for j ∈ 0..p−1, skipping the column where the row index would be 0.
    for r in 0..rows {
        let i = r + 1;
        let members: Vec<Cell> = (0..pv)
            .filter_map(|j| {
                let row_1b = (j + pv - i) % pv;
                (row_1b != 0).then(|| Cell::new(row_1b - 1, j))
            })
            .collect();
        chains.push(Chain {
            class: ParityClass::AntiDiagonal,
            parity: Cell::new(r, r + 1),
            members,
        });
    }

    Layout::new(rows, cols, kinds, chains).expect("H-Code construction yields a valid layout")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_raid6_code;
    use raid_core::invariants;
    use raid_core::plan::update::update_complexity;

    #[test]
    fn rejects_small_and_composite() {
        assert!(matches!(HCode::new(3), Err(CodeError::TooSmall { p: 3, min: 5 })));
        assert!(HCode::new(9).is_err());
    }

    #[test]
    fn geometry() {
        let code = HCode::new(5).unwrap();
        assert_eq!(code.disks(), 6);
        assert_eq!(code.rows(), 4);
        assert_eq!(code.horizontal_parity_col(), 5);
        // Disk 0 data-only; disks 1..4 one anti-diagonal parity each;
        // disk 5 all horizontal parity.
        assert_eq!(invariants::parities_per_column(code.layout()), vec![0, 1, 1, 1, 1, 4]);
    }

    #[test]
    fn chain_lengths_are_p() {
        // Table III: H-Code parity chain length p.
        for p in [5usize, 7, 11, 13] {
            let code = HCode::new(p).unwrap();
            assert_eq!(
                code.layout().chain_length_histogram(),
                vec![(p, 2 * (p - 1))],
                "p={p}"
            );
        }
    }

    #[test]
    fn optimal_update_complexity() {
        // Table III: H-Code has 2 extra updates (no parity-into-parity
        // cascades, unlike RDP).
        for p in [5usize, 7, 11] {
            let code = HCode::new(p).unwrap();
            assert!((update_complexity(code.layout()) - 2.0).abs() < 1e-12, "p={p}");
            assert_eq!(invariants::data_membership_range(code.layout()), (2, 2));
        }
    }

    #[test]
    fn row_boundary_neighbours_share_anti_diagonal() {
        // The property the HV paper credits H-Code with: E_{i,p−1} and
        // E_{i+1,0} share an anti-diagonal parity chain.
        for p in [5usize, 7, 11, 13] {
            let code = HCode::new(p).unwrap();
            let l = code.layout();
            for r in 0..l.rows() - 1 {
                let last = Cell::new(r, p - 1);
                let first = Cell::new(r + 1, 0);
                if !l.is_data(last) || !l.is_data(first) {
                    continue;
                }
                let a: Vec<_> = l
                    .chains_containing(last)
                    .iter()
                    .filter(|&&id| {
                        matches!(l.chain(id).class, ParityClass::AntiDiagonal)
                    })
                    .collect();
                let b: Vec<_> = l
                    .chains_containing(first)
                    .iter()
                    .filter(|&&id| {
                        matches!(l.chain(id).class, ParityClass::AntiDiagonal)
                    })
                    .collect();
                assert_eq!(a, b, "p={p} rows {r},{}", r + 1);
            }
        }
    }

    #[test]
    fn raid6_battery() {
        for p in [5usize, 7, 11, 13] {
            assert_raid6_code(&HCode::new(p).unwrap());
        }
    }
}
