//! The unix-socket front door: one acceptor thread plus a fixed worker
//! pool, all feeding the in-process [`Service`] scheduler.
//!
//! The repo is offline (no tokio); concurrency is plain threads in the
//! shape the rest of the workspace uses. The acceptor pushes accepted
//! streams onto an [`mpsc`] channel; each worker serves one connection at
//! a time to completion (line in, line out — see [`crate::proto`]).
//! `SHUTDOWN` from any client flags the server, force-closes every other
//! live connection (workers blocked reading an idle client observe EOF
//! instead of pinning the server open), wakes the acceptor with a
//! self-connection, drains the scheduler, flushes the volume, and joins
//! every thread before [`serve`] returns — the clean-shutdown contract
//! the serve-smoke gate asserts with a post-mortem `fsck`. Each
//! connection's scheduler session is closed when the connection ends, so
//! churning clients (stats scrapes included) don't accrete scheduler
//! state.

use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use crate::metrics::prometheus_text;
use crate::proto::{self, Request};
use crate::scheduler::{Service, ServiceHandle};
use std::io;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Path of the unix socket to bind (an existing file is replaced).
    pub socket: PathBuf,
    /// Connection-serving worker threads.
    pub workers: usize,
}

impl ServerConfig {
    /// A server on `socket` with 4 workers.
    #[must_use]
    pub fn new(socket: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig { socket: socket.into(), workers: 4 }
    }
}

/// Binds the socket and serves clients until one sends `SHUTDOWN`.
///
/// Blocks the calling thread. On return the scheduler is drained, the
/// volume flushed, all threads joined, and the socket file removed.
///
/// # Errors
///
/// Propagates socket bind/IO errors; per-connection errors only end that
/// connection.
pub fn serve(svc: &Arc<Service>, cfg: &ServerConfig) -> io::Result<()> {
    let _ = std::fs::remove_file(&cfg.socket);
    let listener = UnixListener::bind(&cfg.socket)?;
    let stop = Arc::new(AtomicBool::new(false));
    let registry = Arc::new(ConnRegistry::new());
    let (tx, rx) = mpsc::channel::<UnixStream>();
    let rx = Arc::new(Mutex::new(rx));

    thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let svc = Arc::clone(svc);
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            let socket = cfg.socket.clone();
            scope.spawn(move || loop {
                let next = rx.lock().expect("worker channel poisoned").recv();
                match next {
                    Ok(stream) => {
                        // Once stopping, backlogged connections are
                        // dropped unserved instead of blocking a worker.
                        let Some(id) = registry.register(&stream) else { continue };
                        let outcome = serve_connection(&svc, stream);
                        registry.deregister(id);
                        if outcome == Outcome::Shutdown {
                            registry.stop_all();
                            request_stop(&stop, &socket);
                        }
                    }
                    Err(_) => return, // acceptor gone, queue drained
                }
            });
        }
        // Acceptor: runs on the calling thread.
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    if tx.send(s).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        drop(tx); // workers drain the backlog, then exit
    });

    let _ = std::fs::remove_file(&cfg.socket);
    svc.shutdown().map_err(|e| io::Error::other(e.to_string()))
}

/// Flags the acceptor and wakes it with a throwaway connection.
fn request_stop(stop: &AtomicBool, socket: &Path) {
    if !stop.swap(true, Ordering::SeqCst) {
        let _ = UnixStream::connect(socket);
    }
}

/// Live client connections, force-closable on shutdown: a worker blocked
/// in `lines()` on an idle client observes EOF instead of keeping
/// [`serve`]'s thread scope from joining.
struct ConnRegistry {
    inner: Mutex<RegistryInner>,
}

struct RegistryInner {
    stopping: bool,
    next_id: u64,
    conns: Vec<(u64, UnixStream)>,
}

impl ConnRegistry {
    fn new() -> ConnRegistry {
        ConnRegistry {
            inner: Mutex::new(RegistryInner { stopping: false, next_id: 0, conns: Vec::new() }),
        }
    }

    /// Tracks `stream` and returns its registry id, or `None` once the
    /// server is stopping (or the stream can't be cloned) — the caller
    /// drops the connection unserved.
    fn register(&self, stream: &UnixStream) -> Option<u64> {
        let mut g = self.inner.lock().expect("conn registry poisoned");
        if g.stopping {
            return None;
        }
        let clone = stream.try_clone().ok()?;
        g.next_id += 1;
        let id = g.next_id;
        g.conns.push((id, clone));
        Some(id)
    }

    fn deregister(&self, id: u64) {
        let mut g = self.inner.lock().expect("conn registry poisoned");
        g.conns.retain(|(i, _)| *i != id);
    }

    /// Marks the server stopping and shuts down every live connection
    /// so blocked readers return promptly.
    fn stop_all(&self) {
        let mut g = self.inner.lock().expect("conn registry poisoned");
        g.stopping = true;
        for (_, s) in g.conns.drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Closed,
    Shutdown,
}

/// Serves one client connection to completion, closing its scheduler
/// session when the connection ends.
fn serve_connection(svc: &Arc<Service>, stream: UnixStream) -> Outcome {
    let mut session: Option<ServiceHandle> = None;
    let outcome = connection_loop(svc, stream, &mut session);
    if let Some(h) = session {
        h.close();
    }
    outcome
}

/// The line-in/line-out loop of one connection.
fn connection_loop(
    svc: &Arc<Service>,
    stream: UnixStream,
    session: &mut Option<ServiceHandle>,
) -> Outcome {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return Outcome::Closed,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return Outcome::Closed };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match proto::parse(&line) {
            Err(msg) => format!("ERR bad-request: {msg}"),
            Ok(Request::Quit) => {
                let _ = writeln!(writer, "OK bye");
                return Outcome::Closed;
            }
            Ok(Request::Shutdown) => {
                let _ = writeln!(writer, "OK shutdown");
                return Outcome::Shutdown;
            }
            Ok(Request::Hello { tenant, class }) => {
                // Re-HELLO replaces the session; retire the old one.
                if let Some(old) = session.take() {
                    old.close();
                }
                let handle = svc.session(&tenant, class);
                let reply = format!(
                    "OK session {tenant} elements {} element_size {}",
                    svc.data_elements(),
                    svc.element_size()
                );
                *session = Some(handle);
                reply
            }
            Ok(req) => match session.as_ref() {
                None => "ERR bad-request: HELLO first".to_string(),
                Some(h) => respond(h, &req),
            },
        };
        if writeln!(writer, "{reply}").is_err() {
            return Outcome::Closed;
        }
    }
    Outcome::Closed
}

/// Executes a post-HELLO request and renders the response line(s).
fn respond(h: &ServiceHandle, req: &Request) -> String {
    match req {
        Request::Read { addr, len } => match h.read(*addr, *len) {
            Ok(bytes) => format!("OK data {}", proto::to_hex(&bytes)),
            Err(e) => proto::err_line(&e),
        },
        Request::Write { addr, data } => match h.write(*addr, data) {
            Ok(elements) => format!("OK wrote {elements}"),
            Err(e) => proto::err_line(&e),
        },
        Request::Flush => match h.flush() {
            Ok(()) => "OK flushed".to_string(),
            Err(e) => proto::err_line(&e),
        },
        Request::Stats => {
            let text = prometheus_text(&h.stats());
            let mut out = format!("OK stats {}", text.lines().count());
            for l in text.lines() {
                out.push('\n');
                out.push_str(l);
            }
            out
        }
        Request::Hello { .. } | Request::Quit | Request::Shutdown => {
            unreachable!("handled by the connection loop")
        }
    }
}

/// A scripted client for `hvraid connect` and the smoke gate: sends each
/// non-comment line of `script`, collects responses, and applies two
/// client-side directives —
///
/// * `EXPECT <hex>` asserts the previous `READ` returned exactly those
///   bytes;
/// * `# …` lines are comments.
///
/// Returns the full transcript (`> request` / `< response` interleaved).
///
/// # Errors
///
/// IO errors talking to the socket, protocol `ERR` responses, and
/// `EXPECT` mismatches all abort the script with a message.
pub fn run_script(socket: &Path, script: &str) -> Result<String, String> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| format!("connect {}: {e}", socket.display()))?;
    let mut reader = BufReader::new(
        stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = stream;
    let mut transcript = String::new();
    let mut last_data: Option<String> = None;

    let read_line = |reader: &mut BufReader<UnixStream>| -> Result<String, String> {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| format!("read response: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(line.trim_end().to_string())
    };

    for raw in script.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(expected) = line.strip_prefix("EXPECT ") {
            let got = last_data.as_deref().unwrap_or("");
            if got != expected.trim() {
                return Err(format!("EXPECT mismatch: wanted {expected}, got {got}"));
            }
            transcript.push_str("# EXPECT ok\n");
            continue;
        }
        writeln!(writer, "{line}").map_err(|e| format!("send {line:?}: {e}"))?;
        transcript.push_str("> ");
        transcript.push_str(line);
        transcript.push('\n');
        let reply = read_line(&mut reader)?;
        transcript.push_str("< ");
        transcript.push_str(&reply);
        transcript.push('\n');
        if let Some(rest) = reply.strip_prefix("OK stats ") {
            let n: usize =
                rest.parse().map_err(|_| format!("bad stats line count {rest:?}"))?;
            for _ in 0..n {
                let metric = read_line(&mut reader)?;
                transcript.push_str(&metric);
                transcript.push('\n');
            }
        } else if let Some(hex) = reply.strip_prefix("OK data ") {
            last_data = Some(hex.to_string());
        } else if reply.starts_with("ERR") {
            return Err(format!("{line} -> {reply}"));
        }
    }
    Ok(transcript)
}

/// Connects, opens a throwaway `metrics` session, and returns the
/// Prometheus text snapshot — the transport behind `hvraid stats`.
///
/// # Errors
///
/// IO errors and protocol `ERR` responses are returned as messages.
pub fn fetch_stats(socket: &Path) -> Result<String, String> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| format!("connect {}: {e}", socket.display()))?;
    let mut reader = BufReader::new(
        stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = stream;
    let mut exchange = |cmd: &str| -> Result<String, String> {
        writeln!(writer, "{cmd}").map_err(|e| format!("send {cmd}: {e}"))?;
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("read response: {e}"))?;
        let line = line.trim_end().to_string();
        if line.starts_with("ERR") || line.is_empty() {
            return Err(format!("{cmd} -> {line}"));
        }
        Ok(line)
    };
    exchange("HELLO metrics reader")?;
    let head = exchange("STATS")?;
    let n: usize = head
        .strip_prefix("OK stats ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unexpected stats header {head:?}"))?;
    let mut out = String::new();
    for _ in 0..n {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("read metrics: {e}"))?;
        out.push_str(&line);
    }
    let _ = writeln!(writer, "QUIT");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use hv_code::HvCode;
    use raid_array::RaidVolume;
    use raid_core::ArrayCode;

    use crate::scheduler::{Service, ServiceConfig};

    use super::*;

    fn temp_socket(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hvraid-test-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn socket_session_roundtrip_and_shutdown() {
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(5).unwrap());
        let volume = RaidVolume::in_memory(code, 4, 8);
        let svc = Service::new(volume, ServiceConfig::default());
        let socket = temp_socket("roundtrip");
        let cfg = ServerConfig { socket: socket.clone(), workers: 2 };

        let server = {
            let svc = Arc::clone(&svc);
            let cfg = cfg.clone();
            thread::spawn(move || serve(&svc, &cfg))
        };
        // Wait for the bind.
        for _ in 0..200 {
            if socket.exists() {
                break;
            }
            thread::sleep(std::time::Duration::from_millis(5));
        }

        let payload = proto::to_hex(&[0xab; 16]); // two 8-byte elements
        let script = format!(
            "HELLO smoke writer\nWRITE 2 {payload}\nREAD 2 2\nEXPECT {payload}\nFLUSH\nSTATS\nSHUTDOWN\n"
        );
        let transcript = run_script(&socket, &script).expect("script runs clean");
        assert!(transcript.contains("OK wrote 2"));
        assert!(transcript.contains("# EXPECT ok"));
        assert!(transcript.contains("hvraid_service_ops_total{tenant=\"smoke\",class=\"writer\"}"));
        server.join().unwrap().expect("clean shutdown");
        assert!(!socket.exists(), "socket file removed on shutdown");
    }

    /// SHUTDOWN must not wait on other still-connected clients: workers
    /// blocked reading an idle connection are unblocked by force-closing
    /// it, so `serve` returns promptly.
    #[test]
    fn shutdown_returns_despite_idle_connected_client() {
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(5).unwrap());
        let volume = RaidVolume::in_memory(code, 4, 8);
        let svc = Service::new(volume, ServiceConfig::default());
        let socket = temp_socket("idle-client");
        let cfg = ServerConfig { socket: socket.clone(), workers: 2 };

        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let server = {
            let svc = Arc::clone(&svc);
            let cfg = cfg.clone();
            thread::spawn(move || {
                let r = serve(&svc, &cfg);
                let _ = done_tx.send(());
                r
            })
        };
        for _ in 0..200 {
            if socket.exists() {
                break;
            }
            thread::sleep(std::time::Duration::from_millis(5));
        }

        // An idle client that HELLOs (so a worker is parked in its read
        // loop) and then goes silent.
        let mut idle = UnixStream::connect(&socket).expect("idle client connects");
        writeln!(idle, "HELLO idler reader").unwrap();
        let mut first = String::new();
        BufReader::new(idle.try_clone().unwrap()).read_line(&mut first).unwrap();
        assert!(first.starts_with("OK session"), "got {first:?}");

        run_script(&socket, "HELLO closer writer\nSHUTDOWN\n").expect("shutdown script");
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("serve() hung on the idle client after SHUTDOWN");
        server.join().unwrap().expect("clean shutdown");
        drop(idle);
    }
}
