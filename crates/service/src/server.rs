//! The unix-socket front door: one acceptor thread plus a fixed worker
//! pool, all feeding the in-process [`Service`] scheduler.
//!
//! The repo is offline (no tokio); concurrency is plain threads in the
//! shape the rest of the workspace uses. The acceptor pushes accepted
//! streams onto an [`mpsc`] channel; each worker serves one connection at
//! a time to completion (line in, line out — see [`crate::proto`]).
//! `SHUTDOWN` from any client flags the server, wakes the acceptor with
//! a self-connection, drains the scheduler, flushes the volume, and
//! joins every thread before [`serve`] returns — the clean-shutdown
//! contract the serve-smoke gate asserts with a post-mortem `fsck`.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use crate::metrics::prometheus_text;
use crate::proto::{self, Request};
use crate::scheduler::{Service, ServiceHandle};
use std::io;

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Path of the unix socket to bind (an existing file is replaced).
    pub socket: PathBuf,
    /// Connection-serving worker threads.
    pub workers: usize,
}

impl ServerConfig {
    /// A server on `socket` with 4 workers.
    #[must_use]
    pub fn new(socket: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig { socket: socket.into(), workers: 4 }
    }
}

/// Binds the socket and serves clients until one sends `SHUTDOWN`.
///
/// Blocks the calling thread. On return the scheduler is drained, the
/// volume flushed, all threads joined, and the socket file removed.
///
/// # Errors
///
/// Propagates socket bind/IO errors; per-connection errors only end that
/// connection.
pub fn serve(svc: &Arc<Service>, cfg: &ServerConfig) -> io::Result<()> {
    let _ = std::fs::remove_file(&cfg.socket);
    let listener = UnixListener::bind(&cfg.socket)?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<UnixStream>();
    let rx = Arc::new(Mutex::new(rx));

    thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let svc = Arc::clone(svc);
            let stop = Arc::clone(&stop);
            let socket = cfg.socket.clone();
            scope.spawn(move || loop {
                let next = rx.lock().expect("worker channel poisoned").recv();
                match next {
                    Ok(stream) => {
                        if serve_connection(&svc, stream) == Outcome::Shutdown {
                            request_stop(&stop, &socket);
                        }
                    }
                    Err(_) => return, // acceptor gone, queue drained
                }
            });
        }
        // Acceptor: runs on the calling thread.
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    if tx.send(s).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        drop(tx); // workers drain the backlog, then exit
    });

    let _ = std::fs::remove_file(&cfg.socket);
    svc.shutdown().map_err(|e| io::Error::other(e.to_string()))
}

/// Flags the acceptor and wakes it with a throwaway connection.
fn request_stop(stop: &AtomicBool, socket: &Path) {
    if !stop.swap(true, Ordering::SeqCst) {
        let _ = UnixStream::connect(socket);
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Closed,
    Shutdown,
}

/// Serves one client connection to completion.
fn serve_connection(svc: &Arc<Service>, stream: UnixStream) -> Outcome {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return Outcome::Closed,
    };
    let mut writer = stream;
    let mut session: Option<ServiceHandle> = None;
    for line in reader.lines() {
        let Ok(line) = line else { return Outcome::Closed };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match proto::parse(&line) {
            Err(msg) => format!("ERR bad-request: {msg}"),
            Ok(Request::Quit) => {
                let _ = writeln!(writer, "OK bye");
                return Outcome::Closed;
            }
            Ok(Request::Shutdown) => {
                let _ = writeln!(writer, "OK shutdown");
                return Outcome::Shutdown;
            }
            Ok(Request::Hello { tenant, class }) => {
                let handle = svc.session(&tenant, class);
                let reply = format!(
                    "OK session {tenant} elements {} element_size {}",
                    svc.data_elements(),
                    svc.element_size()
                );
                session = Some(handle);
                reply
            }
            Ok(req) => match &session {
                None => "ERR bad-request: HELLO first".to_string(),
                Some(h) => respond(h, &req),
            },
        };
        if writeln!(writer, "{reply}").is_err() {
            return Outcome::Closed;
        }
    }
    Outcome::Closed
}

/// Executes a post-HELLO request and renders the response line(s).
fn respond(h: &ServiceHandle, req: &Request) -> String {
    match req {
        Request::Read { addr, len } => match h.read(*addr, *len) {
            Ok(bytes) => format!("OK data {}", proto::to_hex(&bytes)),
            Err(e) => proto::err_line(&e),
        },
        Request::Write { addr, data } => match h.write(*addr, data) {
            Ok(elements) => format!("OK wrote {elements}"),
            Err(e) => proto::err_line(&e),
        },
        Request::Flush => match h.flush() {
            Ok(()) => "OK flushed".to_string(),
            Err(e) => proto::err_line(&e),
        },
        Request::Stats => {
            let text = prometheus_text(&h.stats());
            let mut out = format!("OK stats {}", text.lines().count());
            for l in text.lines() {
                out.push('\n');
                out.push_str(l);
            }
            out
        }
        Request::Hello { .. } | Request::Quit | Request::Shutdown => {
            unreachable!("handled by the connection loop")
        }
    }
}

/// A scripted client for `hvraid connect` and the smoke gate: sends each
/// non-comment line of `script`, collects responses, and applies two
/// client-side directives —
///
/// * `EXPECT <hex>` asserts the previous `READ` returned exactly those
///   bytes;
/// * `# …` lines are comments.
///
/// Returns the full transcript (`> request` / `< response` interleaved).
///
/// # Errors
///
/// IO errors talking to the socket, protocol `ERR` responses, and
/// `EXPECT` mismatches all abort the script with a message.
pub fn run_script(socket: &Path, script: &str) -> Result<String, String> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| format!("connect {}: {e}", socket.display()))?;
    let mut reader = BufReader::new(
        stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = stream;
    let mut transcript = String::new();
    let mut last_data: Option<String> = None;

    let read_line = |reader: &mut BufReader<UnixStream>| -> Result<String, String> {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| format!("read response: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(line.trim_end().to_string())
    };

    for raw in script.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(expected) = line.strip_prefix("EXPECT ") {
            let got = last_data.as_deref().unwrap_or("");
            if got != expected.trim() {
                return Err(format!("EXPECT mismatch: wanted {expected}, got {got}"));
            }
            transcript.push_str("# EXPECT ok\n");
            continue;
        }
        writeln!(writer, "{line}").map_err(|e| format!("send {line:?}: {e}"))?;
        transcript.push_str("> ");
        transcript.push_str(line);
        transcript.push('\n');
        let reply = read_line(&mut reader)?;
        transcript.push_str("< ");
        transcript.push_str(&reply);
        transcript.push('\n');
        if let Some(rest) = reply.strip_prefix("OK stats ") {
            let n: usize =
                rest.parse().map_err(|_| format!("bad stats line count {rest:?}"))?;
            for _ in 0..n {
                let metric = read_line(&mut reader)?;
                transcript.push_str(&metric);
                transcript.push('\n');
            }
        } else if let Some(hex) = reply.strip_prefix("OK data ") {
            last_data = Some(hex.to_string());
        } else if reply.starts_with("ERR") {
            return Err(format!("{line} -> {reply}"));
        }
    }
    Ok(transcript)
}

/// Connects, opens a throwaway `metrics` session, and returns the
/// Prometheus text snapshot — the transport behind `hvraid stats`.
///
/// # Errors
///
/// IO errors and protocol `ERR` responses are returned as messages.
pub fn fetch_stats(socket: &Path) -> Result<String, String> {
    let stream = UnixStream::connect(socket)
        .map_err(|e| format!("connect {}: {e}", socket.display()))?;
    let mut reader = BufReader::new(
        stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = stream;
    let mut exchange = |cmd: &str| -> Result<String, String> {
        writeln!(writer, "{cmd}").map_err(|e| format!("send {cmd}: {e}"))?;
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("read response: {e}"))?;
        let line = line.trim_end().to_string();
        if line.starts_with("ERR") || line.is_empty() {
            return Err(format!("{cmd} -> {line}"));
        }
        Ok(line)
    };
    exchange("HELLO metrics reader")?;
    let head = exchange("STATS")?;
    let n: usize = head
        .strip_prefix("OK stats ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unexpected stats header {head:?}"))?;
    let mut out = String::new();
    for _ in 0..n {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("read metrics: {e}"))?;
        out.push_str(&line);
    }
    let _ = writeln!(writer, "QUIT");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use hv_code::HvCode;
    use raid_array::RaidVolume;
    use raid_core::ArrayCode;

    use crate::scheduler::{Service, ServiceConfig};

    use super::*;

    fn temp_socket(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hvraid-test-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn socket_session_roundtrip_and_shutdown() {
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(5).unwrap());
        let volume = RaidVolume::in_memory(code, 4, 8);
        let svc = Service::new(volume, ServiceConfig::default());
        let socket = temp_socket("roundtrip");
        let cfg = ServerConfig { socket: socket.clone(), workers: 2 };

        let server = {
            let svc = Arc::clone(&svc);
            let cfg = cfg.clone();
            thread::spawn(move || serve(&svc, &cfg))
        };
        // Wait for the bind.
        for _ in 0..200 {
            if socket.exists() {
                break;
            }
            thread::sleep(std::time::Duration::from_millis(5));
        }

        let payload = proto::to_hex(&[0xab; 16]); // two 8-byte elements
        let script = format!(
            "HELLO smoke writer\nWRITE 2 {payload}\nREAD 2 2\nEXPECT {payload}\nFLUSH\nSTATS\nSHUTDOWN\n"
        );
        let transcript = run_script(&socket, &script).expect("script runs clean");
        assert!(transcript.contains("OK wrote 2"));
        assert!(transcript.contains("# EXPECT ok"));
        assert!(transcript.contains("hvraid_service_ops_total{tenant=\"smoke\",class=\"writer\"}"));
        server.join().unwrap().expect("clean shutdown");
        assert!(!socket.exists(), "socket file removed on shutdown");
    }
}
