//! The stripe-aware request scheduler: per-tenant queues drained by a
//! flat-combining dispatcher that merges co-located writes before they
//! reach the volume.
//!
//! # Architecture
//!
//! Client threads call [`ServiceHandle::read`] / [`ServiceHandle::write`]
//! / [`ServiceHandle::flush`]. Each call is **admitted** (queue-depth
//! backpressure, per-session token bucket), **enqueued** on its session's
//! FIFO, and then the calling thread either becomes the *combiner* —
//! taking the dispatch lock and draining every queue — or parks on its
//! op's completion slot while another thread combines. This
//! flat-combining shape needs no dedicated dispatcher thread, so the
//! in-process handle has zero idle cost, and it is exactly what makes
//! coalescing work: while one thread executes against the volume, the
//! other clients' ops pile up and are merged into the next batch.
//!
//! Each combining round is **deficit-round-robin** across sessions: every
//! session earns `drr_quantum` elements of credit per round and releases
//! queued ops (whole ops only) while its deficit covers their element
//! cost, so a hot writer streaming large ops cannot starve a reader — the
//! reader's small ops drain every round regardless of how deep the
//! writer's queue is.
//!
//! The collected batch executes in arrival order, except that runs of
//! *consecutive write ops* are staged element-by-element into a
//! coalescing buffer: overlapping writes collapse (last writer wins,
//! matching arrival order), adjacent writes fuse into maximal contiguous
//! runs, and the runs are submitted grouped by the partition that owns
//! their first stripe ([`raid_array::PartitionMap::owner_of`]) so each
//! partition's work arrives contiguously at the volume, whose own flush
//! path fans the dirty stripes out across partitions. A read or flush op
//! is a barrier: the stage drains before it executes, so every op
//! observes all writes admitted before it. Every run is attempted even
//! when one fails, and each coalesced op is acked `Written` only if the
//! run carrying its bytes actually succeeded — a degraded array fails
//! the affected ops with the volume error, never silently.
//!
//! Token buckets refill two ways: a fixed quantum per dispatch round
//! (deterministic pacing under load) and a wall-clock quantum per
//! [`ServiceConfig::refill_interval`], credited at admission — so a
//! throttled client that backs off is eventually admitted even while
//! the scheduler is idle and no rounds run.
//!
//! Sessions are retired with [`ServiceHandle::close`] (the socket server
//! closes them when a connection ends): the slot is recycled for the
//! next session and its counters fold into a per-`(tenant, class)`
//! aggregate, so stats stay monotonic and one tenant never emits
//! duplicate metric series no matter how many connections carried it.
//!
//! Latency is recorded per op from enqueue to completion into a
//! per-tenant [`Histogram`] ([`raid_core::stats`]), the same percentile
//! definitions the fleet harness reports.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use raid_array::{CacheConfig, HealthState, RaidVolume, VolumeError};
use raid_core::io::IoLedger;
use raid_core::stats::Histogram;

/// How a session's traffic is classified in latency reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantClass {
    /// Mostly reads.
    Reader,
    /// Mostly writes.
    Writer,
    /// Mixed traffic.
    Mixed,
}

impl TenantClass {
    /// Stable lower-case name (protocol + metrics label).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            TenantClass::Reader => "reader",
            TenantClass::Writer => "writer",
            TenantClass::Mixed => "mixed",
        }
    }

    /// Parses the name produced by [`TenantClass::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<TenantClass> {
        match s {
            "reader" => Some(TenantClass::Reader),
            "writer" => Some(TenantClass::Writer),
            "mixed" => Some(TenantClass::Mixed),
            _ => None,
        }
    }
}

impl fmt::Display for TenantClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tuning knobs for the service front-end.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Merge adjacent/overlapping writes per batch and route them through
    /// the write-back stripe cache (`false` = pass-through dispatch: every
    /// op hits the volume individually, cache off — the A/B baseline).
    pub coalesce: bool,
    /// Stripe cache geometry when coalescing (`None` = volume default).
    pub cache: Option<CacheConfig>,
    /// Global cap on queued ops; admission beyond it returns
    /// [`ServiceError::Busy`].
    pub queue_depth: usize,
    /// Deficit-round-robin credit per session per dispatch round, in
    /// data elements.
    pub drr_quantum: u64,
    /// Token-bucket capacity per session, in data elements. An op costing
    /// more than the capacity is never admissible.
    pub bucket_capacity: u64,
    /// Tokens refilled per session per dispatch round *and* per elapsed
    /// [`ServiceConfig::refill_interval`] of wall-clock time.
    pub bucket_refill: u64,
    /// Wall-clock token refill period. Buckets also earn
    /// [`ServiceConfig::bucket_refill`] tokens per elapsed interval,
    /// credited at admission — so a throttled client that backs off and
    /// retries is eventually admitted even while the scheduler is idle
    /// and no dispatch rounds run.
    pub refill_interval: Duration,
    /// Pin the volume's partition count (`None` = auto).
    pub partitions: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            coalesce: true,
            cache: None,
            queue_depth: 256,
            drr_quantum: 64,
            bucket_capacity: 65_536,
            bucket_refill: 16_384,
            refill_interval: Duration::from_millis(1),
            partitions: None,
        }
    }
}

/// Errors surfaced to service clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The global queue is full — back off and retry.
    Busy {
        /// Ops queued when the request was rejected.
        queued: usize,
    },
    /// The session's token bucket cannot cover the op right now.
    Throttled {
        /// Element cost of the rejected op.
        wanted: u64,
        /// Tokens the session currently holds.
        available: u64,
    },
    /// The volume rejected or failed the op.
    Volume(VolumeError),
    /// Malformed request (bad range, bad buffer length, unknown verb).
    BadRequest(String),
    /// The service has shut down.
    Closed,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Busy { queued } => write!(f, "busy: {queued} ops queued"),
            ServiceError::Throttled { wanted, available } => {
                write!(f, "throttled: op costs {wanted} elements, bucket holds {available}")
            }
            ServiceError::Volume(e) => write!(f, "volume: {e}"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::Closed => f.write_str("service closed"),
        }
    }
}

impl From<VolumeError> for ServiceError {
    fn from(e: VolumeError) -> Self {
        ServiceError::Volume(e)
    }
}

/// What a completed op hands back to the waiting client.
#[derive(Debug, Clone)]
enum OpOutput {
    Read(Vec<u8>),
    Written { elements: usize },
    Flushed,
}

enum OpKind {
    Read { addr: usize, len: usize },
    Write { addr: usize, data: Vec<u8> },
    Flush,
}

/// One op's completion rendezvous between submitter and combiner.
struct OpSlot {
    result: Mutex<Option<Result<OpOutput, ServiceError>>>,
    cv: Condvar,
}

impl OpSlot {
    fn new() -> Arc<OpSlot> {
        Arc::new(OpSlot { result: Mutex::new(None), cv: Condvar::new() })
    }

    fn set(&self, res: Result<OpOutput, ServiceError>) {
        let mut g = self.result.lock().expect("op slot poisoned");
        *g = Some(res);
        self.cv.notify_all();
    }

    fn take(&self) -> Option<Result<OpOutput, ServiceError>> {
        self.result.lock().expect("op slot poisoned").take()
    }

    /// Sleeps until the slot is set (the combiner notifies on
    /// completion) or `timeout` elapses — the caller re-checks either
    /// way, so the timeout is a fallback bound, not a poll interval.
    fn wait_for(&self, timeout: Duration) {
        let g = self.result.lock().expect("op slot poisoned");
        if g.is_none() {
            let _ = self.cv.wait_timeout(g, timeout).expect("op slot poisoned");
        }
    }
}

/// Fallback wait while a combiner is known active: it will complete our
/// op and notify the slot, so this bound only matters if the combiner
/// dies mid-drain.
const COMBINER_FALLBACK: Duration = Duration::from_millis(50);

/// Retry pause for the narrow window where the combiner lock is held
/// but the combining flag is not (yet) observable — lock acquisition or
/// release in flight.
const HANDOFF_RETRY: Duration = Duration::from_micros(200);

struct PendingOp {
    session: usize,
    kind: OpKind,
    cost: u64,
    enqueued: Instant,
    slot: Arc<OpSlot>,
}

struct SessionState {
    tenant: String,
    class: TenantClass,
    /// False once the session is retired; the slot is then recycled by
    /// the next [`Service::session`] call.
    open: bool,
    /// Distinguishes the current occupant of a recycled slot from stale
    /// handles onto a previous one.
    epoch: u64,
    queue: VecDeque<PendingOp>,
    deficit: u64,
    tokens: u64,
    last_refill: Instant,
    hist: Histogram,
    ops: u64,
    busy_rejections: u64,
    read_elements: u64,
    write_elements: u64,
}

impl SessionState {
    fn has_activity(&self) -> bool {
        self.ops > 0
            || self.busy_rejections > 0
            || self.read_elements > 0
            || self.write_elements > 0
            || self.hist.count() > 0
    }
}

/// Counters folded per `(tenant, class)` — retired sessions accumulate
/// here so closing a connection never resets a Prometheus counter, and
/// [`Service::stats`] reports one entry per tenant label set no matter
/// how many sessions carried it.
#[derive(Clone)]
struct TenantAccum {
    tenant: String,
    class: TenantClass,
    ops: u64,
    busy_rejections: u64,
    read_elements: u64,
    write_elements: u64,
    hist: Histogram,
}

/// Folds `s`'s counters into the accumulator matching its
/// `(tenant, class)` label pair, creating one if absent.
fn fold_tenant(accums: &mut Vec<TenantAccum>, s: &SessionState) {
    let acc = match accums.iter_mut().find(|a| a.tenant == s.tenant && a.class == s.class) {
        Some(a) => a,
        None => {
            accums.push(TenantAccum {
                tenant: s.tenant.clone(),
                class: s.class,
                ops: 0,
                busy_rejections: 0,
                read_elements: 0,
                write_elements: 0,
                hist: Histogram::new(),
            });
            accums.last_mut().expect("just pushed")
        }
    };
    acc.ops += s.ops;
    acc.busy_rejections += s.busy_rejections;
    acc.read_elements += s.read_elements;
    acc.write_elements += s.write_elements;
    acc.hist.merge(&s.hist);
}

struct Shared {
    sessions: Vec<SessionState>,
    /// Retired slots available for reuse by the next `session()`.
    free: Vec<usize>,
    /// Per-`(tenant, class)` counters of retired sessions.
    retired: Vec<TenantAccum>,
    queued: usize,
    rr: usize,
    rounds: u64,
    merged_writes: u64,
    write_runs: u64,
    /// True while a combiner holds the dispatch lock *and* has not yet
    /// observed an empty queue under this mutex — while set, every
    /// already-enqueued op is guaranteed to be completed by that
    /// combiner, so its submitter may sleep instead of polling.
    combining: bool,
    next_epoch: u64,
    closed: bool,
}

/// Per-tenant latency/throughput counters, as last snapshotted.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant label given at session registration.
    pub tenant: String,
    /// Declared traffic class.
    pub class: TenantClass,
    /// Ops completed.
    pub ops: u64,
    /// Admission rejections (busy + throttled).
    pub busy_rejections: u64,
    /// Data elements read.
    pub read_elements: u64,
    /// Data elements written.
    pub write_elements: u64,
    /// Median enqueue→completion latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile enqueue→completion latency, microseconds.
    pub p99_us: f64,
    /// Mean enqueue→completion latency, microseconds.
    pub mean_us: f64,
}

/// A point-in-time view of the whole service, used by the `stats` verb,
/// the Prometheus renderer, and the benches.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Cumulative volume ledger (backend element I/O, cache counters).
    pub ledger: IoLedger,
    /// Array health.
    pub health: HealthState,
    /// Disks currently failed.
    pub failed_disks: Vec<usize>,
    /// Whether the write-back cache is attached.
    pub cache_enabled: bool,
    /// Stripes resident in the cache.
    pub cache_resident: usize,
    /// Dirty stripes in the cache.
    pub cache_dirty: usize,
    /// Whether the scheduler merges writes.
    pub coalesce: bool,
    /// Ops queued right now.
    pub queued: usize,
    /// Dispatch rounds run.
    pub rounds: u64,
    /// Write ops absorbed into a merged run (ops in minus runs out).
    pub merged_writes: u64,
    /// Contiguous write runs submitted to the volume.
    pub write_runs: u64,
    /// Per-tenant latency and throughput, aggregated per
    /// `(tenant, class)` across all sessions ever opened under that
    /// label pair (closed sessions keep counting; sessions that never
    /// recorded an op are omitted).
    pub tenants: Vec<TenantStats>,
    /// Disks in the array.
    pub disks: usize,
    /// Volume capacity in data elements.
    pub data_elements: usize,
    /// Bytes per element.
    pub element_size: usize,
}

impl ServiceStats {
    /// Total ops completed across tenants.
    #[must_use]
    pub fn ops_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.ops).sum()
    }

    /// Ledger-measured backend element I/Os per completed op
    /// (reads + writes; 0 when no ops completed).
    #[must_use]
    pub fn io_per_op(&self) -> f64 {
        let ops = self.ops_total();
        if ops == 0 {
            return 0.0;
        }
        self.ledger.total() as f64 / ops as f64
    }
}

/// The concurrent front-end over one [`RaidVolume`].
///
/// Shared by [`Arc`]; per-client [`ServiceHandle`]s are minted with
/// [`Service::session`]. All client ops funnel through the stripe-aware
/// scheduler described in the module docs.
pub struct Service {
    cfg: ServiceConfig,
    volume: Mutex<RaidVolume>,
    shared: Mutex<Shared>,
    /// The flat-combining dispatch lock: whoever holds it drains queues.
    combiner: Mutex<()>,
    data_elements: usize,
    element_size: usize,
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("data_elements", &self.data_elements)
            .field("element_size", &self.element_size)
            .field("coalesce", &self.cfg.coalesce)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Wraps `volume` in a service with the given scheduler config.
    ///
    /// Coalescing mode attaches the write-back stripe cache (volume
    /// default geometry unless [`ServiceConfig::cache`] overrides it);
    /// pass-through mode detaches it so every op dispatches individually
    /// — the measured A/B baseline.
    ///
    /// # Panics
    ///
    /// Panics if pass-through mode cannot flush an already-attached cache
    /// (only possible on a faulty backend mid-failure).
    #[must_use]
    pub fn new(mut volume: RaidVolume, cfg: ServiceConfig) -> Arc<Service> {
        let mut cfg = cfg;
        cfg.queue_depth = cfg.queue_depth.max(1);
        cfg.drr_quantum = cfg.drr_quantum.max(1);
        cfg.bucket_refill = cfg.bucket_refill.max(1);
        cfg.bucket_capacity = cfg.bucket_capacity.max(cfg.bucket_refill);
        cfg.refill_interval = cfg.refill_interval.max(Duration::from_micros(1));
        if let Some(p) = cfg.partitions {
            volume.set_partitions(Some(p));
        }
        if cfg.coalesce {
            if !volume.cache_enabled() {
                volume.enable_cache(cfg.cache.unwrap_or_default());
            }
        } else if volume.cache_enabled() {
            volume.disable_cache().expect("flushing cache for pass-through mode");
        }
        let data_elements = volume.data_elements();
        let element_size = volume.element_size();
        Arc::new(Service {
            cfg,
            volume: Mutex::new(volume),
            shared: Mutex::new(Shared {
                sessions: Vec::new(),
                free: Vec::new(),
                retired: Vec::new(),
                queued: 0,
                rr: 0,
                rounds: 0,
                merged_writes: 0,
                write_runs: 0,
                combining: false,
                next_epoch: 0,
                closed: false,
            }),
            combiner: Mutex::new(()),
            data_elements,
            element_size,
        })
    }

    /// Opens a session for `tenant` with a full token bucket, reusing a
    /// retired session's slot when one is free (so churning
    /// connections — e.g. repeated stats scrapes — don't grow the
    /// scheduler state or the DRR rotation).
    #[must_use]
    pub fn session(self: &Arc<Self>, tenant: &str, class: TenantClass) -> ServiceHandle {
        let mut sh = self.lock_shared();
        sh.next_epoch += 1;
        let epoch = sh.next_epoch;
        let state = SessionState {
            tenant: tenant.to_string(),
            class,
            open: true,
            epoch,
            queue: VecDeque::new(),
            deficit: 0,
            tokens: self.cfg.bucket_capacity,
            last_refill: Instant::now(),
            hist: Histogram::new(),
            ops: 0,
            busy_rejections: 0,
            read_elements: 0,
            write_elements: 0,
        };
        let session = match sh.free.pop() {
            Some(idx) => {
                sh.sessions[idx] = state;
                idx
            }
            None => {
                sh.sessions.push(state);
                sh.sessions.len() - 1
            }
        };
        ServiceHandle { svc: Arc::clone(self), session, epoch }
    }

    /// Retires a session: folds its counters into the per-tenant
    /// aggregate (stats keep counting monotonically) and recycles its
    /// slot. Idempotent; stale epochs and sessions with queued ops are
    /// ignored.
    fn retire(&self, session: usize, epoch: u64) {
        let mut sh = self.lock_shared();
        let Shared { sessions, free, retired, .. } = &mut *sh;
        let Some(state) = sessions.get_mut(session) else { return };
        if !state.open || state.epoch != epoch || !state.queue.is_empty() {
            return;
        }
        state.open = false;
        if state.has_activity() {
            fold_tenant(retired, state);
        }
        free.push(session);
    }

    /// Volume capacity in data elements.
    #[must_use]
    pub fn data_elements(&self) -> usize {
        self.data_elements
    }

    /// Bytes per data element.
    #[must_use]
    pub fn element_size(&self) -> usize {
        self.element_size
    }

    fn lock_shared(&self) -> MutexGuard<'_, Shared> {
        self.shared.lock().expect("scheduler state poisoned")
    }

    /// Snapshots service-wide and per-tenant counters.
    ///
    /// # Panics
    ///
    /// Panics if an internal lock was poisoned by a previous panic.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        // Lock order: volume before shared, same as the dispatch path.
        let vol = self.volume.lock().expect("volume poisoned");
        let sh = self.lock_shared();
        // One entry per (tenant, class) label pair: retired sessions'
        // folded counters first (stable first-seen order), then every
        // live session merged in — so two connections HELLOing the same
        // tenant, or a close/reopen cycle, still yield a single
        // monotonic series per label set.
        let mut accums = sh.retired.clone();
        for s in sh.sessions.iter().filter(|s| s.open && s.has_activity()) {
            fold_tenant(&mut accums, s);
        }
        let tenants = accums
            .into_iter()
            .map(|a| TenantStats {
                tenant: a.tenant,
                class: a.class,
                ops: a.ops,
                busy_rejections: a.busy_rejections,
                read_elements: a.read_elements,
                write_elements: a.write_elements,
                p50_us: a.hist.percentile(0.50) / 1_000.0,
                p99_us: a.hist.percentile(0.99) / 1_000.0,
                mean_us: a.hist.mean() / 1_000.0,
            })
            .collect();
        ServiceStats {
            ledger: vol.ledger().clone(),
            health: vol.health_state(),
            failed_disks: vol.failed_disks(),
            cache_enabled: vol.cache_enabled(),
            cache_resident: vol.cache_resident_stripes(),
            cache_dirty: vol.cache_dirty_stripes(),
            coalesce: self.cfg.coalesce,
            queued: sh.queued,
            rounds: sh.rounds,
            merged_writes: sh.merged_writes,
            write_runs: sh.write_runs,
            tenants,
            disks: vol.disks(),
            data_elements: self.data_elements,
            element_size: self.element_size,
        }
    }

    /// Stops admitting ops, drains everything queued, and flushes the
    /// volume (the clean-shutdown contract: a file-backed volume is
    /// byte-complete on disk afterwards).
    ///
    /// # Errors
    ///
    /// Returns the volume error if the final flush fails.
    ///
    /// # Panics
    ///
    /// Panics if an internal lock was poisoned by a previous panic.
    pub fn shutdown(&self) -> Result<(), ServiceError> {
        self.lock_shared().closed = true;
        let _combine = self.combiner.lock().expect("combiner poisoned");
        self.drain();
        let mut vol = self.volume.lock().expect("volume poisoned");
        vol.flush()?;
        Ok(())
    }

    /// Runs maintenance on the underlying volume (rebuild budget ticks,
    /// scrubs) without going through the scheduler. Test/CLI plumbing.
    ///
    /// # Panics
    ///
    /// Panics if the volume lock was poisoned.
    pub fn with_volume<R>(&self, f: impl FnOnce(&mut RaidVolume) -> R) -> R {
        let _combine = self.combiner.lock().expect("combiner poisoned");
        self.drain();
        f(&mut self.volume.lock().expect("volume poisoned"))
    }

    // ---- submission -------------------------------------------------

    fn validate(&self, kind: &OpKind) -> Result<u64, ServiceError> {
        let (addr, len) = match kind {
            OpKind::Read { addr, len } => (*addr, *len),
            OpKind::Write { addr, data } => {
                if data.is_empty() || data.len() % self.element_size != 0 {
                    return Err(ServiceError::BadRequest(format!(
                        "write payload must be a positive multiple of the {}-byte element size, got {} bytes",
                        self.element_size,
                        data.len()
                    )));
                }
                (*addr, data.len() / self.element_size)
            }
            OpKind::Flush => return Ok(1),
        };
        if len == 0 {
            return Err(ServiceError::BadRequest("zero-length op".to_string()));
        }
        if addr.checked_add(len).is_none_or(|end| end > self.data_elements) {
            return Err(ServiceError::BadRequest(format!(
                "range [{addr}, {addr}+{len}) exceeds {} data elements",
                self.data_elements
            )));
        }
        Ok(len as u64)
    }

    fn submit(&self, session: usize, epoch: u64, kind: OpKind) -> Result<OpOutput, ServiceError> {
        let cost = self.validate(&kind)?;
        let slot = {
            let mut sh = self.lock_shared();
            if sh.closed {
                return Err(ServiceError::Closed);
            }
            if !sh.sessions[session].open || sh.sessions[session].epoch != epoch {
                return Err(ServiceError::Closed);
            }
            if sh.queued >= self.cfg.queue_depth {
                let queued = sh.queued;
                sh.sessions[session].busy_rejections += 1;
                return Err(ServiceError::Busy { queued });
            }
            let state = &mut sh.sessions[session];
            // Wall-clock refill before the token check: a throttled
            // client's retry must be able to succeed even if no
            // dispatch round ran in between (rounds only run while ops
            // are queued, and a rejection queues nothing).
            let periods = u64::try_from(
                state.last_refill.elapsed().as_nanos() / self.cfg.refill_interval.as_nanos(),
            )
            .unwrap_or(u64::MAX);
            if periods > 0 {
                state.tokens = state
                    .tokens
                    .saturating_add(periods.saturating_mul(self.cfg.bucket_refill))
                    .min(self.cfg.bucket_capacity);
                state.last_refill = Instant::now();
            }
            if state.tokens < cost {
                state.busy_rejections += 1;
                return Err(ServiceError::Throttled { wanted: cost, available: state.tokens });
            }
            state.tokens -= cost;
            let slot = OpSlot::new();
            state.queue.push_back(PendingOp {
                session,
                kind,
                cost,
                enqueued: Instant::now(),
                slot: Arc::clone(&slot),
            });
            sh.queued += 1;
            slot
        };
        // Give peer submitters a chance to enqueue before we fight for
        // the combiner: on few-core hosts the submitting thread would
        // otherwise re-take the combiner immediately and drain singleton
        // batches, defeating write coalescing.
        thread::yield_now();
        loop {
            if let Some(res) = slot.take() {
                return res;
            }
            if self.lock_shared().combining {
                // An active combiner is guaranteed to complete our op
                // (it clears the flag only after observing zero queued
                // ops under the shared lock, which cannot happen while
                // ours is queued) and notifies the slot when it does —
                // sleep until then instead of polling.
                slot.wait_for(COMBINER_FALLBACK);
                continue;
            }
            if let Ok(_combine) = self.combiner.try_lock() {
                self.drain();
                // Our op was queued before we took the lock, so the
                // drain above necessarily completed it.
            } else {
                // Combiner lock held but flag not yet visible (taken or
                // released this instant) — brief pause, then re-check.
                slot.wait_for(HANDOFF_RETRY);
            }
        }
    }

    // ---- dispatch (combiner-only) -----------------------------------

    /// Drains every session queue to empty. Caller holds `combiner`.
    fn drain(&self) {
        loop {
            let (batch, remaining) = self.collect_round();
            if batch.is_empty() {
                if remaining == 0 {
                    return;
                }
                // All front ops out-credit their deficits; another round
                // accrues more quantum.
                continue;
            }
            self.execute(batch);
        }
    }

    /// One deficit-round-robin pass over the sessions: refill token
    /// buckets, accrue quantum, release whole ops while credit lasts.
    ///
    /// Also maintains `Shared::combining`: the flag is raised while this
    /// combiner still sees queued work and cleared under the same lock
    /// acquisition that observes an empty queue — so a submitter that
    /// reads `combining == true` after enqueueing knows *this* combiner
    /// will drain its op.
    fn collect_round(&self) -> (Vec<PendingOp>, usize) {
        let mut sh = self.lock_shared();
        if sh.queued == 0 {
            sh.combining = false;
            return (Vec::new(), 0);
        }
        sh.combining = true;
        sh.rounds += 1;
        let n = sh.sessions.len();
        let start = sh.rr;
        let mut batch = Vec::new();
        for i in 0..n {
            let state = &mut sh.sessions[(start + i) % n];
            if state.queue.is_empty() {
                state.deficit = 0;
                continue;
            }
            // Per-round refill for sessions in the rotation; idle
            // sessions catch up wall-clock-wise at their next submit.
            state.tokens = (state.tokens + self.cfg.bucket_refill).min(self.cfg.bucket_capacity);
            state.deficit += self.cfg.drr_quantum;
            let mut released = 0usize;
            while let Some(front) = state.queue.front() {
                if front.cost > state.deficit {
                    break;
                }
                state.deficit -= front.cost;
                let op = state.queue.pop_front().expect("front exists");
                released += 1;
                batch.push(op);
            }
            if state.queue.is_empty() {
                state.deficit = 0;
            }
            sh.queued -= released;
        }
        sh.rr = if n == 0 { 0 } else { (start + 1) % n };
        (batch, sh.queued)
    }

    /// Executes one collected batch against the volume, coalescing
    /// consecutive writes when configured.
    fn execute(&self, batch: Vec<PendingOp>) {
        let mut vol = self.volume.lock().expect("volume poisoned");
        let mut stage: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
        let mut staged_ops: Vec<PendingOp> = Vec::new();
        for op in batch {
            match &op.kind {
                OpKind::Write { addr, data } if self.cfg.coalesce => {
                    let es = self.element_size;
                    for (i, chunk) in data.chunks_exact(es).enumerate() {
                        stage.insert(addr + i, chunk.to_vec());
                    }
                    staged_ops.push(op);
                }
                _ => {
                    self.flush_stage(&mut vol, &mut stage, &mut staged_ops);
                    let result = match op.kind {
                        OpKind::Read { addr, len } => {
                            vol.read(addr, len).map(|(bytes, _)| OpOutput::Read(bytes))
                        }
                        OpKind::Write { addr, ref data } => vol
                            .write(addr, data)
                            .map(|_| OpOutput::Written { elements: data.len() / self.element_size }),
                        OpKind::Flush => vol.flush().map(|_| OpOutput::Flushed),
                    };
                    self.complete(&op, result.map_err(ServiceError::from));
                }
            }
        }
        self.flush_stage(&mut vol, &mut stage, &mut staged_ops);
    }

    /// Submits the staged writes as maximal contiguous runs, grouped by
    /// owning partition, then completes every staged op.
    ///
    /// Every run is attempted even after one fails — runs are
    /// independent writes, and an op may only be acked `Written` if the
    /// bytes it staged actually reached the volume. A staged op's range
    /// is contiguous, so it lies entirely within one maximal run: the op
    /// fails exactly when the run carrying it failed.
    fn flush_stage(
        &self,
        vol: &mut RaidVolume,
        stage: &mut BTreeMap<usize, Vec<u8>>,
        staged_ops: &mut Vec<PendingOp>,
    ) {
        if stage.is_empty() {
            debug_assert!(staged_ops.is_empty());
            return;
        }
        // Extract maximal contiguous [start, start+n) runs; BTreeMap
        // iteration is address order.
        let mut runs: Vec<(usize, Vec<u8>)> = Vec::new();
        for (addr, bytes) in std::mem::take(stage) {
            match runs.last_mut() {
                Some((start, buf)) if *start + buf.len() / self.element_size == addr => {
                    buf.extend_from_slice(&bytes);
                }
                _ => runs.push((addr, bytes)),
            }
        }
        // Dispatch each run to the partition owning its first stripe:
        // sorting by owner keeps one partition's stripes contiguous in
        // submission order, and the volume's flush path then executes
        // the dirty stripes of different partitions in parallel.
        let pmap = vol.partition_map();
        let addressing = vol.addressing();
        runs.sort_by_key(|(start, _)| (pmap.owner_of(addressing.stripe_of(*start)), *start));

        let mut failed: Vec<(usize, usize, ServiceError)> = Vec::new();
        for (start, buf) in &runs {
            if let Err(e) = vol.write(*start, buf) {
                let len = buf.len() / self.element_size;
                failed.push((*start, *start + len, ServiceError::from(e)));
            }
        }
        {
            let mut sh = self.lock_shared();
            sh.write_runs += runs.len() as u64;
            sh.merged_writes += (staged_ops.len().saturating_sub(runs.len())) as u64;
        }
        for op in staged_ops.drain(..) {
            let (addr, elements) = match &op.kind {
                OpKind::Write { addr, data } => (*addr, data.len() / self.element_size),
                _ => unreachable!("only writes are staged"),
            };
            let result = match failed.iter().find(|(lo, hi, _)| addr < *hi && addr + elements > *lo)
            {
                Some((_, _, e)) => Err(e.clone()),
                None => Ok(OpOutput::Written { elements }),
            };
            self.complete(&op, result);
        }
    }

    /// Records latency/throughput for `op` and wakes its submitter.
    fn complete(&self, op: &PendingOp, result: Result<OpOutput, ServiceError>) {
        let ns = u64::try_from(op.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        {
            let mut sh = self.lock_shared();
            let state = &mut sh.sessions[op.session];
            state.hist.record(ns);
            state.ops += 1;
            match &op.kind {
                OpKind::Read { len, .. } => state.read_elements += *len as u64,
                OpKind::Write { data, .. } => {
                    state.write_elements += (data.len() / self.element_size) as u64;
                }
                OpKind::Flush => {}
            }
        }
        op.slot.set(result);
    }
}

/// A per-client (per-session) handle onto a shared [`Service`].
///
/// Cheap to clone-by-`session`; each handle owns one admission bucket and
/// one FIFO in the scheduler. Call [`ServiceHandle::close`] when the
/// client is done so the session's scheduler slot is recycled.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    svc: Arc<Service>,
    session: usize,
    epoch: u64,
}

impl ServiceHandle {
    /// Reads `len` data elements starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Busy`] / [`ServiceError::Throttled`] on admission
    /// rejection (retry later), [`ServiceError::Volume`] if the volume
    /// fails the op.
    pub fn read(&self, addr: usize, len: usize) -> Result<Vec<u8>, ServiceError> {
        match self.svc.submit(self.session, self.epoch, OpKind::Read { addr, len })? {
            OpOutput::Read(bytes) => Ok(bytes),
            _ => unreachable!("read op returns read output"),
        }
    }

    /// Writes `data` (a multiple of the element size) at element `addr`,
    /// returning the element count written.
    ///
    /// # Errors
    ///
    /// Same admission/volume errors as [`ServiceHandle::read`].
    pub fn write(&self, addr: usize, data: &[u8]) -> Result<usize, ServiceError> {
        match self.svc.submit(self.session, self.epoch, OpKind::Write { addr, data: data.to_vec() })?
        {
            OpOutput::Written { elements } => Ok(elements),
            _ => unreachable!("write op returns write output"),
        }
    }

    /// Flushes all dirty cached stripes to the backend.
    ///
    /// # Errors
    ///
    /// Same admission/volume errors as [`ServiceHandle::read`].
    pub fn flush(&self) -> Result<(), ServiceError> {
        match self.svc.submit(self.session, self.epoch, OpKind::Flush)? {
            OpOutput::Flushed => Ok(()),
            _ => unreachable!("flush op returns flush output"),
        }
    }

    /// Closes the session: its counters fold into the per-tenant
    /// aggregate ([`Service::stats`] keeps reporting them) and its
    /// scheduler slot is recycled for the next [`Service::session`].
    ///
    /// Idempotent. Further ops through this handle (or a clone) fail
    /// with [`ServiceError::Closed`]; don't close while another clone
    /// has an op in flight.
    pub fn close(&self) {
        self.svc.retire(self.session, self.epoch);
    }

    /// Snapshots service-wide stats.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.svc.stats()
    }

    /// The shared service this handle feeds.
    #[must_use]
    pub fn service(&self) -> &Arc<Service> {
        &self.svc
    }
}

#[cfg(test)]
mod tests {
    use hv_code::HvCode;
    use raid_core::ArrayCode;

    use super::*;

    fn service(cfg: ServiceConfig) -> Arc<Service> {
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(5).unwrap());
        Service::new(RaidVolume::in_memory(code, 6, 8), cfg)
    }

    /// Regression for acking unwritten data: when staged runs fail at
    /// the volume, *every* op whose run failed must get the error —
    /// including ops in runs after the first failure.
    #[test]
    fn coalesced_batch_failure_fails_every_staged_op() {
        let svc = service(ServiceConfig::default());
        for i in 0..3 {
            let _ = svc.session(&format!("t{i}"), TenantClass::Writer);
        }
        // Park the volume at the correction limit with the fence armed:
        // every run's write now fails with SpareExhausted.
        svc.with_volume(|v| {
            v.set_auto_heal(false);
            v.fail_disk(0).unwrap();
            v.fail_disk(1).unwrap();
            v.set_write_fence(true);
            assert!(v.write_fenced());
        });
        // Three disjoint (non-adjacent) writes staged into one batch —
        // three maximal runs — executed directly, no combiner timing.
        let es = svc.element_size();
        let mut batch = Vec::new();
        let mut slots = Vec::new();
        for (i, addr) in [0usize, 4, 8].into_iter().enumerate() {
            let slot = OpSlot::new();
            slots.push(Arc::clone(&slot));
            batch.push(PendingOp {
                session: i,
                kind: OpKind::Write { addr, data: vec![0xA5; 2 * es] },
                cost: 2,
                enqueued: Instant::now(),
                slot,
            });
        }
        svc.execute(batch);
        for (i, slot) in slots.iter().enumerate() {
            let res = slot.take().expect("op completed");
            assert!(
                matches!(res, Err(ServiceError::Volume(_))),
                "op {i} was never written but got {res:?}"
            );
        }
    }

    /// Regression for permanent throttling: with no ops queued no
    /// dispatch round runs, so a rejected op must still see the bucket
    /// refill (wall-clock, at admission) for its retry to succeed.
    #[test]
    fn throttled_session_recovers_without_dispatch_rounds() {
        let svc = service(ServiceConfig {
            coalesce: false,
            bucket_capacity: 8,
            bucket_refill: 1,
            refill_interval: Duration::from_millis(5),
            ..ServiceConfig::default()
        });
        let h = svc.session("t", TenantClass::Writer);
        let es = svc.element_size();
        h.write(0, &vec![1u8; 8 * es]).expect("first op drains the full bucket");
        let start = Instant::now();
        loop {
            match h.write(0, &vec![2u8; 8 * es]) {
                Ok(_) => break,
                Err(ServiceError::Throttled { .. }) => {
                    assert!(
                        start.elapsed() < Duration::from_secs(10),
                        "throttled retry was never admitted: bucket never refills while idle"
                    );
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
    }

    #[test]
    fn sessions_recycle_and_tenant_stats_aggregate() {
        let svc = service(ServiceConfig::default());
        let es = svc.element_size();

        let h1 = svc.session("t", TenantClass::Writer);
        h1.write(0, &vec![1u8; es]).unwrap();
        h1.close();
        h1.close(); // idempotent
        assert!(
            matches!(h1.write(0, &vec![1u8; es]), Err(ServiceError::Closed)),
            "closed handle must not submit"
        );
        let st = svc.stats();
        assert_eq!(st.tenants.len(), 1);
        assert_eq!(st.tenants[0].ops, 1, "counters survive the close");

        // Reopen the same tenant: the retired slot is recycled and the
        // series stays one monotonic entry.
        let h2 = svc.session("t", TenantClass::Writer);
        h2.write(0, &vec![2u8; es]).unwrap();
        let st = svc.stats();
        assert_eq!(st.tenants.len(), 1);
        assert_eq!(st.tenants[0].ops, 2);

        // Two live sessions under one label pair merge into one entry.
        let ha = svc.session("dup", TenantClass::Mixed);
        let hb = svc.session("dup", TenantClass::Mixed);
        ha.write(0, &vec![3u8; es]).unwrap();
        hb.write(0, &vec![4u8; es]).unwrap();
        let dup: Vec<_> = svc.stats().tenants.into_iter().filter(|t| t.tenant == "dup").collect();
        assert_eq!(dup.len(), 1, "same tenant+class must not duplicate series");
        assert_eq!(dup[0].ops, 2);

        // A churn of zero-op scrape sessions leaves no series behind and
        // does not grow the scheduler state.
        for _ in 0..32 {
            let m = svc.session("metrics", TenantClass::Reader);
            let _ = m.stats();
            m.close();
        }
        let st = svc.stats();
        assert!(
            st.tenants.iter().all(|t| t.tenant != "metrics"),
            "zero-op sessions must not emit series"
        );
        let slots = svc.lock_shared().sessions.len();
        assert!(slots <= 4, "retired slots must be reused, got {slots} session slots");
    }
}
