//! Prometheus text-format exposition of the service's counters.
//!
//! The first slice of the ROADMAP metrics endpoint: every number here
//! already existed in the [`raid_core::io::IoLedger`], the stripe cache,
//! or the health machine — this module only renders a
//! [`ServiceStats`] snapshot in the
//! [text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! (`# HELP` / `# TYPE` headers, `metric{label="v"} value` samples).
//! Served by the protocol's `STATS` verb and `hvraid stats`.

use std::fmt::Write as _;

use raid_array::HealthState;

use crate::scheduler::ServiceStats;

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders `stats` in Prometheus text format.
///
/// Deterministic for a given snapshot: fixed metric order, disks and
/// tenants in index order, floats with limited precision — so tests and
/// the serve-smoke gate can assert on the output.
#[must_use]
pub fn prometheus_text(stats: &ServiceStats) -> String {
    let mut out = String::new();

    header(&mut out, "hvraid_disk_reads_total", "Element reads issued per disk.", "counter");
    for (d, n) in stats.ledger.reads().iter().enumerate() {
        let _ = writeln!(out, "hvraid_disk_reads_total{{disk=\"{d}\"}} {n}");
    }
    header(&mut out, "hvraid_disk_writes_total", "Element writes issued per disk (data + parity).", "counter");
    for (d, n) in stats.ledger.writes().iter().enumerate() {
        let _ = writeln!(out, "hvraid_disk_writes_total{{disk=\"{d}\"}} {n}");
    }

    header(&mut out, "hvraid_io_reads_total", "Total element reads.", "counter");
    let _ = writeln!(out, "hvraid_io_reads_total {}", stats.ledger.total_reads());
    header(&mut out, "hvraid_io_data_writes_total", "Total data-element writes.", "counter");
    let _ = writeln!(out, "hvraid_io_data_writes_total {}", stats.ledger.data_writes());
    header(&mut out, "hvraid_io_parity_writes_total", "Total parity-element writes.", "counter");
    let _ = writeln!(out, "hvraid_io_parity_writes_total {}", stats.ledger.parity_writes());
    header(&mut out, "hvraid_io_retries_total", "Op retries after backend faults.", "counter");
    let _ = writeln!(out, "hvraid_io_retries_total {}", stats.ledger.retries());
    header(&mut out, "hvraid_io_latent_repairs_total", "Latent sector repairs.", "counter");
    let _ = writeln!(out, "hvraid_io_latent_repairs_total {}", stats.ledger.latent_repairs());
    header(
        &mut out,
        "hvraid_write_balance_rate",
        "Load-balancing rate lambda of Eq. 7 (max/min per-disk writes - 1).",
        "gauge",
    );
    let _ = writeln!(out, "hvraid_write_balance_rate {:.6}", stats.ledger.write_balance_rate());

    header(&mut out, "hvraid_cache_hits_total", "Cache element hits.", "counter");
    let _ = writeln!(out, "hvraid_cache_hits_total {}", stats.ledger.cache_hits());
    header(&mut out, "hvraid_cache_misses_total", "Cache element misses.", "counter");
    let _ = writeln!(out, "hvraid_cache_misses_total {}", stats.ledger.cache_misses());
    header(&mut out, "hvraid_cache_flushes_total", "Coalesced stripe flushes.", "counter");
    let _ = writeln!(out, "hvraid_cache_flushes_total {}", stats.ledger.cache_flushes());
    header(&mut out, "hvraid_cache_evictions_total", "Clean-stripe evictions.", "counter");
    let _ = writeln!(out, "hvraid_cache_evictions_total {}", stats.ledger.cache_evictions());
    header(&mut out, "hvraid_cache_resident_stripes", "Stripes resident in the cache.", "gauge");
    let _ = writeln!(out, "hvraid_cache_resident_stripes {}", stats.cache_resident);
    header(&mut out, "hvraid_cache_dirty_stripes", "Dirty stripes awaiting flush.", "gauge");
    let _ = writeln!(out, "hvraid_cache_dirty_stripes {}", stats.cache_dirty);

    header(
        &mut out,
        "hvraid_health_state",
        "Array health (1 on the current state's line).",
        "gauge",
    );
    for state in [HealthState::Healthy, HealthState::Degraded, HealthState::Critical, HealthState::Failed]
    {
        let _ = writeln!(
            out,
            "hvraid_health_state{{state=\"{}\"}} {}",
            format!("{state:?}").to_lowercase(),
            u8::from(stats.health == state)
        );
    }
    header(&mut out, "hvraid_failed_disks", "Disks currently failed.", "gauge");
    let _ = writeln!(out, "hvraid_failed_disks {}", stats.failed_disks.len());

    header(&mut out, "hvraid_service_queued_ops", "Ops waiting in the scheduler.", "gauge");
    let _ = writeln!(out, "hvraid_service_queued_ops {}", stats.queued);
    header(&mut out, "hvraid_service_rounds_total", "Deficit-round-robin dispatch rounds.", "counter");
    let _ = writeln!(out, "hvraid_service_rounds_total {}", stats.rounds);
    header(
        &mut out,
        "hvraid_service_merged_writes_total",
        "Write ops absorbed into coalesced runs.",
        "counter",
    );
    let _ = writeln!(out, "hvraid_service_merged_writes_total {}", stats.merged_writes);
    header(
        &mut out,
        "hvraid_service_write_runs_total",
        "Contiguous write runs submitted to the volume.",
        "counter",
    );
    let _ = writeln!(out, "hvraid_service_write_runs_total {}", stats.write_runs);

    header(&mut out, "hvraid_service_ops_total", "Ops completed per tenant.", "counter");
    for t in &stats.tenants {
        let _ = writeln!(
            out,
            "hvraid_service_ops_total{{tenant=\"{}\",class=\"{}\"}} {}",
            t.tenant, t.class, t.ops
        );
    }
    header(
        &mut out,
        "hvraid_service_busy_total",
        "Admission rejections (queue-full + throttle) per tenant.",
        "counter",
    );
    for t in &stats.tenants {
        let _ = writeln!(
            out,
            "hvraid_service_busy_total{{tenant=\"{}\",class=\"{}\"}} {}",
            t.tenant, t.class, t.busy_rejections
        );
    }
    header(
        &mut out,
        "hvraid_service_latency_us",
        "Enqueue-to-completion latency quantiles per tenant, microseconds.",
        "summary",
    );
    for t in &stats.tenants {
        for (q, v) in [("0.5", t.p50_us), ("0.99", t.p99_us)] {
            let _ = writeln!(
                out,
                "hvraid_service_latency_us{{tenant=\"{}\",class=\"{}\",quantile=\"{q}\"}} {v:.1}",
                t.tenant, t.class
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use hv_code::HvCode;
    use raid_array::RaidVolume;
    use raid_core::ArrayCode;

    use crate::scheduler::{Service, ServiceConfig, TenantClass};

    use super::*;

    #[test]
    fn renders_valid_exposition_format() {
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(5).unwrap());
        let volume = RaidVolume::in_memory(code, 4, 16);
        let svc = Service::new(volume, ServiceConfig::default());
        let h = svc.session("t0", TenantClass::Writer);
        h.write(0, &[7u8; 32]).unwrap();
        h.flush().unwrap();
        let text = prometheus_text(&h.stats());

        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(name.starts_with("hvraid_"), "bad metric name in {line:?}");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
        // Each metric family declares HELP + TYPE exactly once, before
        // its samples.
        assert_eq!(text.matches("# TYPE hvraid_disk_reads_total").count(), 1);
        assert!(text.contains("hvraid_health_state{state=\"healthy\"} 1"));
        assert!(text.contains("hvraid_service_ops_total{tenant=\"t0\",class=\"writer\"} 2"));
        assert!(text.contains("hvraid_cache_flushes_total"));
        assert!(text.contains("quantile=\"0.99\""));
    }

    /// Repeated or concurrent sessions under one tenant label pair must
    /// not emit duplicate series (identical label sets are invalid
    /// exposition format), and zero-op scrape sessions emit nothing.
    #[test]
    fn duplicate_label_sets_never_rendered() {
        let code: Arc<dyn ArrayCode> = Arc::new(HvCode::new(5).unwrap());
        let volume = RaidVolume::in_memory(code, 4, 16);
        let svc = Service::new(volume, ServiceConfig::default());
        let a = svc.session("t0", TenantClass::Writer);
        let b = svc.session("t0", TenantClass::Writer);
        a.write(0, &[1u8; 16]).unwrap();
        b.write(1, &[2u8; 16]).unwrap();
        a.close();
        // Scrape-style churn: open, snapshot, close.
        for _ in 0..3 {
            let m = svc.session("metrics", TenantClass::Reader);
            let _ = prometheus_text(&m.stats());
            m.close();
        }
        let text = prometheus_text(&svc.stats());
        assert_eq!(
            text.matches("hvraid_service_ops_total{tenant=\"t0\",class=\"writer\"}").count(),
            1,
            "one series per label set"
        );
        assert!(text.contains("hvraid_service_ops_total{tenant=\"t0\",class=\"writer\"} 2"));
        assert!(!text.contains("tenant=\"metrics\""), "zero-op sessions emit no series");
    }
}
