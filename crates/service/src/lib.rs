//! A concurrent block-device front-end over [`raid_array::RaidVolume`].
//!
//! This crate turns the single-caller volume library into a served
//! system: many clients — in-process [`ServiceHandle`]s or unix-socket
//! sessions speaking the [`proto`] line protocol — issue element
//! read/write/flush ops that funnel through one **stripe-aware
//! scheduler** ([`scheduler`]):
//!
//! * ops are admitted under queue-depth backpressure (typed
//!   [`ServiceError::Busy`]) and a per-session token bucket
//!   ([`ServiceError::Throttled`]);
//! * queued ops drain under deficit-round-robin across tenants, so a hot
//!   writer cannot starve a reader;
//! * adjacent and overlapping writes in a batch coalesce into maximal
//!   contiguous runs, dispatched grouped by owning partition into the
//!   volume's write-back stripe cache — N tenants' small writes to one
//!   stripe become one parity-sharing flush instead of N
//!   read-modify-writes;
//! * per-op enqueue→completion latency lands in the shared
//!   [`raid_core::stats`] histograms, reported per tenant class by
//!   [`metrics`] in Prometheus text format.
//!
//! `hvraid serve` / `hvraid connect` / `hvraid stats` expose it end to
//! end; `crates/bench/benches/service.rs` drives the in-process handle
//! with mixed Zipf tenants and pins the coalescing win in
//! `BENCH_service.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod proto;
pub mod scheduler;
pub mod server;

pub use metrics::prometheus_text;
pub use scheduler::{
    Service, ServiceConfig, ServiceError, ServiceHandle, ServiceStats, TenantClass, TenantStats,
};
pub use server::{fetch_stats, run_script, serve, ServerConfig};
