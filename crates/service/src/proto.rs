//! The line-framed client protocol spoken over the unix socket.
//!
//! One request per line, one response per request; payloads are
//! hex-encoded so the framing stays printable and a session can be
//! driven from a script file (`hvraid connect --script`). Verbs:
//!
//! ```text
//! HELLO <tenant> <reader|writer|mixed>   -> OK session <id> elements <n> element_size <b>
//! READ <addr> <len>                      -> OK data <hex>
//! WRITE <addr> <hex>                     -> OK wrote <elements>
//! FLUSH                                  -> OK flushed
//! STATS                                  -> OK stats <lines>   (then that many metric lines)
//! QUIT                                   -> OK bye             (closes the connection)
//! SHUTDOWN                               -> OK shutdown        (drains, flushes, stops the server)
//! ```
//!
//! Errors come back as a single `ERR <kind>: <detail>` line; `ERR busy`
//! and `ERR throttled` are retryable backpressure, everything else is a
//! hard failure for that request.

use crate::scheduler::{ServiceError, TenantClass};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open the session: tenant label + traffic class.
    Hello {
        /// Tenant label (metrics dimension).
        tenant: String,
        /// Declared traffic class.
        class: TenantClass,
    },
    /// Read `len` elements at `addr`.
    Read {
        /// First element.
        addr: usize,
        /// Element count.
        len: usize,
    },
    /// Write the decoded payload at `addr`.
    Write {
        /// First element.
        addr: usize,
        /// Raw bytes (multiple of the element size).
        data: Vec<u8>,
    },
    /// Flush dirty cached stripes.
    Flush,
    /// Fetch the Prometheus metrics snapshot.
    Stats,
    /// Close this connection.
    Quit,
    /// Drain, flush, and stop the whole server.
    Shutdown,
}

/// Encodes bytes as lower-case hex.
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        s.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble"));
    }
    s
}

/// Decodes lower- or upper-case hex.
///
/// # Errors
///
/// Returns a message on odd length or a non-hex digit.
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("hex payload has odd length {}", s.len()));
    }
    let digit = |c: char| c.to_digit(16).ok_or_else(|| format!("bad hex digit {c:?}"));
    let mut out = Vec::with_capacity(s.len() / 2);
    let mut chars = s.chars();
    while let (Some(hi), Some(lo)) = (chars.next(), chars.next()) {
        out.push(((digit(hi)? as u8) << 4) | digit(lo)? as u8);
    }
    Ok(out)
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a user-facing message on an unknown verb or malformed
/// arguments.
pub fn parse(line: &str) -> Result<Request, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or("empty request")?;
    let mut arg = |name: &str| {
        parts.next().map(str::to_string).ok_or_else(|| format!("{verb}: missing <{name}>"))
    };
    let req = match verb.to_ascii_uppercase().as_str() {
        "HELLO" => {
            let tenant = arg("tenant")?;
            let class_s = arg("class")?;
            let class = TenantClass::parse(&class_s)
                .ok_or_else(|| format!("unknown class {class_s:?} (reader|writer|mixed)"))?;
            Request::Hello { tenant, class }
        }
        "READ" => {
            let addr = parse_usize(&arg("addr")?)?;
            let len = parse_usize(&arg("len")?)?;
            Request::Read { addr, len }
        }
        "WRITE" => {
            let addr = parse_usize(&arg("addr")?)?;
            let data = from_hex(&arg("hex-payload")?)?;
            Request::Write { addr, data }
        }
        "FLUSH" => Request::Flush,
        "STATS" => Request::Stats,
        "QUIT" => Request::Quit,
        "SHUTDOWN" => Request::Shutdown,
        other => return Err(format!("unknown verb {other:?}")),
    };
    if let Some(extra) = parts.next() {
        return Err(format!("{verb}: unexpected trailing argument {extra:?}"));
    }
    Ok(req)
}

fn parse_usize(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("expected a non-negative integer, got {s:?}"))
}

/// Renders a [`ServiceError`] as the protocol's `ERR` line.
#[must_use]
pub fn err_line(e: &ServiceError) -> String {
    match e {
        ServiceError::Busy { queued } => format!("ERR busy: {queued} ops queued"),
        ServiceError::Throttled { wanted, available } => {
            format!("ERR throttled: cost {wanted} elements, bucket {available}")
        }
        ServiceError::Volume(v) => format!("ERR volume: {v}"),
        ServiceError::BadRequest(m) => format!("ERR bad-request: {m}"),
        ServiceError::Closed => "ERR closed: service shut down".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(from_hex("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse("HELLO t0 writer").unwrap(),
            Request::Hello { tenant: "t0".into(), class: TenantClass::Writer }
        );
        assert_eq!(parse("read 3 2").unwrap(), Request::Read { addr: 3, len: 2 });
        assert_eq!(parse("WRITE 7 00ff").unwrap(), Request::Write { addr: 7, data: vec![0, 255] });
        assert_eq!(parse("FLUSH").unwrap(), Request::Flush);
        assert_eq!(parse("STATS").unwrap(), Request::Stats);
        assert_eq!(parse("QUIT").unwrap(), Request::Quit);
        assert_eq!(parse("SHUTDOWN").unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("HELLO t0 admin").is_err());
        assert!(parse("READ 1").is_err());
        assert!(parse("READ 1 2 3").is_err());
        assert!(parse("WRITE x 00").is_err());
        assert!(parse("NOPE").is_err());
    }

    #[test]
    fn err_lines_are_single_line() {
        let e = ServiceError::Busy { queued: 9 };
        assert_eq!(err_line(&e), "ERR busy: 9 ops queued");
        assert!(!err_line(&ServiceError::BadRequest("x\ny".into())).starts_with("OK"));
    }
}
