//! The `⟨·⟩_p` modular arithmetic of the HV Code paper (Table I).
//!
//! All functions take signed inputs so that expressions straight out of the
//! paper — `⟨j − 4i⟩_p`, `⟨(f1 − f2)/2⟩_p` — can be written verbatim without
//! manual normalization.

use crate::prime::Prime;

/// `⟨x⟩_p`: reduces a (possibly negative) integer into `0..p`.
///
/// ```
/// use raid_math::{modp::reduce, Prime};
/// let p = Prime::new(7)?;
/// assert_eq!(reduce(-1, p), 6);
/// assert_eq!(reduce(15, p), 1);
/// # Ok::<(), raid_math::prime::NotPrimeError>(())
/// ```
pub fn reduce(x: i64, p: Prime) -> usize {
    let m = p.get() as i64;
    (((x % m) + m) % m) as usize
}

/// `⟨a + b⟩_p` for signed operands.
pub fn add_mod(a: i64, b: i64, p: Prime) -> usize {
    reduce(a + b, p)
}

/// `⟨a − b⟩_p` for signed operands.
pub fn sub_mod(a: i64, b: i64, p: Prime) -> usize {
    reduce(a - b, p)
}

/// `⟨a · b⟩_p` for signed operands.
pub fn mul_mod(a: i64, b: i64, p: Prime) -> usize {
    reduce(reduce(a, p) as i64 * reduce(b, p) as i64, p)
}

/// `a^e mod p` by binary exponentiation.
pub fn pow_mod(a: i64, mut e: u32, p: Prime) -> usize {
    let mut base = reduce(a, p);
    let mut acc = 1usize;
    let m = p.get();
    while e > 0 {
        if e & 1 == 1 {
            acc = acc * base % m;
        }
        base = base * base % m;
        e >>= 1;
    }
    acc
}

/// Modular inverse `a^{-1} mod p` via Fermat's little theorem.
///
/// # Panics
///
/// Panics if `⟨a⟩_p = 0`, which has no inverse.
pub fn inv_mod(a: i64, p: Prime) -> usize {
    let r = reduce(a, p);
    assert!(r != 0, "zero has no modular inverse");
    pow_mod(r as i64, p.get() as u32 - 2, p)
}

/// Modular division `u := ⟨i / j⟩_p`, defined in Table I of the paper by
/// `⟨u · j⟩_p = ⟨i⟩_p`.
///
/// ```
/// use raid_math::{modp::{div_mod, mul_mod}, Prime};
/// let p = Prime::new(13)?;
/// let u = div_mod(5, 4, p);
/// assert_eq!(mul_mod(u as i64, 4, p), 5);
/// # Ok::<(), raid_math::prime::NotPrimeError>(())
/// ```
///
/// # Panics
///
/// Panics if `⟨j⟩_p = 0`.
pub fn div_mod(i: i64, j: i64, p: Prime) -> usize {
    mul_mod(i, inv_mod(j, p) as i64, p)
}

/// Modular halving `⟨x / 2⟩_p` exactly as spelled out below Eq. (2) of the
/// paper:
///
/// * if `⟨x⟩_p` is even, the result is `⟨x⟩_p / 2`;
/// * if `⟨x⟩_p` is odd, the result is `(⟨x⟩_p + p) / 2`.
///
/// Because `p` is odd, `⟨x⟩_p + p` is even whenever `⟨x⟩_p` is odd, so the
/// division is always exact, and the result equals `⟨x · 2^{-1}⟩_p`.
///
/// ```
/// use raid_math::{modp::{half_mod, mul_mod}, Prime};
/// let p = Prime::new(7)?;
/// // k := ⟨(j − 4i)/2⟩_7 with j = 2, i = 1: ⟨−2/2⟩ = ⟨−1⟩ = 6
/// assert_eq!(half_mod(2 - 4, p), 6);
/// // Always a true halving: ⟨2 · half⟩ = ⟨x⟩
/// assert_eq!(mul_mod(2, half_mod(-2, p) as i64, p), 5);
/// # Ok::<(), raid_math::prime::NotPrimeError>(())
/// ```
pub fn half_mod(x: i64, p: Prime) -> usize {
    let r = reduce(x, p);
    if r.is_multiple_of(2) {
        r / 2
    } else {
        (r + p.get()) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p7() -> Prime {
        Prime::new(7).unwrap()
    }

    #[test]
    fn reduce_handles_negatives() {
        assert_eq!(reduce(-8, p7()), 6);
        assert_eq!(reduce(-7, p7()), 0);
        assert_eq!(reduce(0, p7()), 0);
        assert_eq!(reduce(7, p7()), 0);
    }

    #[test]
    fn add_sub_mul() {
        assert_eq!(add_mod(5, 4, p7()), 2);
        assert_eq!(sub_mod(2, 5, p7()), 4);
        assert_eq!(mul_mod(-3, 5, p7()), 6); // ⟨4·5⟩_7 = 20 mod 7 = 6
    }

    #[test]
    fn pow_and_inverse() {
        let p = Prime::new(13).unwrap();
        for a in 1..13 {
            let inv = inv_mod(a, p);
            assert_eq!(mul_mod(a, inv as i64, p), 1, "a = {a}");
        }
        assert_eq!(pow_mod(2, 0, p), 1);
        assert_eq!(pow_mod(2, 12, p), 1); // Fermat
    }

    #[test]
    #[should_panic(expected = "no modular inverse")]
    fn inverse_of_zero_panics() {
        inv_mod(7, p7());
    }

    #[test]
    fn division_matches_table_one_definition() {
        for p in [5usize, 7, 11, 13, 17] {
            let p = Prime::new(p).unwrap();
            for i in 0..p.get() as i64 {
                for j in 1..p.get() as i64 {
                    let u = div_mod(i, j, p);
                    assert_eq!(mul_mod(u as i64, j, p), reduce(i, p));
                }
            }
        }
    }

    #[test]
    fn halving_matches_inverse_of_two() {
        for p in [5usize, 7, 11, 13, 19, 23] {
            let p = Prime::new(p).unwrap();
            for x in -50..50 {
                assert_eq!(half_mod(x, p), div_mod(x, 2, p), "x={x}, p={p}");
            }
        }
    }

    #[test]
    fn halving_follows_papers_case_split() {
        let p = Prime::new(7).unwrap();
        // even residue: direct halving
        assert_eq!(half_mod(4, p), 2);
        // odd residue: (r + p)/2
        assert_eq!(half_mod(3, p), 5);
    }
}
