//! Modular and Galois-field arithmetic plus XOR kernels for RAID-6 array codes.
//!
//! This crate is the arithmetic substrate shared by every code in the
//! workspace:
//!
//! * [`prime`] — primality testing and the [`prime::Prime`] newtype used to
//!   parameterize array codes (`p` in the HV Code paper).
//! * [`modp`] — the `⟨·⟩_p` modular arithmetic of the paper, including the
//!   modular halving of Eq. (2) (`k := ⟨(j − 4i)/2⟩_p`) and modular division
//!   `⟨i/j⟩_p`.
//! * [`gf256`] / [`gf2e`] — `GF(2^8)` and `GF(2^16)` table/carry-less
//!   arithmetic used by the Reed–Solomon baselines.
//! * [`xor`] — wide XOR kernels used by every XOR-based array code.
//!
//! # Examples
//!
//! ```
//! use raid_math::prime::Prime;
//! use raid_math::modp::{mul_mod, div_mod};
//!
//! let p = Prime::new(7)?;
//! // ⟨2·4⟩_7 = 1
//! assert_eq!(mul_mod(2, 4, p), 1);
//! // u := ⟨1/2⟩_7 satisfies ⟨2u⟩_7 = 1
//! assert_eq!(mul_mod(div_mod(1, 2, p) as i64, 2, p), 1);
//! # Ok::<(), raid_math::prime::NotPrimeError>(())
//! ```

// `deny` rather than `forbid`: the SIMD kernels in [`xor`] opt back in for
// their intrinsics; every other module stays `unsafe`-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::needless_range_loop, clippy::redundant_clone)]

pub mod gf256;
pub mod gf2e;
pub mod modp;
pub mod prime;
pub mod xor;

pub use prime::Prime;
