//! Primality testing and the validated [`Prime`] newtype.
//!
//! Every array code in this workspace is parameterized by a prime `p`
//! (RDP/H-Code use `p + 1` disks, X-Code/P-Code `p`, HDP/HV `p − 1`).
//! Constructing a [`Prime`] proves at the type level that the parameter is in
//! fact prime, so the code constructors never need to re-validate.

use std::fmt;

/// Error returned when a value fails prime validation.
///
/// ```
/// use raid_math::prime::Prime;
/// assert!(Prime::new(9).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPrimeError {
    value: usize,
}

impl NotPrimeError {
    /// The rejected value.
    pub fn value(&self) -> usize {
        self.value
    }
}

impl fmt::Display for NotPrimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} is not a prime number greater than 2", self.value)
    }
}

impl std::error::Error for NotPrimeError {}

/// A validated odd prime, the `p` of the HV Code paper.
///
/// The paper's constructions all require `p` to be an odd prime (2 is
/// rejected: a one-disk "array" is meaningless and the modular halving of
/// Eq. (2) degenerates).
///
/// ```
/// use raid_math::prime::Prime;
/// let p = Prime::new(13)?;
/// assert_eq!(p.get(), 13);
/// # Ok::<(), raid_math::prime::NotPrimeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prime(usize);

impl Prime {
    /// Validates `p` and wraps it.
    ///
    /// # Errors
    ///
    /// Returns [`NotPrimeError`] if `p` is not an odd prime (so `p >= 3`).
    pub fn new(p: usize) -> Result<Self, NotPrimeError> {
        if p > 2 && is_prime(p) {
            Ok(Prime(p))
        } else {
            Err(NotPrimeError { value: p })
        }
    }

    /// Returns the underlying prime value.
    pub fn get(self) -> usize {
        self.0
    }
}

impl fmt::Display for Prime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl TryFrom<usize> for Prime {
    type Error = NotPrimeError;

    fn try_from(value: usize) -> Result<Self, Self::Error> {
        Prime::new(value)
    }
}

impl From<Prime> for usize {
    fn from(p: Prime) -> usize {
        p.get()
    }
}

/// Deterministic trial-division primality test.
///
/// The primes used by RAID-6 array codes are tiny (a disk array rarely
/// exceeds a few dozen spindles), so trial division up to `√n` is exact and
/// more than fast enough.
///
/// ```
/// use raid_math::prime::is_prime;
/// assert!(is_prime(23));
/// assert!(!is_prime(25));
/// ```
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Returns all odd primes in `lo..=hi`, the usual sweep axis of the paper's
/// Fig. 9 (`p ∈ {5, 7, 11, …, 23}`).
///
/// ```
/// use raid_math::prime::odd_primes_in;
/// let ps: Vec<usize> = odd_primes_in(5, 13).iter().map(|p| p.get()).collect();
/// assert_eq!(ps, vec![5, 7, 11, 13]);
/// ```
pub fn odd_primes_in(lo: usize, hi: usize) -> Vec<Prime> {
    (lo.max(3)..=hi).filter_map(|n| Prime::new(n).ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_accepted() {
        for p in [3usize, 5, 7, 11, 13, 17, 19, 23, 29, 31] {
            assert!(Prime::new(p).is_ok(), "{p} should be prime");
        }
    }

    #[test]
    fn composites_and_two_rejected() {
        for n in [0usize, 1, 2, 4, 6, 8, 9, 15, 21, 25, 27, 33, 49] {
            assert!(Prime::new(n).is_err(), "{n} should be rejected");
        }
    }

    #[test]
    fn error_reports_value_and_displays() {
        let err = Prime::new(9).unwrap_err();
        assert_eq!(err.value(), 9);
        assert!(err.to_string().contains('9'));
    }

    #[test]
    fn conversions_round_trip() {
        let p = Prime::try_from(11).unwrap();
        assert_eq!(usize::from(p), 11);
        assert_eq!(p.to_string(), "11");
    }

    #[test]
    fn odd_primes_in_matches_figure_nine_sweep() {
        let ps: Vec<usize> = odd_primes_in(5, 23).iter().map(|p| p.get()).collect();
        assert_eq!(ps, vec![5, 7, 11, 13, 17, 19, 23]);
    }

    #[test]
    fn is_prime_agrees_with_sieve_up_to_10k() {
        // Simple Eratosthenes cross-check.
        let n = 10_000;
        let mut sieve = vec![true; n + 1];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..=n {
            if sieve[i] {
                let mut j = i * i;
                while j <= n {
                    sieve[j] = false;
                    j += i;
                }
            }
        }
        for (i, &s) in sieve.iter().enumerate() {
            assert_eq!(is_prime(i), s, "disagreement at {i}");
        }
    }
}
