//! `GF(2^8)` arithmetic with log/exp tables, as used by the Reed–Solomon
//! RAID-6 baselines (Section II of the paper: Reed–Solomon and Cauchy
//! Reed–Solomon codes).
//!
//! The field is built over the standard polynomial `x^8 + x^4 + x^3 + x^2 + 1`
//! (0x11D), the same primitive polynomial Jerasure and most storage RS
//! implementations use, with generator `α = 2`.

use std::sync::OnceLock;

/// The primitive polynomial 0x11D without its top bit.
const POLY: u16 = 0x1D;

/// Precomputed log/exp tables for `GF(2^8)`.
#[derive(Debug)]
struct Tables {
    /// `exp[i] = α^i`, doubled in length so products need no reduction.
    exp: [u8; 512],
    /// `log[x]` for `x != 0`; `log[0]` is a sentinel never read.
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x100 | POLY; // reduce by x^8 + x^4 + x^3 + x^2 + 1
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Field addition (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
///
/// ```
/// use raid_math::gf256;
/// assert_eq!(gf256::mul(0, 0xFF), 0);
/// assert_eq!(gf256::mul(1, 0xAB), 0xAB);
/// // α · α = α² (α = 2)
/// assert_eq!(gf256::mul(2, 2), 4);
/// ```
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] + t.log[b as usize]) as usize]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics if `a == 0`.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(2^8)");
    let t = tables();
    t.exp[(255 - t.log[a as usize]) as usize]
}

/// Field division `a / b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// `α^e` for the generator `α = 2`.
#[inline]
pub fn exp(e: usize) -> u8 {
    tables().exp[e % 255]
}

/// `log_α(a)`.
///
/// # Panics
///
/// Panics if `a == 0`.
#[inline]
pub fn log(a: u8) -> usize {
    assert!(a != 0, "log of zero in GF(2^8)");
    tables().log[a as usize] as usize
}

/// Computes `dst[i] ^= c · src[i]` over whole buffers — the inner loop of
/// Reed–Solomon encoding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= *s;
        }
        return;
    }
    let t = tables();
    let lc = t.log[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[(lc + t.log[*s as usize]) as usize];
        }
    }
}

/// Computes `dst[i] = c · dst[i]` in place.
pub fn scale_slice(c: u8, dst: &mut [u8]) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    let t = tables();
    let lc = t.log[c as usize];
    for d in dst.iter_mut() {
        if *d != 0 {
            *d = t.exp[(lc + t.log[*d as usize]) as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-by-bit ("Russian peasant") reference multiplication.
    fn slow_mul(mut a: u8, mut b: u8) -> u8 {
        let mut r = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                r ^= a;
            }
            let hi = a & 0x80 != 0;
            a <<= 1;
            if hi {
                a ^= POLY as u8;
            }
            b >>= 1;
        }
        r
    }

    #[test]
    fn table_mul_matches_reference_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn field_axioms() {
        // associativity & commutativity on a sample grid, distributivity
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                assert_eq!(mul(a, b), mul(b, a));
                for c in (0..=255u8).step_by(29) {
                    assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_works_for_all_nonzero() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn inverse_of_zero_panics() {
        inv(0);
    }

    #[test]
    fn generator_has_full_order() {
        // α is primitive: its powers enumerate all 255 nonzero elements.
        let mut seen = [false; 256];
        for e in 0..255 {
            let v = exp(e);
            assert!(!seen[v as usize], "α^{e} repeated");
            seen[v as usize] = true;
        }
        assert!(!seen[0]);
        assert_eq!(log(exp(100)), 100);
    }

    #[test]
    fn mul_acc_slice_matches_scalar_loop() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut dst = vec![0xA5u8; 256];
            let mut expect = dst.clone();
            for (e, s) in expect.iter_mut().zip(&src) {
                *e ^= mul(c, *s);
            }
            mul_acc_slice(c, &src, &mut dst);
            assert_eq!(dst, expect, "c={c}");
        }
    }

    #[test]
    fn scale_slice_matches_scalar_loop() {
        let mut dst: Vec<u8> = (0..=255).collect();
        let expect: Vec<u8> = dst.iter().map(|&x| mul(3, x)).collect();
        scale_slice(3, &mut dst);
        assert_eq!(dst, expect);
        scale_slice(0, &mut dst);
        assert!(dst.iter().all(|&x| x == 0));
    }
}
