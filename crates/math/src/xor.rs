//! Wide XOR kernels — the only arithmetic XOR-based array codes (HV, RDP,
//! X-Code, …) ever perform on element payloads.
//!
//! Three backends share one behaviour, selected once per process at
//! runtime (see [`active_backend`]):
//!
//! * **AVX2** (x86_64, when the CPU reports it) — 32-byte vectors, 64-byte
//!   unrolled main loop;
//! * **NEON** (aarch64) — 16-byte vectors;
//! * **scalar** — `u64` words, used for ragged tails and as the portable
//!   fallback on every other target.
//!
//! The multi-source kernel [`xor_many_into`] is single-pass: each cache
//! line of `dst` is loaded once, folded with the matching line of *every*
//! source, and stored once — instead of streaming `dst` through memory
//! once per source as repeated [`xor_into`] calls would.
//!
//! The `_scalar` variants are public so property tests can assert the
//! vector backends are byte-identical to the portable implementation.
//!
//! # Safety layering
//!
//! All `unsafe` lives in the backend modules; everything above them is
//! safe Rust. The contract has exactly two obligations and both are
//! discharged before any `unsafe fn` is entered:
//!
//! 1. **equal lengths** — every public kernel funnels through
//!    [`precondition::equal_len`], a plain checked-slice comparison (it
//!    runs under miri like any safe code). The vector kernels' pointer
//!    arithmetic never leaves `[0, dst.len())`, so this check is the
//!    entire bounds story; each `unsafe fn` re-states it as a debug
//!    assertion.
//! 2. **ISA support** — AVX2 is runtime-probed at each dispatch; NEON is
//!    baseline on `aarch64`.
//!
//! Building with `RUSTFLAGS="--cfg kernel_audit"` additionally runs every
//! dispatched call twice — once through the selected backend, once through
//! the scalar reference on a copy — and asserts the outputs are
//! byte-identical (`make test-kernel-audit`).

// SIMD intrinsics are the one place this crate needs `unsafe`; the crate
// root denies it, and this module opts back in for the kernels below.
#![allow(unsafe_code)]

/// Which XOR backend [`xor_into`] / [`xor_many_into`] dispatch to on this
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// 256-bit AVX2 vectors (x86_64 with runtime CPUID support).
    Avx2,
    /// 128-bit NEON vectors (aarch64, baseline feature).
    Neon,
    /// Portable `u64`-word loop.
    Scalar64,
}

impl Backend {
    /// Stable lower-case name for reports (`"avx2"`, `"neon"`, `"scalar64"`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
            Backend::Scalar64 => "scalar64",
        }
    }
}

/// The backend the dispatching kernels use on this machine.
///
/// The x86 feature probe is cached by the standard library, so calling this
/// (or the kernels) in a hot loop costs one relaxed atomic load.
pub fn active_backend() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return Backend::Neon;
    }
    #[allow(unreachable_code)]
    Backend::Scalar64
}

/// `dst ^= src`, element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// use raid_math::xor::xor_into;
/// let mut d = vec![0b1010u8; 4];
/// xor_into(&mut d, &[0b0110u8; 4]);
/// assert_eq!(d, vec![0b1100u8; 4]);
/// ```
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    precondition::equal_len("xor_into", dst.len(), std::slice::from_ref(&src));
    #[cfg(kernel_audit)]
    let shadow = audit::shadow(dst, |copy| scalar::xor_into(copy, src));
    dispatch_xor_into(dst, src);
    #[cfg(kernel_audit)]
    audit::check("xor_into", dst, &shadow);
}

fn dispatch_xor_into(dst: &mut [u8], src: &[u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime; equal
            // lengths were checked by the public wrapper.
            unsafe { avx2::xor_into(dst, src) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is a baseline feature of the aarch64 targets; equal
        // lengths were checked by the public wrapper.
        unsafe { neon::xor_into(dst, src) };
        return;
    }
    #[allow(unreachable_code)]
    scalar::xor_into(dst, src);
}

/// Folds all `srcs` into `dst` in a single pass over `dst`.
///
/// `dst` is typically zeroed by the caller when computing a parity from
/// scratch, or holds a partial result to extend. With zero sources this is
/// a no-op.
///
/// # Panics
///
/// Panics if any source length differs from `dst`.
pub fn xor_many_into(dst: &mut [u8], srcs: &[&[u8]]) {
    precondition::equal_len("xor_many_into", dst.len(), srcs);
    if srcs.is_empty() {
        return;
    }
    #[cfg(kernel_audit)]
    let shadow = audit::shadow(dst, |copy| scalar::xor_many_into(copy, srcs));
    dispatch_xor_many_into(dst, srcs);
    #[cfg(kernel_audit)]
    audit::check("xor_many_into", dst, &shadow);
}

fn dispatch_xor_many_into(dst: &mut [u8], srcs: &[&[u8]]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime; equal
            // lengths were checked by the public wrapper.
            unsafe { avx2::xor_many_into(dst, srcs) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is a baseline feature of the aarch64 targets; equal
        // lengths were checked by the public wrapper.
        unsafe { neon::xor_many_into(dst, srcs) };
        return;
    }
    #[allow(unreachable_code)]
    scalar::xor_many_into(dst, srcs);
}

/// Overwrites `dst` with the XOR of all `srcs`, without reading `dst`.
///
/// This is the plan interpreter's "compute a parity from scratch"
/// primitive: where `zero + xor_many_into` streams `dst` through memory
/// three times (zero-fill, reload, store) and a `copy + xor_many_into`
/// twice, this writes each `dst` cache line exactly once. With zero
/// sources `dst` is zero-filled.
///
/// # Panics
///
/// Panics if any source length differs from `dst`.
pub fn xor_gather_into(dst: &mut [u8], srcs: &[&[u8]]) {
    precondition::equal_len("xor_gather_into", dst.len(), srcs);
    if srcs.is_empty() {
        dst.fill(0);
        return;
    }
    #[cfg(kernel_audit)]
    let shadow = audit::shadow(dst, |copy| scalar::xor_gather_into(copy, srcs));
    dispatch_xor_gather_into(dst, srcs);
    #[cfg(kernel_audit)]
    audit::check("xor_gather_into", dst, &shadow);
}

fn dispatch_xor_gather_into(dst: &mut [u8], srcs: &[&[u8]]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime; equal
            // lengths and a non-empty `srcs` were checked by the public
            // wrapper.
            unsafe { avx2::xor_gather_into(dst, srcs) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is a baseline feature of the aarch64 targets; equal
        // lengths and a non-empty `srcs` were checked by the public
        // wrapper.
        unsafe { neon::xor_gather_into(dst, srcs) };
        return;
    }
    #[allow(unreachable_code)]
    scalar::xor_gather_into(dst, srcs);
}

/// Portable-backend [`xor_gather_into`]; reference implementation for
/// property tests.
///
/// # Panics
///
/// Panics if any source length differs from `dst`.
pub fn xor_gather_into_scalar(dst: &mut [u8], srcs: &[&[u8]]) {
    precondition::equal_len("xor_gather_into", dst.len(), srcs);
    if srcs.is_empty() {
        dst.fill(0);
        return;
    }
    scalar::xor_gather_into(dst, srcs);
}

/// Portable-backend [`xor_into`]; reference implementation for property
/// tests.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_into_scalar(dst: &mut [u8], src: &[u8]) {
    precondition::equal_len("xor_into", dst.len(), std::slice::from_ref(&src));
    scalar::xor_into(dst, src);
}

/// Portable-backend [`xor_many_into`]; reference implementation for
/// property tests.
///
/// # Panics
///
/// Panics if any source length differs from `dst`.
pub fn xor_many_into_scalar(dst: &mut [u8], srcs: &[&[u8]]) {
    precondition::equal_len("xor_many_into", dst.len(), srcs);
    scalar::xor_many_into(dst, srcs);
}

/// Tile size (bytes) the plan executor uses to keep a working set of
/// elements resident in L1 while it walks every op of a plan over one
/// tile before advancing to the next.
///
/// 16 KiB leaves room in a typical 32–48 KiB L1d for the destination
/// tile plus a couple of source tiles and the gather pointer array.
pub const L1_TILE_BYTES: usize = 16 * 1024;

/// Splits `len` bytes into [`L1_TILE_BYTES`]-sized chunks, yielding
/// `(offset, chunk_len)` pairs — the chunked entry point tiled plan
/// execution slices every element buffer with. The final chunk carries
/// the ragged tail; `len == 0` yields nothing.
pub fn tiles(len: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..len)
        .step_by(L1_TILE_BYTES)
        .map(move |off| (off, L1_TILE_BYTES.min(len - off)))
}

/// True if the buffer is entirely zero — handy for parity-consistency
/// checks (`P ^ recomputed(P) == 0`).
pub fn is_zero(buf: &[u8]) -> bool {
    buf.iter().all(|&b| b == 0)
}

/// The shared checked-slice precondition every public kernel funnels
/// through. This is ordinary safe code — miri executes it — and proving
/// `src.len() == dst.len()` here is what makes the raw-pointer loops in
/// the vector backends sound (their indices never leave `[0, dst.len())`).
mod precondition {
    /// Asserts every source slice has exactly `dst_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics with a `"length mismatch"` message naming the kernel and the
    /// offending source index.
    #[inline]
    pub(super) fn equal_len(op: &str, dst_len: usize, srcs: &[&[u8]]) {
        for (k, src) in srcs.iter().enumerate() {
            assert!(
                src.len() == dst_len,
                "{op}: length mismatch — source {k} is {} bytes, dst is {dst_len}",
                src.len(),
            );
        }
    }
}

/// Scalar-shadow cross-check, compiled in with `--cfg kernel_audit`: each
/// dispatched kernel call also runs the portable reference on a copy and
/// the two results are compared byte-for-byte.
#[cfg(kernel_audit)]
mod audit {
    /// Runs `reference` over a copy of `dst` and returns the copy.
    pub(super) fn shadow(dst: &[u8], reference: impl FnOnce(&mut [u8])) -> Vec<u8> {
        let mut copy = dst.to_vec();
        reference(&mut copy);
        copy
    }

    /// Asserts the dispatched result equals the scalar shadow.
    pub(super) fn check(op: &str, got: &[u8], want: &[u8]) {
        assert!(
            got == want,
            "kernel_audit: {op} on the {} backend diverged from the scalar reference",
            super::active_backend().name(),
        );
    }
}

mod scalar {
    pub(super) fn xor_into(dst: &mut [u8], src: &[u8]) {
        let mut d_chunks = dst.chunks_exact_mut(8);
        let mut s_chunks = src.chunks_exact(8);
        for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
            let word = u64::from_ne_bytes(d.try_into().expect("8-byte chunk"))
                ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
            d.copy_from_slice(&word.to_ne_bytes());
        }
        for (d, s) in d_chunks.into_remainder().iter_mut().zip(s_chunks.remainder()) {
            *d ^= *s;
        }
    }

    pub(super) fn xor_many_into(dst: &mut [u8], srcs: &[&[u8]]) {
        let n = dst.len();
        let words = n / 8;
        for w in 0..words {
            let at = w * 8;
            let mut acc =
                u64::from_ne_bytes(dst[at..at + 8].try_into().expect("8-byte chunk"));
            for src in srcs {
                acc ^= u64::from_ne_bytes(src[at..at + 8].try_into().expect("8-byte chunk"));
            }
            dst[at..at + 8].copy_from_slice(&acc.to_ne_bytes());
        }
        for at in words * 8..n {
            let mut acc = dst[at];
            for src in srcs {
                acc ^= src[at];
            }
            dst[at] = acc;
        }
    }

    /// `dst = XOR(srcs)` without reading `dst`. Callers guarantee
    /// `srcs` is non-empty.
    pub(super) fn xor_gather_into(dst: &mut [u8], srcs: &[&[u8]]) {
        let (first, rest) = srcs.split_first().expect("non-empty srcs");
        let n = dst.len();
        let words = n / 8;
        for w in 0..words {
            let at = w * 8;
            let mut acc =
                u64::from_ne_bytes(first[at..at + 8].try_into().expect("8-byte chunk"));
            for src in rest {
                acc ^= u64::from_ne_bytes(src[at..at + 8].try_into().expect("8-byte chunk"));
            }
            dst[at..at + 8].copy_from_slice(&acc.to_ne_bytes());
        }
        for at in words * 8..n {
            let mut acc = first[at];
            for src in rest {
                acc ^= src[at];
            }
            dst[at] = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_loadu_si256, _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// # Safety
    ///
    /// * The caller must have verified AVX2 support at runtime
    ///   (`is_x86_feature_detected!("avx2")`); on a CPU without AVX2 the
    ///   256-bit instructions are undefined behaviour.
    /// * `src.len() == dst.len()` — every pointer offset below is
    ///   `< dst.len()`, and `src`'s bounds rely on the equality.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_into(dst: &mut [u8], src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let mut i = 0;
        while i + 64 <= n {
            let d0 = _mm256_loadu_si256(d.add(i) as *const __m256i);
            let s0 = _mm256_loadu_si256(s.add(i) as *const __m256i);
            let d1 = _mm256_loadu_si256(d.add(i + 32) as *const __m256i);
            let s1 = _mm256_loadu_si256(s.add(i + 32) as *const __m256i);
            _mm256_storeu_si256(d.add(i) as *mut __m256i, _mm256_xor_si256(d0, s0));
            _mm256_storeu_si256(d.add(i + 32) as *mut __m256i, _mm256_xor_si256(d1, s1));
            i += 64;
        }
        if i + 32 <= n {
            let d0 = _mm256_loadu_si256(d.add(i) as *const __m256i);
            let s0 = _mm256_loadu_si256(s.add(i) as *const __m256i);
            _mm256_storeu_si256(d.add(i) as *mut __m256i, _mm256_xor_si256(d0, s0));
            i += 32;
        }
        super::scalar::xor_into(&mut dst[i..], &src[i..]);
    }

    /// # Safety
    ///
    /// * The caller must have verified AVX2 support at runtime; on a CPU
    ///   without AVX2 the 256-bit instructions are undefined behaviour.
    /// * Every `srcs[k].len() == dst.len()` — all pointer offsets below
    ///   are `< dst.len()` and each source's bounds rely on the equality.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_many_into(dst: &mut [u8], srcs: &[&[u8]]) {
        debug_assert!(srcs.iter().all(|s| s.len() == dst.len()));
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let mut i = 0;
        while i + 32 <= n {
            let mut acc = _mm256_loadu_si256(d.add(i) as *const __m256i);
            for src in srcs {
                let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
                acc = _mm256_xor_si256(acc, v);
            }
            _mm256_storeu_si256(d.add(i) as *mut __m256i, acc);
            i += 32;
        }
        if i < n {
            let tails: Vec<&[u8]> = srcs.iter().map(|s| &s[i..]).collect();
            super::scalar::xor_many_into(&mut dst[i..], &tails);
        }
    }

    /// # Safety
    ///
    /// * The caller must have verified AVX2 support at runtime; on a CPU
    ///   without AVX2 the 256-bit instructions are undefined behaviour.
    /// * Every `srcs[k].len() == dst.len()` — all pointer offsets below
    ///   are `< dst.len()` and each source's bounds rely on the equality.
    /// * `srcs` must be non-empty (`dst` is overwritten from the first
    ///   source, not read).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_gather_into(dst: &mut [u8], srcs: &[&[u8]]) {
        debug_assert!(srcs.iter().all(|s| s.len() == dst.len()));
        let (first, rest) = srcs.split_first().expect("non-empty srcs");
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let f = first.as_ptr();
        let mut i = 0;
        // Two independent accumulators per iteration for load-port ILP.
        while i + 64 <= n {
            let mut acc0 = _mm256_loadu_si256(f.add(i) as *const __m256i);
            let mut acc1 = _mm256_loadu_si256(f.add(i + 32) as *const __m256i);
            for src in rest {
                let s = src.as_ptr();
                acc0 = _mm256_xor_si256(acc0, _mm256_loadu_si256(s.add(i) as *const __m256i));
                acc1 =
                    _mm256_xor_si256(acc1, _mm256_loadu_si256(s.add(i + 32) as *const __m256i));
            }
            _mm256_storeu_si256(d.add(i) as *mut __m256i, acc0);
            _mm256_storeu_si256(d.add(i + 32) as *mut __m256i, acc1);
            i += 64;
        }
        if i + 32 <= n {
            let mut acc = _mm256_loadu_si256(f.add(i) as *const __m256i);
            for src in rest {
                let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
                acc = _mm256_xor_si256(acc, v);
            }
            _mm256_storeu_si256(d.add(i) as *mut __m256i, acc);
            i += 32;
        }
        if i < n {
            let tails: Vec<&[u8]> = srcs.iter().map(|s| &s[i..]).collect();
            super::scalar::xor_gather_into(&mut dst[i..], &tails);
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::{veorq_u8, vld1q_u8, vst1q_u8};

    /// # Safety
    ///
    /// * NEON is baseline on the `aarch64` targets this module compiles
    ///   for, so the feature obligation is discharged statically.
    /// * `src.len() == dst.len()` — every pointer offset below is
    ///   `< dst.len()`, and `src`'s bounds rely on the equality.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn xor_into(dst: &mut [u8], src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let mut i = 0;
        while i + 16 <= n {
            let v = veorq_u8(vld1q_u8(d.add(i) as *const u8), vld1q_u8(s.add(i)));
            vst1q_u8(d.add(i), v);
            i += 16;
        }
        super::scalar::xor_into(&mut dst[i..], &src[i..]);
    }

    /// # Safety
    ///
    /// * NEON is baseline on the `aarch64` targets this module compiles
    ///   for, so the feature obligation is discharged statically.
    /// * Every `srcs[k].len() == dst.len()` — all pointer offsets below
    ///   are `< dst.len()` and each source's bounds rely on the equality.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn xor_many_into(dst: &mut [u8], srcs: &[&[u8]]) {
        debug_assert!(srcs.iter().all(|s| s.len() == dst.len()));
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let mut i = 0;
        while i + 16 <= n {
            let mut acc = vld1q_u8(d.add(i) as *const u8);
            for src in srcs {
                acc = veorq_u8(acc, vld1q_u8(src.as_ptr().add(i)));
            }
            vst1q_u8(d.add(i), acc);
            i += 16;
        }
        if i < n {
            let tails: Vec<&[u8]> = srcs.iter().map(|s| &s[i..]).collect();
            super::scalar::xor_many_into(&mut dst[i..], &tails);
        }
    }

    /// # Safety
    ///
    /// * NEON is baseline on the `aarch64` targets this module compiles
    ///   for, so the feature obligation is discharged statically.
    /// * Every `srcs[k].len() == dst.len()` — all pointer offsets below
    ///   are `< dst.len()` and each source's bounds rely on the equality.
    /// * `srcs` must be non-empty (`dst` is overwritten from the first
    ///   source, not read).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn xor_gather_into(dst: &mut [u8], srcs: &[&[u8]]) {
        debug_assert!(srcs.iter().all(|s| s.len() == dst.len()));
        let (first, rest) = srcs.split_first().expect("non-empty srcs");
        let n = dst.len();
        let d = dst.as_mut_ptr();
        let f = first.as_ptr();
        let mut i = 0;
        while i + 16 <= n {
            let mut acc = vld1q_u8(f.add(i));
            for src in rest {
                acc = veorq_u8(acc, vld1q_u8(src.as_ptr().add(i)));
            }
            vst1q_u8(d.add(i), acc);
            i += 16;
        }
        if i < n {
            let tails: Vec<&[u8]> = srcs.iter().map(|s| &s[i..]).collect();
            super::scalar::xor_gather_into(&mut dst[i..], &tails);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_into_basic() {
        let mut d = vec![0xFFu8, 0x00, 0xAA];
        xor_into(&mut d, &[0x0F, 0xF0, 0xAA]);
        assert_eq!(d, vec![0xF0, 0xF0, 0x00]);
    }

    #[test]
    fn xor_is_involution() {
        let a: Vec<u8> = (0..100).map(|i| (i * 7 + 3) as u8).collect();
        let b: Vec<u8> = (0..100).map(|i| (i * 13 + 1) as u8).collect();
        let mut d = a.clone();
        xor_into(&mut d, &b);
        xor_into(&mut d, &b);
        assert_eq!(d, a);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut d = vec![0u8; 3];
        xor_into(&mut d, &[0u8; 4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn many_mismatched_lengths_panic() {
        let mut d = vec![0u8; 3];
        xor_many_into(&mut d, &[&[0u8; 3], &[0u8; 4]]);
    }

    #[test]
    fn tiles_cover_len_exactly() {
        for len in [0usize, 1, L1_TILE_BYTES - 1, L1_TILE_BYTES, L1_TILE_BYTES + 1, 3 * L1_TILE_BYTES + 7] {
            let chunks: Vec<(usize, usize)> = tiles(len).collect();
            let mut expect_off = 0;
            for &(off, n) in &chunks {
                assert_eq!(off, expect_off);
                assert!(n > 0 && n <= L1_TILE_BYTES);
                expect_off += n;
            }
            assert_eq!(expect_off, len);
        }
    }

    #[test]
    fn gather_and_many_agree() {
        let a = [1u8, 2, 3];
        let b = [4u8, 5, 6];
        let c = [7u8, 8, 9];
        let mut x = vec![0xFFu8; 3];
        xor_gather_into(&mut x, &[&a, &b, &c]);
        assert_eq!(x, vec![1 ^ 4 ^ 7, 2 ^ 5 ^ 8, 3 ^ 6 ^ 9]);
        let mut d = vec![0u8; 3];
        xor_many_into(&mut d, &[&a, &b, &c]);
        assert_eq!(d, x);
    }

    #[test]
    fn zero_detection() {
        assert!(is_zero(&[0u8; 16]));
        assert!(!is_zero(&[0, 0, 1]));
        assert!(is_zero(&[]));
    }

    #[test]
    fn odd_lengths_and_empty() {
        let mut d = vec![0xAB; 17];
        let s = vec![0xAB; 17];
        xor_into(&mut d, &s);
        assert!(is_zero(&d));
        let mut e: Vec<u8> = vec![];
        xor_into(&mut e, &[]);
        assert!(e.is_empty());
        xor_many_into(&mut e, &[&[], &[]]);
        assert!(e.is_empty());
    }

    #[test]
    fn many_with_no_sources_is_noop() {
        let mut d = vec![9u8; 5];
        xor_many_into(&mut d, &[]);
        assert_eq!(d, vec![9u8; 5]);
    }

    fn pattern(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt).rotate_left(3))
            .collect()
    }

    #[test]
    fn dispatched_matches_scalar_across_ragged_lengths() {
        // Cross lane boundaries: 0, tails below/at/above 16, 32, 64.
        for len in [0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 4096, 4099] {
            let src1 = pattern(len, 1);
            let src2 = pattern(len, 77);
            let src3 = pattern(len, 200);

            let mut simd = pattern(len, 50);
            let mut scalar = simd.clone();
            xor_into(&mut simd, &src1);
            xor_into_scalar(&mut scalar, &src1);
            assert_eq!(simd, scalar, "xor_into diverged at len {len}");

            let mut simd = pattern(len, 51);
            let mut scalar = simd.clone();
            xor_many_into(&mut simd, &[&src1, &src2, &src3]);
            xor_many_into_scalar(&mut scalar, &[&src1, &src2, &src3]);
            assert_eq!(simd, scalar, "xor_many_into diverged at len {len}");
        }
    }

    #[test]
    fn single_pass_equals_repeated_xor_into() {
        let srcs: Vec<Vec<u8>> = (0..6).map(|k| pattern(1000, k * 17)).collect();
        let refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
        let mut once = vec![0u8; 1000];
        xor_many_into(&mut once, &refs);
        let mut repeated = vec![0u8; 1000];
        for r in &refs {
            xor_into(&mut repeated, r);
        }
        assert_eq!(once, repeated);
    }

    #[test]
    fn backend_reports_a_name() {
        let b = active_backend();
        assert!(["avx2", "neon", "scalar64"].contains(&b.name()));
    }
}
