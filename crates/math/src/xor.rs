//! Wide XOR kernels — the only arithmetic XOR-based array codes (HV, RDP,
//! X-Code, …) ever perform on element payloads.
//!
//! The kernels chunk buffers into `u64` words; the compiler autovectorizes
//! the word loop, which is plenty for a reproduction study (the paper's
//! figures are dominated by I/O counts, not XOR throughput).

/// `dst ^= src`, element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// use raid_math::xor::xor_into;
/// let mut d = vec![0b1010u8; 4];
/// xor_into(&mut d, &[0b0110u8; 4]);
/// assert_eq!(d, vec![0b1100u8; 4]);
/// ```
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into: length mismatch");
    let mut d_chunks = dst.chunks_exact_mut(8);
    let mut s_chunks = src.chunks_exact(8);
    for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
        let word = u64::from_ne_bytes(d.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&word.to_ne_bytes());
    }
    for (d, s) in d_chunks.into_remainder().iter_mut().zip(s_chunks.remainder()) {
        *d ^= *s;
    }
}

/// XORs all `srcs` into `dst` (which is typically zeroed first by the
/// caller when computing a parity from scratch).
///
/// # Panics
///
/// Panics if any source length differs from `dst`.
pub fn xor_many_into(dst: &mut [u8], srcs: &[&[u8]]) {
    for src in srcs {
        xor_into(dst, src);
    }
}

/// Returns the XOR of all sources as a fresh buffer.
///
/// # Panics
///
/// Panics if `srcs` is empty or lengths differ.
pub fn xor_all(srcs: &[&[u8]]) -> Vec<u8> {
    assert!(!srcs.is_empty(), "xor_all: no sources");
    let mut out = srcs[0].to_vec();
    for src in &srcs[1..] {
        xor_into(&mut out, src);
    }
    out
}

/// True if the buffer is entirely zero — handy for parity-consistency
/// checks (`P ^ recomputed(P) == 0`).
pub fn is_zero(buf: &[u8]) -> bool {
    buf.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_into_basic() {
        let mut d = vec![0xFFu8, 0x00, 0xAA];
        xor_into(&mut d, &[0x0F, 0xF0, 0xAA]);
        assert_eq!(d, vec![0xF0, 0xF0, 0x00]);
    }

    #[test]
    fn xor_is_involution() {
        let a: Vec<u8> = (0..100).map(|i| (i * 7 + 3) as u8).collect();
        let b: Vec<u8> = (0..100).map(|i| (i * 13 + 1) as u8).collect();
        let mut d = a.clone();
        xor_into(&mut d, &b);
        xor_into(&mut d, &b);
        assert_eq!(d, a);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut d = vec![0u8; 3];
        xor_into(&mut d, &[0u8; 4]);
    }

    #[test]
    fn xor_all_and_many() {
        let a = [1u8, 2, 3];
        let b = [4u8, 5, 6];
        let c = [7u8, 8, 9];
        let x = xor_all(&[&a, &b, &c]);
        assert_eq!(x, vec![1 ^ 4 ^ 7, 2 ^ 5 ^ 8, 3 ^ 6 ^ 9]);
        let mut d = vec![0u8; 3];
        xor_many_into(&mut d, &[&a, &b, &c]);
        assert_eq!(d, x);
    }

    #[test]
    fn zero_detection() {
        assert!(is_zero(&[0u8; 16]));
        assert!(!is_zero(&[0, 0, 1]));
        assert!(is_zero(&[]));
    }

    #[test]
    fn odd_lengths_and_empty() {
        let mut d = vec![0xAB; 17];
        let s = vec![0xAB; 17];
        xor_into(&mut d, &s);
        assert!(is_zero(&d));
        let mut e: Vec<u8> = vec![];
        xor_into(&mut e, &[]);
        assert!(e.is_empty());
    }
}
