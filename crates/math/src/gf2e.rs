//! `GF(2^16)` arithmetic, used by the Cauchy Reed–Solomon baseline when the
//! array is too wide for `GF(2^8)` and by tests that cross-validate the
//! `GF(2^8)` tables against an independent implementation.
//!
//! Multiplication is carry-less shift-and-add with on-the-fly reduction by
//! the primitive polynomial `x^16 + x^12 + x^3 + x + 1` (0x1100B), the
//! standard choice in storage coding libraries.

/// Low bits of the primitive polynomial 0x1100B.
const POLY: u32 = 0x100B;

/// Field addition (XOR).
#[inline]
pub fn add(a: u16, b: u16) -> u16 {
    a ^ b
}

/// Carry-less multiplication with polynomial reduction.
///
/// ```
/// use raid_math::gf2e;
/// assert_eq!(gf2e::mul(0, 1234), 0);
/// assert_eq!(gf2e::mul(1, 1234), 1234);
/// ```
pub fn mul(a: u16, b: u16) -> u16 {
    let mut a = a as u32;
    let mut b = b as u32;
    let mut r = 0u32;
    while b != 0 {
        if b & 1 != 0 {
            r ^= a;
        }
        a <<= 1;
        if a & 0x1_0000 != 0 {
            a ^= 0x1_0000 | POLY;
        }
        b >>= 1;
    }
    r as u16
}

/// `a^e` by binary exponentiation.
pub fn pow(mut a: u16, mut e: u32) -> u16 {
    let mut acc: u16 = 1;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul(acc, a);
        }
        a = mul(a, a);
        e >>= 1;
    }
    acc
}

/// Multiplicative inverse via `a^(2^16 − 2)`.
///
/// # Panics
///
/// Panics if `a == 0`.
pub fn inv(a: u16) -> u16 {
    assert!(a != 0, "zero has no inverse in GF(2^16)");
    pow(a, u16::MAX as u32 - 1)
}

/// Field division `a / b`.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn div(a: u16, b: u16) -> u16 {
    mul(a, inv(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_zero() {
        for a in [0u16, 1, 2, 0xFFFF, 0x8000, 12345] {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
        }
    }

    #[test]
    fn commutative_and_associative_sample() {
        let xs = [1u16, 2, 3, 0x1000, 0x8001, 0xFFFF, 777];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(mul(a, b), mul(b, a));
                for &c in &xs {
                    assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c));
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverses_on_sample() {
        for a in [1u16, 2, 3, 255, 256, 0x7FFF, 0x8000, 0xFFFF, 54321] {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn inv_zero_panics() {
        inv(0);
    }

    #[test]
    fn generator_two_has_large_order() {
        // 2 is primitive for 0x1100B: its order is 2^16 − 1.
        let mut x: u16 = 1;
        for _ in 0..(u16::MAX as u32 - 1) {
            x = mul(x, 2);
            assert_ne!(x, 1, "order divides less than 2^16-1");
        }
        assert_eq!(mul(x, 2), 1);
    }

    #[test]
    fn embeds_gf256_consistently() {
        // The subfield {0,1} behaves identically in both fields; also check
        // that both implementations agree on pure powers of the shared
        // generator within the first 8 exponents where no reduction differs.
        for e in 0..8u32 {
            assert_eq!(pow(2, e) as u32, 1u32 << e);
        }
    }
}
