//! Property tests pinning the dispatched SIMD XOR kernels to the scalar
//! reference implementation, byte for byte, across ragged lengths.

use proptest::prelude::*;

use raid_math::xor::{
    active_backend, xor_gather_into, xor_gather_into_scalar, xor_into, xor_into_scalar,
    xor_many_into, xor_many_into_scalar,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pairwise XOR: the runtime-dispatched kernel equals the scalar
    /// reference for every length 0..=4096, including tails that are not
    /// a multiple of any vector width.
    #[test]
    fn xor_into_matches_scalar(
        len in 0usize..=4096,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let src = bytes(len, seed_a);
        let mut simd = bytes(len, seed_b);
        let mut scalar = simd.clone();
        xor_into(&mut simd, &src);
        xor_into_scalar(&mut scalar, &src);
        prop_assert_eq!(simd, scalar);
    }

    /// Multi-source XOR: the single-pass dispatched kernel equals the
    /// scalar reference for 0..=6 sources at ragged lengths.
    #[test]
    fn xor_many_into_matches_scalar(
        len in 0usize..=4096,
        nsrcs in 0usize..=6,
        seed in any::<u64>(),
    ) {
        let srcs: Vec<Vec<u8>> = (0..nsrcs).map(|i| bytes(len, seed ^ (i as u64 + 1))).collect();
        let refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
        let mut simd = bytes(len, seed.rotate_left(17));
        let mut scalar = simd.clone();
        xor_many_into(&mut simd, &refs);
        xor_many_into_scalar(&mut scalar, &refs);
        prop_assert_eq!(simd, scalar);
    }

    /// Write-only gather: the dispatched kernel equals the scalar
    /// reference for 0..=6 sources at ragged lengths, and also equals
    /// zeroing the destination then accumulating with `xor_many_into`
    /// (proving the destination's prior contents never leak through).
    #[test]
    fn xor_gather_into_matches_scalar_and_accumulate(
        len in 0usize..=4096,
        nsrcs in 0usize..=6,
        seed in any::<u64>(),
    ) {
        let srcs: Vec<Vec<u8>> = (0..nsrcs).map(|i| bytes(len, seed ^ (i as u64 + 29))).collect();
        let refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
        let mut simd = bytes(len, seed.rotate_left(9));
        let mut scalar = bytes(len, seed.rotate_left(33));
        let mut accumulated = bytes(len, seed.rotate_left(47));
        xor_gather_into(&mut simd, &refs);
        xor_gather_into_scalar(&mut scalar, &refs);
        accumulated.fill(0);
        xor_many_into(&mut accumulated, &refs);
        prop_assert_eq!(&simd, &scalar);
        prop_assert_eq!(&simd, &accumulated);
    }

    /// Folding sources one at a time through the pairwise kernel equals
    /// the single-pass multi-source kernel.
    #[test]
    fn single_pass_equals_folded_pairwise(
        len in 0usize..=1024,
        nsrcs in 1usize..=5,
        seed in any::<u64>(),
    ) {
        let srcs: Vec<Vec<u8>> = (0..nsrcs).map(|i| bytes(len, seed ^ (i as u64 + 11))).collect();
        let refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
        let mut single = bytes(len, seed);
        let mut folded = single.clone();
        xor_many_into(&mut single, &refs);
        for s in &refs {
            xor_into(&mut folded, s);
        }
        prop_assert_eq!(single, folded);
    }
}

/// Every length 0..=4096 exactly once (the proptest cases sample; this
/// sweep guarantees no length is skipped), on whatever backend dispatch
/// selected for this host.
#[test]
fn exhaustive_length_sweep_matches_scalar() {
    eprintln!("xor backend under test: {}", active_backend().name());
    for len in 0..=4096usize {
        let src = bytes(len, len as u64 + 1);
        let mut simd = bytes(len, !(len as u64));
        let mut scalar = simd.clone();
        xor_into(&mut simd, &src);
        xor_into_scalar(&mut scalar, &src);
        assert_eq!(simd, scalar, "len = {len}");
    }
}

fn bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}
