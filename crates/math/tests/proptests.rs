//! Property-based tests for the arithmetic substrate.

use proptest::prelude::*;

use raid_math::gf256;
use raid_math::gf2e;
use raid_math::modp::{add_mod, div_mod, half_mod, inv_mod, mul_mod, pow_mod, reduce, sub_mod};
use raid_math::prime::Prime;
use raid_math::xor::{is_zero, xor_gather_into, xor_into};

fn primes() -> impl Strategy<Value = Prime> {
    prop::sample::select(vec![3usize, 5, 7, 11, 13, 17, 19, 23, 29, 31])
        .prop_map(|p| Prime::new(p).unwrap())
}

proptest! {
    #[test]
    fn reduce_is_canonical(x in -10_000i64..10_000, p in primes()) {
        let r = reduce(x, p);
        prop_assert!(r < p.get());
        prop_assert_eq!(reduce(r as i64, p), r);
        prop_assert_eq!(reduce(x + p.get() as i64, p), r);
    }

    #[test]
    fn field_axioms_mod_p(a in -500i64..500, b in -500i64..500, c in -500i64..500, p in primes()) {
        prop_assert_eq!(add_mod(a, b, p), add_mod(b, a, p));
        prop_assert_eq!(mul_mod(a, b, p), mul_mod(b, a, p));
        prop_assert_eq!(
            mul_mod(a, add_mod(b, c, p) as i64, p),
            add_mod(mul_mod(a, b, p) as i64, mul_mod(a, c, p) as i64, p)
        );
        prop_assert_eq!(sub_mod(a, b, p), add_mod(a, -b, p));
    }

    #[test]
    fn division_inverts_multiplication(a in -500i64..500, b in 1i64..500, p in primes()) {
        prop_assume!(reduce(b, p) != 0);
        let q = div_mod(a, b, p);
        prop_assert_eq!(mul_mod(q as i64, b, p), reduce(a, p));
    }

    #[test]
    fn halving_is_division_by_two(x in -2_000i64..2_000, p in primes()) {
        prop_assert_eq!(half_mod(x, p), div_mod(x, 2, p));
        prop_assert_eq!(mul_mod(half_mod(x, p) as i64, 2, p), reduce(x, p));
    }

    #[test]
    fn fermat_holds(a in 1i64..1000, p in primes()) {
        prop_assume!(reduce(a, p) != 0);
        prop_assert_eq!(pow_mod(a, p.get() as u32 - 1, p), 1);
        prop_assert_eq!(mul_mod(inv_mod(a, p) as i64, a, p), 1);
    }

    #[test]
    fn gf256_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(gf256::mul(a, gf256::mul(b, c)), gf256::mul(gf256::mul(a, b), c));
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
        if a != 0 {
            prop_assert_eq!(gf256::div(gf256::mul(a, b), a), b);
        }
    }

    #[test]
    fn gf2e_axioms(a in any::<u16>(), b in any::<u16>()) {
        prop_assert_eq!(gf2e::mul(a, b), gf2e::mul(b, a));
        if a != 0 {
            prop_assert_eq!(gf2e::div(gf2e::mul(a, b), a), b);
        }
    }

    #[test]
    fn xor_involution(data in prop::collection::vec(any::<u8>(), 0..256),
                      mask in prop::collection::vec(any::<u8>(), 0..256)) {
        let n = data.len().min(mask.len());
        let mut buf = data[..n].to_vec();
        xor_into(&mut buf, &mask[..n]);
        xor_into(&mut buf, &mask[..n]);
        prop_assert_eq!(&buf[..], &data[..n]);
    }

    #[test]
    fn xor_gather_order_independent(chunks in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 16..17), 1..6)) {
        let refs: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
        let mut forward = vec![0u8; 16];
        xor_gather_into(&mut forward, &refs);
        let mut rev = refs.clone();
        rev.reverse();
        let mut backward = vec![0xFFu8; 16];
        xor_gather_into(&mut backward, &rev);
        prop_assert_eq!(&forward, &backward);
        // XOR of everything twice is zero.
        let mut doubled = refs.clone();
        doubled.extend(refs.iter().copied());
        let mut twice = vec![0u8; 16];
        xor_gather_into(&mut twice, &doubled);
        prop_assert!(is_zero(&twice));
    }
}
