//! Summary statistics over simulated batch latencies.

/// Summary of a latency sample set (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median (50th percentile).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// Maximum observed.
    pub max_ms: f64,
}

/// Summarizes a set of latencies.
///
/// Percentiles use the nearest-rank method on the sorted samples.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn summarize(samples: &[f64]) -> LatencySummary {
    assert!(!samples.is_empty(), "cannot summarize zero samples");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = |q: f64| -> f64 {
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[idx - 1]
    };
    LatencySummary {
        count: sorted.len(),
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50_ms: rank(0.50),
        p95_ms: rank(0.95),
        max_ms: *sorted.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_distribution() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = summarize(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-12);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.max_ms, 100.0);
    }

    #[test]
    fn single_sample() {
        let s = summarize(&[42.0]);
        assert_eq!(s.p50_ms, 42.0);
        assert_eq!(s.p95_ms, 42.0);
        assert_eq!(s.max_ms, 42.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_rejected() {
        summarize(&[]);
    }
}
