//! Double-failure recovery timing.
//!
//! The paper evaluates double-disk reconstruction as `Lc · Re`: the longest
//! recovery chain `Lc` (elements that must be rebuilt serially) times the
//! average per-element recovery time `Re` (Section V-D). Chains run in
//! parallel, but they share the surviving disks' bandwidth, so we also
//! apply an aggregate-bandwidth floor: the total element reads divided by
//! the array's combined service rate. The reported time is the maximum of
//! the two bounds — a standard critical-path / capacity analysis.

use crate::profile::DiskProfile;

/// Inputs describing one double-failure reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryJob {
    /// Length (in recovered elements) of each independent recovery chain.
    pub chain_lengths: Vec<usize>,
    /// Total element reads issued to surviving disks.
    pub total_reads: usize,
    /// Number of surviving disks serving those reads.
    pub surviving_disks: usize,
    /// Elements XOR-ed per recovered element (chain length − 1); used for
    /// the per-element recovery cost `Re`.
    pub reads_per_element: usize,
}

/// Estimated reconstruction time, in milliseconds.
///
/// `Re` is modeled as the time to fetch the `reads_per_element` source
/// elements of one lost element from distinct disks in parallel (one
/// element service time) plus the XOR pass, which is negligible next to a
/// 16 MB disk read and is folded into the service constant.
///
/// # Panics
///
/// Panics if the job has no chains or no surviving disks.
pub fn double_failure_time_ms(job: &RecoveryJob, profile: &DiskProfile) -> f64 {
    assert!(!job.chain_lengths.is_empty(), "recovery job with no chains");
    assert!(job.surviving_disks > 0, "no surviving disks to read from");
    let re = profile.element_service_ms();
    let lc = *job.chain_lengths.iter().max().expect("non-empty") as f64;
    let critical_path = lc * re;
    let capacity_floor = job.total_reads as f64 * re / job.surviving_disks as f64;
    critical_path.max(capacity_floor)
}

/// The paper's plain `Lc · Re` model, for cross-checking the richer bound.
pub fn lc_re_time_ms(longest_chain: usize, profile: &DiskProfile) -> f64 {
    longest_chain as f64 * profile.element_service_ms()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DiskProfile {
        DiskProfile { seek_latency_ms: 1.0, bandwidth_mb_s: 1.0, element_mb: 0.0 }
    }

    #[test]
    fn critical_path_dominates_with_many_disks() {
        let job = RecoveryJob {
            chain_lengths: vec![6, 6, 1, 1],
            total_reads: 30,
            surviving_disks: 20,
            reads_per_element: 4,
        };
        let t = double_failure_time_ms(&job, &profile());
        assert!((t - 6.0).abs() < 1e-12); // Lc · Re = 6 · 1ms
        assert_eq!(lc_re_time_ms(6, &profile()), t);
    }

    #[test]
    fn capacity_floor_kicks_in_with_few_disks() {
        let job = RecoveryJob {
            chain_lengths: vec![2, 2],
            total_reads: 40,
            surviving_disks: 4,
            reads_per_element: 4,
        };
        let t = double_failure_time_ms(&job, &profile());
        assert!((t - 10.0).abs() < 1e-12); // 40 reads / 4 disks · 1ms > 2ms
    }

    #[test]
    fn fewer_parallel_chains_take_longer() {
        // Same 12 elements: 4 chains of 3 vs 2 chains of 6.
        let four = RecoveryJob {
            chain_lengths: vec![3, 3, 3, 3],
            total_reads: 48,
            surviving_disks: 100,
            reads_per_element: 4,
        };
        let two = RecoveryJob {
            chain_lengths: vec![6, 6],
            total_reads: 48,
            surviving_disks: 100,
            reads_per_element: 4,
        };
        let p = profile();
        assert!(
            double_failure_time_ms(&four, &p) * 1.99
                < double_failure_time_ms(&two, &p) * 1.01,
            "four chains should be ~2x faster"
        );
    }

    #[test]
    #[should_panic(expected = "no chains")]
    fn empty_job_rejected() {
        double_failure_time_ms(
            &RecoveryJob {
                chain_lengths: vec![],
                total_reads: 0,
                surviving_disks: 1,
                reads_per_element: 0,
            },
            &profile(),
        );
    }
}
