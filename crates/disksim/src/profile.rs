//! Disk service-time models.

/// Service-time model of one disk.
///
/// An element request (read or write of one full element) costs
/// `seek_latency_ms + element_mb / bandwidth`. With the paper's 16 MB
/// elements the transfer term dominates, as on the real Savvio array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Average positioning time per request, in milliseconds.
    pub seek_latency_ms: f64,
    /// Sustained transfer rate, MB/s.
    pub bandwidth_mb_s: f64,
    /// Element size, MB (the paper uses 16 MB).
    pub element_mb: f64,
}

impl DiskProfile {
    /// A Savvio-10K-like profile with the paper's 16 MB elements: ~5 ms
    /// positioning, 160 MB/s sustained.
    pub fn savvio_10k() -> Self {
        DiskProfile { seek_latency_ms: 5.0, bandwidth_mb_s: 160.0, element_mb: 16.0 }
    }

    /// Cost of serving one element request, in milliseconds.
    ///
    /// ```
    /// use disk_sim::DiskProfile;
    /// let p = DiskProfile::savvio_10k();
    /// assert!((p.element_service_ms() - 105.0).abs() < 1e-9); // 5 + 16/160*1000
    /// ```
    pub fn element_service_ms(&self) -> f64 {
        self.seek_latency_ms + self.element_mb / self.bandwidth_mb_s * 1000.0
    }
}

impl Default for DiskProfile {
    fn default() -> Self {
        DiskProfile::savvio_10k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_savvio() {
        assert_eq!(DiskProfile::default(), DiskProfile::savvio_10k());
    }

    #[test]
    fn service_time_scales_with_element_size() {
        let mut p = DiskProfile::savvio_10k();
        let t16 = p.element_service_ms();
        p.element_mb = 32.0;
        let t32 = p.element_service_ms();
        assert!(t32 > t16);
        assert!((t32 - t16 - 100.0).abs() < 1e-9); // extra 16 MB at 160 MB/s
    }
}
