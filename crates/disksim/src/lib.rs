//! A discrete-event disk-array simulator.
//!
//! The HV paper's timing experiments (Fig. 6c, 7a, 9b) ran on a 16-spindle
//! SAS array; this crate is the synthetic stand-in (see DESIGN.md §2).
//! The paper's timing results are driven by *how many elements each disk
//! must serve* and *how serialized the recovery chains are* — exactly what
//! a queueing model captures — so the simulator models:
//!
//! * per-disk FIFO service with a seek-latency + bandwidth cost per element
//!   request ([`profile::DiskProfile`]);
//! * batches of element requests issued simultaneously, completing when the
//!   slowest disk drains ([`array::DiskArray`]) — fed either as index lists
//!   ([`array::DiskArray::run_batch`]) or as the per-disk
//!   [`raid_core::io::RequestSet`] a lowered volume operation produced
//!   ([`array::DiskArray::run_requests`]), so timing and accounting consume
//!   the same stream;
//! * failed disks that reject I/O ([`array::DiskArray::fail_disk`]);
//! * parallel recovery-chain execution for double-failure repair
//!   ([`recovery`]), combining the paper's `Lc · Re` critical-path model
//!   with an aggregate-bandwidth floor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod profile;
pub mod queue;
pub mod recovery;
pub mod stats;

pub use array::{DiskArray, DiskError, ErrorClass};
pub use profile::DiskProfile;
pub use queue::DiskQueues;
