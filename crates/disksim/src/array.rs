//! The event-driven disk array.

use std::fmt;

use raid_core::io::RequestSet;

use crate::profile::DiskProfile;

/// Error returned when I/O targets an unusable disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// The disk index exceeds the array size.
    NoSuchDisk {
        /// Offending index.
        disk: usize,
    },
    /// The disk was failed via [`DiskArray::fail_disk`].
    DiskFailed {
        /// The failed disk.
        disk: usize,
    },
    /// The disk's medium rejected the transfer (real-backend I/O error).
    Io {
        /// The disk whose transfer failed.
        disk: usize,
    },
    /// A recoverable hiccup (bus reset, command timeout): the request
    /// failed but retrying it after a short backoff is expected to
    /// succeed.
    Transient {
        /// The disk that hiccuped.
        disk: usize,
    },
    /// A latent sector error: exactly one element is unreadable. The disk
    /// is otherwise healthy; rewriting the element (after reconstructing
    /// it from its parity chains) remaps the sector and clears the error.
    LatentSector {
        /// The disk carrying the bad sector.
        disk: usize,
        /// The unreadable element's index on that disk.
        index: usize,
    },
    /// The whole backend is gone mid-operation (simulated process crash):
    /// nothing further can be served until the volume is reopened.
    Crashed,
}

/// The coarse failure class an error belongs to — what the volume's
/// recovery driver dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Retry after backoff; escalates to [`ErrorClass::DiskDead`] past a
    /// threshold.
    Transient,
    /// Reconstruct the one element and rewrite it in place.
    LatentSector,
    /// The disk's contents are lost; replan degraded and rebuild.
    DiskDead,
    /// Simulated process crash; recovery happens at reopen, not in-line.
    Crashed,
    /// Addressing or hard medium error — a caller bug or an unrecoverable
    /// condition; never retried.
    Fatal,
}

impl DiskError {
    /// Classifies the error for the recovery driver.
    pub fn class(&self) -> ErrorClass {
        match self {
            DiskError::Transient { .. } => ErrorClass::Transient,
            DiskError::LatentSector { .. } => ErrorClass::LatentSector,
            DiskError::DiskFailed { .. } => ErrorClass::DiskDead,
            DiskError::Crashed => ErrorClass::Crashed,
            DiskError::NoSuchDisk { .. } | DiskError::Io { .. } => ErrorClass::Fatal,
        }
    }
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::NoSuchDisk { disk } => write!(f, "no disk #{disk} in the array"),
            DiskError::DiskFailed { disk } => write!(f, "disk #{disk} has failed"),
            DiskError::Io { disk } => write!(f, "I/O error on disk #{disk}"),
            DiskError::Transient { disk } => {
                write!(f, "transient error on disk #{disk} (retryable)")
            }
            DiskError::LatentSector { disk, index } => {
                write!(f, "latent sector error on disk #{disk} element {index}")
            }
            DiskError::Crashed => write!(f, "backend crashed mid-operation"),
        }
    }
}

impl std::error::Error for DiskError {}

#[derive(Debug, Clone)]
struct Disk {
    /// Simulated time at which this disk finishes its current queue.
    free_at_ms: f64,
    /// Total busy time, for utilization stats.
    busy_ms: f64,
    /// Requests served.
    served: u64,
    failed: bool,
}

/// One executed batch, as recorded in the array's event log.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Simulated start time of the batch (ms).
    pub start_ms: f64,
    /// Simulated completion time (ms).
    pub end_ms: f64,
    /// The request set the batch served — the very object accounting
    /// absorbed, so timing and ledgers can never disagree.
    pub io: RequestSet,
}

impl BatchRecord {
    /// The batch's makespan.
    pub fn makespan_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }

    /// Total requests in the batch.
    pub fn requests(&self) -> u64 {
        self.io.total()
    }
}

/// A simulated disk array with per-disk FIFO queues.
///
/// The clock advances only through [`DiskArray::run_batch`]: a batch models
/// a set of element requests issued at the same instant (the controller
/// dispatches a whole write-pattern or read-pattern at once), and returns
/// the batch's makespan. Consecutive batches are serialized, matching the
/// paper's replay of one pattern at a time.
///
/// ```
/// use disk_sim::{DiskArray, DiskProfile};
///
/// let mut arr = DiskArray::new(4, DiskProfile::savvio_10k());
/// // Three elements on disk 0, one on disk 1 — disk 0 is the bottleneck.
/// let makespan = arr.run_batch([0, 0, 0, 1])?;
/// assert!((makespan - 3.0 * DiskProfile::savvio_10k().element_service_ms()).abs() < 1e-9);
/// # Ok::<(), disk_sim::DiskError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DiskArray {
    profile: DiskProfile,
    disks: Vec<Disk>,
    now_ms: f64,
    log: Vec<BatchRecord>,
    logging: bool,
}

impl DiskArray {
    /// Creates an array of `disks` identical disks.
    pub fn new(disks: usize, profile: DiskProfile) -> Self {
        DiskArray {
            profile,
            disks: vec![
                Disk { free_at_ms: 0.0, busy_ms: 0.0, served: 0, failed: false };
                disks
            ],
            now_ms: 0.0,
            log: Vec::new(),
            logging: false,
        }
    }

    /// Enables per-batch event logging (off by default; long replays would
    /// otherwise accumulate unbounded history).
    pub fn enable_logging(&mut self) {
        self.logging = true;
    }

    /// The recorded batches (empty unless [`DiskArray::enable_logging`] was
    /// called).
    pub fn log(&self) -> &[BatchRecord] {
        &self.log
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.disks.len()
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// The service profile.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Marks a disk failed; subsequent requests to it error out.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::NoSuchDisk`] for a bad index.
    pub fn fail_disk(&mut self, disk: usize) -> Result<(), DiskError> {
        let d = self.disks.get_mut(disk).ok_or(DiskError::NoSuchDisk { disk })?;
        d.failed = true;
        Ok(())
    }

    /// Restores a failed disk (after reconstruction onto a spare).
    ///
    /// # Errors
    ///
    /// Returns [`DiskError::NoSuchDisk`] for a bad index.
    pub fn restore_disk(&mut self, disk: usize) -> Result<(), DiskError> {
        let d = self.disks.get_mut(disk).ok_or(DiskError::NoSuchDisk { disk })?;
        d.failed = false;
        Ok(())
    }

    /// True if the disk is currently failed.
    pub fn is_failed(&self, disk: usize) -> bool {
        self.disks.get(disk).is_some_and(|d| d.failed)
    }

    /// Runs one batch: every request (one element on the named disk) is
    /// issued at the current instant; each disk serves its share FIFO.
    /// Returns the batch makespan in milliseconds and advances the clock
    /// past the batch.
    ///
    /// This is the index-list convenience over [`DiskArray::run_requests`];
    /// the requests are accounted as reads.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError`] if any request names a missing or failed disk;
    /// the batch is then not executed at all.
    pub fn run_batch(&mut self, requests: impl IntoIterator<Item = usize>) -> Result<f64, DiskError> {
        let mut rs = RequestSet::new(self.disks.len());
        for disk in requests {
            if disk >= self.disks.len() {
                return Err(DiskError::NoSuchDisk { disk });
            }
            rs.add_read(disk);
        }
        self.run_requests(&rs)
    }

    /// Runs one lowered operation's [`RequestSet`]: each disk serves its
    /// per-disk total (reads + writes) FIFO from the current instant.
    /// Returns the makespan in milliseconds and advances the clock.
    ///
    /// # Errors
    ///
    /// Returns [`DiskError`] if the set addresses a missing disk or puts
    /// requests on a failed one; the batch is then not executed at all.
    pub fn run_requests(&mut self, requests: &RequestSet) -> Result<f64, DiskError> {
        if requests.disks() > self.disks.len() {
            return Err(DiskError::NoSuchDisk { disk: self.disks.len() });
        }
        let per_disk = requests.per_disk_totals();
        for (disk, &n) in per_disk.iter().enumerate() {
            if n > 0 && self.disks[disk].failed {
                return Err(DiskError::DiskFailed { disk });
            }
        }
        let service = self.profile.element_service_ms();
        let start = self.now_ms;
        let mut makespan_end = start;
        for (disk, &n) in self.disks.iter_mut().zip(&per_disk) {
            if n == 0 {
                continue;
            }
            let begin = disk.free_at_ms.max(start);
            let end = begin + n as f64 * service;
            disk.free_at_ms = end;
            disk.busy_ms += n as f64 * service;
            disk.served += n;
            makespan_end = makespan_end.max(end);
        }
        self.now_ms = makespan_end;
        if self.logging {
            self.log.push(BatchRecord {
                start_ms: start,
                end_ms: makespan_end,
                io: requests.clone(),
            });
        }
        Ok(makespan_end - start)
    }

    /// Per-disk utilization over the elapsed simulated time (0 if idle).
    pub fn utilization(&self) -> Vec<f64> {
        self.disks
            .iter()
            .map(|d| if self.now_ms > 0.0 { d.busy_ms / self.now_ms } else { 0.0 })
            .collect()
    }

    /// Requests served per disk.
    pub fn served(&self) -> Vec<u64> {
        self.disks.iter().map(|d| d.served).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_profile() -> DiskProfile {
        // 1 ms per element for easy arithmetic.
        DiskProfile { seek_latency_ms: 1.0, bandwidth_mb_s: 1.0, element_mb: 0.0 }
    }

    #[test]
    fn batch_makespan_is_max_disk_queue() {
        let mut arr = DiskArray::new(4, unit_profile());
        // 3 requests on disk 0, 1 on disk 1.
        let t = arr.run_batch([0, 0, 0, 1]).unwrap();
        assert!((t - 3.0).abs() < 1e-12);
        assert_eq!(arr.served(), vec![3, 1, 0, 0]);
    }

    #[test]
    fn batches_serialize_on_the_clock() {
        let mut arr = DiskArray::new(2, unit_profile());
        let t1 = arr.run_batch([0, 0]).unwrap();
        let t2 = arr.run_batch([1]).unwrap();
        assert!((t1 - 2.0).abs() < 1e-12);
        assert!((t2 - 1.0).abs() < 1e-12);
        assert!((arr.now_ms() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_free() {
        let mut arr = DiskArray::new(2, unit_profile());
        let t = arr.run_batch([]).unwrap();
        assert_eq!(t, 0.0);
        assert_eq!(arr.now_ms(), 0.0);
    }

    #[test]
    fn failed_disk_rejects_io_and_batch_is_atomic() {
        let mut arr = DiskArray::new(2, unit_profile());
        arr.fail_disk(1).unwrap();
        assert!(arr.is_failed(1));
        let err = arr.run_batch([0, 1]).unwrap_err();
        assert_eq!(err, DiskError::DiskFailed { disk: 1 });
        // Nothing ran.
        assert_eq!(arr.served(), vec![0, 0]);
        arr.restore_disk(1).unwrap();
        assert!(arr.run_batch([0, 1]).is_ok());
    }

    #[test]
    fn bad_disk_index() {
        let mut arr = DiskArray::new(2, unit_profile());
        assert_eq!(arr.run_batch([5]).unwrap_err(), DiskError::NoSuchDisk { disk: 5 });
        assert_eq!(arr.fail_disk(9).unwrap_err(), DiskError::NoSuchDisk { disk: 9 });
    }

    #[test]
    fn event_log_records_batches_when_enabled() {
        let mut arr = DiskArray::new(2, unit_profile());
        arr.run_batch([0]).unwrap();
        assert!(arr.log().is_empty(), "logging is opt-in");
        arr.enable_logging();
        arr.run_batch([0, 0, 1]).unwrap();
        arr.run_batch([1]).unwrap();
        let log = arr.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].io.per_disk_totals(), vec![2, 1]);
        assert_eq!(log[0].requests(), 3);
        assert!((log[0].makespan_ms() - 2.0).abs() < 1e-12);
        assert!(log[1].start_ms >= log[0].start_ms);
    }

    #[test]
    fn request_sets_time_like_equivalent_batches() {
        let mut a = DiskArray::new(3, unit_profile());
        let mut b = DiskArray::new(3, unit_profile());
        let mut rs = RequestSet::new(3);
        rs.add_read(0);
        rs.add_read(0);
        rs.add_data_write(1);
        rs.add_parity_write(2);
        let t_rs = a.run_requests(&rs).unwrap();
        let t_batch = b.run_batch([0, 0, 1, 2]).unwrap();
        assert!((t_rs - t_batch).abs() < 1e-12);
        assert_eq!(a.served(), b.served());
    }

    #[test]
    fn request_set_on_failed_disk_is_atomic() {
        let mut arr = DiskArray::new(2, unit_profile());
        arr.fail_disk(1).unwrap();
        let mut rs = RequestSet::new(2);
        rs.add_read(0);
        rs.add_parity_write(1);
        assert_eq!(arr.run_requests(&rs).unwrap_err(), DiskError::DiskFailed { disk: 1 });
        assert_eq!(arr.served(), vec![0, 0]);
        // A set that leaves the failed disk idle still runs.
        let mut quiet = RequestSet::new(2);
        quiet.add_read(0);
        assert!(arr.run_requests(&quiet).is_ok());
    }

    #[test]
    fn oversized_request_set_rejected() {
        let mut arr = DiskArray::new(2, unit_profile());
        let rs = RequestSet::new(3);
        assert!(matches!(arr.run_requests(&rs), Err(DiskError::NoSuchDisk { .. })));
    }

    #[test]
    fn utilization_reflects_imbalance() {
        let mut arr = DiskArray::new(2, unit_profile());
        arr.run_batch([0, 0, 0, 0, 1]).unwrap();
        let u = arr.utilization();
        assert!(u[0] > u[1]);
        assert!((u[0] - 1.0).abs() < 1e-12); // disk 0 was the bottleneck
    }
}
