//! Concurrent-issue queueing: per-operation latency when several
//! operations are in flight at the same instant.
//!
//! [`crate::array::DiskArray`] serializes batches — it advances its clock
//! to each batch's makespan before the next one is issued, so two
//! operations never contend and a batch's makespan is its *isolated*
//! latency. That is the right model for throughput questions ("how long
//! does this whole rebuild take?") but cannot express the fleet harness's
//! QoS question: *how much does a rebuild burst issued in the same
//! scheduling tick inflate a foreground write's latency?*
//!
//! [`DiskQueues`] answers that: every operation is issued at an explicit
//! timestamp, queues FIFO behind whatever each of its disks is already
//! serving, and its latency is `completion − issue` — so a foreground
//! element landing behind a 40-element rebuild burst on the same spindle
//! pays the wait. Time never advances implicitly; the caller owns the
//! clock (the fleet harness uses one tick per simulated hour, which also
//! means queues drain naturally between ticks).

use crate::profile::DiskProfile;

/// Per-disk FIFO queues under an explicit caller-owned clock.
#[derive(Debug, Clone)]
pub struct DiskQueues {
    busy_until_ms: Vec<f64>,
    service_ms: f64,
}

impl DiskQueues {
    /// Queues for `disks` disks with the profile's per-element service
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `disks` is zero.
    pub fn new(disks: usize, profile: DiskProfile) -> Self {
        assert!(disks > 0, "need at least one disk");
        DiskQueues { busy_until_ms: vec![0.0; disks], service_ms: profile.element_service_ms() }
    }

    /// Number of disks modeled.
    pub fn disks(&self) -> usize {
        self.busy_until_ms.len()
    }

    /// Issues one operation at absolute time `at_ms`: `per_disk[d]`
    /// element requests enqueue FIFO on disk `d` behind whatever is still
    /// in its queue. Returns the operation's latency (completion of its
    /// slowest disk minus `at_ms`); an operation touching no disks has
    /// zero latency.
    ///
    /// Issue order *is* queue order for same-instant operations — the
    /// caller decides who goes first (the fleet harness issues the
    /// rebuild burst before the tick's foreground writes, the
    /// conservative choice for foreground latency).
    ///
    /// # Panics
    ///
    /// Panics if `per_disk` is longer than the disk count.
    pub fn issue(&mut self, at_ms: f64, per_disk: &[u64]) -> f64 {
        assert!(per_disk.len() <= self.busy_until_ms.len(), "more request lanes than disks");
        let mut done_ms = at_ms;
        for (d, &n) in per_disk.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let begin = self.busy_until_ms[d].max(at_ms);
            let end = begin + n as f64 * self.service_ms;
            self.busy_until_ms[d] = end;
            done_ms = done_ms.max(end);
        }
        done_ms - at_ms
    }

    /// The instant disk `d` drains, in absolute milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn busy_until_ms(&self, d: usize) -> f64 {
        self.busy_until_ms[d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(disks: usize) -> DiskQueues {
        DiskQueues::new(disks, DiskProfile::savvio_10k())
    }

    #[test]
    fn isolated_op_pays_only_its_bottleneck() {
        let mut q = queues(4);
        let re = DiskProfile::savvio_10k().element_service_ms();
        let lat = q.issue(0.0, &[2, 1, 0, 3]);
        assert!((lat - 3.0 * re).abs() < 1e-9);
    }

    #[test]
    fn same_instant_ops_queue_fifo() {
        let mut q = queues(2);
        let re = DiskProfile::savvio_10k().element_service_ms();
        // A 5-element burst on disk 0, then a 1-element op on disk 0 at
        // the same instant: the second op waits for the first.
        assert!((q.issue(0.0, &[5, 0]) - 5.0 * re).abs() < 1e-9);
        assert!((q.issue(0.0, &[1, 0]) - 6.0 * re).abs() < 1e-9);
        // Disk 1 is idle: an op there is unaffected.
        assert!((q.issue(0.0, &[0, 1]) - re).abs() < 1e-9);
    }

    #[test]
    fn queues_drain_between_distant_issues() {
        let mut q = queues(2);
        let re = DiskProfile::savvio_10k().element_service_ms();
        q.issue(0.0, &[8, 8]);
        // Issued long after the burst drained: full-speed again.
        let lat = q.issue(1_000_000.0, &[1, 1]);
        assert!((lat - re).abs() < 1e-9);
    }

    #[test]
    fn empty_op_is_free() {
        let mut q = queues(3);
        assert_eq!(q.issue(10.0, &[0, 0, 0]), 0.0);
        assert_eq!(q.issue(10.0, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "more request lanes than disks")]
    fn too_many_lanes_rejected() {
        queues(2).issue(0.0, &[1, 1, 1]);
    }
}
